"""Setuptools shim.

All package metadata lives in ``pyproject.toml``; this file exists so the
package can be installed in environments without the ``wheel`` package (e.g.
offline clusters) via ``python setup.py develop --user`` or
``pip install -e . --no-build-isolation``.
"""

from setuptools import setup

setup()
