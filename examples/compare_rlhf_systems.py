#!/usr/bin/env python3
"""Compare ReaL against the baseline RLHF systems (Figure 7 style).

Evaluates DeepSpeed-Chat, OpenRLHF, NeMo-Aligner, veRL, the Megatron-style
heuristic and ReaL on the same workload and simulated cluster, and prints the
throughput ranking.  Systems whose plan does not fit in device memory are
reported as OOM, mirroring the red crosses in the paper's Figure 7.

Run with::

    python examples/compare_rlhf_systems.py [--gpus 16] [--actor 7b]
"""

from __future__ import annotations

import argparse

from repro.algorithms import build_graph
from repro.baselines import (
    DeepSpeedChatSystem,
    NeMoAlignerSystem,
    OpenRLHFSystem,
    RealHeuristicSystem,
    RealSystem,
    VeRLSystem,
)
from repro.cluster import make_cluster
from repro.core import SearchConfig, instructgpt_workload
from repro.experiments import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--gpus", type=int, default=16)
    parser.add_argument("--actor", default="7b", choices=["7b", "13b", "34b", "70b"])
    parser.add_argument("--critic", default="7b", choices=["7b", "13b"])
    parser.add_argument("--algorithm", default="ppo", choices=["ppo", "dpo", "grpo", "remax"])
    parser.add_argument("--context", type=int, default=2048)
    parser.add_argument("--search-seconds", type=float, default=25.0)
    args = parser.parse_args()

    graph = build_graph(args.algorithm)
    workload = instructgpt_workload(
        args.actor, args.critic,
        batch_size=args.gpus * 32,
        prompt_len=args.context // 2,
        gen_len=args.context // 2,
    )
    cluster = make_cluster(args.gpus)

    systems = [
        DeepSpeedChatSystem(),
        OpenRLHFSystem(),
        NeMoAlignerSystem(),
        VeRLSystem(),
        RealHeuristicSystem(),
        RealSystem(search_config=SearchConfig(
            max_iterations=4000, time_budget_s=args.search_seconds, seed=0)),
    ]

    rows = []
    for system in systems:
        evaluation = system.evaluate(graph, workload, cluster)
        rows.append(
            {
                "system": system.name,
                "s/iter": round(evaluation.seconds_per_iteration, 1)
                if evaluation.feasible else "OOM",
                "PFLOP/s": round(evaluation.petaflops, 2),
                "note": evaluation.failure_reason,
            }
        )

    rows.sort(key=lambda row: -row["PFLOP/s"])
    print()
    print(format_table(
        rows,
        title=f"{args.algorithm.upper()} {args.actor}+{args.critic}, "
              f"{args.gpus} GPUs, context {args.context}",
    ))
    best = rows[0]
    feasible = [row for row in rows if row["PFLOP/s"] > 0]
    if len(feasible) > 1:
        worst = feasible[-1]
        print(f"\n{best['system']} is {best['PFLOP/s'] / worst['PFLOP/s']:.2f}x faster "
              f"than {worst['system']} on this setting.")


if __name__ == "__main__":
    main()
