#!/usr/bin/env python3
"""Export the unified telemetry of one scheduling run, three ways.

Every subsystem — the plan service, the MCMC search, the cluster scheduler
and the shared sim kernel — reports into one process-wide metrics registry
(:mod:`repro.obs`).  This example runs a small two-job schedule and exports
what the registry collected:

1. **JSON snapshot** (``METRICS_schedule.json``): every counter, gauge and
   histogram — including streaming p50/p90/p99 of the service request
   latency and the scheduler decision latency — written automatically next
   to the run's Chrome trace;
2. **Prometheus text exposition**: the same registry rendered in the
   scrape format (``# HELP``/``# TYPE``, ``_bucket``/``_sum``/``_count``);
3. **Chrome-trace counter tracks**: the merged schedule trace carries live
   tracks (running/queued jobs, free/busy GPUs, utilization, cache hit
   ratio) rendered as stacked area charts in https://ui.perfetto.dev.

Run with::

    python examples/metrics_export.py [--out-dir traces] [--gpus 16]

Set ``REPRO_METRICS=off`` to see the whole layer become a no-op, or
``REPRO_LOG_LEVEL=debug REPRO_LOG_FORMAT=json`` for structured logs.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.core import SearchConfig, schedule_jobs
from repro.obs import get_registry, to_prometheus
from repro.sched import JobSpec, SchedulerConfig
from repro.sim import load_chrome_trace


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out-dir", default="traces", help="where to write the exports")
    parser.add_argument("--gpus", type=int, default=16, help="cluster size (multiple of 8)")
    parser.add_argument(
        "--search-iterations", type=int, default=120, help="plan search budget"
    )
    args = parser.parse_args()
    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)

    # --- One instrumented schedule: trace + metrics snapshot together. --- #
    jobs = [
        JobSpec(name="ppo-prod", algorithm="ppo", batch_size=128,
                target_iterations=6, min_gpus=8, max_gpus=args.gpus),
        JobSpec(name="grpo-ablation", algorithm="grpo", batch_size=64,
                target_iterations=4, min_gpus=8, max_gpus=8, arrival_time=10.0),
    ]
    trace_path = out_dir / "schedule_trace.json"
    report = schedule_jobs(
        jobs,
        n_gpus=args.gpus,
        policy="first_fit",
        config=SchedulerConfig(
            search=SearchConfig(
                max_iterations=args.search_iterations,
                time_budget_s=2.0,
                record_history=False,
            )
        ),
        trace_path=str(trace_path),
    )
    print(f"schedule: {report.n_completed}/{report.n_jobs} jobs, "
          f"makespan {report.makespan:.1f}s")

    # --- 1. The JSON snapshot written next to the trace. ----------------- #
    if report.metrics_path is None:
        print("\nmetrics snapshot: skipped (REPRO_METRICS=off)")
    else:
        snapshot = json.loads(Path(report.metrics_path).read_text())
        print(f"\nmetrics snapshot: {len(snapshot['metrics'])} instruments "
              f"-> {report.metrics_path}")
        for name in ("service_request_seconds", "sched_decision_seconds"):
            for series in snapshot["metrics"][name]["series"]:
                labels = series["labels"] or {"outcome": "-"}
                print(f"  {name}{labels}: count={series['count']} "
                      f"p50={series['p50'] * 1e3:.2f}ms p99={series['p99'] * 1e3:.2f}ms")

    # --- 2. Prometheus text exposition of the same registry. ------------- #
    exposition = to_prometheus(get_registry())
    prom_path = out_dir / "metrics.prom"
    prom_path.write_text(exposition)
    lines = exposition.splitlines()
    print(f"\nPrometheus exposition: {len(lines)} lines -> {prom_path}")
    for line in lines[:6]:
        print(f"  {line}")

    # --- 3. Counter tracks inside the merged Chrome trace. --------------- #
    events = load_chrome_trace(report.trace_path)
    tracks = sorted({e["name"] for e in events if e["ph"] == "C"})
    print(f"\ncounter tracks in {report.trace_path}: {', '.join(tracks)}")
    print("Open the trace in chrome://tracing or https://ui.perfetto.dev "
          "to see them as live charts.")


if __name__ == "__main__":
    main()
