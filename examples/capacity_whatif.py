#!/usr/bin/env python3
"""Capacity what-if: which cluster should host next quarter's RLHF fleet?

This example generates a synthetic fleet trace (Poisson arrivals with a
diurnal day/night swing, drawn from a weighted mix of recurring RLHF job
types) and replays the *same* trace against a grid of candidate cluster
shapes × prices.  All candidates share one PlanService, so a (job type,
partition shape) searched for the first candidate is a warm cache hit for
every later one — the whole grid costs little more than its first replay.

Each candidate is priced as provisioned cost (GPUs × makespan × $/GPU-hour)
against delivered throughput (completed RLHF iterations per hour); the
report's frontier lists the Pareto-optimal choices, and ``--report`` writes
the machine-readable JSON a planning dashboard would ingest.

Run with::

    python examples/capacity_whatif.py [--jobs 24] [--horizon 3600] \
        [--report CAPACITY_report.json]
"""

from __future__ import annotations

import argparse

from repro.capacity import (
    CapacityCandidate,
    FleetTraceConfig,
    capacity_whatif,
    generate_fleet_trace,
)
from repro.experiments import format_table


def build_candidates(n_gpus: int) -> list:
    """Six candidates: three sizes × (on-demand, discounted spot) pricing."""
    sizes = (max(16, n_gpus // 4), max(32, n_gpus // 2), n_gpus)
    candidates = []
    for size in dict.fromkeys(sizes):  # dedup while keeping order
        candidates.append(
            CapacityCandidate(name=f"{size}g", n_gpus=size, cost_per_gpu_hour=2.0)
        )
        candidates.append(
            CapacityCandidate(
                name=f"{size}g-spot", n_gpus=size, cost_per_gpu_hour=1.2
            )
        )
    return candidates


def main() -> None:
    parser = argparse.ArgumentParser(
        description="Replay one fleet trace against a cluster-shape grid"
    )
    parser.add_argument("--jobs", type=int, default=24, help="fleet trace size")
    parser.add_argument(
        "--horizon", type=float, default=3600.0, help="arrival window (virtual s)"
    )
    parser.add_argument("--gpus", type=int, default=64, help="largest candidate size")
    parser.add_argument("--seed", type=int, default=0, help="trace seed")
    parser.add_argument(
        "--report", default=None, help="write the machine-readable report here"
    )
    args = parser.parse_args()

    trace = generate_fleet_trace(
        FleetTraceConfig(n_jobs=args.jobs, horizon_s=args.horizon, seed=args.seed)
    )
    print(f"fleet trace: {len(trace)} jobs over {args.horizon:.0f}s "
          f"(first: {trace[0].name}, last: {trace[-1].name})")

    candidates = build_candidates(args.gpus)
    report = capacity_whatif(trace, candidates)

    rows = []
    for outcome in report.outcomes:
        rows.append(
            {
                "candidate": outcome.name,
                "jobs": f"{outcome.n_completed}/{outcome.n_jobs}"
                + (f" (+{outcome.n_skipped} too big)" if outcome.n_skipped else ""),
                "makespan (h)": round(outcome.makespan_s / 3600.0, 2),
                "iters/h": round(outcome.iterations_per_hour, 1),
                "cost ($)": round(outcome.provisioned_cost, 2),
                "$/1k iters": round(outcome.cost_per_1k_iterations, 2),
                "frontier": "*" if outcome.name in report.frontier else "",
            }
        )
    print()
    print(format_table(rows, title="Capacity what-if grid"))
    print(f"\nPareto frontier: {', '.join(report.frontier)}")

    if args.report:
        path = report.save(args.report)
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
