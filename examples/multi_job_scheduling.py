#!/usr/bin/env python3
"""Multi-job scheduling: share one GPU cluster between concurrent RLHF jobs.

The paper plans one training job on a dedicated cluster; this example runs a
small multi-tenant trace instead: several PPO/GRPO jobs with different sizes,
priorities and arrival times are admitted onto one shared cluster, placed on
mesh-shaped partitions by a scheduling policy, elastically resized when
capacity frees up, and — optionally — displaced and re-planned when a node
fails mid-run.  Every placement is a plan search served by the shared
PlanService, so same-shaped partitions are cache hits and displaced jobs are
warm-started from their own previous plans.

Run with::

    python examples/multi_job_scheduling.py [--gpus 32] [--policy priority] \
        [--fail-node 1]
"""

from __future__ import annotations

import argparse

from repro.cluster import make_cluster
from repro.core import SearchConfig
from repro.sched import JobSpec, NodeFailure, SchedulerConfig, available_policies, schedule_trace


def build_trace(n_gpus: int) -> list:
    """A small heterogeneous job mix scaled to the cluster size."""
    max_gpus = max(8, n_gpus // 2)
    return [
        JobSpec(
            name="ppo-prod",
            algorithm="ppo",
            batch_size=128,
            target_iterations=20,
            priority=2,
            min_gpus=8,
            max_gpus=max_gpus,
        ),
        JobSpec(
            name="grpo-ablation",
            algorithm="grpo",
            batch_size=64,
            target_iterations=8,
            priority=0,
            min_gpus=8,
            max_gpus=max_gpus,
        ),
        JobSpec(
            name="ppo-sweep",
            algorithm="ppo",
            batch_size=64,
            target_iterations=6,
            priority=0,
            arrival_time=30.0,
            min_gpus=8,
            max_gpus=max_gpus,
        ),
        JobSpec(
            name="ppo-hotfix",
            algorithm="ppo",
            batch_size=64,
            target_iterations=4,
            priority=5,
            arrival_time=60.0,
            min_gpus=8,
            max_gpus=max_gpus,
        ),
    ]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--gpus", type=int, default=32, help="cluster size (multiple of 8)")
    parser.add_argument(
        "--policy", default="priority", choices=available_policies()
    )
    parser.add_argument(
        "--search-iterations", type=int, default=150, help="cold search budget"
    )
    parser.add_argument(
        "--search-seconds", type=float, default=1.0, help="cold search time budget"
    )
    parser.add_argument(
        "--fail-node",
        type=int,
        default=None,
        help="inject a failure of this node mid-run (recovers later)",
    )
    args = parser.parse_args()

    cluster = make_cluster(args.gpus)
    jobs = build_trace(args.gpus)
    config = SchedulerConfig(
        search=SearchConfig(
            max_iterations=args.search_iterations,
            time_budget_s=args.search_seconds,
            record_history=False,
        )
    )
    failures = []
    if args.fail_node is not None:
        failures.append(NodeFailure(time=90.0, node=args.fail_node, recovery_time=240.0))

    print(
        f"Scheduling {len(jobs)} jobs on {args.gpus} GPUs "
        f"({cluster.n_nodes} nodes) under the {args.policy!r} policy\n"
    )
    report = schedule_trace(
        cluster=cluster, jobs=jobs, policy=args.policy, config=config, failures=failures
    )

    print("Timeline:")
    for event in report.timeline:
        job = f" {event['job']:<14s}" if event["job"] else " " * 15
        print(f"  t={event['time']:>8.1f}s  {event['event']:<11s}{job} {event['detail']}")

    print("\nPer-job metrics:")
    for job in report.jobs:
        wait = f"{job.queue_wait:.1f}s" if job.completed else "-"
        turnaround = f"{job.turnaround:.1f}s" if job.completed else "-"
        print(
            f"  {job.name:<14s} prio {job.priority}  wait {wait:>8s}  "
            f"turnaround {turnaround:>9s}  replans {job.n_replans}  "
            f"preemptions {job.n_preemptions}  resizes {job.n_resizes}"
        )

    print(
        f"\nCluster: makespan {report.makespan:.1f}s, "
        f"aggregate {report.aggregate_iterations_per_second:.3f} iterations/s, "
        f"GPU utilization {report.gpu_utilization:.0%}"
    )
    cold, replan = report.cold_searches, report.replan_searches
    print(
        f"Planning: {report.candidates_scored} candidates scored, "
        f"{cold.count} cold searches ({cold.mean_seconds * 1e3:.1f} ms avg), "
        f"{replan.count} replans ({replan.mean_seconds * 1e3:.1f} ms avg)"
    )


if __name__ == "__main__":
    main()
