#!/usr/bin/env python3
"""Export unified Chrome traces from both simulators.

Both discrete-event simulators run on the shared ``repro.sim`` kernel, so
both export the same trace format.  This example produces two files,
loadable in ``chrome://tracing`` or https://ui.perfetto.dev:

1. **One engine iteration** (``iteration_trace.json``): the searched plan of
   a PPO job executed on the runtime engine — one thread row per GPU with
   compute/communication/reallocation spans, plus a call-level overview row.
2. **One merged multi-job schedule** (``schedule_trace.json``): a small
   cluster trace with an injected node failure — cluster-level events
   (arrivals, placements, the failure, the displacement, the replan) on one
   process, and per-job processes carrying running segments,
   parameter-switch windows and the engine-profiled call phases of every
   completed iteration.

Run with::

    python examples/trace_export.py [--out-dir traces] [--gpus 16]
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.core import SearchConfig, run_iteration_trace, schedule_jobs
from repro.sched import JobSpec, NodeFailure, SchedulerConfig
from repro.sim import load_chrome_trace


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out-dir", default="traces", help="where to write the JSON traces")
    parser.add_argument("--gpus", type=int, default=16, help="cluster size (multiple of 8)")
    parser.add_argument(
        "--search-iterations", type=int, default=120, help="plan search budget"
    )
    args = parser.parse_args()
    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    search = SearchConfig(
        max_iterations=args.search_iterations, time_budget_s=2.0, record_history=False
    )

    # --- 1. One engine iteration, plan searched then simulated. ---------- #
    iteration_path = out_dir / "iteration_trace.json"
    trace, _experiment = run_iteration_trace(
        "ppo",
        n_gpus=args.gpus,
        batch_size=128,
        search=search,
        trace_path=str(iteration_path),
    )
    events = load_chrome_trace(iteration_path)
    print(f"engine iteration: {trace.total_seconds:.2f}s simulated, "
          f"{len(events)} trace events -> {iteration_path}")

    # --- 2. One merged schedule: cluster events + per-job phases. -------- #
    schedule_path = out_dir / "schedule_trace.json"
    jobs = [
        JobSpec(name="ppo-prod", algorithm="ppo", batch_size=128,
                target_iterations=8, min_gpus=8, max_gpus=args.gpus),
        JobSpec(name="grpo-ablation", algorithm="grpo", batch_size=64,
                target_iterations=5, min_gpus=8, max_gpus=8, arrival_time=10.0),
    ]
    report = schedule_jobs(
        jobs,
        n_gpus=args.gpus,
        policy="first_fit",
        config=SchedulerConfig(search=search),
        failures=[NodeFailure(time=30.0, node=0, recovery_time=70.0)],
        trace_path=str(schedule_path),
    )
    events = load_chrome_trace(schedule_path)
    print(f"schedule: {report.n_completed}/{report.n_jobs} jobs, "
          f"makespan {report.makespan:.1f}s, {report.n_events} kernel events, "
          f"{report.engine_profile_runs} engine profiles, "
          f"{report.total_switch_seconds:.2f}s parameter switches")
    print(f"merged trace: {len(events)} events -> {schedule_path}")
    print("\nTimeline:")
    for event in report.timeline:
        job = f" {event['job']:<14s}" if event["job"] else " " * 15
        print(f"  t={event['time']:>7.1f}s  {event['event']:<11s}{job} {event['detail']}")
    print("\nOpen the JSON files in chrome://tracing or https://ui.perfetto.dev")


if __name__ == "__main__":
    main()
