#!/usr/bin/env python3
"""Long-context planning: how the searched plan changes from 2k to 8k context.

The paper reports that ReaL's advantage over the Megatron-style heuristic
grows from +54% on average to up to +81% when the context stretches from 2048
to 8192 tokens (Figure 8).  This example searches plans for both contexts at a
fixed token budget and shows how the chosen parallelization shifts.

Run with::

    python examples/long_context_planning.py [--gpus 16] [--actor 7b]
"""

from __future__ import annotations

import argparse

from repro.algorithms import build_ppo_graph
from repro.baselines import RealSystem, build_heuristic_plan
from repro.cluster import make_cluster
from repro.core import SearchConfig, instructgpt_workload
from repro.experiments import format_table, petaflops_per_second
from repro.runtime import RuntimeEngine


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--gpus", type=int, default=16)
    parser.add_argument("--actor", default="7b", choices=["7b", "13b", "34b", "70b"])
    parser.add_argument("--critic", default="7b", choices=["7b", "13b"])
    parser.add_argument("--search-seconds", type=float, default=20.0)
    args = parser.parse_args()

    graph = build_ppo_graph()
    cluster = make_cluster(args.gpus)
    token_budget = args.gpus * 32 * 2048  # constant tokens per global batch

    rows = []
    for context in (2048, 8192):
        batch_size = max(8, token_budget // context)
        workload = instructgpt_workload(
            args.actor, args.critic, batch_size=batch_size,
            prompt_len=context // 2, gen_len=context // 2,
        )
        heuristic = build_heuristic_plan(graph, workload, cluster)
        real = RealSystem(search_config=SearchConfig(
            max_iterations=4000, time_budget_s=args.search_seconds, seed=0))
        searched = real.build_plan(graph, workload, cluster)

        engine = RuntimeEngine(cluster, workload)
        t_heuristic = engine.run_iteration(graph, heuristic).total_seconds
        t_searched = engine.run_iteration(graph, searched).total_seconds
        gen_alloc = searched["actor_generate"]
        rows.append(
            {
                "context": context,
                "batch": batch_size,
                "heuristic PFLOP/s": round(petaflops_per_second(workload, graph, t_heuristic), 2),
                "ReaL PFLOP/s": round(petaflops_per_second(workload, graph, t_searched), 2),
                "improvement": f"{(t_heuristic / t_searched - 1) * 100:+.0f}%",
                "searched gen strategy": gen_alloc.parallel.describe()
                + f" mbs={gen_alloc.n_microbatches}",
            }
        )

    print()
    print(format_table(rows, title=f"Long-context planning, {args.actor}+{args.critic}, {args.gpus} GPUs"))
    print("\nThe generation call's strategy shifts as the KV cache and activation\n"
          "memory grow with the context: the searched plan re-balances DP/TP/PP\n"
          "and micro-batching instead of keeping the pre-training recipe.")


if __name__ == "__main__":
    main()
