#!/usr/bin/env python3
"""Tour the observability layer of one scheduling run, end to end.

Every subsystem — the plan service, the MCMC search, the cluster scheduler
and the shared sim kernel — reports into process-wide telemetry
(:mod:`repro.obs`).  This example runs a small two-job schedule with online
re-planning enabled and walks through everything it left behind:

1. **JSON metrics snapshot** (``METRICS_*.json``): every counter, gauge and
   histogram — including streaming p50/p90/p99 and exact min/max of the
   service request latency — written automatically next to the Chrome trace;
2. **Prometheus text exposition**: the same registry rendered in the scrape
   format (``# HELP``/``# TYPE``, ``_bucket``/``_sum``/``_count``/``_min``/
   ``_max``);
3. **Chrome-trace counter tracks**: the merged schedule trace carries live
   tracks (running/queued jobs, free/busy GPUs, utilization, cache hit
   ratio) rendered as stacked area charts in https://ui.perfetto.dev;
4. **Causal span tree**: the same trace carries async span events with flow
   arrows — scheduler decision wave → plan-service request → per-chain
   search slices — on a ``planning`` process;
5. **Decision provenance** (``PROVENANCE_*.jsonl``): the arithmetic behind
   every placement, swap evaluation and plan request;
6. **The run report CLI** (``python -m repro.obs.report <dir>``): the whole
   directory digested into a human-readable narrative.

Run with::

    python examples/observability_tour.py [--out-dir traces] [--gpus 16]

Set ``REPRO_METRICS=off`` / ``REPRO_TRACING=off`` to see either layer become
a no-op, or ``REPRO_LOG_LEVEL=debug REPRO_LOG_FORMAT=json`` for structured
logs.  ``REPRO_ARTIFACT_DIR`` redirects benchmark artifacts the same way
``--out-dir`` redirects this example's.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.core import SearchConfig, schedule_jobs
from repro.obs import get_registry, to_prometheus
from repro.obs.report import render_report
from repro.sched import JobSpec, SchedulerConfig
from repro.sim import load_chrome_trace


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out-dir", default="traces", help="where to write the exports")
    parser.add_argument("--gpus", type=int, default=16, help="cluster size (multiple of 8)")
    parser.add_argument(
        "--search-iterations", type=int, default=120, help="plan search budget"
    )
    args = parser.parse_args()
    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)

    # --- One instrumented schedule: trace + metrics + provenance. -------- #
    jobs = [
        JobSpec(name="ppo-prod", algorithm="ppo", batch_size=128,
                target_iterations=6, min_gpus=8, max_gpus=args.gpus),
        JobSpec(name="grpo-ablation", algorithm="grpo", batch_size=64,
                target_iterations=4, min_gpus=8, max_gpus=8, arrival_time=10.0),
    ]
    trace_path = out_dir / "TRACE_schedule.json"
    report = schedule_jobs(
        jobs,
        n_gpus=args.gpus,
        policy="first_fit",
        config=SchedulerConfig(
            search=SearchConfig(
                max_iterations=args.search_iterations,
                time_budget_s=2.0,
                record_history=False,
            ),
            online_replanning=True,
            poll_interval_s=15.0,
            poll_iterations=max(10, args.search_iterations // 2),
        ),
        trace_path=str(trace_path),
    )
    print(f"schedule: {report.n_completed}/{report.n_jobs} jobs, "
          f"makespan {report.makespan:.1f}s")

    # --- 1. The JSON snapshot written next to the trace. ----------------- #
    if report.metrics_path is None:
        print("\nmetrics snapshot: skipped (REPRO_METRICS=off)")
    else:
        snapshot = json.loads(Path(report.metrics_path).read_text())
        print(f"\nmetrics snapshot (schema v{snapshot['schema_version']}): "
              f"{len(snapshot['metrics'])} instruments -> {report.metrics_path}")
        for name in ("service_request_seconds", "sched_decision_seconds"):
            for series in snapshot["metrics"][name]["series"]:
                labels = series["labels"] or {"outcome": "-"}
                print(f"  {name}{labels}: count={series['count']} "
                      f"p50={series['p50'] * 1e3:.2f}ms p99={series['p99'] * 1e3:.2f}ms "
                      f"max={series['max'] * 1e3:.2f}ms")

    # --- 2. Prometheus text exposition of the same registry. ------------- #
    exposition = to_prometheus(get_registry())
    prom_path = out_dir / "metrics.prom"
    prom_path.write_text(exposition)
    lines = exposition.splitlines()
    print(f"\nPrometheus exposition: {len(lines)} lines -> {prom_path}")
    for line in lines[:6]:
        print(f"  {line}")

    # --- 3. Counter tracks inside the merged Chrome trace. --------------- #
    events = load_chrome_trace(report.trace_path)
    tracks = sorted({e["name"] for e in events if e["ph"] == "C"})
    print(f"\ncounter tracks in {report.trace_path}: {', '.join(tracks)}")

    # --- 4. The causal span tree merged into the same trace. ------------- #
    span_begins = [e for e in events if e.get("ph") == "b"]
    flows = [e for e in events if e.get("ph") == "s"]
    if span_begins:
        names = sorted({e["name"].split(" ")[0] for e in span_begins})
        print(f"\ncausal spans: {len(span_begins)} spans, {len(flows)} flow arrows "
              f"({', '.join(names)})")
        print("In Perfetto the arrows point from each scheduler decision to "
              "the plan request and search chains it caused.")
    else:
        print("\ncausal spans: none recorded (REPRO_TRACING=off)")

    # --- 5. The decision-provenance ledger. ------------------------------ #
    if report.provenance_path is None:
        print("provenance: skipped (REPRO_TRACING=off)")
    else:
        from repro.obs import load_provenance

        provenance = load_provenance(report.provenance_path)
        kinds: dict = {}
        for event in provenance:
            kinds[event["kind"]] = kinds.get(event["kind"], 0) + 1
        summary = ", ".join(f"{kind}: {count}" for kind, count in sorted(kinds.items()))
        print(f"\nprovenance ledger: {len(provenance)} events -> "
              f"{report.provenance_path} ({summary})")

    # --- 6. The run report CLI over the whole directory. ----------------- #
    rendered = render_report(out_dir, top_k=5)
    print(f"\nrun report (python -m repro.obs.report {out_dir}):\n")
    print(rendered)


if __name__ == "__main__":
    main()
