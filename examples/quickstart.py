#!/usr/bin/env python3
"""Quickstart: search an execution plan for PPO and compare it to the heuristic.

This is the 5-minute tour of the library: declare the RLHF experiment (model
sizes, batch, cluster), let the execution plan generator search for a fast
plan, and deploy both the searched plan and the Megatron-style heuristic on
the simulated cluster to compare their throughput.

Run with::

    python examples/quickstart.py [--gpus 16] [--actor 7b] [--critic 7b]
"""

from __future__ import annotations

import argparse

from repro.algorithms import build_ppo_graph
from repro.baselines import build_heuristic_plan
from repro.cluster import make_cluster
from repro.core import MCMCSearcher, RuntimeEstimator, SearchConfig, instructgpt_workload
from repro.experiments import petaflops_per_second
from repro.runtime import RuntimeEngine


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--gpus", type=int, default=16, help="cluster size (multiple of 8)")
    parser.add_argument("--actor", default="7b", choices=["7b", "13b", "34b", "70b"])
    parser.add_argument("--critic", default="7b", choices=["7b", "13b"])
    parser.add_argument("--batch-size", type=int, default=None, help="prompts per iteration")
    parser.add_argument("--search-seconds", type=float, default=20.0)
    args = parser.parse_args()

    batch_size = args.batch_size or args.gpus * 32

    # 1. Describe the experiment: the PPO dataflow graph, the InstructGPT-style
    #    workload and the cluster.
    graph = build_ppo_graph()
    workload = instructgpt_workload(args.actor, args.critic, batch_size=batch_size)
    cluster = make_cluster(args.gpus)
    print(f"Experiment: {args.actor} actor + {args.critic} critic, "
          f"batch {batch_size}, {args.gpus} GPUs\n")

    # 2. Search for an execution plan (seeded with the Megatron heuristic).
    heuristic = build_heuristic_plan(graph, workload, cluster)
    searcher = MCMCSearcher(
        graph, workload, cluster,
        config=SearchConfig(max_iterations=4000, time_budget_s=args.search_seconds, seed=0),
        seed_plans=[heuristic],
    )
    result = searcher.search()
    print(f"Searched {result.n_iterations} plans in {result.elapsed_seconds:.1f}s "
          f"(space of {result.search_space:.2e} plans)")
    print(result.best_plan.describe(graph))
    print()

    # 3. Deploy both plans on the simulated cluster and compare.
    engine = RuntimeEngine(cluster, workload)
    estimator = RuntimeEstimator(graph, workload, cluster)
    for name, plan in [("ReaL (searched)", result.best_plan), ("ReaL-Heuristic", heuristic)]:
        trace = engine.run_iteration(graph, plan)
        pflops = petaflops_per_second(workload, graph, trace.total_seconds)
        fractions = trace.gpu_time_fractions()
        print(f"{name:<18s} {trace.total_seconds:7.1f} s/iter  {pflops:6.2f} PFLOP/s  "
              f"(estimated {estimator.time_cost(plan).total_seconds:.1f} s, "
              f"compute share {fractions['compute']:.0%})")

    heuristic_time = engine.run_iteration(graph, heuristic).total_seconds
    searched_time = engine.run_iteration(graph, result.best_plan).total_seconds
    print(f"\nSpeedup of the searched plan over the heuristic: "
          f"{heuristic_time / searched_time:.2f}x")


if __name__ == "__main__":
    main()
