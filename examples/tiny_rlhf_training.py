#!/usr/bin/env python3
"""Functional RLHF on the tiny NumPy transformer: PPO, DPO, GRPO and ReMax.

The planning stack treats models analytically; this example exercises the
*numerics* of the four RLHF algorithms end-to-end on a synthetic task.  The
scripted reward pays for emitting a target token, so a learning curve that
rises over iterations demonstrates that each algorithm's dataflow (the same
DAGs the planner schedules) is functionally correct.

Run with::

    python examples/tiny_rlhf_training.py [--iterations 15]
"""

from __future__ import annotations

import argparse

from repro.rlhf import (
    DPOTrainer,
    GRPOTrainer,
    PPOConfig,
    PPOTrainer,
    ReMaxTrainer,
    RLHFTask,
)


def sparkline(values, width: int = 24) -> str:
    """Render a tiny text sparkline of a learning curve."""
    blocks = "▁▂▃▄▅▆▇█"
    if not values:
        return ""
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    if len(values) <= width:
        picks = list(values)
    else:
        picks = [values[int(i * (len(values) - 1) / (width - 1))] for i in range(width)]
    return "".join(blocks[int((v - lo) / span * (len(blocks) - 1))] for v in picks)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--iterations", type=int, default=15)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    task = RLHFTask(vocab_size=10, prompt_len=2, gen_len=4, batch_size=24,
                    target_token=3, seed=args.seed)
    trainers = {
        "PPO": PPOTrainer(task, PPOConfig(n_minibatches=2, learning_rate=8e-3, kl_coef=0.02),
                          seed=args.seed),
        "ReMax": ReMaxTrainer(task, lr=8e-3, seed=args.seed),
        "GRPO": GRPOTrainer(RLHFTask(vocab_size=10, prompt_len=2, gen_len=4, batch_size=8,
                                     target_token=3, seed=args.seed),
                            group_size=4, lr=8e-3, seed=args.seed),
        "DPO": DPOTrainer(task, beta=0.5, lr=5e-3, seed=args.seed),
    }

    print(f"Task: emit token {task.target_token} (reward = fraction of target tokens), "
          f"{args.iterations} iterations\n")
    for name, trainer in trainers.items():
        stats = trainer.train(args.iterations)
        rewards = [s.mean_reward for s in stats]
        print(f"{name:<6s} reward {rewards[0]:.2f} -> {rewards[-1]:.2f}   {sparkline(rewards)}")

    print("\nEach algorithm runs the same model-function-call dataflow that the\n"
          "execution-plan generator schedules at scale (Figure 4 / Figure 16).")


if __name__ == "__main__":
    main()
