"""Integration tests: causal trace + provenance + the explain-run report CLI.

One swap-forcing scheduler run (tiny admission budget, generous online
budget — the recipe from ``test_sched_online``) produces the full artifact
family in a temp directory; the tests then hold the run to the PR's
acceptance contract:

* the merged Chrome trace contains async span events and flow arrows
  linking a placement decision → its PlanService request → a search chain,
  and the swap-accept instant back to the session poll that produced the
  winning plan, with ``validate_chrome_events`` passing;
* the ``PROVENANCE_*.jsonl`` ledger names every swap (accept and reject)
  with its margin arithmetic and every job's plan lineage;
* ``python -m repro.obs.report`` renders all of it, and fails with a
  nonzero exit on malformed provenance.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cluster import make_cluster
from repro.core import SearchConfig
from repro.obs import (
    MetricsRegistry,
    ProvenanceLedger,
    Tracer,
    load_provenance,
    set_ledger,
    set_registry,
    set_tracer,
)
from repro.obs.report import discover_runs, main, render_report
from repro.sched import ClusterScheduler, JobSpec, SchedulerConfig
from repro.sim import load_chrome_trace, validate_chrome_events


def _swap_forcing_run(out_dir: Path):
    """The deterministic swap-forcing recipe from ``test_sched_online``."""
    jobs = [
        JobSpec(
            name=f"job-{i}",
            algorithm="grpo" if i % 2 else "ppo",
            batch_size=128,
            arrival_time=40.0 * i,
            target_iterations=25,
            min_gpus=8,
            max_gpus=8,
        )
        for i in range(2)
    ]
    config = SchedulerConfig(
        search=SearchConfig(
            max_iterations=20, time_budget_s=1.0, seed=0, record_history=False
        ),
        elastic=False,
        online_replanning=True,
        online_search=SearchConfig(
            max_iterations=600, time_budget_s=30.0, seed=0, record_history=False
        ),
        poll_interval_s=15.0,
        poll_iterations=150,
        swap_margin=1.0,
    )
    scheduler = ClusterScheduler(
        cluster=make_cluster(16),
        jobs=jobs,
        config=config,
        trace_path=str(out_dir / "TRACE_online.json"),
    )
    return scheduler.run()


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    """One traced, provenance'd scheduler run shared by every test here."""
    out_dir = tmp_path_factory.mktemp("obs_run")
    prev_tracer = set_tracer(Tracer(enabled=True))
    prev_ledger = set_ledger(ProvenanceLedger(enabled=True))
    prev_registry = set_registry(MetricsRegistry(enabled=True))
    try:
        report = _swap_forcing_run(out_dir)
    finally:
        set_tracer(prev_tracer)
        set_ledger(prev_ledger)
        set_registry(prev_registry)
    assert report.all_completed
    assert report.n_swaps >= 1, "recipe failed to force a swap"
    return out_dir, report


def _span_tree(events):
    """Map span_id -> (name, parent_id) straight from the async begin args."""
    tree = {}
    for event in events:
        if event.get("ph") == "b":
            args = event.get("args", {})
            tree[args["span_id"]] = (event["name"], args.get("parent_id"))
    return tree


def _ancestry(tree, span_id):
    names = []
    while span_id is not None:
        name, parent = tree[span_id]
        names.append(name)
        span_id = parent
    return names


class TestCausalTrace:
    def test_trace_validates_with_spans_and_flows(self, traced_run):
        out_dir, report = traced_run
        events = load_chrome_trace(report.trace_path)
        validate_chrome_events(events)
        phases = {e["ph"] for e in events}
        assert {"b", "e", "s", "f"} <= phases
        assert len([e for e in events if e["ph"] == "b"]) == len(
            [e for e in events if e["ph"] == "e"]
        )

    def test_placement_decision_links_to_search_chain(self, traced_run):
        """Flow: decision wave -> plan request -> search -> chain slice."""
        out_dir, report = traced_run
        tree = _span_tree(load_chrome_trace(report.trace_path))
        chains = [
            _ancestry(tree, span_id)
            for span_id, (name, _) in tree.items()
            if name.startswith("chain ")
        ]
        assert any(
            ancestry[1:4] == ["search", "plan request", "decision wave"]
            for ancestry in chains
        ), f"no admission chain rooted in a decision wave: {chains}"

    def test_swap_links_back_to_winning_poll(self, traced_run):
        """The accepted swap is grafted under the session poll that won."""
        out_dir, report = traced_run
        events = load_chrome_trace(report.trace_path)
        tree = _span_tree(events)
        swaps = [
            _ancestry(tree, span_id)
            for span_id, (name, _) in tree.items()
            if name == "plan swap"
        ]
        assert len(swaps) == report.n_swaps
        assert all(ancestry[1] == "session poll" for ancestry in swaps)
        # The online chains hang under polls too.
        assert any(
            ancestry[:2] == ["chain 0", "session poll"]
            for ancestry in (
                _ancestry(tree, s) for s, (n, _) in tree.items() if n.startswith("chain ")
            )
        )
        # Swap instants on the cluster timeline match the report.
        instants = [e for e in events if e.get("ph") == "i" and e.get("cat") == "swap"]
        assert len(instants) == report.n_swaps


class TestProvenanceLedgerFile:
    def test_provenance_lands_next_to_trace(self, traced_run):
        out_dir, report = traced_run
        assert report.provenance_path == str(out_dir / "PROVENANCE_TRACE_online.jsonl")
        assert "provenance_path" in report.to_dict()

    def test_every_decision_kind_is_recorded(self, traced_run):
        out_dir, report = traced_run
        events = load_provenance(report.provenance_path)
        kinds = {e["kind"] for e in events}
        assert {"decision_wave", "placement", "plan_request", "swap"} <= kinds

    def test_swaps_carry_full_margin_arithmetic(self, traced_run):
        out_dir, report = traced_run
        swaps = [
            e for e in load_provenance(report.provenance_path) if e["kind"] == "swap"
        ]
        taken = [e for e in swaps if e["outcome"] == "taken"]
        assert len(taken) == report.n_swaps
        for event in swaps:
            for field in ("job", "planned", "cost", "switch", "remaining",
                          "effective", "ratio", "threshold"):
                assert field in event, f"swap event misses {field}: {event}"
            assert event["effective"] == pytest.approx(
                event["cost"] + event["switch"] / event["remaining"]
            )
            assert event["ratio"] == pytest.approx(
                event["planned"] / event["effective"]
            )
            if event["outcome"] == "taken":
                assert event["ratio"] >= event["threshold"]
                assert "saved" in event
            else:
                assert event["ratio"] < event["threshold"]

    def test_every_job_has_a_lineage(self, traced_run):
        out_dir, report = traced_run
        placements = [
            e for e in load_provenance(report.provenance_path)
            if e["kind"] == "placement"
        ]
        assert {e["job"] for e in placements} == {"job-0", "job-1"}
        for event in placements:
            assert event["lineage"] in ("cold", "warm", "hit", "dedup")
            assert event["fingerprint"]


class TestReportCLI:
    def test_render_names_every_swap_and_lineage(self, traced_run):
        out_dir, report = traced_run
        text = render_report(out_dir)
        assert "== run TRACE_online ==" in text
        assert "-- swap ledger --" in text
        swaps = load_provenance(report.provenance_path)
        swaps = [e for e in swaps if e["kind"] == "swap"]
        swap_lines = [l for l in text.splitlines() if "ACCEPTED" in l or "rejected" in l]
        assert len(swap_lines) == len(swaps)
        for line in swap_lines:
            for token in ("planned", "candidate", "switch", "effective",
                          "ratio", "margin"):
                assert token in line
        assert text.count("ACCEPTED") == report.n_swaps
        assert "-- plan lineage --" in text
        for job in ("job-0", "job-1"):
            assert any(job in l for l in text.splitlines() if "→" in l)
        assert "plan requests —" in text
        assert "-- timeline --" in text
        assert "-- metrics snapshot --" in text
        assert "schema version 2" in text

    def test_main_exit_codes(self, traced_run, tmp_path, capsys):
        out_dir, _report = traced_run
        assert main([str(out_dir)]) == 0
        out = capsys.readouterr().out
        assert "swap ledger" in out
        # --out writes the rendered report to a file (the CI artifact path).
        target = tmp_path / "report.txt"
        assert main([str(out_dir), "--out", str(target)]) == 0
        assert "swap ledger" in target.read_text()
        # Not a directory / empty directory both fail cleanly.
        assert main([str(tmp_path / "missing")]) == 2
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main([str(empty)]) == 2

    def test_malformed_provenance_fails_the_run(self, tmp_path, capsys):
        (tmp_path / "TRACE_x.json").write_text(json.dumps({"traceEvents": []}))
        (tmp_path / "PROVENANCE_TRACE_x.jsonl").write_text('{"kind": "ok"}\ngarbage\n')
        assert main([str(tmp_path)]) == 2
        assert "malformed provenance" in capsys.readouterr().err


class TestDiscovery:
    def test_discover_groups_sibling_artifacts(self, tmp_path):
        (tmp_path / "TRACE_a.json").write_text("{}")
        (tmp_path / "METRICS_TRACE_a.json").write_text("{}")
        (tmp_path / "PROVENANCE_TRACE_a.jsonl").write_text("")
        (tmp_path / "PROVENANCE_TRACE_b.jsonl").write_text("")
        runs = discover_runs(tmp_path)
        by_stem = {run["stem"]: run for run in runs}
        assert set(by_stem) == {"TRACE_a", "TRACE_b"}
        a = by_stem["TRACE_a"]
        assert a["trace"].name == "TRACE_a.json"
        assert a["metrics"].name == "METRICS_TRACE_a.json"
        assert a["provenance"].name == "PROVENANCE_TRACE_a.jsonl"
        # Provenance without a trace still becomes a (trace-less) run.
        assert by_stem["TRACE_b"]["trace"] is None
