"""Golden-trace regression tests for the ``repro.sim`` kernel refactor.

The fixtures under ``tests/fixtures/`` were captured from the simulators
*before* they were rebuilt on the shared kernel (see
``tests/fixtures/make_golden.py``):

* The runtime engine must reproduce its golden :class:`IterationTrace`
  outputs **bit-identically** — floats compared with ``==`` at full
  precision — on the Figure 11/12 setups (PPO and GRPO, symmetric and
  heterogeneous plans).
* The cluster scheduler's progress model intentionally improved (engine-
  derived per-iteration times instead of the estimator scalar, iteration-
  granular progress, real parameter-migration costs), so its golden
  :class:`ScheduleReport` is asserted within a documented tolerance and the
  direction of every intentional delta is checked explicitly.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

FIXTURES = Path(__file__).resolve().parent / "fixtures"
sys.path.insert(0, str(FIXTURES))

from make_golden import (  # noqa: E402  (fixture helpers double as regeneration script)
    engine_scenarios,
    schedule_scenarios,
)


def _load(name: str) -> dict:
    with (FIXTURES / name).open() as handle:
        return json.load(handle)


class TestEngineBitIdentical:
    """The kernel-based engine reproduces the pre-refactor traces exactly."""

    @pytest.fixture(scope="class")
    def current(self):
        return dict(engine_scenarios())

    @pytest.mark.parametrize(
        "scenario", ["ppo_symmetric", "ppo_heterogeneous", "grpo_symmetric"]
    )
    def test_trace_bit_identical(self, current, scenario):
        golden = _load(f"golden_engine_{scenario}.json")
        fresh = current[scenario]
        # Bit-identical: every float in the trace payload must round-trip
        # to exactly the recorded value — json.dumps uses repr precision.
        assert json.loads(json.dumps(fresh["trace"])) == golden["trace"]
        assert (
            fresh["throughput"]["seconds_per_iteration"]
            == golden["throughput"]["seconds_per_iteration"]
        )

    def test_plan_payloads_match(self, current):
        for scenario in ("ppo_symmetric", "ppo_heterogeneous", "grpo_symmetric"):
            golden = _load(f"golden_engine_{scenario}.json")
            assert current[scenario]["plan"] == golden["plan"]


class TestSchedulerWithinTolerance:
    """The trace-driven scheduler matches the goldens up to the documented,
    intentional progress-model improvements."""

    #: Relative tolerance on makespan and per-job completion times.  The old
    #: model advanced jobs at the estimator's seconds/iteration; the new one
    #: advances at the engine-simulated pace, which deliberately differs by
    #: a few percent (dispatch overheads, exact broadcast schedules).
    RELATIVE_TOLERANCE = 0.10

    @pytest.fixture(scope="class")
    def current(self):
        return dict(schedule_scenarios())

    @pytest.mark.parametrize("scenario", ["clean", "failure"])
    def test_structure_identical(self, current, scenario):
        golden = _load(f"golden_schedule_{scenario}.json")
        fresh = current[scenario]
        # Decision-level behaviour is unchanged: same event sequence, same
        # iteration counts, same replan/preemption/resize counters.
        assert fresh["timeline_events"] == golden["timeline_events"]
        assert fresh["total_iterations"] == golden["total_iterations"]
        assert fresh["n_replans"] == golden["n_replans"]
        assert fresh["n_preemptions"] == golden["n_preemptions"]
        assert fresh["n_resizes"] == golden["n_resizes"]
        for name, job in fresh["jobs"].items():
            assert job["phase"] == golden["jobs"][name]["phase"]
            assert job["iterations"] == golden["jobs"][name]["iterations"]
            assert job["first_started_at"] == pytest.approx(
                golden["jobs"][name]["first_started_at"]
            )

    @pytest.mark.parametrize("scenario", ["clean", "failure"])
    def test_times_within_tolerance(self, current, scenario):
        golden = _load(f"golden_schedule_{scenario}.json")
        fresh = current[scenario]
        assert fresh["makespan"] == pytest.approx(
            golden["makespan"], rel=self.RELATIVE_TOLERANCE
        )
        assert fresh["busy_horizon"] == pytest.approx(
            golden["busy_horizon"], rel=self.RELATIVE_TOLERANCE
        )
        for name, job in fresh["jobs"].items():
            assert job["completed_at"] == pytest.approx(
                golden["jobs"][name]["completed_at"], rel=self.RELATIVE_TOLERANCE
            )
            assert job["gpu_seconds"] == pytest.approx(
                golden["jobs"][name]["gpu_seconds"], rel=self.RELATIVE_TOLERANCE
            )

    def test_failure_delta_is_the_documented_improvement(self, current):
        """The displaced job finishes *later* than the fractional model said.

        Two intentional changes push its completion out: (1) progress is
        iteration-granular, so the iteration in flight when node 0 failed is
        lost instead of fractionally banked, and (2) the re-placement after
        a failure pays a real parameter reload
        (:class:`repro.sched.profiles.MigrationCostModel`).  Together these
        add at most ~one iteration period plus the reload, and its billed
        GPU time grows by exactly the redone work.
        """
        golden = _load("golden_schedule_failure.json")["jobs"]["ppo-a"]
        fresh = current["failure"]["jobs"]["ppo-a"]
        delta = fresh["completed_at"] - golden["completed_at"]
        iter_seconds = fresh["completed_at"] and (
            # Engine pace of the job: recover it from the clean scenario,
            # where ppo-a runs 6 uninterrupted iterations from t=0.
            current["clean"]["jobs"]["ppo-a"]["completed_at"] / 6.0
        )
        assert delta >= -1e-6, "iteration-granular progress cannot finish earlier"
        assert delta <= 1.5 * iter_seconds + 1.0, (
            "losing one in-flight iteration plus a parameter reload bounds the delta"
        )
        assert fresh["gpu_seconds"] >= golden["gpu_seconds"] - 1e-6
