"""Unit and property tests for the communication cost models."""

import pytest
from hypothesis import given, strategies as st

from repro.cluster import CommModel, make_cluster


@pytest.fixture(scope="module")
def comm():
    return CommModel(make_cluster(16))


class TestP2P:
    def test_zero_bytes_free(self, comm):
        assert comm.p2p_time(0, 0, 5) == 0.0

    def test_same_gpu_free(self, comm):
        assert comm.p2p_time(1e9, 3, 3) == 0.0

    def test_cross_node_slower_than_intra(self, comm):
        intra = comm.p2p_time(1e9, 0, 1)
        cross = comm.p2p_time(1e9, 0, 8)
        assert cross > intra

    def test_negative_bytes_rejected(self, comm):
        with pytest.raises(ValueError):
            comm.p2p_time(-1, 0, 1)

    def test_host_device_time_positive(self, comm):
        assert comm.host_device_time(1e9) > 0
        assert comm.host_device_time(0) == 0.0


class TestCollectives:
    def test_allreduce_single_rank_free(self, comm):
        assert comm.allreduce_time(1e9, 1, cross_node=False) == 0.0

    def test_allreduce_monotone_in_bytes(self, comm):
        small = comm.allreduce_time(1e6, 8, cross_node=False)
        large = comm.allreduce_time(1e9, 8, cross_node=False)
        assert large > small

    def test_allreduce_cross_node_slower(self, comm):
        intra = comm.allreduce_time(1e9, 8, cross_node=False)
        cross = comm.allreduce_time(1e9, 8, cross_node=True)
        assert cross > intra

    def test_allreduce_is_about_twice_reduce_scatter(self, comm):
        ar = comm.allreduce_time(1e9, 8, cross_node=False)
        rs = comm.reduce_scatter_time(1e9, 8, cross_node=False)
        assert ar == pytest.approx(2 * rs, rel=0.2)

    def test_allgather_equals_reduce_scatter(self, comm):
        assert comm.allgather_time(1e8, 4, False) == comm.reduce_scatter_time(1e8, 4, False)

    def test_broadcast_zero_destinations_free(self, comm):
        assert comm.broadcast_time(1e9, 0, cross_node=False) == 0.0

    def test_broadcast_group_skips_self(self, comm):
        assert comm.broadcast_group_time(1e9, 0, (0,)) == 0.0
        assert comm.broadcast_group_time(1e9, 0, (0, 1)) > 0.0

    def test_group_crosses_nodes(self, comm):
        cluster = comm.cluster
        assert not CommModel.group_crosses_nodes([0, 1, 7], cluster)
        assert CommModel.group_crosses_nodes([0, 8], cluster)

    def test_mesh_allreduce_crosses_when_wider_than_node(self, comm):
        from repro.cluster import full_cluster_mesh

        mesh = full_cluster_mesh(comm.cluster)
        within = comm.mesh_allreduce_time(1e9, mesh, group_size=8)
        across = comm.mesh_allreduce_time(1e9, mesh, group_size=16)
        assert across > within


@given(nbytes=st.floats(min_value=1.0, max_value=1e12), n=st.integers(min_value=2, max_value=64))
def test_allreduce_always_positive(nbytes, n):
    """Property: any non-trivial all-reduce has a strictly positive cost."""
    comm = CommModel(make_cluster(64))
    assert comm.allreduce_time(nbytes, n, cross_node=True) > 0


@given(
    nbytes=st.floats(min_value=1.0, max_value=1e11),
    n_small=st.integers(min_value=2, max_value=8),
    extra=st.integers(min_value=1, max_value=56),
)
def test_allreduce_monotone_in_participants(nbytes, n_small, extra):
    """Property: adding participants never makes a cross-node all-reduce cheaper."""
    comm = CommModel(make_cluster(64))
    small = comm.allreduce_time(nbytes, n_small, cross_node=True)
    large = comm.allreduce_time(nbytes, n_small + extra, cross_node=True)
    assert large >= small
