"""Tests for process-parallel plan search and the core-budget governor.

The headline invariant of :mod:`repro.core.parallel_search` is that parallel
and sequential chain execution are *bit-identical* for the same seeds: the
execution mode may change wall-clock time, never results.  These tests pin
that property (for PPO and GRPO, over several seeds), the picklability of the
chain work units, the governor's accounting, the new timing fields of
``SearchResult`` and the bounded estimator eval cache.
"""

import pickle

import pytest

from repro.algorithms import build_grpo_graph, build_ppo_graph
from repro.cluster import make_cluster
from repro.core import (
    CoreBudget,
    MCMCSearcher,
    RuntimeEstimator,
    SearchConfig,
    allocation_options,
    instructgpt_workload,
)
from repro.core.parallel_search import (
    ChainProblem,
    ChainSpec,
    ParallelSearchRunner,
    _init_chain_worker,
    _run_chain_in_worker,
)


@pytest.fixture(scope="module")
def cluster8():
    return make_cluster(8)


@pytest.fixture(scope="module")
def workload_small():
    return instructgpt_workload("7b", "7b", batch_size=64)


def _graph(algorithm: str):
    return build_ppo_graph() if algorithm == "ppo" else build_grpo_graph()


def _search(graph, workload, cluster, config, **kwargs):
    return MCMCSearcher(graph, workload, cluster, config=config, **kwargs).search()


class TestCoreBudget:
    def test_acquire_grants_up_to_available(self):
        budget = CoreBudget(total=4)
        assert budget.acquire(3) == 3
        assert budget.in_use == 3
        assert budget.acquire(3) == 1  # only one core left
        assert budget.available == 0

    def test_minimum_blocks_partial_grants(self):
        budget = CoreBudget(total=4)
        assert budget.acquire(3, minimum=2) == 3
        # One core free: a minimum of two must yield nothing at all.
        assert budget.acquire(2, minimum=2) == 0
        assert budget.in_use == 3

    def test_release_and_lease(self):
        budget = CoreBudget(total=2)
        with budget.lease(2) as granted:
            assert granted == 2
            assert budget.available == 0
        assert budget.available == 2
        # Release never drives usage negative.
        budget.release(5)
        assert budget.in_use == 0

    def test_zero_and_negative_requests(self):
        budget = CoreBudget(total=2)
        assert budget.acquire(0) == 0
        assert budget.acquire(-3) == 0
        assert budget.in_use == 0

    def test_invalid_total_rejected(self):
        with pytest.raises(ValueError):
            CoreBudget(total=0)


class TestChainPickling:
    def test_chain_spec_and_problem_round_trip(self, cluster8, workload_small):
        graph = build_ppo_graph()
        options = allocation_options(graph, workload_small, cluster8)
        config = SearchConfig(max_iterations=10, seed=3, n_chains=2)
        searcher = MCMCSearcher(
            graph, workload_small, cluster8, options=options, config=config
        )
        start = searcher.greedy_initial_plan()
        problem = ChainProblem(
            graph=graph,
            workload=workload_small,
            cluster=cluster8,
            options=options,
            config=config,
            start_assignments=dict(start.assignments),
            start_plan_name=start.name,
            start_cost=1.25,
        )
        spec = ChainSpec(chain=1, max_iterations=10)
        revived_spec = pickle.loads(pickle.dumps(spec))
        assert revived_spec == spec
        revived = pickle.loads(pickle.dumps(problem))
        assert revived.start_cost == problem.start_cost
        assert revived.start_plan().to_dict() == start.to_dict()
        assert list(revived.options) == list(options)
        assert all(
            len(revived.options[name]) == len(options[name]) for name in options
        )
        # The revived problem rebuilds a working searcher.
        rebuilt = revived.build_searcher()
        assert rebuilt.graph.call_names == graph.call_names

    def test_worker_entrypoints_match_in_process_chain(self, cluster8, workload_small):
        graph = build_ppo_graph()
        options = allocation_options(graph, workload_small, cluster8)
        config = SearchConfig(max_iterations=60, time_budget_s=30, seed=11, n_chains=2)
        searcher = MCMCSearcher(
            graph, workload_small, cluster8, options=options, config=config
        )
        start = searcher.greedy_initial_plan()
        start_cost = searcher.estimator.cost(start, config.oom_penalty)
        problem = ChainProblem(
            graph=graph,
            workload=workload_small,
            cluster=cluster8,
            options=options,
            config=config,
            start_assignments=dict(start.assignments),
            start_plan_name=start.name,
            start_cost=start_cost,
        )
        # Simulate the worker lifecycle in-process, through a pickle boundary.
        _init_chain_worker(pickle.loads(pickle.dumps(problem)))
        worker_result = _run_chain_in_worker(ChainSpec(chain=1, max_iterations=30))
        local_result = searcher.run_chain(1, start, start_cost, 30)
        assert worker_result.best_cost == local_result.best_cost
        assert worker_result.n_iterations == local_result.n_iterations
        assert worker_result.n_accepted == local_result.n_accepted
        assert worker_result.best_plan.to_dict() == local_result.best_plan.to_dict()


class TestParallelDeterminism:
    @pytest.mark.parametrize("algorithm", ["ppo", "grpo"])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_parallel_equals_sequential(self, algorithm, seed, cluster8, workload_small):
        """Property: for any (algorithm, seed), chains executed on worker
        processes produce the same best plan/cost as in-process chains."""
        graph = _graph(algorithm)
        options = allocation_options(graph, workload_small, cluster8)
        base = SearchConfig(
            max_iterations=160, time_budget_s=60, seed=seed, n_chains=2, parallel="off"
        )
        sequential = _search(graph, workload_small, cluster8, base, options=options)
        import dataclasses

        forced = dataclasses.replace(base, parallel="process")
        parallel = _search(graph, workload_small, cluster8, forced, options=options)
        if parallel.execution_mode != "process":
            pytest.skip("no process pool available in this environment")
        assert parallel.best_cost == sequential.best_cost
        assert parallel.best_plan.to_dict() == sequential.best_plan.to_dict()
        assert parallel.n_iterations == sequential.n_iterations
        assert parallel.n_accepted == sequential.n_accepted
        # Merged histories agree on everything except wall-clock samples.
        assert [(i, c) for i, _, c in parallel.history] == [
            (i, c) for i, _, c in sequential.history
        ]

    def test_single_chain_matches_pre_parallel_stream(self, cluster8, workload_small):
        # Chain 0 must keep the classic single-chain RNG stream: two fresh
        # searchers with the same seed agree regardless of execution mode.
        graph = build_ppo_graph()
        config = SearchConfig(max_iterations=120, time_budget_s=60, seed=4)
        r1 = _search(graph, workload_small, cluster8, config)
        r2 = _search(graph, workload_small, cluster8, config)
        assert r1.best_cost == r2.best_cost
        assert r1.execution_mode == "sequential"  # n_chains=1 never forks


class TestExecutionModeSelection:
    def test_auto_stays_sequential_for_tiny_budgets(self, cluster8, workload_small):
        graph = build_ppo_graph()
        config = SearchConfig(
            max_iterations=50, time_budget_s=0.2, seed=0, n_chains=4, parallel="auto"
        )
        result = _search(graph, workload_small, cluster8, config)
        assert result.execution_mode == "sequential"
        assert result.n_workers == 1

    def test_auto_respects_core_budget_governor(self, cluster8, workload_small):
        graph = build_ppo_graph()
        # A big-enough search, but the governor has no spare cores to grant.
        starved = CoreBudget(total=1)
        config = SearchConfig(
            max_iterations=100_000, time_budget_s=5.0, seed=0, n_chains=4,
            parallel="auto",
        )
        searcher = MCMCSearcher(
            graph, workload_small, cluster8, config=config, core_budget=starved
        )
        runner = ParallelSearchRunner(core_budget=starved)
        specs = searcher._chain_specs(4)
        start = searcher.greedy_initial_plan()
        start_cost = searcher.estimator.cost(start, config.oom_penalty)
        assert runner.run(searcher, specs, start, start_cost) is None
        assert starved.in_use == 0  # nothing leaked

    def test_off_mode_never_forks(self, cluster8, workload_small):
        graph = build_ppo_graph()
        config = SearchConfig(
            max_iterations=40, time_budget_s=30, seed=2, n_chains=3, parallel="off"
        )
        result = _search(graph, workload_small, cluster8, config)
        assert result.execution_mode == "sequential"

    def test_invalid_parallel_mode_rejected(self):
        with pytest.raises(ValueError):
            SearchConfig(parallel="threads")

    def test_custom_estimator_subclass_never_forks(self, cluster8, workload_small):
        # Workers rebuild a plain RuntimeEstimator from shipped config; a
        # custom subclass cannot be reproduced that way, so its searches must
        # stay in-process even when parallelism is forced.
        class TweakedEstimator(RuntimeEstimator):
            pass

        graph = build_ppo_graph()
        config = SearchConfig(
            max_iterations=40, time_budget_s=30, seed=0, n_chains=2, parallel="process"
        )
        result = MCMCSearcher(
            graph, workload_small, cluster8,
            estimator=TweakedEstimator(graph, workload_small, cluster8),
            config=config,
        ).search()
        assert result.execution_mode == "sequential"

    def test_estimator_config_ships_to_workers(self, cluster8, workload_small):
        # A non-default estimator configuration (cross_check) must reach the
        # worker-side estimator, not be silently reset to defaults.
        graph = build_ppo_graph()
        options = allocation_options(graph, workload_small, cluster8)
        estimator = RuntimeEstimator(graph, workload_small, cluster8, cross_check=True)
        config = SearchConfig(max_iterations=10, seed=0, n_chains=2)
        searcher = MCMCSearcher(
            graph, workload_small, cluster8, estimator=estimator,
            options=options, config=config,
        )
        start = searcher.greedy_initial_plan()
        runner_problem = ChainProblem(
            graph=graph, workload=workload_small, cluster=cluster8,
            options=options, config=config,
            start_assignments=dict(start.assignments),
            start_plan_name=start.name, start_cost=1.0,
            profiles=estimator.profiles,
            use_cuda_graph=estimator.use_cuda_graph,
            use_cache=estimator.use_cache,
            cross_check=estimator.cross_check,
        )
        rebuilt = pickle.loads(pickle.dumps(runner_problem)).build_searcher()
        assert rebuilt.estimator.cross_check is True
        assert rebuilt.estimator.use_cache is True

    def test_governor_released_after_forced_run(self, cluster8, workload_small):
        graph = build_ppo_graph()
        budget = CoreBudget(total=2)
        config = SearchConfig(
            max_iterations=40, time_budget_s=30, seed=1, n_chains=2, parallel="process"
        )
        result = MCMCSearcher(
            graph, workload_small, cluster8, config=config, core_budget=budget
        ).search()
        assert budget.in_use == 0
        if result.execution_mode == "process":
            assert result.n_workers == 2


class TestSearchResultTimings:
    def test_sequential_timing_fields(self, cluster8, workload_small):
        graph = build_ppo_graph()
        config = SearchConfig(max_iterations=90, time_budget_s=30, seed=0, n_chains=3,
                              parallel="off")
        result = _search(graph, workload_small, cluster8, config)
        assert len(result.chain_wall_seconds) == 3
        assert len(result.chain_cpu_seconds) == 3
        assert result.cpu_seconds == pytest.approx(sum(result.chain_cpu_seconds))
        # True wall clock covers initial-candidate evaluation plus all chains.
        assert result.elapsed_seconds >= max(result.chain_wall_seconds)
        assert result.elapsed_seconds > 0

    def test_parallel_wall_clock_is_not_chain_sum(self, cluster8, workload_small):
        graph = build_ppo_graph()
        config = SearchConfig(
            max_iterations=400, time_budget_s=60, seed=0, n_chains=4, parallel="process"
        )
        result = _search(graph, workload_small, cluster8, config)
        if result.execution_mode != "process":
            pytest.skip("no process pool available in this environment")
        assert len(result.chain_wall_seconds) == 4
        # The aggregate wall time is measured by the caller, not summed from
        # chains: it must be far below the sequential sum plus pool start-up
        # (the old bug reported the chains' sequential timeline).
        assert result.elapsed_seconds < sum(result.chain_wall_seconds) + 60.0
        assert result.parallel_efficiency >= 0.0


class TestEvalCacheLRU:
    def _plans(self, searcher, n):
        """n distinct plans: vary one call's allocation of the greedy plan."""
        base = searcher.greedy_initial_plan()
        call = searcher.graph.call_names[0]
        choices = searcher.options[call]
        assert len(choices) >= n
        return [base.with_assignment(call, choices[i]) for i in range(n)]

    def test_lru_caps_size_and_counts_evictions(self, cluster8, workload_small):
        graph = build_ppo_graph()
        estimator = RuntimeEstimator(graph, workload_small, cluster8, eval_cache_size=2)
        searcher = MCMCSearcher(graph, workload_small, cluster8, estimator=estimator)
        plans = self._plans(searcher, 3)
        for plan in plans:
            estimator.cost(plan)
        stats = estimator.eval_cache_stats
        assert stats.misses == 3
        assert stats.evictions == 1
        assert len(estimator._eval_cache) == 2
        # Re-evaluating the most recent plan hits; the evicted one misses.
        estimator.cost(plans[2])
        assert stats.hits == 1
        estimator.cost(plans[0])
        assert stats.misses == 4
        assert stats.hit_rate == pytest.approx(1 / 5)
        data = stats.to_dict()
        assert data["evictions"] >= 2

    def test_cached_values_identical_after_eviction(self, cluster8, workload_small):
        graph = build_ppo_graph()
        tiny = RuntimeEstimator(graph, workload_small, cluster8, eval_cache_size=1)
        reference = RuntimeEstimator(graph, workload_small, cluster8)
        searcher = MCMCSearcher(graph, workload_small, cluster8, estimator=tiny)
        for plan in self._plans(searcher, 3):
            assert tiny.cost(plan) == reference.cost(plan)

    def test_invalid_capacity_rejected(self, cluster8, workload_small):
        graph = build_ppo_graph()
        with pytest.raises(ValueError):
            RuntimeEstimator(graph, workload_small, cluster8, eval_cache_size=0)


class TestServiceParallelSearch:
    def test_service_counts_parallel_searches(self, cluster8, workload_small):
        from repro.service import PlanRequest, PlanService

        graph = build_ppo_graph()
        with PlanService(max_workers=1, core_budget=CoreBudget(total=8)) as service:
            request = PlanRequest(
                graph=graph,
                workload=workload_small,
                cluster=cluster8,
                search=SearchConfig(
                    max_iterations=80, time_budget_s=30, seed=0, n_chains=2,
                    parallel="process", record_history=False,
                ),
            )
            response = service.plan(request)
            if response.result.execution_mode != "process":
                pytest.skip("no process pool available in this environment")
            assert service.stats.parallel_searches == 1
            assert service.stats.snapshot().to_dict()["parallel_searches"] == 1
