"""Tests for 3D parallelization strategies."""

import pytest
from hypothesis import given, strategies as st

from repro.cluster import make_cluster, full_cluster_mesh
from repro.core import ParallelStrategy, enumerate_strategies, factorize_3d
from repro.model import get_model_config


class TestParallelStrategy:
    def test_world_size(self):
        assert ParallelStrategy(dp=2, tp=4, pp=2).world_size == 16

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            ParallelStrategy(dp=0, tp=1, pp=1)

    def test_model_compatibility_pp_limit(self):
        cfg = get_model_config("7b")  # 32 layers
        assert not ParallelStrategy(dp=1, tp=1, pp=64).is_compatible_with_model(cfg)
        assert ParallelStrategy(dp=1, tp=1, pp=32).is_compatible_with_model(cfg)

    def test_model_compatibility_tp_heads(self):
        cfg = get_model_config("7b")  # 32 heads
        assert ParallelStrategy(dp=1, tp=8, pp=1).is_compatible_with_model(cfg)
        assert not ParallelStrategy(dp=1, tp=3, pp=1).is_compatible_with_model(cfg)

    def test_fits_mesh(self):
        cluster = make_cluster(16)
        mesh = full_cluster_mesh(cluster)
        assert ParallelStrategy(dp=2, tp=8, pp=1).fits_mesh(mesh)
        assert not ParallelStrategy(dp=1, tp=8, pp=1).fits_mesh(mesh)

    def test_tp_crosses_nodes(self):
        cluster = make_cluster(16)
        mesh = full_cluster_mesh(cluster)
        assert not ParallelStrategy(dp=2, tp=8, pp=1).tp_crosses_nodes(mesh)
        assert ParallelStrategy(dp=1, tp=16, pp=1).tp_crosses_nodes(mesh)

    def test_describe(self):
        assert ParallelStrategy(1, 2, 3).describe() == "dp=1 tp=2 pp=3"


class TestFactorization:
    def test_factorize_8(self):
        triples = set(factorize_3d(8))
        assert (8, 1, 1) in triples
        assert (1, 8, 1) in triples
        assert (2, 2, 2) in triples
        assert all(d * t * p == 8 for d, t, p in triples)

    def test_factorize_1(self):
        assert list(factorize_3d(1)) == [(1, 1, 1)]

    def test_factorize_rejects_zero(self):
        with pytest.raises(ValueError):
            list(factorize_3d(0))

    @given(n=st.sampled_from([2, 4, 8, 16, 32, 64]))
    def test_factorizations_cover_product(self, n):
        """Property: every factorization multiplies back to n, no duplicates."""
        triples = list(factorize_3d(n))
        assert len(triples) == len(set(triples))
        assert all(d * t * p == n for d, t, p in triples)


class TestEnumeration:
    def test_enumerate_respects_world_size(self):
        for strategy in enumerate_strategies(16):
            assert strategy.world_size == 16

    def test_enumerate_with_max_tp(self):
        strategies = enumerate_strategies(64, max_tp=8)
        assert all(s.tp <= 8 for s in strategies)
        assert strategies  # non-empty

    def test_enumerate_with_model_filter(self):
        cfg = get_model_config("7b")
        strategies = enumerate_strategies(64, config=cfg)
        assert all(s.is_compatible_with_model(cfg) for s in strategies)

    def test_enumerate_with_max_pp(self):
        strategies = enumerate_strategies(32, max_pp=4)
        assert all(s.pp <= 4 for s in strategies)
