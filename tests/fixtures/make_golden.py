"""Regenerate the golden trace fixtures used by ``tests/test_golden_traces.py``.

The fixtures pin the observable outputs of the two discrete-event simulators
*before* they were rebuilt on the shared :mod:`repro.sim` kernel:

* ``golden_engine_<scenario>.json`` — full :class:`IterationTrace` dumps of
  the runtime engine on the Figure 11/12 setups (PPO and GRPO, symmetric and
  heterogeneous plans).  The kernel-based engine must reproduce these
  **bit-identically** (floats are stored at full ``repr`` precision and
  compared with ``==``).
* ``golden_schedule_<scenario>.json`` — :class:`ScheduleReport` dumps of the
  cluster scheduler on a small deterministic two-job (PPO + GRPO) trace.
  The trace-driven scheduler intentionally improves the progress model
  (engine-derived per-iteration times instead of the estimator scalar,
  iteration-granular progress, migration costs), so the golden test asserts
  agreement within a documented tolerance rather than equality.

Run from the repository root (only needed when intentionally re-baselining)::

    PYTHONPATH=src python tests/fixtures/make_golden.py
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.algorithms import build_graph
from repro.cluster import DeviceMesh, make_cluster
from repro.core import (
    Allocation,
    ParallelStrategy,
    SearchConfig,
    instructgpt_workload,
    symmetric_plan,
)
from repro.runtime import RuntimeEngine
from repro.sched import JobSpec, NodeFailure, SchedulerConfig, schedule_trace

FIXTURES = Path(__file__).resolve().parent


def _trace_payload(engine, graph, plan):
    trace = engine.run_iteration(graph, plan)
    return {
        "total_seconds": trace.total_seconds,
        "call_spans": {name: list(span) for name, span in trace.call_spans.items()},
        "call_totals": {
            name: bd.total for name, bd in trace.call_breakdowns.items()
        },
        "gpu_category_seconds": {
            str(gpu): dict(sorted(cats.items()))
            for gpu, cats in trace.gpu_category_seconds.items()
        },
        "realloc_seconds": trace.realloc_seconds,
        "data_transfer_seconds": trace.data_transfer_seconds,
        "memory_max_bytes": trace.memory.max_bytes,
        "gpu_time_fractions": trace.gpu_time_fractions(),
        "category_totals": dict(sorted(trace.category_totals().items())),
    }


def engine_scenarios():
    cluster = make_cluster(16)
    workload = instructgpt_workload("7b", "7b", batch_size=128)

    ppo = build_graph("ppo")
    sym = symmetric_plan(ppo, cluster, ParallelStrategy(2, 8, 1), n_microbatches=8)
    node0 = DeviceMesh(cluster, 0, 1, 0, 8)
    node1 = DeviceMesh(cluster, 1, 1, 0, 8)
    hetero = (
        sym.with_assignment("ref_inference", Allocation(node0, ParallelStrategy(1, 8, 1), 2))
        .with_assignment("reward_inference", Allocation(node1, ParallelStrategy(1, 8, 1), 2))
        .with_assignment("critic_inference", Allocation(node1, ParallelStrategy(1, 8, 1), 2))
    )
    grpo = build_graph("grpo")
    grpo_sym = symmetric_plan(grpo, cluster, ParallelStrategy(2, 8, 1), n_microbatches=8)

    scenarios = {
        "ppo_symmetric": (ppo, sym),
        "ppo_heterogeneous": (ppo, hetero),
        "grpo_symmetric": (grpo, grpo_sym),
    }
    engine = RuntimeEngine(cluster, workload)
    for name, (graph, plan) in scenarios.items():
        payload = {
            "scenario": name,
            "cluster": {"n_gpus": cluster.n_gpus, "gpus_per_node": cluster.gpus_per_node},
            "plan": plan.to_dict(),
            "trace": _trace_payload(engine, graph, plan),
            "throughput": {
                "seconds_per_iteration": engine.measure_throughput(
                    graph, plan, n_iterations=2
                ).seconds_per_iteration,
            },
        }
        yield name, payload


def golden_scheduler_config() -> SchedulerConfig:
    """Deterministic scheduler budget shared by capture and regression test."""
    return SchedulerConfig(
        search=SearchConfig(
            max_iterations=40,
            time_budget_s=60.0,
            record_history=False,
            parallel="off",
            seed=0,
        )
    )


def golden_jobs():
    return [
        JobSpec(name="ppo-a", algorithm="ppo", batch_size=64,
                target_iterations=6, min_gpus=8, max_gpus=8),
        JobSpec(name="grpo-b", algorithm="grpo", batch_size=64,
                target_iterations=4, min_gpus=8, max_gpus=8,
                arrival_time=10.0),
    ]


def schedule_scenarios():
    scenarios = {
        "clean": (),
        "failure": (NodeFailure(time=40.0, node=0, recovery_time=90.0),),
    }
    for name, failures in scenarios.items():
        report = schedule_trace(
            cluster=make_cluster(16),
            jobs=golden_jobs(),
            policy="first_fit",
            config=golden_scheduler_config(),
            failures=list(failures),
        )
        payload = {
            "scenario": name,
            "makespan": report.makespan,
            "busy_horizon": report.busy_horizon,
            "total_iterations": report.total_iterations,
            "n_replans": report.n_replans,
            "n_preemptions": report.n_preemptions,
            "n_resizes": report.n_resizes,
            "jobs": {
                job.name: {
                    "first_started_at": job.first_started_at,
                    "completed_at": job.completed_at,
                    "iterations": job.iterations,
                    "gpu_seconds": job.gpu_seconds,
                    "phase": job.phase,
                }
                for job in report.jobs
            },
            "timeline_events": [e["event"] for e in report.timeline],
        }
        yield name, payload


def main() -> None:
    for name, payload in engine_scenarios():
        path = FIXTURES / f"golden_engine_{name}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")
    for name, payload in schedule_scenarios():
        path = FIXTURES / f"golden_schedule_{name}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
