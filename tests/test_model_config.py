"""Tests that the LLaMA-3 configurations reproduce Table 1 exactly."""

import pytest

from repro.model import LLAMA3_CONFIGS, MODEL_SIZES, ModelConfig, critic_variant, get_model_config

# (hidden, intermediate, layers, heads, kv_heads, total params, params w/o output embedding)
TABLE1 = {
    "7b": (4096, 14336, 32, 32, 8, 8030261248, 7504924672),
    "13b": (5120, 13824, 40, 40, 40, 14001525760, 13344855040),
    "34b": (8192, 22016, 48, 64, 8, 35321028608, 34270355456),
    "70b": (8192, 28672, 80, 64, 8, 70553706496, 69503033344),
}


class TestTable1:
    @pytest.mark.parametrize("size", MODEL_SIZES)
    def test_architecture_fields(self, size):
        hidden, inter, layers, heads, kv, _, _ = TABLE1[size]
        config = get_model_config(size)
        assert config.hidden_size == hidden
        assert config.intermediate_size == inter
        assert config.n_layers == layers
        assert config.n_heads == heads
        assert config.n_kv_heads == kv
        assert config.vocab_size == 128256
        assert config.max_position_embeddings == 8192

    @pytest.mark.parametrize("size", MODEL_SIZES)
    def test_total_param_count_matches_table1(self, size):
        assert get_model_config(size).param_count() == TABLE1[size][5]

    @pytest.mark.parametrize("size", MODEL_SIZES)
    def test_param_count_without_output_embedding(self, size):
        assert get_model_config(size).param_count_no_output_embedding() == TABLE1[size][6]

    def test_sizes_are_ordered(self):
        counts = [get_model_config(s).param_count() for s in MODEL_SIZES]
        assert counts == sorted(counts)


class TestModelConfig:
    def test_head_dim(self):
        assert get_model_config("7b").head_dim == 128

    def test_kv_dim_gqa(self):
        config = get_model_config("7b")
        assert config.kv_dim == 8 * 128

    def test_critic_variant_scalar_head(self):
        critic = critic_variant("7b")
        assert critic.is_critic
        assert critic.output_head_params() == critic.hidden_size
        # The critic drops the huge LM head.
        assert critic.param_count() < get_model_config("7b").param_count()

    def test_critic_of_critic_is_idempotent(self):
        critic = critic_variant("7b")
        assert critic.as_critic() is critic

    def test_param_bytes(self):
        config = get_model_config("7b")
        assert config.param_bytes() == config.param_count() * 2
        assert config.param_bytes(dtype_bytes=4) == config.param_count() * 4

    def test_lookup_accepts_prefixes(self):
        assert get_model_config("llama3-13b").name == "llama3-13b"
        assert get_model_config("LLAMA13B").name == "llama3-13b"

    def test_unknown_size_raises(self):
        with pytest.raises(KeyError):
            get_model_config("3b")

    def test_invalid_head_divisibility(self):
        with pytest.raises(ValueError):
            ModelConfig(name="bad", hidden_size=100, intermediate_size=256,
                        n_layers=2, n_heads=3, n_kv_heads=3)

    def test_invalid_kv_heads(self):
        with pytest.raises(ValueError):
            ModelConfig(name="bad", hidden_size=128, intermediate_size=256,
                        n_layers=2, n_heads=8, n_kv_heads=3)

    def test_registry_contains_all_sizes(self):
        assert set(LLAMA3_CONFIGS) == {"7b", "13b", "34b", "70b"}
