"""Tests for the baseline system strategy models."""

import pytest

from repro.baselines import (
    DeepSpeedChatSystem,
    NeMoAlignerSystem,
    OpenRLHFSystem,
    RealHeuristicSystem,
    RealSystem,
    VeRLSystem,
    build_heuristic_plan,
    split_cluster_into_groups,
)
from repro.baselines.base import InfeasiblePlanError, pick_microbatches
from repro.cluster import make_cluster, meshes_tile_cluster
from repro.core import FunctionCallType, ParallelStrategy, RuntimeEstimator, SearchConfig, instructgpt_workload


@pytest.fixture(scope="module")
def cluster16():
    return make_cluster(16)


@pytest.fixture(scope="module")
def workload(cluster16):
    return instructgpt_workload("7b", "7b", batch_size=128)


class TestHelpers:
    def test_split_groups_node_granularity(self):
        cluster = make_cluster(32)
        groups = split_cluster_into_groups(cluster, (0.5, 0.25, 0.25))
        assert len(groups) == 3
        assert meshes_tile_cluster(groups, cluster)

    def test_split_groups_gpu_granularity(self, cluster16):
        groups = split_cluster_into_groups(cluster16, (0.5, 0.25, 0.25))
        assert len(groups) == 3
        assert meshes_tile_cluster(groups, cluster16)

    def test_split_groups_single_node(self):
        cluster = make_cluster(8)
        groups = split_cluster_into_groups(cluster, (0.5, 0.25, 0.25))
        assert meshes_tile_cluster(groups, cluster)

    def test_split_groups_bad_fractions(self, cluster16):
        with pytest.raises(ValueError):
            split_cluster_into_groups(cluster16, (0.5, 0.25))

    def test_pick_microbatches_respects_batch(self, cluster16, workload):
        config = workload.model_config("actor")
        mbs = pick_microbatches(
            config, FunctionCallType.TRAIN_STEP, workload,
            ParallelStrategy(2, 8, 1), cluster16,
        )
        assert 1 <= mbs <= workload.batch_size

    def test_pick_microbatches_grows_for_long_context(self, cluster16):
        config = instructgpt_workload("7b", "7b").model_config("actor")
        short = instructgpt_workload("7b", "7b", batch_size=256)
        long = instructgpt_workload("7b", "7b", batch_size=256, prompt_len=4096, gen_len=4096)
        mbs_short = pick_microbatches(config, FunctionCallType.TRAIN_STEP, short,
                                      ParallelStrategy(2, 8, 1), cluster16)
        mbs_long = pick_microbatches(config, FunctionCallType.TRAIN_STEP, long,
                                     ParallelStrategy(2, 8, 1), cluster16)
        assert mbs_long >= mbs_short


class TestPlanShapes:
    def test_heuristic_plan_is_symmetric(self, ppo_graph, workload, cluster16):
        plan = build_heuristic_plan(ppo_graph, workload, cluster16)
        meshes = {plan[name].mesh.device_ids for name in ppo_graph.call_names}
        strategies = {plan[name].parallel for name in ppo_graph.call_names}
        assert len(meshes) == 1  # everything on the full cluster
        assert len(strategies) == 1  # one global 3D strategy
        assert next(iter(strategies)).tp <= cluster16.gpus_per_node

    def test_heuristic_plan_is_feasible(self, ppo_graph, workload, cluster16):
        plan = build_heuristic_plan(ppo_graph, workload, cluster16)
        assert RuntimeEstimator(ppo_graph, workload, cluster16).is_feasible(plan)

    def test_dschat_uses_zero3_and_hybrid_engine(self, ppo_graph, workload, cluster16):
        plan = DeepSpeedChatSystem().build_plan(ppo_graph, workload, cluster16)
        train_alloc = plan["actor_train"]
        gen_alloc = plan["actor_generate"]
        assert train_alloc.zero3 and train_alloc.parallel.tp == 1
        assert not gen_alloc.zero3 and gen_alloc.parallel.tp > 1

    def test_openrlhf_uses_three_disjoint_groups(self, ppo_graph, workload, cluster16):
        plan = OpenRLHFSystem().build_plan(ppo_graph, workload, cluster16)
        gen_mesh = plan["actor_generate"].mesh
        actor_mesh = plan["actor_train"].mesh
        critic_mesh = plan["critic_train"].mesh
        assert not gen_mesh.overlaps(actor_mesh)
        assert not gen_mesh.overlaps(critic_mesh)
        assert not actor_mesh.overlaps(critic_mesh)
        assert plan["ref_inference"].mesh == actor_mesh
        assert plan["reward_inference"].mesh == critic_mesh

    def test_nemo_uses_two_groups_with_colocated_actor(self, ppo_graph, workload, cluster16):
        plan = NeMoAlignerSystem().build_plan(ppo_graph, workload, cluster16)
        assert plan["actor_generate"].mesh == plan["actor_train"].mesh
        assert not plan["actor_train"].mesh.overlaps(plan["critic_train"].mesh)

    def test_verl_colocates_on_full_cluster(self, ppo_graph, workload, cluster16):
        plan = VeRLSystem().build_plan(ppo_graph, workload, cluster16)
        for name in ppo_graph.call_names:
            assert plan[name].mesh.is_full_cluster()

    def test_real_system_returns_searched_plan(self, ppo_graph, workload, cluster16):
        system = RealSystem(search_config=SearchConfig(max_iterations=200, time_budget_s=10, seed=0))
        plan = system.build_plan(ppo_graph, workload, cluster16)
        assert set(plan.assignments) == set(ppo_graph.call_names)
        assert system.last_result is not None


class TestEvaluation:
    def test_all_systems_evaluate_on_small_cluster(self, ppo_graph, workload, cluster16):
        systems = [
            DeepSpeedChatSystem(),
            OpenRLHFSystem(),
            NeMoAlignerSystem(),
            VeRLSystem(),
            RealHeuristicSystem(),
        ]
        for system in systems:
            evaluation = system.evaluate(ppo_graph, workload, cluster16)
            assert evaluation.system == system.name
            if evaluation.feasible:
                assert evaluation.petaflops > 0
            else:
                assert evaluation.failure_reason

    def test_real_beats_heuristic_by_estimator_cost(self, ppo_graph, workload, cluster16):
        heuristic_plan = build_heuristic_plan(ppo_graph, workload, cluster16)
        estimator = RuntimeEstimator(ppo_graph, workload, cluster16)
        system = RealSystem(search_config=SearchConfig(max_iterations=600, time_budget_s=20, seed=0))
        searched_plan = system.build_plan(ppo_graph, workload, cluster16)
        assert estimator.cost(searched_plan) <= estimator.cost(heuristic_plan) + 1e-9

    def test_dschat_derates_generation_backend(self, cluster16):
        system = DeepSpeedChatSystem()
        adjusted = system.adjust_cluster(cluster16)
        assert adjusted.gpu.decode_efficiency < cluster16.gpu.decode_efficiency

    def test_infeasible_workload_reported_not_raised(self, ppo_graph):
        # A 70B actor on a single 8-GPU node is hopeless for every system.
        cluster = make_cluster(8)
        workload = instructgpt_workload("70b", "7b", batch_size=64)
        evaluation = RealHeuristicSystem().evaluate(ppo_graph, workload, cluster)
        assert not evaluation.feasible
        assert evaluation.petaflops == 0.0
        assert evaluation.seconds_per_iteration == float("inf")
