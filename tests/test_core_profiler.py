"""Tests for the profiler and the interpolating layer-time provider."""

import pytest

from repro.cluster import make_cluster
from repro.core import AnalyticalProvider, ProfiledProvider, Profiler
from repro.core.profiler import _interp_timing
from repro.model import LayerTiming, get_model_config


@pytest.fixture(scope="module")
def cluster():
    return make_cluster(8)


@pytest.fixture(scope="module")
def profile_7b(cluster):
    return Profiler(cluster).profile(
        get_model_config("7b"),
        max_tokens=2 ** 16,
        tp_degrees=(1, 2, 4, 8),
        seq_lengths=(256, 1024, 2048),
        max_batch=64,
    )


class TestProfiler:
    def test_powers_of_two(self):
        assert Profiler.powers_of_two(1, 8) == [1, 2, 4, 8]
        assert Profiler.powers_of_two(3, 20) == [4, 8, 16]
        assert Profiler.powers_of_two(16, 8) == []

    def test_profile_records_samples(self, profile_7b):
        assert profile_7b.sample_count() > 0
        assert profile_7b.model_name == "llama3-7b"
        assert (1, 1024) in profile_7b.forward_samples

    def test_profiling_time_is_minutes_scale(self, profile_7b):
        # The paper reports < 4 minutes per model; our simulated wall time
        # should also land in a sane sub-hour range.
        assert 0 < profile_7b.profiling_seconds < 3600

    def test_profiling_time_grows_with_model(self, cluster):
        profiler = Profiler(cluster)
        kwargs = dict(max_tokens=2 ** 14, tp_degrees=(1, 2), seq_lengths=(256,), max_batch=16)
        small = profiler.profile(get_model_config("7b"), **kwargs)
        large = profiler.profile(get_model_config("34b"), **kwargs)
        assert large.profiling_seconds > small.profiling_seconds

    def test_incompatible_tp_degrees_skipped(self, cluster):
        # 7B has 32 heads: tp=3 is invalid and must be dropped.
        stats = Profiler(cluster).profile(
            get_model_config("7b"), max_tokens=2 ** 12, tp_degrees=(1, 3),
            seq_lengths=(256,), max_batch=4,
        )
        assert stats.tp_degrees == (1,)


class TestInterpolation:
    def test_interp_exact_point(self):
        samples = [(64, LayerTiming(1.0, 0.5, 0.1)), (128, LayerTiming(2.0, 1.0, 0.1))]
        mid = _interp_timing(samples, 64)
        assert mid.compute_s == pytest.approx(1.0)

    def test_interp_midpoint(self):
        samples = [(64, LayerTiming(1.0, 0.0, 0.0)), (128, LayerTiming(2.0, 0.0, 0.0))]
        assert _interp_timing(samples, 96).compute_s == pytest.approx(1.5)

    def test_extrapolation_scales_linearly(self):
        samples = [(64, LayerTiming(1.0, 0.0, 0.0)), (128, LayerTiming(2.0, 0.0, 0.0))]
        assert _interp_timing(samples, 256).compute_s == pytest.approx(4.0)
        assert _interp_timing(samples, 32).compute_s == pytest.approx(0.5)

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            _interp_timing([], 10)


class TestProfiledProvider:
    def test_close_to_analytical_at_profiled_sizes(self, cluster, profile_7b):
        config = get_model_config("7b")
        profiled = ProfiledProvider(config, cluster, profile_7b)
        exact = AnalyticalProvider(config, cluster)
        for tokens in (1024, 4096):
            a = exact.forward(tokens, 1024, tp=2).total_s
            b = profiled.forward(tokens, 1024, tp=2).total_s
            assert b == pytest.approx(a, rel=0.05)

    def test_interpolates_between_profiled_sizes(self, cluster, profile_7b):
        config = get_model_config("7b")
        profiled = ProfiledProvider(config, cluster, profile_7b)
        exact = AnalyticalProvider(config, cluster)
        # 3000 tokens is not a power of two: interpolation error stays small.
        a = exact.forward(3000, 1024, tp=1).total_s
        b = profiled.forward(3000, 1024, tp=1).total_s
        assert b == pytest.approx(a, rel=0.25)

    def test_decode_respects_cuda_graph_flag(self, cluster, profile_7b):
        config = get_model_config("7b")
        profiled = ProfiledProvider(config, cluster, profile_7b)
        with_graph = profiled.decode(8, 1024, tp=1, use_cuda_graph=True)
        without = profiled.decode(8, 1024, tp=1, use_cuda_graph=False)
        assert without.total_s > with_graph.total_s

    def test_unprofiled_tp_falls_back_to_analytical(self, cluster, profile_7b):
        config = get_model_config("7b")
        profiled = ProfiledProvider(config, cluster, profile_7b)
        exact = AnalyticalProvider(config, cluster)
        assert profiled.forward(512, 1024, tp=16).total_s == pytest.approx(
            exact.forward(512, 1024, tp=16).total_s
        )

    def test_wrong_model_rejected(self, cluster, profile_7b):
        with pytest.raises(ValueError):
            ProfiledProvider(get_model_config("13b"), cluster, profile_7b)

    def test_optimizer_and_head_available(self, cluster, profile_7b):
        config = get_model_config("7b")
        profiled = ProfiledProvider(config, cluster, profile_7b)
        assert profiled.optimizer_step(tp=1, pp=1).total_s > 0
        assert profiled.head_forward(1024, tp=1).total_s > 0
        assert profiled.head_backward(1024, tp=1).compute_s == pytest.approx(
            2 * profiled.head_forward(1024, tp=1).compute_s
        )
