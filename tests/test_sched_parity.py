"""Incremental report aggregation parity and the fleet-scale scheduler knobs.

The scheduler now builds its :class:`ScheduleReport` from O(1) per-event
accounting (running-job index, iteration/completion counters, incremental
makespan) instead of end-of-run scans.  ``legacy_report()`` keeps the
original scan-everything implementation as a parity oracle: these tests
assert the two are **bit-identical** (``to_dict() == to_dict()``) across
randomized traces × policies × failure injections, and that the new
``timeline`` / ``counter_interval_s`` knobs only drop recording overhead,
never change scheduling outcomes.
"""

import random

import pytest

from repro.cluster import make_cluster
from repro.core import SearchConfig
from repro.sched import (
    ClusterScheduler,
    JobSpec,
    NodeFailure,
    SchedulerConfig,
)
from repro.service import PlanService

TINY_SEARCH = SearchConfig(max_iterations=25, time_budget_s=0.5, record_history=False)


def _random_trace(seed: int, n_jobs: int = 5):
    """A small seed-deterministic mixed trace (algorithms, sizes, arrivals)."""
    rng = random.Random(seed)
    jobs = []
    for i in range(n_jobs):
        elastic = rng.random() < 0.5
        jobs.append(
            JobSpec(
                name=f"j{seed}-{i}",
                algorithm=rng.choice(("ppo", "grpo", "dpo")),
                batch_size=rng.choice((64, 128)),
                target_iterations=rng.randint(2, 4),
                min_gpus=8,
                max_gpus=16 if elastic else 8,
                priority=rng.choice((0, 0, 1)),
                arrival_time=round(rng.uniform(0.0, 30.0), 3),
            )
        )
    return jobs


@pytest.fixture(scope="module")
def shared_service():
    """One warm service for every parity run: same shapes hit the cache."""
    with PlanService(max_workers=4, estimator_cache_size=32) as service:
        yield service


class TestIncrementalReportParity:
    @pytest.mark.parametrize("policy", ["first_fit", "best_throughput", "priority"])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_report_bit_identical_to_legacy(self, policy, seed, shared_service):
        scheduler = ClusterScheduler(
            cluster=make_cluster(32),
            jobs=_random_trace(seed),
            policy=policy,
            config=SchedulerConfig(search=TINY_SEARCH),
            service=shared_service,
        )
        report = scheduler.run()
        assert report.all_completed
        assert report.to_dict() == scheduler.legacy_report().to_dict()

    @pytest.mark.parametrize("policy", ["first_fit", "best_throughput"])
    def test_parity_with_failure_injection(self, policy, shared_service):
        scheduler = ClusterScheduler(
            cluster=make_cluster(32),
            jobs=_random_trace(2),
            policy=policy,
            config=SchedulerConfig(search=TINY_SEARCH),
            service=shared_service,
            failures=[NodeFailure(time=20.0, node=1, recovery_time=120.0)],
        )
        report = scheduler.run()
        assert report.all_completed
        assert report.n_failures == 1
        assert report.to_dict() == scheduler.legacy_report().to_dict()

    def test_parity_before_run_is_empty(self, shared_service):
        scheduler = ClusterScheduler(
            cluster=make_cluster(16),
            jobs=[JobSpec(name="solo", batch_size=64, target_iterations=2,
                          min_gpus=8, max_gpus=8)],
            config=SchedulerConfig(search=TINY_SEARCH),
            service=shared_service,
        )
        assert scheduler._report().to_dict() == scheduler.legacy_report().to_dict()


class TestTimelineKnob:
    def _run(self, config, service):
        scheduler = ClusterScheduler(
            cluster=make_cluster(16),
            jobs=_random_trace(3, n_jobs=3),
            policy="first_fit",
            config=config,
            service=service,
        )
        return scheduler, scheduler.run()

    def test_timeline_off_records_nothing_but_schedules_identically(
        self, shared_service
    ):
        _on_sched, on = self._run(
            SchedulerConfig(search=TINY_SEARCH, timeline=True), shared_service
        )
        _off_sched, off = self._run(
            SchedulerConfig(search=TINY_SEARCH, timeline=False), shared_service
        )
        assert on.timeline, "baseline run should record a timeline"
        assert off.timeline == []
        # Recording is observability only: the schedule itself is unchanged.
        on_dict, off_dict = on.to_dict(), off.to_dict()
        on_dict.pop("timeline", None)
        off_dict.pop("timeline", None)
        # Wall-clock search stats may differ between runs; compare the
        # virtual-time outcome per job.
        assert on.all_completed and off.all_completed
        assert [m.to_dict() for m in on.jobs] == [m.to_dict() for m in off.jobs]
        assert on.makespan == off.makespan
        assert on.total_iterations == off.total_iterations

    def test_timeline_env_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHED_TIMELINE", "off")
        assert SchedulerConfig().timeline is False
        monkeypatch.setenv("REPRO_SCHED_TIMELINE", "1")
        assert SchedulerConfig().timeline is True
        monkeypatch.delenv("REPRO_SCHED_TIMELINE")
        assert SchedulerConfig().timeline is True


class TestCounterIntervalKnob:
    def test_interval_throttles_samples(self, shared_service):
        def run(interval):
            scheduler = ClusterScheduler(
                cluster=make_cluster(16),
                jobs=_random_trace(4, n_jobs=3),
                policy="first_fit",
                config=SchedulerConfig(
                    search=TINY_SEARCH, counter_interval_s=interval
                ),
                service=shared_service,
            )
            report = scheduler.run()
            assert report.all_completed
            return scheduler._counter_samples

        dense = run(0.0)
        sparse = run(1e9)
        assert len(dense) > 1
        # A huge interval keeps only the very first dirty-timestamp sample.
        assert len(sparse) == 1
        assert len(sparse) < len(dense)

    def test_counter_interval_env_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHED_COUNTER_INTERVAL", "30")
        assert SchedulerConfig().counter_interval_s == 30.0
        monkeypatch.setenv("REPRO_SCHED_COUNTER_INTERVAL", "-5")
        assert SchedulerConfig().counter_interval_s == 0.0
        monkeypatch.delenv("REPRO_SCHED_COUNTER_INTERVAL")
        assert SchedulerConfig().counter_interval_s == 0.0
