"""Tests for the plan service's fingerprinting and plan cache."""

from __future__ import annotations

import dataclasses

import pytest

from repro.algorithms import build_dpo_graph, build_ppo_graph
from repro.cluster import make_cluster
from repro.core import (
    MCMCSearcher,
    ParallelStrategy,
    SearchConfig,
    instructgpt_workload,
    plan_from_dict,
    symmetric_plan,
)
from repro.service import (
    PlanCache,
    PlanCacheEntry,
    fingerprint_request,
)


SMALL_SEARCH = SearchConfig(max_iterations=60, time_budget_s=10.0, record_history=False)


def _fingerprint(batch_size=128, n_gpus=8, actor="7b", graph=None, search=SMALL_SEARCH):
    graph = graph if graph is not None else build_ppo_graph()
    workload = instructgpt_workload(actor, "7b", batch_size=batch_size)
    cluster = make_cluster(n_gpus)
    return fingerprint_request(graph, workload, cluster, search)


def _entry(key="k", family="f", cost=1.0, cluster=None, plan=None) -> PlanCacheEntry:
    cluster = cluster or make_cluster(8)
    plan = plan or symmetric_plan(
        build_ppo_graph(), cluster, ParallelStrategy(dp=1, tp=8, pp=1)
    )
    return PlanCacheEntry(
        key=key,
        family=family,
        features={"batch_size": 128.0},
        cluster_shape=(cluster.n_nodes, cluster.gpus_per_node),
        plan_data=plan.to_dict(),
        best_cost=cost,
        initial_cost=2 * cost,
    )


class TestFingerprint:
    def test_identical_requests_share_key(self):
        assert _fingerprint().key == _fingerprint().key
        assert _fingerprint().family == _fingerprint().family

    def test_key_is_stable_hex(self):
        fp = _fingerprint()
        assert len(fp.key) == 64 and int(fp.key, 16) >= 0
        assert fp.short_key == fp.key[:12]

    def test_scale_changes_key_not_family(self):
        base = _fingerprint(batch_size=128, n_gpus=8)
        bigger_batch = _fingerprint(batch_size=256, n_gpus=8)
        bigger_cluster = _fingerprint(batch_size=128, n_gpus=16)
        assert base.key != bigger_batch.key != bigger_cluster.key
        assert base.family == bigger_batch.family == bigger_cluster.family

    def test_model_and_graph_change_family(self):
        base = _fingerprint()
        other_model = _fingerprint(actor="13b")
        other_graph = _fingerprint(graph=build_dpo_graph())
        assert base.family != other_model.family
        assert base.family != other_graph.family

    def test_search_budget_changes_key(self):
        fast = _fingerprint(search=SearchConfig(max_iterations=10))
        slow = _fingerprint(search=SearchConfig(max_iterations=1000))
        assert fast.key != slow.key

    def test_observability_fields_do_not_change_key(self):
        plain = _fingerprint(search=SMALL_SEARCH)
        with_history = _fingerprint(
            search=dataclasses.replace(SMALL_SEARCH, record_history=True)
        )
        cluster = make_cluster(8)
        hint = symmetric_plan(build_ppo_graph(), cluster, ParallelStrategy(dp=1, tp=8, pp=1))
        with_hint = _fingerprint(
            search=dataclasses.replace(SMALL_SEARCH, initial_plan=hint)
        )
        assert plain.key == with_history.key == with_hint.key


class TestPlanSerialization:
    def test_plan_round_trip(self, ppo_graph, two_node_cluster):
        plan = symmetric_plan(
            ppo_graph, two_node_cluster, ParallelStrategy(dp=2, tp=8, pp=1),
            n_microbatches=4,
        )
        data = plan.to_dict()
        rebuilt = plan_from_dict(data, two_node_cluster)
        assert rebuilt.name == plan.name
        assert rebuilt.assignments == plan.assignments

    def test_plan_rejects_mismatched_cluster_shape(self, ppo_graph, two_node_cluster):
        plan = symmetric_plan(ppo_graph, two_node_cluster, ParallelStrategy(dp=2, tp=8, pp=1))
        with pytest.raises(ValueError, match="shape"):
            plan_from_dict(plan.to_dict(), make_cluster(8))


class TestPlanCache:
    def test_get_put_and_counters(self):
        cache = PlanCache(capacity=4)
        assert cache.get("missing") is None
        cache.put(_entry(key="a"))
        hit = cache.get("a")
        assert hit is not None and hit.best_cost == 1.0
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == pytest.approx(0.5)

    def test_lru_eviction_order(self):
        cache = PlanCache(capacity=2)
        cache.put(_entry(key="a"))
        cache.put(_entry(key="b"))
        assert cache.get("a") is not None  # refresh 'a'; 'b' becomes LRU
        cache.put(_entry(key="c"))
        assert "b" not in cache and "a" in cache and "c" in cache
        assert cache.evictions == 1

    def test_family_entries_most_recent_first(self):
        cache = PlanCache(capacity=8)
        cache.put(_entry(key="a", family="f1"))
        cache.put(_entry(key="b", family="f2"))
        cache.put(_entry(key="c", family="f1"))
        assert [e.key for e in cache.family_entries("f1")] == ["c", "a"]

    def test_disk_round_trip(self, tmp_path):
        path = str(tmp_path / "plans.json")
        cluster = make_cluster(8)
        cache = PlanCache(capacity=4, persist_path=path)
        cache.put(_entry(key="a", family="f", cost=3.5, cluster=cluster))

        reloaded = PlanCache(capacity=4, persist_path=path)
        entry = reloaded.get("a")
        assert entry is not None
        assert entry.best_cost == 3.5 and entry.family == "f"
        plan = entry.plan(cluster)
        original = _entry(cluster=cluster).plan(cluster)
        assert plan.assignments == original.assignments
        result = entry.to_search_result(cluster)
        assert result.best_cost == 3.5 and result.initial_cost == 7.0

    @pytest.mark.parametrize(
        "payload", ["{not json", '{"version": 1, "entries": 5}', '{"entries": [{}]}', "[]"]
    )
    def test_corrupt_persist_file_starts_empty(self, tmp_path, payload):
        path = tmp_path / "plans.json"
        path.write_text(payload)
        cache = PlanCache(capacity=4, persist_path=str(path))
        assert len(cache) == 0
        cache.put(_entry(key="a"))  # and the file becomes writable again
        assert len(PlanCache(capacity=4, persist_path=str(path))) == 1

    def test_entry_rejects_disagreeing_cluster_shapes(self):
        data = _entry(key="a").to_dict()
        data["cluster_shape"] = [2, 8]  # plan says (1, 8)
        with pytest.raises(ValueError, match="disagrees"):
            PlanCacheEntry.from_dict(data)

    def test_reload_respects_capacity(self, tmp_path):
        path = str(tmp_path / "plans.json")
        cache = PlanCache(capacity=4, persist_path=path)
        for name in "abcd":
            cache.put(_entry(key=name))
        shrunken = PlanCache(capacity=2, persist_path=path)
        assert len(shrunken) == 2
        assert shrunken.keys() == ["c", "d"]  # most recent survive

    def test_entry_from_search_result(self, ppo_graph, small_workload, small_cluster):
        searcher = MCMCSearcher(
            ppo_graph, small_workload, small_cluster, config=SMALL_SEARCH
        )
        result = searcher.search()
        fp = fingerprint_request(ppo_graph, small_workload, small_cluster, SMALL_SEARCH)
        entry = PlanCacheEntry.from_search_result(fp, result, small_cluster)
        assert entry.key == fp.key and entry.family == fp.family
        rebuilt = entry.plan(small_cluster)
        assert rebuilt.assignments == result.best_plan.assignments
        assert entry.to_search_result(small_cluster).best_cost == result.best_cost
