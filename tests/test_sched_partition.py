"""Unit tests for partitions and the free-space manager of the scheduler."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import make_cluster
from repro.sched import Partition, PartitionManager, equal_node_partitions


class TestPartition:
    def test_spec_shape_matches_region(self):
        manager = PartitionManager(make_cluster(32))
        for partition in manager.candidates():
            spec = partition.spec
            assert (spec.n_nodes, spec.gpus_per_node) == partition.shape
            assert spec.n_gpus == partition.n_gpus

    def test_same_shape_partitions_share_spec(self):
        manager = PartitionManager(make_cluster(32))
        by_shape = {}
        for partition in manager.candidates():
            by_shape.setdefault(partition.shape, []).append(partition)
        for shape, group in by_shape.items():
            specs = {p.spec for p in group}
            assert len(specs) == 1, f"shape {shape} produced distinct specs"

    def test_describe_mentions_gpu_count(self):
        partition = PartitionManager(make_cluster(16)).candidates(min_gpus=16)[0]
        assert "16 GPUs" in partition.describe()


class TestEqualNodePartitions:
    def test_exact_tiling(self):
        cluster = make_cluster(64)
        slots = equal_node_partitions(cluster, 8)
        covered = set()
        for slot in slots:
            assert not covered & slot.device_id_set
            covered |= slot.device_id_set
        assert covered == set(range(64))

    def test_uneven_split_leaves_remainder_unused(self):
        cluster = make_cluster(64)  # 8 nodes
        slots = equal_node_partitions(cluster, 3)
        assert all(slot.n_gpus == 2 * 8 for slot in slots)

    def test_too_many_slots_rejected(self):
        with pytest.raises(ValueError):
            equal_node_partitions(make_cluster(16), 3)
        with pytest.raises(ValueError):
            equal_node_partitions(make_cluster(16), 0)


class TestPartitionManager:
    def test_initially_all_free(self):
        manager = PartitionManager(make_cluster(16))
        assert manager.n_free == 16
        assert manager.n_available == 16

    def test_candidates_sorted_smallest_first(self):
        manager = PartitionManager(make_cluster(16))
        sizes = [p.n_gpus for p in manager.candidates()]
        assert sizes == sorted(sizes)

    def test_candidates_respect_bounds(self):
        manager = PartitionManager(make_cluster(32))
        for partition in manager.candidates(min_gpus=8, max_gpus=16):
            assert 8 <= partition.n_gpus <= 16

    def test_allocate_removes_and_release_returns(self):
        manager = PartitionManager(make_cluster(16))
        partition = manager.candidates(min_gpus=8, max_gpus=8)[0]
        manager.allocate(partition, owner=1)
        assert manager.n_free == 8
        assert not any(
            p.device_id_set & partition.device_id_set for p in manager.candidates()
        )
        manager.release(1)
        assert manager.n_free == 16

    def test_double_allocate_rejected(self):
        manager = PartitionManager(make_cluster(16))
        partition = manager.candidates(min_gpus=16)[0]
        manager.allocate(partition, owner=1)
        with pytest.raises(ValueError):
            manager.allocate(partition, owner=2)

    def test_fail_node_removes_capacity(self):
        manager = PartitionManager(make_cluster(16))
        failed = manager.fail_node(0)
        assert len(failed) == 8
        assert manager.n_available == 8
        assert all(p.device_id_set.isdisjoint(failed) for p in manager.candidates())

    def test_release_after_failure_keeps_failed_gpus_out(self):
        manager = PartitionManager(make_cluster(16))
        partition = manager.candidates(min_gpus=8, max_gpus=8)[0]
        manager.allocate(partition, owner=1)
        manager.fail_node(0)  # the first candidate lives on node 0
        manager.release(1)
        assert manager.n_free == 8  # only node 1 is free
        manager.restore_node(0)
        assert manager.n_free == 16

    def test_restore_out_of_range_node_rejected(self):
        manager = PartitionManager(make_cluster(16))
        with pytest.raises(ValueError):
            manager.fail_node(5)

    def test_extra_free_enables_hypothetical_candidates(self):
        manager = PartitionManager(make_cluster(16))
        full = manager.candidates(min_gpus=16)[0]
        manager.allocate(full, owner=1)
        assert manager.candidates(min_gpus=8) == []
        hypothetical = manager.candidates(min_gpus=8, extra_free=full.device_id_set)
        assert hypothetical

    def test_distinct_shapes_deduplicates(self):
        manager = PartitionManager(make_cluster(32))
        shapes = [p.shape for p in manager.distinct_shapes(min_gpus=8)]
        assert len(shapes) == len(set(shapes))

    @settings(max_examples=20, deadline=None)
    @given(
        n_nodes=st.integers(min_value=1, max_value=6),
        min_gpus=st.integers(min_value=1, max_value=16),
    )
    def test_candidates_are_valid_free_meshes(self, n_nodes, min_gpus):
        manager = PartitionManager(make_cluster(n_nodes * 8))
        free = manager.free_ids
        for partition in manager.candidates(min_gpus=min_gpus):
            assert partition.n_gpus >= min_gpus
            assert partition.device_id_set <= free
            # The carved spec must be constructible (valid mesh shape).
            assert partition.spec.n_gpus == partition.n_gpus


class TestMaskEquivalence:
    """The bitmask-based generator must match brute-force enumerate-and-filter.

    The legacy implementation enumerated every device mesh and filtered by
    the free set; the rewrite walks per-node free bitmasks directly.  These
    tests drive both through randomized allocate/fail/restore/release
    mutation sequences and assert identical candidate lists (placements,
    order) and identical shape representatives.
    """

    @staticmethod
    def _reference(manager, min_gpus=1, max_gpus=None, extra_free=frozenset()):
        from repro.cluster.topology import enumerate_device_meshes

        cluster = manager.cluster
        free = set(manager.free_ids) | set(extra_free)
        limit = cluster.n_gpus if max_gpus is None else min(max_gpus, cluster.n_gpus)
        meshes = [
            mesh
            for mesh in enumerate_device_meshes(cluster, min_gpus=max(1, min_gpus))
            if mesh.n_gpus <= limit and mesh.device_id_set <= free
        ]
        meshes.sort(key=lambda m: (m.n_gpus, m.node_start, m.gpu_start))
        return [(m.n_gpus, m.node_start, m.gpu_start, m.shape) for m in meshes]

    @staticmethod
    def _observed(partitions):
        return [
            (p.n_gpus, p.region.node_start, p.region.gpu_start, p.shape)
            for p in partitions
        ]

    @settings(max_examples=15, deadline=None)
    @given(
        n_nodes=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=10_000),
        min_gpus=st.integers(min_value=1, max_value=24),
        use_inf=st.booleans(),
    )
    def test_candidates_match_brute_force_under_mutations(
        self, n_nodes, seed, min_gpus, use_inf
    ):
        import random

        rng = random.Random(seed)
        manager = PartitionManager(make_cluster(n_nodes * 8))
        owners = {}
        failed_nodes = set()
        # A short random mutation walk over the manager's full API.
        for step in range(rng.randint(0, 6)):
            move = rng.random()
            if move < 0.45:
                options = manager.candidates()
                if options:
                    partition = rng.choice(options)
                    owner = 1000 + step
                    manager.allocate(partition, owner=owner)
                    owners[owner] = partition
            elif move < 0.65 and owners:
                owner = rng.choice(sorted(owners))
                owners.pop(owner)
                manager.release(owner)
            elif move < 0.85 and len(failed_nodes) < n_nodes:
                node = rng.choice(
                    [n for n in range(n_nodes) if n not in failed_nodes]
                )
                manager.fail_node(node)
                failed_nodes.add(node)
            elif failed_nodes:
                node = rng.choice(sorted(failed_nodes))
                failed_nodes.discard(node)
                manager.restore_node(node)

        max_gpus = float("inf") if use_inf else rng.choice((8, 16, 24, None))
        extra = frozenset()
        if owners and rng.random() < 0.5:
            extra = next(iter(owners.values())).device_id_set
        observed = self._observed(
            manager.candidates(min_gpus=min_gpus, max_gpus=max_gpus, extra_free=extra)
        )
        expected = self._reference(
            manager, min_gpus=min_gpus, max_gpus=max_gpus, extra_free=extra
        )
        assert observed == expected

    @settings(max_examples=15, deadline=None)
    @given(
        n_nodes=st.integers(min_value=1, max_value=5),
        min_gpus=st.integers(min_value=1, max_value=24),
        n_allocs=st.integers(min_value=0, max_value=3),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_distinct_shapes_is_first_hit_per_shape(
        self, n_nodes, min_gpus, n_allocs, seed
    ):
        import random

        rng = random.Random(seed)
        manager = PartitionManager(make_cluster(n_nodes * 8))
        for i in range(n_allocs):
            options = manager.candidates()
            if not options:
                break
            manager.allocate(rng.choice(options), owner=i)
        full = manager.candidates(min_gpus=min_gpus)
        first_per_shape = {}
        for partition in full:
            first_per_shape.setdefault(partition.shape, partition)
        representatives = manager.distinct_shapes(min_gpus=min_gpus)
        assert self._observed(representatives) == self._observed(
            first_per_shape.values()
        )
