"""Tests for inter-call data transfer planning."""

import pytest

from repro.cluster import DeviceMesh, full_cluster_mesh, make_cluster
from repro.core import Allocation, ParallelStrategy
from repro.core.workload import CallWorkload
from repro.runtime import data_transfer_time, plan_data_transfer


@pytest.fixture(scope="module")
def cluster():
    return make_cluster(16)


WL = CallWorkload(batch_size=64, prompt_len=512, gen_len=512)


class TestPlanDataTransfer:
    def test_identical_layouts_are_free(self, cluster):
        mesh = full_cluster_mesh(cluster)
        alloc = Allocation(mesh, ParallelStrategy(2, 8, 1))
        plan = plan_data_transfer(alloc, alloc, WL)
        assert plan.is_empty()
        assert data_transfer_time(plan, cluster) == 0.0

    def test_same_dp_tp_different_microbatches_free(self, cluster):
        mesh = full_cluster_mesh(cluster)
        a = Allocation(mesh, ParallelStrategy(2, 8, 1), n_microbatches=1)
        b = Allocation(mesh, ParallelStrategy(2, 8, 1), n_microbatches=8)
        assert plan_data_transfer(a, b, WL).is_empty()

    def test_dp_change_requires_transfer(self, cluster):
        mesh = full_cluster_mesh(cluster)
        src = Allocation(mesh, ParallelStrategy(2, 8, 1))
        dst = Allocation(mesh, ParallelStrategy(8, 2, 1))
        plan = plan_data_transfer(src, dst, WL)
        assert not plan.is_empty()
        assert plan.total_bytes > 0
        assert data_transfer_time(plan, cluster) > 0

    def test_disjoint_meshes_require_transfer(self, cluster):
        node0 = DeviceMesh(cluster, 0, 1, 0, 8)
        node1 = DeviceMesh(cluster, 1, 1, 0, 8)
        src = Allocation(node0, ParallelStrategy(2, 4, 1))
        dst = Allocation(node1, ParallelStrategy(2, 4, 1))
        plan = plan_data_transfer(src, dst, WL)
        assert not plan.is_empty()
        src_gpus = set(node0.device_ids)
        dst_gpus = set(node1.device_ids)
        for step in plan.steps:
            assert step.src_gpu in src_gpus
            assert set(step.dst_gpus) <= dst_gpus

    def test_volume_matches_batch_payload(self, cluster):
        from repro.runtime.data_transfer import BYTES_PER_TOKEN

        node0 = DeviceMesh(cluster, 0, 1, 0, 8)
        node1 = DeviceMesh(cluster, 1, 1, 0, 8)
        src = Allocation(node0, ParallelStrategy(8, 1, 1))
        dst = Allocation(node1, ParallelStrategy(8, 1, 1))
        plan = plan_data_transfer(src, dst, WL)
        assert plan.total_bytes == pytest.approx(WL.batch_size * WL.seqlen * BYTES_PER_TOKEN)

    def test_steps_never_send_to_source(self, cluster):
        mesh = full_cluster_mesh(cluster)
        src = Allocation(mesh, ParallelStrategy(16, 1, 1))
        dst = Allocation(mesh, ParallelStrategy(2, 8, 1))
        plan = plan_data_transfer(src, dst, WL)
        for step in plan.steps:
            assert step.src_gpu not in step.dst_gpus

    def test_transfer_cheaper_than_realloc_for_small_payload(self, cluster):
        """The paper notes data transfer is minor relative to other workloads."""
        from repro.model import get_model_config
        from repro.realloc import ReallocCostModel

        mesh = full_cluster_mesh(cluster)
        src = Allocation(mesh, ParallelStrategy(2, 8, 1))
        dst = Allocation(mesh, ParallelStrategy(8, 2, 1))
        xfer = data_transfer_time(plan_data_transfer(src, dst, WL), cluster)
        realloc = ReallocCostModel(cluster, exact=True).cost(get_model_config("7b"), src, dst)
        assert xfer < realloc.seconds
