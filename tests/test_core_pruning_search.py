"""Tests for search-space pruning, MCMC search and brute-force search."""

import pytest

from repro.cluster import make_cluster
from repro.core import (
    MCMCSearcher,
    PruneConfig,
    SearchConfig,
    allocation_options,
    brute_force_search,
    enumerate_allocations,
    instructgpt_workload,
    search_space_size,
    symmetric_plan,
    ParallelStrategy,
    RuntimeEstimator,
)


@pytest.fixture(scope="module")
def cluster8():
    return make_cluster(8)


@pytest.fixture(scope="module")
def workload_small():
    return instructgpt_workload("7b", "7b", batch_size=64)


class TestPruning:
    def test_every_option_is_consistent(self, ppo_graph, workload_small, cluster8):
        options = allocation_options(ppo_graph, workload_small, cluster8)
        for call_name, choices in options.items():
            assert choices, f"no options for {call_name}"
            for alloc in choices:
                assert alloc.parallel.world_size == alloc.mesh.n_gpus
                assert alloc.parallel.tp <= cluster8.gpus_per_node

    def test_dp_never_exceeds_batch(self, ppo_graph, cluster8):
        tiny = instructgpt_workload("7b", "7b", batch_size=4)
        options = allocation_options(ppo_graph, tiny, cluster8)
        for choices in options.values():
            assert all(a.parallel.dp <= 4 for a in choices)

    def test_search_space_size_is_product(self, ppo_graph, workload_small, cluster8):
        options = allocation_options(ppo_graph, workload_small, cluster8)
        expected = 1.0
        for choices in options.values():
            expected *= len(choices)
        assert search_space_size(options) == pytest.approx(expected)

    def test_paper_scale_search_space(self, ppo_graph):
        # On 64 GPUs the paper quotes > 1e16 plans; our pruned space should
        # still be astronomically large (brute force infeasible).
        cluster = make_cluster(64)
        workload = instructgpt_workload("34b", "7b", batch_size=512)
        options = allocation_options(ppo_graph, workload, cluster)
        assert search_space_size(options) > 1e12

    def test_pruning_shrinks_space(self, ppo_graph, workload_small, cluster8):
        loose = PruneConfig(microbatch_choices=(1, 2, 4, 8, 16, 32))
        tight = PruneConfig(microbatch_choices=(1, 4), min_mesh_gpus=4)
        big = search_space_size(allocation_options(ppo_graph, workload_small, cluster8, loose))
        small = search_space_size(allocation_options(ppo_graph, workload_small, cluster8, tight))
        assert small < big

    def test_mesh_stride_prunes(self, ppo_graph, workload_small):
        cluster = make_cluster(16)
        base = allocation_options(ppo_graph, workload_small, cluster, PruneConfig())
        strided = allocation_options(
            ppo_graph, workload_small, cluster, PruneConfig(mesh_stride=2)
        )
        assert search_space_size(strided) < search_space_size(base)

    def test_static_oom_pruning_drops_unsharded_70b(self, ppo_graph):
        cluster = make_cluster(16)
        workload = instructgpt_workload("70b", "7b", batch_size=64)
        options = enumerate_allocations(
            ppo_graph.get("actor_train"), workload.model_config("actor"), workload, cluster
        )
        assert options
        assert all(a.parallel.tp * a.parallel.pp > 1 for a in options)

    def test_pruning_raises_when_nothing_fits(self, ppo_graph, cluster8):
        # A 70B trainable model cannot fit on a single 8-GPU node at all.
        workload = instructgpt_workload("70b", "7b", batch_size=64)
        with pytest.raises(ValueError):
            enumerate_allocations(
                ppo_graph.get("actor_train"), workload.model_config("actor"), workload, cluster8
            )

    def test_restrict_returns_copy(self):
        base = PruneConfig()
        changed = base.restrict(mesh_stride=3)
        assert changed.mesh_stride == 3 and base.mesh_stride == 1

    def test_static_oom_prune_uses_param_bytes_constant(self, ppo_graph, monkeypatch):
        # The prune must read the memory model's PARAM_BYTES, not a hardcoded
        # bytes-per-param: blowing the constant up must prune everything away.
        import repro.core.pruning as pruning_module

        cluster = make_cluster(8)
        workload = instructgpt_workload("7b", "7b", batch_size=64)
        call = ppo_graph.get("actor_generate")
        assert enumerate_allocations(
            call, workload.model_config("actor"), workload, cluster
        )
        monkeypatch.setattr(pruning_module, "PARAM_BYTES", 1e12)
        with pytest.raises(ValueError, match="no feasible allocation"):
            enumerate_allocations(
                call, workload.model_config("actor"), workload, cluster
            )

    def test_microbatch_ceiling_on_nondivisible_batch(self, ppo_graph, cluster8):
        # batch 26 over dp=8 shards ceil(26/8) = 4 sequences per rank, so 4
        # micro-batches are admissible; floor division would wrongly stop at 3.
        workload = instructgpt_workload("7b", "7b", batch_size=26)
        options = enumerate_allocations(
            ppo_graph.get("actor_generate"), workload.model_config("actor"),
            workload, cluster8,
        )
        dp8 = [a for a in options if a.parallel.dp == 8]
        assert dp8, "expected dp=8 options on the 8-GPU cluster"
        assert any(a.n_microbatches == 4 for a in dp8)
        assert all(a.n_microbatches <= 4 for a in dp8)


class TestMCMCSearch:
    def test_search_improves_over_greedy(self, ppo_graph, workload_small, cluster8):
        config = SearchConfig(max_iterations=400, time_budget_s=20, seed=1)
        searcher = MCMCSearcher(ppo_graph, workload_small, cluster8, config=config)
        result = searcher.search()
        assert result.best_cost <= result.initial_cost
        assert result.n_iterations > 0
        assert 0 <= result.acceptance_rate <= 1
        assert result.search_space > 1

    def test_search_result_plan_is_feasible(self, ppo_graph, workload_small, cluster8):
        config = SearchConfig(max_iterations=400, time_budget_s=20, seed=2)
        searcher = MCMCSearcher(ppo_graph, workload_small, cluster8, config=config)
        result = searcher.search()
        estimator = RuntimeEstimator(ppo_graph, workload_small, cluster8)
        assert estimator.is_feasible(result.best_plan)

    def test_seed_plan_bounds_result(self, ppo_graph, workload_small, cluster8):
        estimator = RuntimeEstimator(ppo_graph, workload_small, cluster8)
        seed_plan = symmetric_plan(ppo_graph, cluster8, ParallelStrategy(1, 8, 1), n_microbatches=8)
        config = SearchConfig(max_iterations=150, time_budget_s=10, seed=3)
        searcher = MCMCSearcher(
            ppo_graph, workload_small, cluster8, estimator=estimator,
            config=config, seed_plans=[seed_plan],
        )
        result = searcher.search()
        assert result.best_cost <= estimator.cost(seed_plan) + 1e-9

    def test_history_is_monotone_non_increasing(self, ppo_graph, workload_small, cluster8):
        config = SearchConfig(max_iterations=300, time_budget_s=20, seed=4)
        result = MCMCSearcher(ppo_graph, workload_small, cluster8, config=config).search()
        best_values = [cost for _, _, cost in result.history]
        assert all(b >= a - 1e-12 for a, b in zip(best_values[1:], best_values[:-1]))

    def test_deterministic_for_fixed_seed(self, ppo_graph, workload_small, cluster8):
        estimator = RuntimeEstimator(ppo_graph, workload_small, cluster8)
        options = allocation_options(ppo_graph, workload_small, cluster8)
        config = SearchConfig(max_iterations=200, time_budget_s=30, seed=5)
        r1 = MCMCSearcher(ppo_graph, workload_small, cluster8, estimator=estimator,
                          options=options, config=config).search()
        r2 = MCMCSearcher(ppo_graph, workload_small, cluster8, estimator=estimator,
                          options=options, config=config).search()
        assert r1.best_cost == pytest.approx(r2.best_cost)

    def test_time_budget_respected(self, ppo_graph, workload_small, cluster8):
        config = SearchConfig(max_iterations=10_000_000, time_budget_s=1.0, seed=0)
        result = MCMCSearcher(ppo_graph, workload_small, cluster8, config=config).search()
        assert result.elapsed_seconds < 5.0

    def test_seeded_search_reports_chain_start_cost(
        self, ppo_graph, workload_small, cluster8
    ):
        # Regression: a winning seed plan must be reported as the initial
        # plan, otherwise improvement_ratio overstates what the search did.
        estimator = RuntimeEstimator(ppo_graph, workload_small, cluster8)
        good = MCMCSearcher(
            ppo_graph, workload_small, cluster8, estimator=estimator,
            config=SearchConfig(max_iterations=300, time_budget_s=20, seed=6),
        ).search().best_plan
        good_cost = estimator.cost(good)
        greedy_cost = estimator.cost(
            MCMCSearcher(
                ppo_graph, workload_small, cluster8, estimator=estimator
            ).greedy_initial_plan()
        )
        assert good_cost < greedy_cost
        result = MCMCSearcher(
            ppo_graph, workload_small, cluster8, estimator=estimator,
            config=SearchConfig(max_iterations=0, time_budget_s=20, seed=7),
            seed_plans=[good],
        ).search()
        assert result.initial_cost == pytest.approx(good_cost)
        assert result.improvement_ratio == pytest.approx(1.0)

    def test_config_initial_plan_reported_as_start(
        self, ppo_graph, workload_small, cluster8
    ):
        estimator = RuntimeEstimator(ppo_graph, workload_small, cluster8)
        good = MCMCSearcher(
            ppo_graph, workload_small, cluster8, estimator=estimator,
            config=SearchConfig(max_iterations=300, time_budget_s=20, seed=8),
        ).search().best_plan
        result = MCMCSearcher(
            ppo_graph, workload_small, cluster8, estimator=estimator,
            config=SearchConfig(
                max_iterations=0, time_budget_s=20, seed=9, initial_plan=good
            ),
        ).search()
        assert result.initial_cost == pytest.approx(estimator.cost(good))


class TestMultiChainSearch:
    def test_multi_chain_result_and_budget_split(
        self, ppo_graph, workload_small, cluster8
    ):
        config = SearchConfig(max_iterations=300, time_budget_s=30, seed=1, n_chains=3)
        result = MCMCSearcher(ppo_graph, workload_small, cluster8, config=config).search()
        assert result.n_chains == 3
        assert result.best_cost <= result.initial_cost
        assert 0 < result.n_iterations <= 300
        # Merged history: global iteration count, monotone best-so-far.
        iterations = [i for i, _, _ in result.history]
        assert iterations == sorted(iterations)
        best_values = [cost for _, _, cost in result.history]
        assert all(b <= a + 1e-12 for a, b in zip(best_values[:-1], best_values[1:]))

    def test_multi_chain_deterministic_for_fixed_seed(
        self, ppo_graph, workload_small, cluster8
    ):
        estimator = RuntimeEstimator(ppo_graph, workload_small, cluster8)
        options = allocation_options(ppo_graph, workload_small, cluster8)
        config = SearchConfig(max_iterations=200, time_budget_s=30, seed=5, n_chains=4)
        r1 = MCMCSearcher(ppo_graph, workload_small, cluster8, estimator=estimator,
                          options=options, config=config).search()
        r2 = MCMCSearcher(ppo_graph, workload_small, cluster8, estimator=estimator,
                          options=options, config=config).search()
        assert r1.best_cost == pytest.approx(r2.best_cost)
        assert r1.n_iterations == r2.n_iterations

    def test_multi_chain_not_worse_than_start(self, ppo_graph, workload_small, cluster8):
        estimator = RuntimeEstimator(ppo_graph, workload_small, cluster8)
        seed_plan = symmetric_plan(
            ppo_graph, cluster8, ParallelStrategy(1, 8, 1), n_microbatches=8
        )
        config = SearchConfig(max_iterations=150, time_budget_s=10, seed=3, n_chains=2)
        result = MCMCSearcher(
            ppo_graph, workload_small, cluster8, estimator=estimator,
            config=config, seed_plans=[seed_plan],
        ).search()
        assert result.best_cost <= estimator.cost(seed_plan) + 1e-9


class TestBruteForce:
    def _tiny_options(self, ppo_graph, workload_small, cluster8):
        """A reduced option set small enough for exhaustive enumeration.

        Full-node meshes only, a fixed micro-batch count and no pipeline
        parallelism: 4 options per call, 4^6 = 4096 plans in total.
        """
        prune = PruneConfig(microbatch_choices=(8,), min_mesh_gpus=8)
        options = allocation_options(ppo_graph, workload_small, cluster8, prune)
        return {
            name: [a for a in choices if a.parallel.pp == 1]
            for name, choices in options.items()
        }

    def test_brute_force_finds_optimum(self, ppo_graph, workload_small, cluster8):
        options = self._tiny_options(ppo_graph, workload_small, cluster8)
        estimator = RuntimeEstimator(ppo_graph, workload_small, cluster8)
        result = brute_force_search(
            ppo_graph, workload_small, cluster8, options=options, estimator=estimator
        )
        assert result.n_evaluated == int(result.search_space)
        # No other enumerated plan beats the reported optimum.
        assert result.best_cost <= estimator.cost(result.best_plan) + 1e-9

    def test_mcmc_reaches_brute_force_optimum_on_tiny_space(
        self, ppo_graph, workload_small, cluster8
    ):
        options = self._tiny_options(ppo_graph, workload_small, cluster8)
        estimator = RuntimeEstimator(ppo_graph, workload_small, cluster8)
        brute = brute_force_search(
            ppo_graph, workload_small, cluster8, options=options, estimator=estimator
        )
        config = SearchConfig(max_iterations=1500, time_budget_s=30, seed=0)
        mcmc = MCMCSearcher(
            ppo_graph, workload_small, cluster8, estimator=estimator,
            options=options, config=config,
        ).search()
        # Figure 15: the MCMC search reaches >= 95% of the optimum quickly.
        assert mcmc.best_cost <= brute.best_cost / 0.95

    def test_brute_force_refuses_huge_spaces(self, ppo_graph, workload_small, cluster8):
        with pytest.raises(ValueError):
            brute_force_search(ppo_graph, workload_small, cluster8, max_plans=10)
