"""Unit tests for the hardware specification substrate."""

import dataclasses

import pytest

from repro.cluster import (
    GB,
    H100_SPEC,
    ClusterSpec,
    GPUSpec,
    InterconnectSpec,
    make_cluster,
)


class TestGPUSpec:
    def test_default_is_h100(self):
        assert H100_SPEC.name.startswith("H100")
        assert H100_SPEC.memory_gb == 80.0

    def test_memory_bytes(self):
        assert H100_SPEC.memory_bytes == pytest.approx(80.0 * GB)

    def test_achievable_flops_below_peak(self):
        assert H100_SPEC.achievable_flops < H100_SPEC.peak_tflops * 1e12

    def test_achievable_hbm_bandwidth_below_peak(self):
        assert H100_SPEC.achievable_hbm_bandwidth < H100_SPEC.hbm_bandwidth_gbps * GB

    def test_invalid_peak_flops_rejected(self):
        with pytest.raises(ValueError):
            GPUSpec(peak_tflops=0.0)

    def test_invalid_efficiency_rejected(self):
        with pytest.raises(ValueError):
            GPUSpec(compute_efficiency=1.5)
        with pytest.raises(ValueError):
            GPUSpec(decode_efficiency=0.0)

    def test_invalid_memory_rejected(self):
        with pytest.raises(ValueError):
            GPUSpec(memory_gb=-1)

    def test_pcie_bandwidth_bytes(self):
        assert H100_SPEC.pcie_bandwidth == pytest.approx(H100_SPEC.pcie_bandwidth_gbps * GB)


class TestInterconnectSpec:
    def test_defaults_match_paper_cluster(self):
        ic = InterconnectSpec()
        # 3.2 Tbps RoCE per node = 400 GB/s.
        assert ic.inter_node_bandwidth_gbps == pytest.approx(400.0)
        assert ic.intra_node_bandwidth > ic.inter_node_bandwidth / 8

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            InterconnectSpec(intra_node_bandwidth_gbps=0)
        with pytest.raises(ValueError):
            InterconnectSpec(inter_node_bandwidth_gbps=-5)


class TestClusterSpec:
    def test_n_gpus(self):
        assert ClusterSpec(n_nodes=4).n_gpus == 32

    def test_total_memory(self):
        cluster = ClusterSpec(n_nodes=2)
        assert cluster.total_memory_bytes == pytest.approx(16 * 80 * GB)

    def test_device_memory(self):
        assert ClusterSpec(n_nodes=1).device_memory_bytes == pytest.approx(80 * GB)

    def test_node_of_and_local_rank(self):
        cluster = ClusterSpec(n_nodes=2)
        assert cluster.node_of(0) == 0
        assert cluster.node_of(8) == 1
        assert cluster.local_rank_of(11) == 3

    def test_node_of_out_of_range(self):
        cluster = ClusterSpec(n_nodes=1)
        with pytest.raises(ValueError):
            cluster.node_of(8)
        with pytest.raises(ValueError):
            cluster.local_rank_of(-1)

    def test_same_node(self):
        cluster = ClusterSpec(n_nodes=2)
        assert cluster.same_node(0, 7)
        assert not cluster.same_node(7, 8)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            ClusterSpec(n_nodes=0)
        with pytest.raises(ValueError):
            ClusterSpec(n_nodes=1, gpus_per_node=0)

    def test_with_nodes(self):
        cluster = ClusterSpec(n_nodes=2)
        grown = cluster.with_nodes(4)
        assert grown.n_nodes == 4
        assert grown.gpu == cluster.gpu

    def test_sub_cluster_whole_nodes(self):
        cluster = ClusterSpec(n_nodes=4)
        carved = cluster.sub_cluster(2)
        assert carved.n_nodes == 2
        assert carved.gpus_per_node == cluster.gpus_per_node
        assert carved.gpu == cluster.gpu
        assert carved.interconnect == cluster.interconnect
        assert carved.rpc_overhead_s == cluster.rpc_overhead_s

    def test_sub_cluster_sub_node_slice(self):
        cluster = ClusterSpec(n_nodes=4, gpus_per_node=8)
        carved = cluster.sub_cluster(1, 4)
        assert (carved.n_nodes, carved.gpus_per_node) == (1, 4)

    def test_sub_cluster_location_erased(self):
        # Same-shaped partitions must be indistinguishable clusters, so the
        # plan cache can share entries between them.
        cluster = ClusterSpec(n_nodes=4)
        assert cluster.sub_cluster(2) == cluster.sub_cluster(2)

    def test_sub_cluster_rejects_invalid_shapes(self):
        cluster = ClusterSpec(n_nodes=4, gpus_per_node=8)
        with pytest.raises(ValueError):
            cluster.sub_cluster(5)  # more nodes than the cluster has
        with pytest.raises(ValueError):
            cluster.sub_cluster(0)
        with pytest.raises(ValueError):
            cluster.sub_cluster(2, 4)  # multi-node must span whole hosts
        with pytest.raises(ValueError):
            cluster.sub_cluster(1, 3)  # width must divide gpus_per_node
        with pytest.raises(ValueError):
            cluster.sub_cluster(1, 16)  # wider than a node


class TestMakeCluster:
    @pytest.mark.parametrize("n_gpus,expected_nodes", [(8, 1), (16, 2), (64, 8), (128, 16)])
    def test_whole_nodes(self, n_gpus, expected_nodes):
        cluster = make_cluster(n_gpus)
        assert cluster.n_nodes == expected_nodes
        assert cluster.n_gpus == n_gpus

    def test_partial_node(self):
        cluster = make_cluster(4)
        assert cluster.n_nodes == 1
        assert cluster.gpus_per_node == 4

    def test_rejects_non_multiple(self):
        with pytest.raises(ValueError):
            make_cluster(12)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            make_cluster(0)

    def test_custom_gpu_spec(self):
        gpu = dataclasses.replace(H100_SPEC, memory_gb=40.0)
        cluster = make_cluster(8, gpu=gpu)
        assert cluster.device_memory_bytes == pytest.approx(40 * GB)
