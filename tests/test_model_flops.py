"""Tests for the analytical FLOP counts."""

import pytest
from hypothesis import given, strategies as st

from repro.model import flops as F
from repro.model import get_model_config


@pytest.fixture(scope="module")
def cfg7b():
    return get_model_config("7b")


class TestLayerFlops:
    def test_attention_scales_with_tokens(self, cfg7b):
        one = F.attention_forward_flops(cfg7b, 1024, kv_len=512)
        two = F.attention_forward_flops(cfg7b, 2048, kv_len=512)
        assert two == pytest.approx(2 * one)

    def test_mlp_flops_formula(self, cfg7b):
        expected = 2 * 1000 * 3 * cfg7b.hidden_size * cfg7b.intermediate_size
        assert F.mlp_forward_flops(cfg7b, 1000) == pytest.approx(expected)

    def test_layer_is_attention_plus_mlp(self, cfg7b):
        total = F.layer_forward_flops(cfg7b, 512, kv_len=256)
        assert total == pytest.approx(
            F.attention_forward_flops(cfg7b, 512, 256) + F.mlp_forward_flops(cfg7b, 512)
        )


class TestModelFlops:
    def test_forward_roughly_2x_params_per_token(self, cfg7b):
        # The classic 2 * N rule-of-thumb (plus attention): forward FLOPs per
        # token should be within 2x of 2 * param_count for short sequences.
        batch, seqlen = 4, 512
        flops = F.model_forward_flops(cfg7b, batch, seqlen)
        per_token = flops / (batch * seqlen)
        assert 2 * cfg7b.param_count() * 0.8 < per_token < 2 * cfg7b.param_count() * 2.0

    def test_backward_is_twice_forward(self, cfg7b):
        fwd = F.model_forward_flops(cfg7b, 2, 128)
        assert F.model_backward_flops(cfg7b, 2, 128) == pytest.approx(2 * fwd)

    def test_training_is_three_times_forward(self, cfg7b):
        fwd = F.model_forward_flops(cfg7b, 2, 128)
        assert F.training_step_flops(cfg7b, 2, 128) == pytest.approx(3 * fwd)

    def test_critic_head_much_cheaper(self):
        actor = get_model_config("7b")
        critic = get_model_config("7b", critic=True)
        assert F.output_head_flops(critic, 1000) < F.output_head_flops(actor, 1000) / 1000

    def test_larger_model_more_flops(self):
        small = F.model_forward_flops(get_model_config("7b"), 1, 512)
        large = F.model_forward_flops(get_model_config("70b"), 1, 512)
        assert large > 5 * small


class TestGenerationFlops:
    def test_generation_includes_prefill(self, cfg7b):
        prefill_only = F.generation_flops(cfg7b, 4, 128, 0)
        assert prefill_only == pytest.approx(F.prefill_flops(cfg7b, 4, 128))

    def test_generation_grows_with_gen_len(self, cfg7b):
        short = F.generation_flops(cfg7b, 4, 128, 16)
        long = F.generation_flops(cfg7b, 4, 128, 64)
        assert long > short

    def test_decode_step_much_cheaper_than_prefill(self, cfg7b):
        prefill = F.prefill_flops(cfg7b, 4, 1024)
        decode = F.decode_step_flops(cfg7b, 4, 1024)
        assert decode < prefill / 100

    def test_inference_equals_forward(self, cfg7b):
        assert F.inference_flops(cfg7b, 8, 256) == pytest.approx(
            F.model_forward_flops(cfg7b, 8, 256)
        )


@given(batch=st.integers(1, 64), seqlen=st.integers(16, 2048))
def test_flops_positive_and_monotone_in_batch(batch, seqlen):
    """Property: FLOPs are positive and grow with the batch size."""
    cfg = get_model_config("7b")
    base = F.model_forward_flops(cfg, batch, seqlen)
    bigger = F.model_forward_flops(cfg, batch + 1, seqlen)
    assert base > 0
    assert bigger > base
