"""Tests for the tiny functional transformer and its optimizer."""

import numpy as np
import pytest

from repro.rlhf import Adam, TinyLM, TinyLMConfig, generate, GenerationConfig
from repro.rlhf.autograd import Tensor


@pytest.fixture(scope="module")
def model():
    return TinyLM(TinyLMConfig(vocab_size=16, max_seq_len=16, hidden_size=16, n_layers=2, n_heads=2), seed=0)


class TestTinyLM:
    def test_forward_shape(self, model):
        tokens = np.zeros((3, 8), dtype=int)
        logits = model(tokens)
        assert logits.shape == (3, 8, 16)

    def test_critic_forward_shape(self):
        critic = TinyLM(TinyLMConfig(vocab_size=16, max_seq_len=16, hidden_size=16,
                                     n_layers=1, n_heads=2, is_critic=True))
        values = critic(np.zeros((2, 5), dtype=int))
        assert values.shape == (2, 5)

    def test_rejects_long_sequences(self, model):
        with pytest.raises(ValueError):
            model(np.zeros((1, 99), dtype=int))

    def test_rejects_wrong_rank(self, model):
        with pytest.raises(ValueError):
            model(np.zeros(8, dtype=int))

    def test_causality(self, model):
        """Changing a future token must not change earlier logits."""
        rng = np.random.default_rng(0)
        tokens = rng.integers(0, 16, size=(1, 8))
        logits_a = model(tokens).numpy()
        tokens_b = tokens.copy()
        tokens_b[0, -1] = (tokens_b[0, -1] + 1) % 16
        logits_b = model(tokens_b).numpy()
        np.testing.assert_allclose(logits_a[0, :-1], logits_b[0, :-1], atol=1e-10)

    def test_token_log_probs_are_valid(self, model):
        tokens = np.random.default_rng(1).integers(0, 16, size=(2, 6))
        logp = model.token_log_probs(tokens)
        assert logp.shape == (2, 5)
        assert np.all(logp.numpy() <= 0)

    def test_state_dict_roundtrip_and_clone(self, model):
        clone = model.clone()
        tokens = np.zeros((1, 4), dtype=int)
        np.testing.assert_allclose(model(tokens).numpy(), clone(tokens).numpy())
        state = model.state_dict()
        state["head"] = state["head"] * -1.0
        other = TinyLM(model.config, seed=99)
        other.load_state_dict(state)
        assert not np.allclose(other(tokens).numpy(), model(tokens).numpy())

    def test_load_state_dict_missing_key(self, model):
        state = model.state_dict()
        del state["wte"]
        with pytest.raises(KeyError):
            TinyLM(model.config).load_state_dict(state)

    def test_parameter_count_positive(self, model):
        assert model.n_parameters() == sum(p.size for p in model.parameters())

    def test_language_model_can_memorise_sequence(self):
        """Supervised sanity check: the LM overfits a single repeated sequence."""
        config = TinyLMConfig(vocab_size=8, max_seq_len=10, hidden_size=16, n_layers=1, n_heads=2)
        model = TinyLM(config, seed=0)
        optimizer = Adam(model.parameters(), lr=3e-2)
        tokens = np.array([[1, 2, 3, 4, 5, 6, 7, 1]])
        losses = []
        for _ in range(40):
            logp = model.token_log_probs(tokens)
            loss = logp.mean() * -1.0
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0] * 0.5


class TestAdam:
    def test_step_moves_parameters_against_gradient(self):
        p = Tensor(np.zeros(3), requires_grad=True)
        optimizer = Adam([p], lr=0.1)
        (p * Tensor(np.array([1.0, -1.0, 2.0]))).sum().backward()
        optimizer.step()
        assert p.data[0] < 0 and p.data[1] > 0 and p.data[2] < 0

    def test_skips_parameters_without_grad(self):
        p = Tensor(np.ones(2), requires_grad=True)
        optimizer = Adam([p], lr=0.1)
        optimizer.step()  # no gradient accumulated yet
        np.testing.assert_allclose(p.data, np.ones(2))

    def test_weight_decay_shrinks_weights(self):
        p = Tensor(np.full(4, 10.0), requires_grad=True)
        optimizer = Adam([p], lr=0.5, weight_decay=1.0)
        (p * 0.0).sum().backward()
        optimizer.step()
        assert np.all(np.abs(p.data) < 10.0)

    def test_zero_grad(self):
        p = Tensor(np.ones(2), requires_grad=True)
        optimizer = Adam([p])
        (p * 2.0).sum().backward()
        optimizer.zero_grad()
        assert p.grad is None


class TestGeneration:
    def test_shapes_and_prompt_preserved(self, model):
        prompts = np.random.default_rng(0).integers(0, 16, size=(4, 5))
        out = generate(model, prompts, GenerationConfig(max_new_tokens=6, seed=0))
        assert out.sequences.shape == (4, 11)
        assert out.responses.shape == (4, 6)
        np.testing.assert_array_equal(out.sequences[:, :5], prompts)
        assert out.response_log_probs.shape == (4, 6)
        assert np.all(out.response_log_probs <= 0)

    def test_tokens_within_vocab(self, model):
        out = generate(model, np.zeros((2, 3), dtype=int), GenerationConfig(max_new_tokens=8, seed=1))
        assert out.sequences.max() < model.config.vocab_size
        assert out.sequences.min() >= 0

    def test_greedy_is_deterministic(self, model):
        prompts = np.ones((2, 4), dtype=int)
        a = generate(model, prompts, GenerationConfig(max_new_tokens=5, greedy=True, seed=0))
        b = generate(model, prompts, GenerationConfig(max_new_tokens=5, greedy=True, seed=123))
        np.testing.assert_array_equal(a.sequences, b.sequences)

    def test_sampling_seed_reproducible(self, model):
        prompts = np.ones((2, 4), dtype=int)
        a = generate(model, prompts, GenerationConfig(max_new_tokens=5, seed=7))
        b = generate(model, prompts, GenerationConfig(max_new_tokens=5, seed=7))
        np.testing.assert_array_equal(a.sequences, b.sequences)

    def test_top_k_restricts_choices(self, model):
        prompts = np.zeros((1, 3), dtype=int)
        out = generate(model, prompts, GenerationConfig(max_new_tokens=10, top_k=1, seed=0))
        greedy = generate(model, prompts, GenerationConfig(max_new_tokens=10, greedy=True))
        np.testing.assert_array_equal(out.sequences, greedy.sequences)

    def test_length_overflow_rejected(self, model):
        with pytest.raises(ValueError):
            generate(model, np.zeros((1, 10), dtype=int), GenerationConfig(max_new_tokens=100))

    def test_bad_temperature_rejected(self, model):
        with pytest.raises(ValueError):
            generate(model, np.zeros((1, 3), dtype=int), GenerationConfig(temperature=0.0))
