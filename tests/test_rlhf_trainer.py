"""End-to-end functional tests: the RLHF algorithms actually learn."""

import numpy as np
import pytest

from repro.rlhf import (
    DPOTrainer,
    GRPOTrainer,
    KeywordReward,
    LengthReward,
    PPOConfig,
    PPOTrainer,
    ReMaxTrainer,
    RLHFTask,
    TinyLMConfig,
    TinyRewardModel,
)


TASK = RLHFTask(vocab_size=12, prompt_len=3, gen_len=5, batch_size=16, target_token=2, seed=0)


class TestRewards:
    def test_keyword_reward_counts_target(self):
        reward = KeywordReward(target_token=2)
        sequences = np.array([[9, 9, 2, 2, 2, 0], [9, 9, 0, 0, 0, 0]])
        np.testing.assert_allclose(reward(sequences, prompt_len=2), [0.75, 0.0])

    def test_length_reward(self):
        reward = LengthReward(stop_token=0)
        sequences = np.array([[5, 1, 2, 0, 3], [5, 1, 2, 3, 4]])
        np.testing.assert_allclose(reward(sequences, prompt_len=1), [0.5, 1.0])

    def test_tiny_reward_model_scores(self):
        model = TinyRewardModel(TinyLMConfig(vocab_size=12, max_seq_len=12, hidden_size=16,
                                             n_layers=1, n_heads=2))
        scores = model(np.zeros((3, 6), dtype=int), prompt_len=2)
        assert scores.shape == (3,)


class TestPPOTrainer:
    def test_step_produces_stats(self):
        trainer = PPOTrainer(TASK, PPOConfig(n_minibatches=2), seed=0)
        stats = trainer.step()
        assert stats.iteration == 1
        assert 0.0 <= stats.mean_reward <= 1.0
        assert np.isfinite(stats.policy_loss)
        assert np.isfinite(stats.value_loss)

    def test_reference_model_stays_frozen(self):
        trainer = PPOTrainer(TASK, PPOConfig(n_minibatches=2), seed=0)
        before = {k: v.copy() for k, v in trainer.reference.state_dict().items()}
        trainer.train(2)
        after = trainer.reference.state_dict()
        for key in before:
            np.testing.assert_array_equal(before[key], after[key])

    def test_actor_parameters_change(self):
        trainer = PPOTrainer(TASK, PPOConfig(n_minibatches=2), seed=0)
        before = trainer.actor.state_dict()["head"].copy()
        trainer.step()
        assert not np.allclose(before, trainer.actor.state_dict()["head"])

    def test_ppo_improves_reward(self):
        """The core functional claim: PPO pushes the scripted reward up."""
        trainer = PPOTrainer(
            RLHFTask(vocab_size=10, prompt_len=2, gen_len=4, batch_size=24, target_token=3, seed=1),
            PPOConfig(n_minibatches=2, learning_rate=8e-3, kl_coef=0.02),
            seed=1,
        )
        stats = trainer.train(12)
        early = np.mean([s.mean_reward for s in stats[:3]])
        late = np.mean([s.mean_reward for s in stats[-3:]])
        assert late > early + 0.05


class TestOtherTrainers:
    def test_dpo_loss_decreases(self):
        trainer = DPOTrainer(TASK, beta=0.5, lr=5e-3, seed=0)
        stats = trainer.train(8)
        assert stats[-1].policy_loss < stats[0].policy_loss + 1e-6
        assert all(np.isfinite(s.policy_loss) for s in stats)

    def test_remax_improves_reward(self):
        trainer = ReMaxTrainer(
            RLHFTask(vocab_size=10, prompt_len=2, gen_len=4, batch_size=24, target_token=3, seed=2),
            lr=8e-3, seed=2,
        )
        stats = trainer.train(12)
        early = np.mean([s.mean_reward for s in stats[:3]])
        late = np.mean([s.mean_reward for s in stats[-3:]])
        assert late > early

    def test_grpo_improves_reward(self):
        trainer = GRPOTrainer(
            RLHFTask(vocab_size=10, prompt_len=2, gen_len=4, batch_size=8, target_token=3, seed=3),
            group_size=4, lr=8e-3, seed=3,
        )
        stats = trainer.train(10)
        early = np.mean([s.mean_reward for s in stats[:3]])
        late = np.mean([s.mean_reward for s in stats[-3:]])
        assert late > early

    def test_grpo_requires_group(self):
        with pytest.raises(ValueError):
            GRPOTrainer(TASK, group_size=1)
