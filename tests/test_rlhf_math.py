"""Tests for the PPO / DPO / GRPO / ReMax numerical kernels."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.rlhf import (
    compute_gae,
    dpo_implicit_rewards,
    dpo_loss,
    group_normalized_advantages,
    grpo_policy_loss,
    kl_penalty_rewards,
    ppo_policy_loss,
    ppo_value_loss,
    remax_advantages,
    remax_policy_loss,
    whiten,
)
from repro.rlhf.autograd import Tensor

RNG = np.random.default_rng(0)


class TestGAE:
    def test_single_step_equals_delta(self):
        rewards = np.array([[1.0]])
        values = np.array([[0.25]])
        advantages, returns = compute_gae(rewards, values, gamma=1.0, gae_lambda=0.95)
        assert advantages[0, 0] == pytest.approx(0.75)
        assert returns[0, 0] == pytest.approx(1.0)

    def test_lambda_zero_is_td_error(self):
        rewards = RNG.normal(size=(2, 5))
        values = RNG.normal(size=(2, 5))
        advantages, _ = compute_gae(rewards, values, gamma=0.9, gae_lambda=0.0)
        next_values = np.concatenate([values[:, 1:], np.zeros((2, 1))], axis=1)
        expected = rewards + 0.9 * next_values - values
        np.testing.assert_allclose(advantages, expected)

    def test_lambda_one_is_monte_carlo(self):
        rewards = RNG.normal(size=(1, 6))
        values = RNG.normal(size=(1, 6))
        advantages, returns = compute_gae(rewards, values, gamma=1.0, gae_lambda=1.0)
        discounted = np.cumsum(rewards[0][::-1])[::-1]
        np.testing.assert_allclose(returns[0], discounted)

    def test_zero_values_returns_equal_reward_to_go(self):
        rewards = np.array([[0.0, 0.0, 1.0]])
        values = np.zeros((1, 3))
        _, returns = compute_gae(rewards, values, gamma=1.0, gae_lambda=1.0)
        np.testing.assert_allclose(returns, [[1.0, 1.0, 1.0]])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            compute_gae(np.zeros((2, 3)), np.zeros((2, 4)))

    @settings(max_examples=20, deadline=None)
    @given(
        rewards=hnp.arrays(np.float64, (3, 7), elements=st.floats(-2, 2)),
        values=hnp.arrays(np.float64, (3, 7), elements=st.floats(-2, 2)),
    )
    def test_returns_equal_advantages_plus_values(self, rewards, values):
        advantages, returns = compute_gae(rewards, values)
        np.testing.assert_allclose(returns, advantages + values, atol=1e-9)


class TestWhitenAndRewards:
    def test_whiten_zero_mean_unit_std(self):
        out = whiten(RNG.normal(3.0, 2.0, size=(4, 8)))
        assert abs(out.mean()) < 1e-9
        assert out.std() == pytest.approx(1.0, rel=1e-6)

    def test_whiten_keep_mean(self):
        values = RNG.normal(5.0, 2.0, size=100)
        out = whiten(values, shift_mean=False)
        assert out.mean() == pytest.approx(values.mean(), rel=1e-6)

    def test_kl_penalty_rewards_structure(self):
        actor = np.log(np.full((2, 4), 0.5))
        ref = np.log(np.full((2, 4), 0.25))
        rewards = kl_penalty_rewards(np.array([1.0, 2.0]), actor, ref, kl_coef=0.1)
        # Every token pays the same KL penalty; the score lands on the last token.
        expected_kl = -0.1 * (np.log(0.5) - np.log(0.25))
        np.testing.assert_allclose(rewards[:, :-1], expected_kl)
        assert rewards[0, -1] == pytest.approx(expected_kl + 1.0)
        assert rewards[1, -1] == pytest.approx(expected_kl + 2.0)

    def test_kl_penalty_shape_mismatch(self):
        with pytest.raises(ValueError):
            kl_penalty_rewards(np.zeros(2), np.zeros((2, 3)), np.zeros((2, 4)), 0.1)


class TestPPOLosses:
    def test_policy_loss_zero_advantage_is_zero(self):
        logp = Tensor(RNG.normal(size=(4, 6)), requires_grad=True)
        loss = ppo_policy_loss(logp, logp.numpy(), np.zeros((4, 6)))
        assert loss.item() == pytest.approx(0.0)

    def test_policy_gradient_points_toward_advantage(self):
        old = np.log(np.full((1, 3), 0.5))
        logp = Tensor(old.copy(), requires_grad=True)
        advantages = np.array([[1.0, -1.0, 0.0]])
        loss = ppo_policy_loss(logp, old, advantages)
        loss.backward()
        # Positive advantage: increase log-prob (negative gradient of loss).
        assert logp.grad[0, 0] < 0
        assert logp.grad[0, 1] > 0

    def test_clipping_caps_the_update(self):
        old = np.zeros((1, 1))
        advantages = np.ones((1, 1))
        inside = ppo_policy_loss(Tensor(np.array([[0.1]])), old, advantages, clip_ratio=0.2)
        outside = ppo_policy_loss(Tensor(np.array([[5.0]])), old, advantages, clip_ratio=0.2)
        # Once the ratio exceeds 1+clip, the objective stops improving.
        assert outside.item() == pytest.approx(-1.2, rel=1e-6)
        assert inside.item() > outside.item()

    def test_value_loss_zero_at_target(self):
        returns = RNG.normal(size=(3, 4))
        loss = ppo_value_loss(Tensor(returns.copy()), returns.copy(), returns)
        assert loss.item() == pytest.approx(0.0)

    def test_value_loss_positive_otherwise(self):
        returns = np.zeros((2, 2))
        loss = ppo_value_loss(Tensor(np.ones((2, 2))), np.ones((2, 2)), returns)
        assert loss.item() > 0


class TestDPO:
    def test_loss_decreases_when_margin_grows(self):
        ref_c = np.zeros(4)
        ref_r = np.zeros(4)
        small = dpo_loss(Tensor(np.zeros(4)), Tensor(np.zeros(4)), ref_c, ref_r)
        large = dpo_loss(Tensor(np.full(4, 2.0)), Tensor(np.full(4, -2.0)), ref_c, ref_r)
        assert large.item() < small.item()

    def test_loss_at_zero_margin_is_log2(self):
        loss = dpo_loss(Tensor(np.zeros(8)), Tensor(np.zeros(8)), np.zeros(8), np.zeros(8))
        assert loss.item() == pytest.approx(np.log(2.0), rel=1e-6)

    def test_gradient_prefers_chosen(self):
        chosen = Tensor(np.zeros(2), requires_grad=True)
        rejected = Tensor(np.zeros(2), requires_grad=True)
        dpo_loss(chosen, rejected, np.zeros(2), np.zeros(2)).backward()
        assert np.all(chosen.grad < 0)       # push chosen log-probs up
        assert np.all(rejected.grad > 0)     # push rejected log-probs down

    def test_implicit_rewards(self):
        rewards = dpo_implicit_rewards(np.array([1.0]), np.array([0.5]), beta=0.2)
        assert rewards[0] == pytest.approx(0.1)


class TestGRPO:
    def test_group_advantages_zero_mean_unit_std(self):
        rewards = RNG.normal(size=24)
        advantages = group_normalized_advantages(rewards, group_size=8)
        grouped = advantages.reshape(-1, 8)
        np.testing.assert_allclose(grouped.mean(axis=1), 0.0, atol=1e-9)
        np.testing.assert_allclose(grouped.std(axis=1), 1.0, rtol=1e-3)

    def test_constant_group_gets_zero_advantage(self):
        advantages = group_normalized_advantages(np.full(8, 3.0), group_size=4)
        np.testing.assert_allclose(advantages, 0.0, atol=1e-6)

    def test_invalid_group_size(self):
        with pytest.raises(ValueError):
            group_normalized_advantages(np.zeros(10), group_size=3)
        with pytest.raises(ValueError):
            group_normalized_advantages(np.zeros(8), group_size=0)

    def test_grpo_loss_prefers_best_of_group(self):
        old = np.zeros((4, 3))
        logp = Tensor(old.copy(), requires_grad=True)
        rewards = np.array([0.0, 0.0, 0.0, 1.0])
        grpo_policy_loss(logp, old, rewards, group_size=4).backward()
        # The highest-reward sample's tokens get pushed up (negative gradient).
        assert np.all(logp.grad[3] < 0)
        assert np.all(logp.grad[:3] >= 0)


class TestReMax:
    def test_advantages_subtract_greedy_baseline(self):
        adv = remax_advantages(np.array([1.0, 0.5]), np.array([0.25, 0.75]))
        np.testing.assert_allclose(adv, [0.75, -0.25])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            remax_advantages(np.zeros(2), np.zeros(3))

    def test_loss_gradient_sign(self):
        logp = Tensor(np.zeros((2, 3)), requires_grad=True)
        remax_policy_loss(logp, np.array([1.0, 0.0]), np.array([0.0, 1.0])).backward()
        assert np.all(logp.grad[0] < 0)  # better-than-greedy: reinforce
        assert np.all(logp.grad[1] > 0)  # worse-than-greedy: discourage

    def test_zero_advantage_zero_loss(self):
        logp = Tensor(RNG.normal(size=(3, 4)))
        loss = remax_policy_loss(logp, np.ones(3), np.ones(3))
        assert loss.item() == pytest.approx(0.0)
