"""Tests for parameter offloading decisions."""

import pytest

from repro.cluster import full_cluster_mesh, make_cluster
from repro.core import Allocation, ParallelStrategy
from repro.model import get_model_config
from repro.realloc import offload_cost, should_offload


@pytest.fixture(scope="module")
def alloc8():
    cluster = make_cluster(8)
    return cluster, Allocation(full_cluster_mesh(cluster), ParallelStrategy(1, 8, 1))


class TestOffloadCost:
    def test_round_trip_is_offload_plus_reload(self, alloc8):
        cluster, alloc = alloc8
        decision = offload_cost(get_model_config("7b"), alloc, cluster)
        assert decision.round_trip_seconds == pytest.approx(
            decision.offload_seconds + decision.reload_seconds
        )
        assert decision.offload_seconds > 0

    def test_bytes_match_shard_size(self, alloc8):
        cluster, alloc = alloc8
        config = get_model_config("7b")
        decision = offload_cost(config, alloc, cluster)
        assert decision.bytes_per_gpu == pytest.approx(config.param_count() / 8 * 2)

    def test_larger_model_longer_transfer(self, alloc8):
        cluster, alloc = alloc8
        small = offload_cost(get_model_config("7b"), alloc, cluster)
        large = offload_cost(get_model_config("70b"), alloc, cluster)
        assert large.offload_seconds > small.offload_seconds


class TestShouldOffload:
    def test_offloads_under_pressure_with_long_idle(self, alloc8):
        cluster, alloc = alloc8
        decision = should_offload(
            get_model_config("7b"), alloc, cluster, idle_seconds=100.0, memory_pressure=0.9
        )
        assert decision.offload

    def test_keeps_resident_when_memory_is_plentiful(self, alloc8):
        cluster, alloc = alloc8
        decision = should_offload(
            get_model_config("7b"), alloc, cluster, idle_seconds=100.0, memory_pressure=0.2
        )
        assert not decision.offload

    def test_keeps_resident_for_short_idle(self, alloc8):
        cluster, alloc = alloc8
        decision = should_offload(
            get_model_config("7b"), alloc, cluster, idle_seconds=0.01, memory_pressure=0.95
        )
        assert not decision.offload
