"""Tests for online plan sessions on the service and the cache staleness hook."""

from __future__ import annotations

import pytest

from repro.algorithms import build_ppo_graph
from repro.cluster import make_cluster
from repro.core import SearchConfig, instructgpt_workload
from repro.service import PlanCache, PlanCacheEntry, PlanRequest, PlanService


def _request(batch_size=128, n_gpus=8, max_iterations=40, seed=0):
    return PlanRequest(
        graph=build_ppo_graph(),
        workload=instructgpt_workload("7b", "7b", batch_size=batch_size),
        cluster=make_cluster(n_gpus),
        search=SearchConfig(
            max_iterations=max_iterations,
            time_budget_s=30.0,
            seed=seed,
            record_history=False,
        ),
    )


@pytest.fixture()
def service():
    svc = PlanService(max_workers=2)
    yield svc
    svc.shutdown()


class TestSessionLifecycle:
    def test_start_poll_stop_roundtrip(self, service):
        request = _request()
        handle = service.start_session(request, slice_iterations=10)
        assert service.active_sessions == [handle.session_id]
        assert service.stats.sessions_started == 1

        status = handle.poll()
        assert status.n_iterations == 10
        assert status.session_id == handle.session_id
        assert service.stats.session_polls == 1

        while not handle.done:
            handle.poll()
        response = service.stop_session(handle.session_id)
        assert service.active_sessions == []
        assert response.cost == handle.session.best_cost
        assert response.plan.assignments == handle.best_so_far()[0].assignments
        assert response.stats.fingerprint == request.fingerprint().key
        assert response.result.n_iterations == 40

    def test_session_matches_blocking_search(self, service):
        """A drained session serves exactly what submit() would have."""
        request = _request(seed=7)
        handle = service.start_session(request, slice_iterations=13)
        while not handle.done:
            handle.poll()
        session_response = service.stop_session(handle.session_id)

        with PlanService(max_workers=2) as fresh:
            blocking = fresh.plan(request)
        assert session_response.cost == blocking.cost
        assert session_response.plan.to_dict() == blocking.plan.to_dict()

    def test_poll_session_and_get_session(self, service):
        handle = service.start_session(_request(), slice_iterations=5)
        assert service.get_session(handle.session_id) is handle
        status = service.poll_session(handle.session_id)
        assert status.n_iterations == 5
        service.stop_session(handle.session_id)
        with pytest.raises(KeyError):
            service.get_session(handle.session_id)

    def test_stop_is_idempotent(self, service):
        handle = service.start_session(_request(), slice_iterations=5)
        first = handle.stop()
        assert handle.stop() is first
        with pytest.raises(RuntimeError):
            handle.poll()

    def test_shutdown_settles_open_sessions(self):
        service = PlanService(max_workers=2)
        handle = service.start_session(_request(), slice_iterations=5)
        handle.poll()
        service.shutdown()
        assert handle.closed
        assert service.active_sessions == []
        with pytest.raises(RuntimeError):
            service.start_session(_request())

    def test_session_seeded_from_cached_entry(self, service):
        """A session never starts worse than the cache already knows."""
        request = _request(seed=11, max_iterations=300)
        cached = service.plan(request)
        handle = service.start_session(request, slice_iterations=10)
        _, cost = handle.best_so_far()
        assert cost <= cached.cost
        service.stop_session(handle.session_id)


class TestCacheRefresh:
    def _entry(self, key="k", best_cost=1.0):
        return PlanCacheEntry(
            key=key,
            family="f",
            features={},
            cluster_shape=(1, 8),
            plan_data={"assignments": {}, "cluster_shape": [1, 8]},
            best_cost=best_cost,
            initial_cost=2.0,
        )

    def test_refresh_inserts_missing_key(self):
        cache = PlanCache()
        assert cache.refresh(self._entry(best_cost=1.0))
        assert cache.peek("k").best_cost == 1.0

    def test_refresh_only_replaces_worse_entries(self):
        cache = PlanCache()
        cache.put(self._entry(best_cost=1.0))
        assert not cache.refresh(self._entry(best_cost=1.0))  # ties keep old
        assert not cache.refresh(self._entry(best_cost=1.5))
        assert cache.peek("k").best_cost == 1.0
        assert cache.refresh(self._entry(best_cost=0.5))
        assert cache.peek("k").best_cost == 0.5

    def test_refresh_persists(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = PlanCache(persist_path=str(path))
        cache.refresh(self._entry(best_cost=0.75))
        reloaded = PlanCache(persist_path=str(path))
        assert reloaded.peek("k").best_cost == 0.75

    def test_improving_session_refreshes_worse_cached_entry(self, service):
        """The staleness hook: a pre-seeded worse entry gets replaced."""
        request = _request(seed=3, max_iterations=60)
        fingerprint = request.fingerprint()
        # Pre-populate the exact key with an absurdly bad cached plan (the
        # greedy initial re-costed with an inflated best_cost).
        probe = service.start_session(request, slice_iterations=1)
        plan, cost = probe.best_so_far()
        probe.stop()
        service.cache.put(
            PlanCacheEntry(
                key=fingerprint.key,
                family=fingerprint.family,
                features=dict(fingerprint.features),
                cluster_shape=(request.cluster.n_nodes, request.cluster.gpus_per_node),
                plan_data=plan.to_dict(),
                best_cost=cost * 100.0,
                initial_cost=cost * 100.0,
            )
        )
        before = service.stats.cache_refreshes
        handle = service.start_session(request, slice_iterations=20)
        while not handle.done:
            handle.poll()
        response = service.stop_session(handle.session_id)
        assert service.stats.cache_refreshes > before
        entry = service.cache.peek(fingerprint.key)
        assert entry.best_cost == response.cost
        assert entry.best_cost < cost * 100.0
