"""Tests of the shared simulation kernel: events, clock, resources, traces."""

import json

import pytest

from repro.sim import (
    ResourceTimeline,
    SimKernel,
    TimelinePool,
    TraceRecorder,
    TraceSpan,
    load_chrome_trace,
    validate_chrome_events,
)


class TestSimKernel:
    def test_events_pop_in_time_priority_seq_order(self):
        kernel = SimKernel()
        kernel.schedule(2.0, "late")
        kernel.schedule(1.0, "b", priority=1)
        kernel.schedule(1.0, "a", priority=0)
        kernel.schedule(1.0, "c", priority=1)
        order = [kernel.pop().kind for _ in range(4)]
        assert order == ["a", "b", "c", "late"]

    def test_clock_is_monotone_even_for_past_events(self):
        kernel = SimKernel()
        kernel.schedule(5.0, "x")
        kernel.pop()
        assert kernel.now == 5.0
        kernel.schedule(3.0, "past")
        event = kernel.pop()
        assert event.time == 3.0
        assert kernel.now == 5.0  # observer clock never rewinds

    def test_cancelled_events_are_skipped(self):
        kernel = SimKernel()
        doomed = kernel.schedule(1.0, "doomed")
        kernel.schedule(2.0, "kept")
        kernel.cancel(doomed)
        assert len(kernel) == 1
        assert kernel.peek_time() == 2.0
        assert kernel.pop().kind == "kept"
        assert kernel.empty
        with pytest.raises(IndexError):
            kernel.pop()

    def test_run_drains_timestamps_before_hook(self):
        kernel = SimKernel()
        seen = []
        drains = []

        def handler(event):
            seen.append((event.time, event.kind))
            if event.kind == "spawn":
                # Same-timestamp events scheduled mid-drain are included.
                kernel.schedule(event.time, "child", priority=9)

        kernel.schedule(1.0, "spawn")
        kernel.schedule(1.0, "peer")
        kernel.schedule(2.0, "later")
        kernel.run(handler, on_timestamp_drained=drains.append)
        assert seen == [(1.0, "spawn"), (1.0, "peer"), (1.0, "child"), (2.0, "later")]
        assert drains == [1.0, 2.0]
        assert kernel.n_processed == 4

    def test_handler_may_keep_scheduling(self):
        kernel = SimKernel()
        ticks = []

        def handler(event):
            ticks.append(event.time)
            if event.time < 3.0:
                kernel.schedule(event.time + 1.0, "tick")

        kernel.schedule(0.0, "tick")
        kernel.run(handler)
        assert ticks == [0.0, 1.0, 2.0, 3.0]


class TestResourceTimeline:
    def test_occupy_and_categories(self):
        timeline = ResourceTimeline(resource_id=7)
        end = timeline.occupy(0.0, {"compute": 2.0, "idle": 0.0, "comm": 1.0}, "call")
        assert end == pytest.approx(3.0)
        assert timeline.free_at == pytest.approx(3.0)
        assert [s.category for s in timeline.spans] == ["compute", "comm"]
        assert timeline.busy_seconds("compute") == pytest.approx(2.0)
        assert timeline.categories() == pytest.approx({"compute": 2.0, "comm": 1.0})

    def test_fifo_enforced(self):
        timeline = ResourceTimeline(resource_id=0)
        timeline.occupy(0.0, {"compute": 2.0}, "a")
        with pytest.raises(ValueError):
            timeline.occupy(1.0, {"compute": 1.0}, "b")

    def test_pool_group_queries(self):
        pool = TimelinePool(3)
        pool[1].occupy(0.0, {"compute": 4.0}, "x")
        pool[2].occupy(0.0, {"comm": 1.0}, "y")
        assert pool.free_at((0, 1, 2)) == pytest.approx(4.0)
        assert pool.total_busy() == pytest.approx(5.0)
        assert pool.category_totals() == pytest.approx({"compute": 4.0, "comm": 1.0})
        assert len(pool) == 3


class TestChromeTraceRoundTrip:
    """Satellite: every emitted event carries the Trace Event Format required
    keys (``ph``, ``ts``, ``pid``, ``tid``, ``name``) and the exported file
    loads cleanly via ``json.load``."""

    def _recorder(self):
        recorder = TraceRecorder()
        recorder.add_span("job a", "gpu 0", "actor_train", 0.5, 1.5, category="compute")
        recorder.add_trace_span(
            "job a", "gpu 1", TraceSpan("gen", "compute", 0.0, 0.25), offset_s=2.0
        )
        recorder.add_instant("cluster", "events", "failure: node 0", 1.0,
                             args={"detail": "node 0 down"})
        return recorder

    def test_required_keys_present_on_every_event(self):
        events = self._recorder().events()
        for event in events:
            for key in ("ph", "ts", "pid", "tid", "name"):
                assert key in event
        phases = {e["ph"] for e in events}
        assert phases == {"M", "X", "i"}
        for event in events:
            if event["ph"] == "X":
                assert isinstance(event["dur"], float)

    def test_round_trip_through_json_load(self, tmp_path):
        path = self._recorder().save(tmp_path / "trace.json")
        with open(path) as handle:
            payload = json.load(handle)  # loads cleanly
        assert payload["traceEvents"]
        events = load_chrome_trace(path)
        assert len(events) == len(payload["traceEvents"])
        # Offsets and unit conversion: the shifted span starts at 2.0 s.
        gen = next(e for e in events if e["name"] == "gen")
        assert gen["ts"] == pytest.approx(2.0e6)
        assert gen["dur"] == pytest.approx(0.25e6)

    def test_process_and_thread_metadata(self):
        events = self._recorder().events()
        names = {
            (e["pid"], e["tid"], e["args"]["name"])
            for e in events
            if e["ph"] == "M"
        }
        labels = {label for _, _, label in names}
        assert {"job a", "gpu 0", "gpu 1", "cluster", "events"} <= labels

    def test_validation_rejects_broken_events(self):
        with pytest.raises(ValueError):
            validate_chrome_events([{"ph": "X", "ts": 0, "pid": 1, "tid": 1}])  # no name
        with pytest.raises(ValueError):
            validate_chrome_events(
                [{"ph": "X", "ts": 0, "pid": 1, "tid": 1, "name": "x"}]  # no dur
            )
        with pytest.raises(ValueError):
            validate_chrome_events(
                [{"ph": "i", "ts": "zero", "pid": 1, "tid": 1, "name": "x"}]
            )


class TestEngineChromeExport:
    def test_iteration_trace_exports_loadable_chrome_trace(self, tmp_path):
        from repro.algorithms import build_graph
        from repro.cluster import make_cluster
        from repro.core import ParallelStrategy, instructgpt_workload, symmetric_plan
        from repro.runtime import RuntimeEngine

        cluster = make_cluster(8)
        workload = instructgpt_workload("7b", "7b", batch_size=64)
        graph = build_graph("ppo")
        plan = symmetric_plan(graph, cluster, ParallelStrategy(1, 8, 1), n_microbatches=4)
        trace = RuntimeEngine(cluster, workload).run_iteration(graph, plan)
        path = trace.export_chrome_trace(str(tmp_path / "iteration.json"))
        events = load_chrome_trace(path)
        span_names = {e["name"] for e in events if e["ph"] == "X"}
        assert set(graph.call_names) <= span_names
        # One thread row per GPU plus the calls overview row.
        thread_labels = {
            e["args"]["name"] for e in events if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert {"calls"} | {f"gpu {g}" for g in range(8)} <= thread_labels
