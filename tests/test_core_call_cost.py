"""Tests for per-call cost breakdowns (generation / inference / training)."""

import pytest

from repro.cluster import DeviceMesh, full_cluster_mesh, make_cluster
from repro.core import Allocation, CallCostModel, ParallelStrategy
from repro.core.profiler import AnalyticalProvider
from repro.core.workload import CallWorkload
from repro.core.dataflow import FunctionCallType, ModelFunctionCall
from repro.model import get_model_config


@pytest.fixture(scope="module")
def cluster():
    return make_cluster(16)


@pytest.fixture(scope="module")
def cost_model(cluster):
    config = get_model_config("7b")
    return CallCostModel(config, cluster, AnalyticalProvider(config, cluster))


def alloc(cluster, dp, tp, pp, mbs=1, zero3=False):
    return Allocation(
        mesh=full_cluster_mesh(cluster),
        parallel=ParallelStrategy(dp=dp, tp=tp, pp=pp),
        n_microbatches=mbs,
        zero3=zero3,
    )


GEN_CALL = ModelFunctionCall("g", "actor", FunctionCallType.GENERATE)
INF_CALL = ModelFunctionCall("i", "actor", FunctionCallType.INFERENCE)
TRAIN_CALL = ModelFunctionCall("t", "actor", FunctionCallType.TRAIN_STEP)


class TestGeneration:
    def test_decode_dominates_generation(self, cost_model, cluster):
        wl = CallWorkload(batch_size=128, prompt_len=1024, gen_len=1024)
        bd = cost_model.generation_breakdown(wl, alloc(cluster, 2, 8, 1))
        prefill_only = cost_model.generation_breakdown(
            CallWorkload(batch_size=128, prompt_len=1024, gen_len=0), alloc(cluster, 2, 8, 1)
        )
        assert bd.total > 5 * prefill_only.total

    def test_pipeline_adds_bubble_and_p2p(self, cost_model, cluster):
        wl = CallWorkload(batch_size=128, prompt_len=512, gen_len=256)
        no_pp = cost_model.generation_breakdown(wl, alloc(cluster, 2, 8, 1))
        with_pp = cost_model.generation_breakdown(wl, alloc(cluster, 2, 2, 4))
        assert no_pp.pp_comm == 0.0
        assert with_pp.pp_comm > 0.0
        assert with_pp.bubble > no_pp.bubble

    def test_cuda_graph_speeds_up_decode(self, cluster):
        config = get_model_config("7b")
        provider = AnalyticalProvider(config, cluster)
        fast = CallCostModel(config, cluster, provider, use_cuda_graph=True)
        slow = CallCostModel(config, cluster, provider, use_cuda_graph=False)
        wl = CallWorkload(batch_size=64, prompt_len=512, gen_len=512)
        a = alloc(cluster, 2, 8, 1)
        assert slow.generation_breakdown(wl, a).total > fast.generation_breakdown(wl, a).total


class TestInference:
    def test_excess_tp_hurts(self, cost_model, cluster):
        wl = CallWorkload(batch_size=128, prompt_len=1024, gen_len=1024)
        # Cross-node TP=16 must be worse than intra-node TP=8 + DP.
        tp16 = cost_model.inference_breakdown(wl, alloc(cluster, 1, 16, 1))
        tp8 = cost_model.inference_breakdown(wl, alloc(cluster, 2, 8, 1))
        assert tp16.total > tp8.total

    def test_zero3_adds_collective_cost(self, cost_model, cluster):
        wl = CallWorkload(batch_size=128, prompt_len=1024, gen_len=1024)
        plain = cost_model.inference_breakdown(wl, alloc(cluster, 16, 1, 1))
        zero3 = cost_model.inference_breakdown(wl, alloc(cluster, 16, 1, 1, zero3=True))
        assert zero3.coll_comm > plain.coll_comm

    def test_microbatches_increase_pipeline_utilisation(self, cost_model, cluster):
        wl = CallWorkload(batch_size=128, prompt_len=1024, gen_len=1024)
        one = cost_model.inference_breakdown(wl, alloc(cluster, 2, 2, 4, mbs=1))
        eight = cost_model.inference_breakdown(wl, alloc(cluster, 2, 2, 4, mbs=8))
        # The bubble share of total time shrinks with more micro-batches.
        assert eight.bubble / eight.total < one.bubble / one.total


class TestTraining:
    def test_minibatches_scale_cost(self, cost_model, cluster):
        wl1 = CallWorkload(batch_size=128, prompt_len=512, gen_len=512, n_minibatches=1)
        wl4 = CallWorkload(batch_size=128, prompt_len=512, gen_len=512, n_minibatches=4)
        a = alloc(cluster, 2, 8, 1)
        t1 = cost_model.training_breakdown(wl1, a).total
        t4 = cost_model.training_breakdown(wl4, a).total
        # Same total data, but 4 sequential updates add optimizer/allreduce cost.
        assert t4 > t1

    def test_dp_gradient_allreduce_counted(self, cost_model, cluster):
        wl = CallWorkload(batch_size=128, prompt_len=512, gen_len=512, n_minibatches=1)
        dp16 = cost_model.training_breakdown(wl, alloc(cluster, 16, 1, 1))
        dp1_pp16 = cost_model.training_breakdown(wl, alloc(cluster, 1, 1, 16))
        assert dp16.coll_comm > 0
        assert dp1_pp16.pp_comm > 0

    def test_breakdown_dispatch(self, cost_model, cluster):
        wl = CallWorkload(batch_size=64, prompt_len=256, gen_len=256, n_minibatches=2)
        a = alloc(cluster, 2, 8, 1)
        assert cost_model.breakdown(GEN_CALL, wl, a).total == pytest.approx(
            cost_model.generation_breakdown(wl, a).total
        )
        assert cost_model.breakdown(INF_CALL, wl, a).total == pytest.approx(
            cost_model.inference_breakdown(wl, a).total
        )
        assert cost_model.breakdown(TRAIN_CALL, wl, a).total == pytest.approx(
            cost_model.training_breakdown(wl, a).total
        )
        assert cost_model.time(TRAIN_CALL, wl, a) == pytest.approx(
            cost_model.breakdown(TRAIN_CALL, wl, a).total
        )


class TestMemoryInterface:
    def test_static_memory_only_for_training(self, cost_model, cluster):
        a = alloc(cluster, 2, 8, 1)
        assert cost_model.static_memory(TRAIN_CALL, a) > 0
        assert cost_model.static_memory(GEN_CALL, a) == 0.0
        assert cost_model.static_memory(INF_CALL, a) == 0.0

    def test_active_memory_positive(self, cost_model, cluster):
        wl = CallWorkload(batch_size=64, prompt_len=512, gen_len=512, n_minibatches=8)
        a = alloc(cluster, 2, 8, 1)
        for call in (GEN_CALL, INF_CALL, TRAIN_CALL):
            assert cost_model.active_memory(call, wl, a) > 0


class TestCostBreakdown:
    def test_scaled_and_add(self):
        from repro.core.call_cost import CostBreakdown

        bd = CostBreakdown(compute=1.0, pp_comm=0.5, coll_comm=0.25, bubble=0.25)
        doubled = bd.scaled(2.0)
        assert doubled.total == pytest.approx(2 * bd.total)
        bd.add(doubled)
        assert bd.total == pytest.approx(3 * doubled.total / 2)
