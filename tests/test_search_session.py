"""Tests for resumable search sessions (online re-planning's core primitive).

The headline invariant: a :class:`SearchSession` polled in N slices reaches
*exactly* the same best plan/cost — and the same per-chain trajectories — as
one uninterrupted ``search()`` with the same seed and total budget, for PPO
and GRPO, in sequential and process execution modes.  Each chain's RNG
travels inside its checkpointed :class:`ChainState`, so slicing can never
change the outcome.  Also covered here: the new :class:`SearchConfig`
budget validation and the session lifecycle (budgets, done, stop).
"""

import pickle

import pytest

from repro.algorithms import build_grpo_graph, build_ppo_graph
from repro.cluster import make_cluster
from repro.core import (
    ChainState,
    MCMCSearcher,
    SearchConfig,
    SearchSession,
    instructgpt_workload,
)


@pytest.fixture(scope="module")
def cluster8():
    return make_cluster(8)


@pytest.fixture(scope="module")
def workload_small():
    return instructgpt_workload("7b", "7b", batch_size=64)


def _graph(algorithm: str):
    return build_ppo_graph() if algorithm == "ppo" else build_grpo_graph()


def _searcher(algorithm, workload, cluster, **cfg_kwargs):
    config = SearchConfig(**cfg_kwargs)
    return MCMCSearcher(_graph(algorithm), workload, cluster, config=config)


def _assert_identical(session_result, reference):
    assert session_result.best_cost == reference.best_cost
    assert session_result.best_plan.to_dict() == reference.best_plan.to_dict()
    assert session_result.n_iterations == reference.n_iterations
    assert session_result.n_accepted == reference.n_accepted
    assert [(i, c) for i, _, c in session_result.history] == [
        (i, c) for i, _, c in reference.history
    ]


class TestSlicedDeterminism:
    @pytest.mark.parametrize("algorithm", ["ppo", "grpo"])
    @pytest.mark.parametrize("slice_iterations", [1, 7, 25])
    def test_sliced_equals_unsliced_sequential(
        self, algorithm, slice_iterations, cluster8, workload_small
    ):
        kwargs = dict(
            max_iterations=50, time_budget_s=60.0, seed=3, n_chains=2, parallel="off"
        )
        reference = _searcher(algorithm, workload_small, cluster8, **kwargs).search()
        session = SearchSession(
            _searcher(algorithm, workload_small, cluster8, **kwargs),
            slice_iterations=slice_iterations,
        )
        while not session.done:
            session.poll()
        _assert_identical(session.stop(), reference)

    @pytest.mark.parametrize("algorithm", ["ppo", "grpo"])
    def test_sliced_process_equals_unsliced_sequential(
        self, algorithm, cluster8, workload_small
    ):
        kwargs = dict(max_iterations=40, time_budget_s=60.0, seed=5, n_chains=2)
        reference = _searcher(
            algorithm, workload_small, cluster8, parallel="off", **kwargs
        ).search()
        session = SearchSession(
            _searcher(algorithm, workload_small, cluster8, parallel="process", **kwargs),
            slice_iterations=9,
        )
        session.start()
        if session._runner is None:
            pytest.skip("process pool unavailable on this machine")
        modes = set()
        while not session.done:
            modes.add(session.poll().execution_mode)
        result = session.stop()
        _assert_identical(result, reference)
        assert "process" in modes
        assert result.execution_mode == "process"

    def test_mixed_execution_modes_still_identical(self, cluster8, workload_small):
        """A session that loses its pool mid-run must not change the outcome."""
        kwargs = dict(max_iterations=30, time_budget_s=60.0, seed=9, n_chains=2)
        reference = _searcher(
            "ppo", workload_small, cluster8, parallel="off", **kwargs
        ).search()
        session = SearchSession(
            _searcher("ppo", workload_small, cluster8, parallel="process", **kwargs),
            slice_iterations=8,
        )
        session.start()
        if session._runner is None:
            pytest.skip("process pool unavailable on this machine")
        session.poll()
        # Simulate the pool dying between polls: later slices run in-process.
        session._runner.close_session()
        session._runner = None
        while not session.done:
            assert session.poll().execution_mode in ("sequential", "idle")
        _assert_identical(session.stop(), reference)


class TestSessionLifecycle:
    def test_budget_accounting_and_done(self, cluster8, workload_small):
        searcher = _searcher(
            "ppo", workload_small, cluster8,
            max_iterations=20, time_budget_s=60.0, seed=1, n_chains=2, parallel="off",
        )
        session = SearchSession(searcher, slice_iterations=6)
        session.start()
        assert not session.done and session.n_iterations == 0
        progress = session.poll()
        # Two chains, six proposals each per slice.
        assert progress.new_iterations == 12
        assert progress.n_iterations == 12
        while not session.done:
            progress = session.poll()
        assert session.n_iterations == 20  # total budget, never exceeded
        assert progress.done
        # Polling a finished session is a harmless no-op.
        idle = session.poll()
        assert idle.new_iterations == 0 and idle.execution_mode == "idle"

    def test_best_monotone_and_initial_candidate(self, cluster8, workload_small):
        searcher = _searcher(
            "ppo", workload_small, cluster8,
            max_iterations=40, time_budget_s=60.0, seed=2, n_chains=1, parallel="off",
        )
        session = SearchSession(searcher, slice_iterations=5)
        session.start()
        plan, cost = session.best_so_far()
        assert plan is not None and cost == session.initial_cost
        previous = cost
        while not session.done:
            progress = session.poll()
            assert progress.best_cost <= previous
            assert progress.improved == (progress.best_cost < previous)
            previous = progress.best_cost

    def test_stop_is_final_and_result_matches(self, cluster8, workload_small):
        searcher = _searcher(
            "ppo", workload_small, cluster8,
            max_iterations=10, time_budget_s=60.0, seed=4, n_chains=1, parallel="off",
        )
        session = SearchSession(searcher, slice_iterations=4)
        session.poll()  # poll() auto-starts
        result = session.stop()
        assert session.stopped
        assert result.best_cost == session.best_cost
        with pytest.raises(RuntimeError):
            session.poll()

    def test_slice_iterations_validated(self, cluster8, workload_small):
        searcher = _searcher(
            "ppo", workload_small, cluster8,
            max_iterations=10, time_budget_s=60.0, seed=0, n_chains=1,
        )
        with pytest.raises(ValueError, match="slice_iterations"):
            SearchSession(searcher, slice_iterations=0)

    def test_chain_state_pickles(self, cluster8, workload_small):
        searcher = _searcher(
            "ppo", workload_small, cluster8,
            max_iterations=10, time_budget_s=60.0, seed=6, n_chains=1, parallel="off",
        )
        plan, cost = searcher.initial_candidate()
        state = searcher.init_chain_state(0, plan, cost, 10)
        searcher.advance_chain(state, max_iterations=4)
        clone = pickle.loads(pickle.dumps(state))
        assert clone.n_iterations == state.n_iterations == 4
        assert clone.best_cost == state.best_cost
        # The cloned RNG continues the exact same stream.
        searcher.advance_chain(state)
        searcher.advance_chain(clone)
        assert clone.best_cost == state.best_cost
        assert clone.done and state.done


class TestSearchConfigValidation:
    def test_negative_max_iterations_rejected(self):
        with pytest.raises(ValueError, match="max_iterations"):
            SearchConfig(max_iterations=-1)

    def test_zero_max_iterations_still_legal(self):
        # The documented "evaluate the initial candidates only" budget.
        assert SearchConfig(max_iterations=0).max_iterations == 0

    @pytest.mark.parametrize("budget", [0.0, -1.0])
    def test_non_positive_time_budget_rejected(self, budget):
        with pytest.raises(ValueError, match="time_budget_s"):
            SearchConfig(time_budget_s=budget)

    @pytest.mark.parametrize("n_chains", [0, -2])
    def test_non_positive_n_chains_rejected(self, n_chains):
        with pytest.raises(ValueError, match="n_chains"):
            SearchConfig(n_chains=n_chains)


class TestChainStateBasics:
    def test_remaining_iterations_never_negative(self):
        import numpy as np

        from repro.core.plan import ExecutionPlan

        state = ChainState(
            chain=0,
            max_iterations=5,
            rng=np.random.default_rng(0),
            current_plan=ExecutionPlan({}),
            current_cost=1.0,
            best_plan=ExecutionPlan({}),
            best_cost=1.0,
            n_iterations=9,
        )
        assert state.remaining_iterations == 0
        result = state.to_result()
        assert result.n_iterations == 9 and result.best_cost == 1.0
