"""Tests for the per-GPU memory footprint models."""

import pytest
from hypothesis import given, strategies as st

from repro.model import MemoryModel, get_model_config
from repro.model.memory import GRAD_BYTES, OPTIMIZER_BYTES_PER_PARAM, PARAM_BYTES


@pytest.fixture(scope="module")
def mem7b():
    return MemoryModel(get_model_config("7b"))


class TestParameterFootprints:
    def test_params_shrink_with_tp_and_pp(self, mem7b):
        full = mem7b.params_per_gpu(tp=1, pp=1)
        assert mem7b.params_per_gpu(tp=2, pp=1) == pytest.approx(full / 2)
        assert mem7b.params_per_gpu(tp=2, pp=4) == pytest.approx(full / 8)

    def test_zero3_shards_across_dp(self, mem7b):
        plain = mem7b.params_per_gpu(tp=1, pp=1, dp=8)
        sharded = mem7b.params_per_gpu(tp=1, pp=1, dp=8, zero3=True)
        assert sharded == pytest.approx(plain / 8)

    def test_optimizer_sharded_across_dp(self, mem7b):
        # Distributed optimizer (ZeRO-1) is assumed for every system.
        single = mem7b.optimizer_per_gpu(tp=1, pp=1, dp=1)
        assert mem7b.optimizer_per_gpu(tp=1, pp=1, dp=4) == pytest.approx(single / 4)

    def test_static_memory_combines_grads_and_optimizer(self, mem7b):
        static = mem7b.static_bytes_per_gpu(dp=1, tp=1, pp=1)
        expected = mem7b.grads_per_gpu(1, 1, 1) + mem7b.optimizer_per_gpu(1, 1, 1)
        assert static == pytest.approx(expected)

    def test_byte_constants(self):
        assert PARAM_BYTES == 2
        assert GRAD_BYTES == 2
        assert OPTIMIZER_BYTES_PER_PARAM == 12


class TestCallFootprints:
    def test_kv_cache_scales_with_batch_and_seq(self, mem7b):
        base = mem7b.kv_cache_bytes(batch=8, seqlen=1024)
        assert mem7b.kv_cache_bytes(batch=16, seqlen=1024) == pytest.approx(2 * base)
        assert mem7b.kv_cache_bytes(batch=8, seqlen=2048) == pytest.approx(2 * base)

    def test_kv_cache_sharded_by_tp(self, mem7b):
        assert mem7b.kv_cache_bytes(8, 1024, tp=8) == pytest.approx(
            mem7b.kv_cache_bytes(8, 1024) / 8
        )

    def test_microbatching_reduces_activations(self, mem7b):
        one = mem7b.activation_bytes(n_tokens=65536, tp=1, pp=1, n_microbatches=1)
        many = mem7b.activation_bytes(n_tokens=65536, tp=1, pp=1, n_microbatches=8)
        assert many < one

    def test_logits_buffer_is_huge_for_actor(self, mem7b):
        # The paper's footnote: vocab x tokens x 2 bytes is hundreds of GB.
        tokens = 512 * 2048
        assert mem7b.logits_bytes(tokens, tp=1) > 250e9

    def test_logits_buffer_tiny_for_critic(self):
        critic = MemoryModel(get_model_config("7b", critic=True))
        assert critic.logits_bytes(512 * 2048, tp=1) < 1e7

    def test_training_breakdown_static_vs_active(self, mem7b):
        breakdown = mem7b.training_breakdown(
            batch_per_dp=8, seqlen=2048, dp=4, tp=2, pp=1, n_microbatches=8
        )
        assert breakdown.static == pytest.approx(breakdown.gradients + breakdown.optimizer)
        assert breakdown.active > 0
        assert breakdown.total == pytest.approx(breakdown.static + breakdown.active)

    def test_inference_has_no_static_memory(self, mem7b):
        breakdown = mem7b.inference_breakdown(8, 2048, dp=2, tp=2, pp=1)
        assert breakdown.static == 0.0

    def test_generation_dominated_by_kv_cache(self, mem7b):
        breakdown = mem7b.generation_breakdown(
            batch_per_dp=256, prompt_len=1024, gen_len=1024, dp=1, tp=1, pp=1
        )
        assert breakdown.kv_cache > breakdown.activations


@given(
    tp=st.sampled_from([1, 2, 4, 8]),
    pp=st.sampled_from([1, 2, 4]),
    dp=st.sampled_from([1, 2, 4, 8]),
)
def test_sharding_never_increases_footprint(tp, pp, dp):
    """Property: more parallelism never increases per-GPU static memory."""
    mem = MemoryModel(get_model_config("13b"))
    baseline = mem.static_bytes_per_gpu(dp=1, tp=1, pp=1)
    assert mem.static_bytes_per_gpu(dp=dp, tp=tp, pp=pp) <= baseline + 1e-6
