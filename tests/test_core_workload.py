"""Tests for workload derivation (per-call data sizes and FLOPs)."""

import pytest

from repro.core import FunctionCallType, instructgpt_workload
from repro.core.workload import CallWorkload, RLHFWorkload
from repro.model import get_model_config


class TestCallWorkload:
    def test_seqlen_and_tokens(self):
        wl = CallWorkload(batch_size=8, prompt_len=128, gen_len=128)
        assert wl.seqlen == 256
        assert wl.total_tokens == 8 * 256

    def test_per_minibatch(self):
        wl = CallWorkload(batch_size=64, prompt_len=16, gen_len=16, n_minibatches=8)
        mini = wl.per_minibatch()
        assert mini.batch_size == 8
        assert mini.n_minibatches == 1


class TestInstructGPTWorkload:
    def test_defaults_match_appendix_a(self):
        wl = instructgpt_workload()
        assert wl.batch_size == 512
        assert wl.prompt_len == 1024
        assert wl.context_len == 2048
        assert wl.n_ppo_minibatches == 8

    def test_four_model_roles(self):
        wl = instructgpt_workload("13b", "7b")
        assert set(wl.model_configs) == {"actor", "ref", "critic", "reward"}
        assert wl.model_config("actor").name == "llama3-13b"
        assert wl.model_config("ref").name == "llama3-13b"
        assert wl.model_config("critic").is_critic
        assert wl.model_config("reward").is_critic

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            instructgpt_workload().model_config("judge")

    def test_with_batch_size(self):
        wl = instructgpt_workload().with_batch_size(64)
        assert wl.batch_size == 64

    def test_with_context(self):
        wl = instructgpt_workload().with_context(4096, 4096)
        assert wl.context_len == 8192

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            RLHFWorkload(model_configs={"actor": get_model_config("7b")}, batch_size=0)
        with pytest.raises(ValueError):
            RLHFWorkload(model_configs={"actor": get_model_config("7b")}, n_ppo_minibatches=0)


class TestPerCallDerivation:
    def test_generate_call_workload(self, ppo_graph):
        wl = instructgpt_workload(batch_size=256)
        call = ppo_graph.get("actor_generate")
        derived = wl.call_workload(call)
        assert derived.batch_size == 256
        assert derived.gen_len == wl.gen_len
        assert derived.n_minibatches == 1

    def test_train_call_gets_minibatches(self, ppo_graph):
        wl = instructgpt_workload(batch_size=256)
        derived = wl.call_workload(ppo_graph.get("actor_train"))
        assert derived.n_minibatches == wl.n_ppo_minibatches

    def test_batch_scale_applied(self):
        from repro.algorithms import build_grpo_graph

        graph = build_grpo_graph(group_size=8)
        wl = instructgpt_workload(batch_size=64)
        derived = wl.call_workload(graph.get("actor_generate"))
        assert derived.batch_size == 64 * 8

    def test_call_flops_positive_and_ordered(self, ppo_graph):
        wl = instructgpt_workload(batch_size=128)
        gen = wl.call_flops(ppo_graph.get("actor_generate"))
        inf = wl.call_flops(ppo_graph.get("ref_inference"))
        train = wl.call_flops(ppo_graph.get("actor_train"))
        assert gen > 0 and inf > 0 and train > 0
        # Training does forward + backward, so it outweighs single inference.
        assert train > inf

    def test_iteration_flops_sums_calls(self, ppo_graph):
        wl = instructgpt_workload(batch_size=128)
        total = wl.iteration_flops(ppo_graph.calls)
        assert total == pytest.approx(sum(wl.call_flops(c) for c in ppo_graph.calls))

    def test_iteration_flops_requires_calls(self, ppo_graph):
        wl = instructgpt_workload()
        with pytest.raises(ValueError):
            wl.iteration_flops(None)
