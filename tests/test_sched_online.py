"""Tests for online re-planning in the scheduler: polls, hot swaps, traces."""

from __future__ import annotations

import json

import pytest

from repro.cluster import make_cluster
from repro.core import SearchConfig
from repro.sched import ClusterScheduler, JobSpec, SchedulerConfig


def _specs(n=1, target_iterations=25):
    return [
        JobSpec(
            name=f"job-{i}",
            algorithm="grpo" if i % 2 else "ppo",
            batch_size=128,
            arrival_time=40.0 * i,
            target_iterations=target_iterations,
            min_gpus=8,
            max_gpus=8,
        )
        for i in range(n)
    ]


def _config(**overrides):
    """Tiny admission budget + generous online budget: swaps become likely."""
    defaults = dict(
        search=SearchConfig(
            max_iterations=20, time_budget_s=1.0, seed=0, record_history=False
        ),
        elastic=False,
        online_replanning=True,
        online_search=SearchConfig(
            max_iterations=600, time_budget_s=30.0, seed=0, record_history=False
        ),
        poll_interval_s=15.0,
        poll_iterations=150,
        swap_margin=1.0,
    )
    defaults.update(overrides)
    return SchedulerConfig(**defaults)


class TestOnlineReplanning:
    def test_run_completes_and_takes_swaps(self, tmp_path):
        trace_path = tmp_path / "TRACE_online.json"
        scheduler = ClusterScheduler(
            cluster=make_cluster(16),
            jobs=_specs(n=2),
            config=_config(),
            trace_path=str(trace_path),
        )
        report = scheduler.run()
        assert report.all_completed
        assert report.online_sessions >= 1
        assert report.n_search_polls >= 1
        # The tiny admission budget leaves headroom the generous background
        # budget finds: at least one swap must clear the margin.
        assert report.n_swaps >= 1
        assert report.swap_seconds_saved > 0
        swap_events = [e for e in report.timeline if e["event"] == "swap"]
        assert len(swap_events) == report.n_swaps
        # Swaps are visible in the merged Chrome trace as instant events.
        events = json.loads(trace_path.read_text())["traceEvents"]
        swap_instants = [
            e for e in events if e.get("ph") == "i" and e.get("cat") == "swap"
        ]
        assert len(swap_instants) == report.n_swaps
        # Sessions are settled by the end of the run.
        assert all(job.session is None for job in scheduler.jobs)
        assert scheduler.service._closed

    def test_swap_refreshes_planned_throughput(self):
        """After a hot swap the resize baseline reflects the new plan."""
        scheduler = ClusterScheduler(
            cluster=make_cluster(16), jobs=_specs(n=1), config=_config()
        )
        swapped = {}
        original = scheduler._maybe_swap

        def spy(job, time):
            before = job.planned_seconds_per_iteration
            taken = original(job, time)
            if taken and "planned" not in swapped:
                swapped["planned"] = (before, job.planned_seconds_per_iteration)
            return taken

        scheduler._maybe_swap = spy
        report = scheduler.run()
        assert report.all_completed
        assert report.n_swaps >= 1
        before, after = swapped["planned"]
        assert after < before

    def test_disabled_by_default(self):
        config = SchedulerConfig(
            search=SearchConfig(
                max_iterations=20, time_budget_s=1.0, seed=0, record_history=False
            ),
            elastic=False,
        )
        assert not config.online_replanning
        scheduler = ClusterScheduler(
            cluster=make_cluster(16), jobs=_specs(n=1, target_iterations=5),
            config=config,
        )
        report = scheduler.run()
        assert report.all_completed
        assert report.online_sessions == 0
        assert report.n_search_polls == 0
        assert report.n_swaps == 0

    def test_margin_gates_swaps(self):
        """An absurd margin rejects every candidate swap."""
        scheduler = ClusterScheduler(
            cluster=make_cluster(16),
            jobs=_specs(n=1),
            config=_config(swap_margin=100.0),
        )
        report = scheduler.run()
        assert report.all_completed
        assert report.n_swaps == 0
        # The background search still ran and found improvements to reject.
        assert report.n_search_polls >= 1
        assert report.n_swaps_rejected >= 1

    def test_online_report_fields_serialize(self):
        scheduler = ClusterScheduler(
            cluster=make_cluster(16), jobs=_specs(n=1), config=_config()
        )
        report = scheduler.run()
        data = report.to_dict()
        for key in (
            "n_swaps", "n_search_polls", "n_swaps_rejected",
            "swap_seconds_saved", "online_sessions",
        ):
            assert key in data
        assert data["n_swaps"] == sum(j["n_swaps"] for j in data["jobs"])
        assert "swaps" in report.summary_row()

    def test_resolved_online_search_defaults_to_4x(self):
        config = SchedulerConfig(
            search=SearchConfig(max_iterations=100, time_budget_s=2.0)
        )
        online = config.resolved_online_search()
        assert online.max_iterations == 400
        assert online.time_budget_s == pytest.approx(8.0)

    def test_swap_margin_clamped_to_at_least_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHED_SWAP_MARGIN", "0.5")
        assert SchedulerConfig().swap_margin == 1.0
