"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings

from repro.algorithms import build_ppo_graph
from repro.cluster import make_cluster
from repro.core import (
    Allocation,
    ParallelStrategy,
    RuntimeEstimator,
    instructgpt_workload,
    symmetric_plan,
)

# Keep hypothesis fast and deterministic for CI-style runs.
settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture(scope="session")
def small_cluster():
    """A single 8-GPU node."""
    return make_cluster(8)


@pytest.fixture(scope="session")
def two_node_cluster():
    """Two 8-GPU nodes (16 GPUs)."""
    return make_cluster(16)


@pytest.fixture(scope="session")
def ppo_graph():
    """The six-call PPO dataflow graph."""
    return build_ppo_graph()


@pytest.fixture(scope="session")
def small_workload():
    """A 7B+7B workload with a modest batch, suitable for 8-16 GPUs."""
    return instructgpt_workload("7b", "7b", batch_size=128)


@pytest.fixture(scope="session")
def base_workload():
    """The paper's base InstructGPT setting (batch 512, context 2048)."""
    return instructgpt_workload("7b", "7b", batch_size=512)


@pytest.fixture(scope="session")
def symmetric_ppo_plan(ppo_graph, two_node_cluster):
    """A symmetric full-cluster plan (dp=2, tp=8, pp=1) for the PPO graph."""
    return symmetric_plan(
        ppo_graph,
        two_node_cluster,
        ParallelStrategy(dp=2, tp=8, pp=1),
        n_microbatches=8,
    )


@pytest.fixture(scope="session")
def small_estimator(ppo_graph, small_workload, two_node_cluster):
    """An estimator for the PPO graph on the two-node cluster."""
    return RuntimeEstimator(ppo_graph, small_workload, two_node_cluster)
