"""Tests for the fast-path estimator: memoisation, ``cost_delta`` and chains.

The incremental path must be *bit-for-bit* identical to a full recompute:
the memo caches store values of pure functions, and a single-call move only
replaces the components that move can affect.  The property-style suite
below walks randomized move sequences over the tier-1 fixture graphs and
cross-checks every step against a cache-free estimator.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import numpy as np

from repro.algorithms import build_grpo_graph, build_ppo_graph
from repro.cluster import make_cluster
from repro.core import (
    Allocation,
    DataflowGraph,
    ExecutionPlan,
    ParallelStrategy,
    RuntimeEstimator,
    allocation_options,
    instructgpt_workload,
    symmetric_plan,
)


@pytest.fixture(scope="module")
def cluster16():
    return make_cluster(16)


@pytest.fixture(scope="module")
def workload():
    return instructgpt_workload("7b", "7b", batch_size=128)


def _fixture(graph_builder, workload, cluster):
    graph = graph_builder()
    fast = RuntimeEstimator(graph, workload, cluster)
    exact = RuntimeEstimator(graph, workload, cluster, use_cache=False)
    options = allocation_options(graph, workload, cluster)
    start = {name: choices[0] for name, choices in options.items()}
    return graph, fast, exact, options, ExecutionPlan(start, name="start")


@pytest.fixture(scope="module")
def ppo_fixture(workload, cluster16):
    return _fixture(build_ppo_graph, workload, cluster16)


@pytest.fixture(scope="module")
def grpo_fixture(workload, cluster16):
    return _fixture(build_grpo_graph, workload, cluster16)


class TestFastPathConsistency:
    def test_cost_matches_uncached_estimator(self, ppo_fixture):
        graph, fast, exact, options, plan = ppo_fixture
        assert fast.cost(plan) == exact.cost(plan)
        # Second evaluation is served from caches and must not drift.
        assert fast.cost(plan) == exact.cost(plan)

    def test_time_cost_and_memory_match(self, ppo_fixture):
        graph, fast, exact, options, plan = ppo_fixture
        fast_tc, exact_tc = fast.time_cost(plan), exact.time_cost(plan)
        assert fast_tc.total_seconds == exact_tc.total_seconds
        assert fast_tc.spans == exact_tc.spans
        assert fast_tc.call_seconds == exact_tc.call_seconds
        assert fast.max_memory(plan).per_gpu == exact.max_memory(plan).per_gpu

    def test_cost_delta_equals_full_cost_of_moved_plan(self, ppo_fixture):
        graph, fast, exact, options, plan = ppo_fixture
        call_name = graph.call_names[0]
        for alloc in options[call_name][:10]:
            moved = plan.with_assignment(call_name, alloc)
            assert fast.cost_delta(plan, call_name, alloc) == exact.cost(moved)

    def test_cost_delta_falls_back_without_cache(self, ppo_fixture):
        graph, fast, exact, options, plan = ppo_fixture
        call_name = graph.call_names[0]
        alloc = options[call_name][1]
        expected = exact.cost(plan.with_assignment(call_name, alloc))
        assert exact.cost_delta(plan, call_name, alloc) == expected

    def test_call_breakdown_returns_defensive_copy(self, ppo_fixture):
        graph, fast, exact, options, plan = ppo_fixture
        call_name = graph.call_names[0]
        alloc = plan[call_name]
        before = fast.call_breakdown(call_name, alloc).total
        fast.call_breakdown(call_name, alloc).compute += 123.0
        assert fast.call_breakdown(call_name, alloc).total == before

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_random_move_sequences_ppo(self, ppo_fixture, seed):
        self._random_walk(ppo_fixture, seed)

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_random_move_sequences_grpo(self, grpo_fixture, seed):
        self._random_walk(grpo_fixture, seed)

    @staticmethod
    def _random_walk(fixture, seed, n_moves=12):
        graph, fast, exact, options, plan = fixture
        rng = np.random.default_rng(seed)
        names = graph.call_names
        current = plan
        for _ in range(n_moves):
            call_name = names[int(rng.integers(len(names)))]
            choices = options[call_name]
            alloc = choices[int(rng.integers(len(choices)))]
            fast_cost = fast.cost_delta(current, call_name, alloc)
            moved = current.with_assignment(call_name, alloc)
            assert fast_cost == exact.cost(moved)
            assert fast.cost(moved) == fast_cost
            if rng.random() < 0.5:  # mix accepted and rejected moves
                current = moved


class TestCrossCheckMode:
    def test_cross_check_passes_on_consistent_estimator(self, workload, cluster16):
        graph = build_ppo_graph()
        estimator = RuntimeEstimator(graph, workload, cluster16, cross_check=True)
        options = allocation_options(graph, workload, cluster16)
        plan = ExecutionPlan({n: c[0] for n, c in options.items()})
        estimator.cost(plan)
        rng = np.random.default_rng(0)
        names = graph.call_names
        for _ in range(10):
            call_name = names[int(rng.integers(len(names)))]
            choices = options[call_name]
            estimator.cost_delta(plan, call_name, choices[int(rng.integers(len(choices)))])

    def test_cross_check_detects_poisoned_cache(self, workload, cluster16):
        graph = build_ppo_graph()
        estimator = RuntimeEstimator(graph, workload, cluster16, cross_check=True)
        options = allocation_options(graph, workload, cluster16)
        plan = ExecutionPlan({n: c[0] for n, c in options.items()})
        estimator.cost(plan)
        # Corrupt a memoised call time: the fast path now disagrees with the
        # full recompute and the cross-check must catch it.
        key = next(iter(estimator._call_time_cache))
        estimator._call_time_cache[key] += 1.0
        estimator._states.clear()
        estimator._eval_cache.clear()
        with pytest.raises(RuntimeError, match="cross-check"):
            estimator.cost(plan)


class TestEmptyGraph:
    def test_empty_graph_time_cost_is_zero(self, workload, cluster16):
        graph = DataflowGraph(calls=[], external_inputs=("prompts",), name="empty")
        estimator = RuntimeEstimator(graph, workload, cluster16)
        plan = ExecutionPlan({}, name="empty")
        result = estimator.time_cost(plan)
        assert result.total_seconds == 0.0
        assert result.spans == {}
        assert result.realloc_seconds == 0.0
        assert estimator.cost(plan) == 0.0
        assert estimator.is_feasible(plan)


class TestConcurrentSharing:
    def test_shared_estimator_survives_threaded_cost_delta(self, workload, cluster16):
        # The plan service hands one estimator to several worker threads;
        # the plan-state LRU must tolerate concurrent churn (get / evict
        # races previously raised KeyError from move_to_end).
        import threading

        graph = build_ppo_graph()
        estimator = RuntimeEstimator(graph, workload, cluster16)
        options = allocation_options(graph, workload, cluster16)
        plan = ExecutionPlan({n: c[0] for n, c in options.items()})
        names = graph.call_names
        errors = []

        def worker(seed):
            rng = np.random.default_rng(seed)
            current = plan
            try:
                for _ in range(1500):
                    call_name = names[int(rng.integers(len(names)))]
                    choices = options[call_name]
                    alloc = choices[int(rng.integers(len(choices)))]
                    estimator.cost_delta(current, call_name, alloc)
                    current = current.with_assignment(call_name, alloc)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, f"concurrent cost_delta failed: {errors[:3]}"


class TestEstimatorSharing:
    def test_experiment_config_reuses_estimator(self, workload, cluster16):
        from repro.core.api import ExperimentConfig
        from repro.core import SearchConfig

        config = ExperimentConfig(
            graph=build_ppo_graph(),
            workload=workload,
            cluster=cluster16,
            search=SearchConfig(max_iterations=5, time_budget_s=5.0),
        )
        first = config.get_estimator()
        config.run_search()
        assert config.get_estimator() is first
