"""End-to-end tests of the multi-job cluster scheduler."""

import json

import pytest

from repro.cluster import make_cluster
from repro.core import SearchConfig, schedule_jobs
from repro.sched import (
    ClusterScheduler,
    JobPhase,
    JobSpec,
    NodeFailure,
    SchedulerConfig,
    StaticEqualPolicy,
    available_policies,
    get_policy,
    schedule_trace,
)
from repro.service import PlanService

TINY = SchedulerConfig(
    search=SearchConfig(max_iterations=25, time_budget_s=0.5, record_history=False)
)


def tiny_job(name, **kwargs):
    defaults = dict(
        name=name, batch_size=64, target_iterations=4, min_gpus=8, max_gpus=8
    )
    defaults.update(kwargs)
    return JobSpec(**defaults)


class TestJobSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            JobSpec(name="")
        with pytest.raises(ValueError):
            JobSpec(name="x", target_iterations=0)
        with pytest.raises(ValueError):
            JobSpec(name="x", min_gpus=8, max_gpus=4)
        with pytest.raises(ValueError):
            JobSpec(name="x", arrival_time=-1.0)

    def test_unknown_algorithm_rejected_at_submission(self):
        # A typo'd algorithm must fail at JobSpec construction with the
        # available names listed, not as a KeyError deep inside the
        # scheduler's event loop.
        with pytest.raises(ValueError, match="unknown RLHF algorithm.*ppo"):
            JobSpec(name="typo", algorithm="ppov2")

    def test_algorithm_names_are_case_insensitive(self):
        assert JobSpec(name="x", algorithm="GRPO").build_graph().call_names

    def test_builders(self):
        spec = JobSpec(name="x", algorithm="grpo")
        graph = spec.build_graph()
        workload = spec.build_workload()
        assert graph.call_names
        assert set(workload.model_configs)


class TestPolicyRegistry:
    def test_available_policies(self):
        assert available_policies() == [
            "best_throughput",
            "first_fit",
            "priority",
            "static_equal",
        ]

    def test_get_policy_passthrough_and_errors(self):
        policy = StaticEqualPolicy(n_slots=2)
        assert get_policy(policy) is policy
        with pytest.raises(KeyError):
            get_policy("nope")


class TestSchedulerBasics:
    def test_two_jobs_run_concurrently(self):
        jobs = [tiny_job("a"), tiny_job("b")]
        report = schedule_trace(make_cluster(16), jobs, policy="first_fit", config=TINY)
        assert report.all_completed
        assert report.n_jobs == 2
        # Both fit at t=0, so neither waits and they overlap fully.
        assert report.mean_queue_wait == 0.0
        assert 0.0 < report.gpu_utilization <= 1.0
        assert report.aggregate_iterations_per_second > 0

    def test_queueing_when_cluster_full(self):
        jobs = [tiny_job("a"), tiny_job("b")]
        report = schedule_trace(make_cluster(8), jobs, policy="first_fit", config=TINY)
        assert report.all_completed
        waits = sorted(job.queue_wait for job in report.jobs)
        assert waits[0] == 0.0 and waits[1] > 0.0

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            ClusterScheduler(make_cluster(8), [tiny_job("a"), tiny_job("a")])

    def test_oversized_job_rejected(self):
        with pytest.raises(ValueError):
            ClusterScheduler(make_cluster(8), [tiny_job("a", min_gpus=16, max_gpus=16)])

    def test_report_is_json_serializable(self):
        report = schedule_trace(
            make_cluster(8), [tiny_job("a")], policy="first_fit", config=TINY
        )
        payload = json.dumps(report.to_dict())
        assert "aggregate_iterations_per_second" in payload
        assert report.summary_row()["jobs"] == "1/1"

    def test_schedule_jobs_api(self):
        report = schedule_jobs(
            [tiny_job("a"), tiny_job("b")], n_gpus=16, policy="first_fit", config=TINY
        )
        assert report.all_completed
        assert report.cluster_gpus == 16

    def test_shared_service_is_not_closed(self):
        service = PlanService(max_workers=2)
        first = schedule_trace(
            make_cluster(8), [tiny_job("a")], policy="first_fit",
            config=TINY, service=service,
        )
        # A borrowed service must stay usable for the next run.
        report = schedule_trace(
            make_cluster(8), [tiny_job("b")], policy="first_fit",
            config=TINY, service=service,
        )
        assert report.all_completed
        assert report.service_stats["cache_hits"] > 0
        # Each report sees only its own run's traffic, not the shared
        # service's cumulative counters.
        total = service.stats.snapshot().to_dict()
        assert (
            first.service_stats["requests"] + report.service_stats["requests"]
            == total["requests"]
        )
        service.close()

    def test_dedup_joined_requests_not_double_billed(self):
        from repro.sched import Job, PlanCosting
        from repro.service import RequestStats

        costing = PlanCosting(
            service=None, search=TINY.search, replan_search=TINY.search
        )
        runtime_job = Job.from_spec(tiny_job("a"))
        runtime_job.first_started_at = 1.0  # makes it a replan
        joined = RequestStats(
            fingerprint="x", cache_hit=False, dedup_joined=True, search_seconds=5.0
        )
        costing._record(runtime_job, joined)
        assert costing.replan_stats.count == 0
        real = RequestStats(
            fingerprint="x", cache_hit=False, warm_started=True, search_seconds=0.5
        )
        costing._record(runtime_job, real)
        assert costing.replan_stats.count == 1
        assert costing.replan_stats.total_seconds == pytest.approx(0.5)


class TestElasticResize:
    def test_long_job_grows_after_short_job_finishes(self):
        jobs = [
            tiny_job("short", target_iterations=3, max_gpus=8),
            tiny_job("long", target_iterations=20, batch_size=128, max_gpus=16),
        ]
        config = SchedulerConfig(
            search=SearchConfig(max_iterations=150, time_budget_s=1.0, record_history=False),
            resize_threshold=1.01,
        )
        report = schedule_trace(
            make_cluster(16), jobs, policy="best_throughput", config=config
        )
        assert report.all_completed
        assert report.n_resizes >= 1
        long_metrics = next(j for j in report.jobs if j.name == "long")
        assert long_metrics.n_resizes >= 1

    def test_elastic_disabled(self):
        jobs = [
            tiny_job("short", target_iterations=3, max_gpus=8),
            tiny_job("long", target_iterations=20, batch_size=128, max_gpus=16),
        ]
        config = SchedulerConfig(search=TINY.search, elastic=False)
        report = schedule_trace(
            make_cluster(16), jobs, policy="best_throughput", config=config
        )
        assert report.all_completed
        assert report.n_resizes == 0


class TestPreemption:
    def test_high_priority_preempts_lower(self):
        jobs = [
            tiny_job("low", priority=0, target_iterations=30),
            tiny_job("high", priority=5, target_iterations=3, arrival_time=10.0),
        ]
        report = schedule_trace(make_cluster(8), jobs, policy="priority", config=TINY)
        assert report.all_completed
        assert report.n_preemptions == 1
        low = next(j for j in report.jobs if j.name == "low")
        high = next(j for j in report.jobs if j.name == "high")
        assert high.queue_wait == 0.0
        assert low.n_preemptions == 1
        assert low.n_replans >= 1
        # The preempted job resumed with its progress intact.
        assert low.iterations == pytest.approx(30.0, abs=1e-6)

    def test_equal_priority_never_preempts(self):
        jobs = [
            tiny_job("a", priority=1, target_iterations=10),
            tiny_job("b", priority=1, target_iterations=3, arrival_time=5.0),
        ]
        report = schedule_trace(make_cluster(8), jobs, policy="priority", config=TINY)
        assert report.all_completed
        assert report.n_preemptions == 0

    def test_infeasible_head_job_does_not_cascade_preemptions(self):
        # The high-priority job OOMs on every partition, so preempting the
        # running low-priority job cannot help and must not happen.
        jobs = [
            tiny_job("low", priority=0, target_iterations=10),
            JobSpec(
                name="huge",
                actor_size="70b",
                critic_size="7b",
                batch_size=512,
                priority=9,
                arrival_time=5.0,
                target_iterations=2,
                min_gpus=8,
                max_gpus=8,
            ),
        ]
        report = schedule_trace(make_cluster(8), jobs, policy="priority", config=TINY)
        assert report.n_preemptions == 0
        phases = {j.name: j.phase for j in report.jobs}
        assert phases["low"] == JobPhase.COMPLETED.value
        assert phases["huge"] == JobPhase.UNPLACEABLE.value


class TestFailures:
    def test_node_failure_displaces_and_replans(self):
        jobs = [tiny_job("a", target_iterations=20)]
        failure = NodeFailure(time=20.0, node=0, recovery_time=40.0)
        report = schedule_trace(
            make_cluster(8), jobs, policy="first_fit", config=TINY, failures=[failure]
        )
        assert report.all_completed
        assert report.n_failures == 1
        assert report.n_recoveries == 1
        assert report.n_replans == 1
        job = report.jobs[0]
        # 20s of downtime shows up in the turnaround.
        assert job.turnaround > 20.0
        events = [e["event"] for e in report.timeline]
        assert "displaced" in events and "replan" in events

    def test_failure_of_idle_node_displaces_nothing(self):
        jobs = [tiny_job("a")]
        failure = NodeFailure(time=1.0, node=1)  # job runs on node 0
        report = schedule_trace(
            make_cluster(16), jobs, policy="first_fit", config=TINY, failures=[failure]
        )
        assert report.all_completed
        assert report.n_replans == 0

    def test_replans_are_warm_or_cached(self):
        jobs = [tiny_job("a", target_iterations=20), tiny_job("b", target_iterations=20)]
        failure = NodeFailure(time=30.0, node=0, recovery_time=60.0)
        report = schedule_trace(
            make_cluster(16), jobs, policy="first_fit", config=TINY, failures=[failure]
        )
        assert report.all_completed
        assert report.replan_searches.count >= 1
        assert report.cold_searches.count >= 1
        # Warm-started/cached replans must be cheaper than cold searches.
        assert report.replan_searches.mean_seconds < report.cold_searches.mean_seconds

    def test_invalid_failure_times_rejected(self):
        with pytest.raises(ValueError):
            NodeFailure(time=-1.0, node=0)
        with pytest.raises(ValueError):
            NodeFailure(time=5.0, node=0, recovery_time=5.0)

    def test_utilization_bounded_when_work_outlives_last_completion(self):
        # "short" completes early; "long" runs past that completion and is
        # then killed by a permanent whole-cluster failure.  Its GPU time
        # must widen the utilization denominator, not push it past 100%.
        jobs = [
            tiny_job("short", target_iterations=3),
            tiny_job("long", target_iterations=100),
        ]
        failures = [NodeFailure(time=80.0, node=0), NodeFailure(time=80.0, node=1)]
        report = schedule_trace(
            make_cluster(16), jobs, policy="first_fit", config=TINY, failures=failures
        )
        assert not report.all_completed
        assert report.busy_horizon > report.makespan
        assert 0.0 < report.gpu_utilization <= 1.0


class TestUnplaceableJobs:
    def test_memory_infeasible_job_is_dropped(self):
        # A 70B actor cannot fit on a single 8-GPU node at batch 512.
        jobs = [
            JobSpec(
                name="huge",
                actor_size="70b",
                critic_size="7b",
                batch_size=512,
                target_iterations=2,
                min_gpus=8,
                max_gpus=8,
            ),
            tiny_job("ok"),
        ]
        report = schedule_trace(make_cluster(8), jobs, policy="first_fit", config=TINY)
        phases = {j.name: j.phase for j in report.jobs}
        assert phases["ok"] == JobPhase.COMPLETED.value
        assert phases["huge"] == JobPhase.UNPLACEABLE.value
        assert not report.all_completed


class TestTraceDrivenProgress:
    def test_progress_is_iteration_granular(self):
        report = schedule_trace(
            make_cluster(16), [tiny_job("a"), tiny_job("b")],
            policy="first_fit", config=TINY,
        )
        for job in report.jobs:
            assert job.iterations == float(int(job.iterations))
        assert report.n_events > 0
        assert report.engine_profile_runs >= 1

    def test_iteration_pace_is_engine_derived(self):
        # The completion lands exactly target_iterations engine-iteration
        # periods after the start (clean single-job run, no displacement).
        from repro.sched import IterationProfiler

        scheduler = ClusterScheduler(
            make_cluster(8), [tiny_job("a")], policy="first_fit", config=TINY
        )
        report = scheduler.run()
        job = report.jobs[0]
        assert report.engine_profile_runs == 1
        runtime_job = scheduler.jobs[0]
        period = runtime_job.seconds_per_iteration
        assert job.completed_at == pytest.approx(4 * period)
        # The engine pace deliberately differs from the estimator's scalar.
        assert period != runtime_job.planned_seconds_per_iteration

    def test_displacement_charges_switch_cost_and_names_phase(self):
        jobs = [tiny_job("a", target_iterations=20)]
        failure = NodeFailure(time=20.0, node=0, recovery_time=40.0)
        report = schedule_trace(
            make_cluster(8), jobs, policy="first_fit", config=TINY,
            failures=[failure],
        )
        assert report.all_completed
        # A failure destroys the resident parameters: the replacement pays
        # a real (positive) reload priced by the realloc cost model.
        assert report.total_switch_seconds > 0
        displaced = next(e for e in report.timeline if e["event"] == "displaced")
        assert "during" in displaced["detail"]
        assert "lost" in displaced["detail"]
        replan = next(e for e in report.timeline if e["event"] == "replan")
        assert "param switch" in replan["detail"]

    def test_lost_iteration_still_bills_gpu_time(self):
        # Interrupting an iteration loses the progress but not the bill:
        # gpu_seconds exceeds completed_iterations * period * n_gpus.
        jobs = [tiny_job("a", target_iterations=20)]
        failure = NodeFailure(time=20.0, node=0, recovery_time=40.0)
        scheduler = ClusterScheduler(
            make_cluster(8), jobs, policy="first_fit", config=TINY,
            failures=[failure],
        )
        report = scheduler.run()
        job = report.jobs[0]
        period = scheduler.jobs[0].seconds_per_iteration
        assert job.gpu_seconds > job.iterations * period * 8 - 1e-6

    def test_merged_chrome_trace_spans_cluster_and_job_phases(self, tmp_path):
        from repro.sim import load_chrome_trace

        path = tmp_path / "schedule.json"
        report = schedule_trace(
            make_cluster(16),
            [tiny_job("a"), tiny_job("b", arrival_time=5.0)],
            policy="first_fit",
            config=TINY,
            failures=[NodeFailure(time=15.0, node=0, recovery_time=30.0)],
            trace_path=str(path),
        )
        assert report.trace_path == str(path)
        events = load_chrome_trace(path)
        processes = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert {"cluster", "job a", "job b"} <= processes
        categories = {e.get("cat") for e in events}
        # Cluster-level events and intra-iteration phases in one file.
        assert {"failure", "segment", "iteration", "phase"} <= categories
        assert any(e["ph"] == "i" for e in events)
        assert any(e["ph"] == "X" for e in events)

    def test_no_trace_path_skips_export(self):
        report = schedule_trace(
            make_cluster(8), [tiny_job("a")], policy="first_fit", config=TINY
        )
        assert report.trace_path is None

    def test_profile_cache_shared_across_same_spec_jobs(self):
        report = schedule_trace(
            make_cluster(16), [tiny_job("a"), tiny_job("b")],
            policy="first_fit", config=TINY,
        )
        # Two identical jobs on same-shaped partitions need one engine run.
        assert report.engine_profile_runs == 1


class TestStaticEqualBaseline:
    def test_static_slots_never_resize(self):
        jobs = [
            tiny_job("short", target_iterations=2),
            tiny_job("long", target_iterations=10, max_gpus=16),
        ]
        report = schedule_trace(
            make_cluster(16), jobs, policy=StaticEqualPolicy(n_slots=2), config=TINY
        )
        assert report.all_completed
        assert report.n_resizes == 0
        assert report.policy == "static_equal"
