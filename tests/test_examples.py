"""Smoke tests for the ``examples/`` scripts: import + tiny-setting run.

Examples drift silently when they are not exercised; each test loads the
script as a module and runs its ``main()`` with a tiny CLI configuration so
the whole path (argument parsing, planning, simulated execution, printing)
executes in well under a second per script.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def _load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _run_main(monkeypatch, name: str, argv: list[str]):
    module = _load_example(name)
    monkeypatch.setattr(sys, "argv", [f"{name}.py", *argv])
    module.main()


def test_examples_directory_complete():
    names = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))
    assert names == [
        "capacity_whatif",
        "compare_rlhf_systems",
        "long_context_planning",
        "multi_job_scheduling",
        "observability_tour",
        "quickstart",
        "tiny_rlhf_training",
        "trace_export",
    ]


def test_quickstart_tiny_run(monkeypatch, capsys):
    _run_main(
        monkeypatch,
        "quickstart",
        ["--gpus", "8", "--batch-size", "64", "--search-seconds", "0.2"],
    )
    out = capsys.readouterr().out
    assert "ExecutionPlan" in out
    assert "Speedup of the searched plan" in out


def test_compare_rlhf_systems_tiny_run(monkeypatch, capsys):
    _run_main(
        monkeypatch,
        "compare_rlhf_systems",
        ["--gpus", "8", "--search-seconds", "0.2"],
    )
    out = capsys.readouterr().out
    assert "ReaL" in out and "PFLOP/s" in out


def test_long_context_planning_tiny_run(monkeypatch, capsys):
    _run_main(
        monkeypatch,
        "long_context_planning",
        ["--gpus", "8", "--search-seconds", "0.2"],
    )
    out = capsys.readouterr().out
    assert "8192" in out and "improvement" in out


def test_tiny_rlhf_training_tiny_run(monkeypatch, capsys):
    _run_main(monkeypatch, "tiny_rlhf_training", ["--iterations", "2"])
    out = capsys.readouterr().out
    for name in ("PPO", "ReMax", "GRPO", "DPO"):
        assert name in out


def test_multi_job_scheduling_tiny_run(monkeypatch, capsys):
    _run_main(
        monkeypatch,
        "multi_job_scheduling",
        [
            "--gpus", "16",
            "--search-iterations", "25",
            "--search-seconds", "0.2",
            "--fail-node", "1",
        ],
    )
    out = capsys.readouterr().out
    assert "Timeline:" in out
    assert "failure" in out
    assert "GPU utilization" in out


def test_capacity_whatif_tiny_run(monkeypatch, capsys, tmp_path):
    report_path = tmp_path / "capacity.json"
    _run_main(
        monkeypatch,
        "capacity_whatif",
        [
            "--jobs", "4",
            "--horizon", "300",
            "--gpus", "32",
            "--report", str(report_path),
        ],
    )
    out = capsys.readouterr().out
    assert "Capacity what-if grid" in out
    assert "Pareto frontier:" in out
    assert report_path.exists()


def test_trace_export_tiny_run(monkeypatch, capsys, tmp_path):
    _run_main(
        monkeypatch,
        "trace_export",
        ["--gpus", "16", "--search-iterations", "25", "--out-dir", str(tmp_path)],
    )
    out = capsys.readouterr().out
    assert "engine iteration" in out
    assert "merged trace" in out
    # Both exported files load cleanly and validate as Chrome traces.
    from repro.sim import load_chrome_trace

    assert load_chrome_trace(tmp_path / "iteration_trace.json")
    assert load_chrome_trace(tmp_path / "schedule_trace.json")


def test_observability_tour_tiny_run(monkeypatch, capsys, tmp_path):
    _run_main(
        monkeypatch,
        "observability_tour",
        ["--gpus", "16", "--search-iterations", "25", "--out-dir", str(tmp_path)],
    )
    out = capsys.readouterr().out
    assert "metrics snapshot" in out
    assert "Prometheus exposition" in out
    assert "counter tracks" in out
    assert "causal spans" in out
    assert "provenance ledger" in out
    assert "run report" in out
    # The exports really landed: snapshot, exposition, trace, provenance.
    assert (tmp_path / "METRICS_TRACE_schedule.json").exists()
    assert (tmp_path / "PROVENANCE_TRACE_schedule.jsonl").exists()
    assert "# TYPE" in (tmp_path / "metrics.prom").read_text()
    from repro.sim import load_chrome_trace, validate_chrome_events

    events = load_chrome_trace(tmp_path / "TRACE_schedule.json")
    validate_chrome_events(events)
    assert any(event["ph"] == "C" for event in events)
    assert any(event["ph"] == "b" for event in events)


@pytest.mark.parametrize(
    "name",
    [
        "quickstart",
        "compare_rlhf_systems",
        "long_context_planning",
        "tiny_rlhf_training",
        "multi_job_scheduling",
        "observability_tour",
        "trace_export",
    ],
)
def test_example_imports_cleanly(name):
    module = _load_example(name)
    assert callable(module.main)
