"""Property tests: cross-cluster warm-start adaptation yields admissible plans.

The scheduler (and any shrinking cluster) relies on
:func:`repro.service.warm_start.adapt_plan` projecting a cached plan onto a
*smaller* cluster.  These tests check the adaptation contract for the PPO and
GRPO graphs: whenever every call has at least one pruned allocation option on
the target cluster, the adapted plan exists, covers the graph, uses only
admissible options (so it respects the per-call static memory cap encoded by
``PruneConfig.prune_static_oom``) and only meshes that fit the target
cluster's shape.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import build_grpo_graph, build_ppo_graph
from repro.cluster import make_cluster
from repro.core import (
    PruneConfig,
    SearchConfig,
    allocation_options,
    instructgpt_workload,
    search_execution_plan,
)
from repro.service import PlanCacheEntry, adapt_plan, fingerprint_request

_GRAPHS = {"ppo": build_ppo_graph, "grpo": build_grpo_graph}
_SEARCH = SearchConfig(max_iterations=10, time_budget_s=0.3, record_history=False)


def _cached_entry(graph, workload, cluster):
    """A genuine cache entry: short search on the source cluster."""
    result = search_execution_plan(graph, workload, cluster, config=_SEARCH)
    fingerprint = fingerprint_request(graph, workload, cluster, _SEARCH)
    return PlanCacheEntry.from_search_result(fingerprint, result, cluster)


def _assert_admissible(plan, graph, cluster, options):
    plan.validate(graph, cluster)  # covers the graph, meshes fit the cluster
    for call_name, alloc in plan.items():
        choices = options[call_name]
        assert alloc in choices, (
            f"{call_name} adapted to an allocation outside the pruned options "
            f"of the target cluster"
        )
        # Within the cluster's mesh-shape rules and memory-capped options.
        assert alloc.mesh.device_id_set <= set(range(cluster.n_gpus))


@pytest.mark.parametrize("algorithm", sorted(_GRAPHS))
@settings(max_examples=8, deadline=None)
@given(
    src_nodes=st.integers(min_value=2, max_value=3),
    dst_nodes=st.integers(min_value=1, max_value=2),
    batch_size=st.sampled_from([32, 64]),
)
def test_adapted_plan_is_admissible_on_smaller_cluster(
    algorithm, src_nodes, dst_nodes, batch_size
):
    graph = _GRAPHS[algorithm]()
    workload = instructgpt_workload("7b", "7b", batch_size=batch_size)
    src_cluster = make_cluster(src_nodes * 8)
    dst_cluster = make_cluster(min(dst_nodes, src_nodes) * 8)
    entry = _cached_entry(graph, workload, src_cluster)
    options = allocation_options(graph, workload, dst_cluster, PruneConfig())
    plan = adapt_plan(entry, graph, dst_cluster, options)
    if any(not options.get(name) for name in graph.call_names):
        assert plan is None
        return
    assert plan is not None
    _assert_admissible(plan, graph, dst_cluster, options)


@pytest.mark.parametrize("algorithm", sorted(_GRAPHS))
@pytest.mark.parametrize("dst_width", [2, 4, 8])
def test_adaptation_to_sub_node_slices(algorithm, dst_width):
    """Shrinking onto a sub-node partition (the scheduler's smallest shapes)."""
    graph = _GRAPHS[algorithm]()
    workload = instructgpt_workload("7b", "7b", batch_size=32)
    src_cluster = make_cluster(16)
    dst_cluster = make_cluster(dst_width, gpus_per_node=dst_width)
    entry = _cached_entry(graph, workload, src_cluster)
    options = allocation_options(graph, workload, dst_cluster, PruneConfig())
    plan = adapt_plan(entry, graph, dst_cluster, options)
    if any(not options.get(name) for name in graph.call_names):
        assert plan is None
        return
    assert plan is not None
    _assert_admissible(plan, graph, dst_cluster, options)


@pytest.mark.parametrize("algorithm", sorted(_GRAPHS))
def test_same_shape_adaptation_is_identity(algorithm):
    graph = _GRAPHS[algorithm]()
    workload = instructgpt_workload("7b", "7b", batch_size=32)
    cluster = make_cluster(16)
    entry = _cached_entry(graph, workload, cluster)
    options = allocation_options(graph, workload, cluster, PruneConfig())
    plan = adapt_plan(entry, graph, cluster, options)
    assert plan is not None
    source = entry.plan(cluster)
    assert {name: alloc for name, alloc in plan.items()} == dict(source.assignments)
