"""Tests for the per-layer analytical kernel model."""

import pytest

from repro.cluster import make_cluster
from repro.model import LayerCostModel, get_model_config


@pytest.fixture(scope="module")
def layer_model():
    return LayerCostModel(get_model_config("7b"), make_cluster(16))


class TestForwardBackward:
    def test_forward_positive(self, layer_model):
        timing = layer_model.forward_time(n_tokens=4096, seqlen=2048, tp=1)
        assert timing.compute_s > 0
        assert timing.total_s >= timing.compute_s

    def test_tp_reduces_compute_but_adds_comm(self, layer_model):
        tp1 = layer_model.forward_time(8192, 2048, tp=1)
        tp8 = layer_model.forward_time(8192, 2048, tp=8)
        assert tp8.compute_s < tp1.compute_s
        assert tp8.tp_comm_s > tp1.tp_comm_s == 0.0

    def test_backward_roughly_twice_forward(self, layer_model):
        fwd = layer_model.forward_time(4096, 2048, tp=2)
        bwd = layer_model.backward_time(4096, 2048, tp=2)
        assert bwd.compute_s == pytest.approx(2 * fwd.compute_s)

    def test_forward_scales_with_tokens(self, layer_model):
        small = layer_model.forward_time(1024, 2048, tp=1)
        large = layer_model.forward_time(4096, 2048, tp=1)
        assert large.compute_s > 3 * small.compute_s


class TestDecode:
    def test_decode_is_memory_bound_for_small_batch(self, layer_model):
        timing = layer_model.decode_time(batch=1, kv_len=1024, tp=1)
        # The weight-streaming time dominates the (tiny) compute time.
        weight_bytes = layer_model.config.layer_params() * 2
        io_floor = weight_bytes / layer_model.cluster.gpu.achievable_hbm_bandwidth
        assert timing.compute_s >= io_floor * 0.99

    def test_cuda_graph_reduces_launch_overhead(self, layer_model):
        with_graph = layer_model.decode_time(4, 1024, tp=1, use_cuda_graph=True)
        without = layer_model.decode_time(4, 1024, tp=1, use_cuda_graph=False)
        assert without.launch_s > with_graph.launch_s

    def test_tp_shrinks_decode_io(self, layer_model):
        tp1 = layer_model.decode_time(4, 1024, tp=1)
        tp8 = layer_model.decode_time(4, 1024, tp=8)
        assert tp8.compute_s < tp1.compute_s
        assert tp8.tp_comm_s > 0

    def test_decode_grows_with_kv_len(self, layer_model):
        short = layer_model.decode_time(64, 256, tp=1)
        long = layer_model.decode_time(64, 8192, tp=1)
        assert long.compute_s > short.compute_s


class TestHeadAndOptimizer:
    def test_head_forward_vocab_dominates_for_actor(self, layer_model):
        head = layer_model.head_forward_time(4096, tp=1)
        assert head.compute_s > 0

    def test_head_backward_twice_forward(self, layer_model):
        fwd = layer_model.head_forward_time(4096, tp=2)
        bwd = layer_model.head_backward_time(4096, tp=2)
        assert bwd.compute_s == pytest.approx(2 * fwd.compute_s)

    def test_critic_head_cheaper(self):
        cluster = make_cluster(8)
        actor = LayerCostModel(get_model_config("7b"), cluster)
        critic = LayerCostModel(get_model_config("7b", critic=True), cluster)
        assert critic.head_forward_time(4096, 1).compute_s < actor.head_forward_time(4096, 1).compute_s

    def test_optimizer_step_shrinks_with_tp(self, layer_model):
        tp1 = layer_model.optimizer_step_time(tp=1, pp=1)
        tp8 = layer_model.optimizer_step_time(tp=8, pp=1)
        assert tp8.compute_s < tp1.compute_s
