"""Tests for the user-facing experiment API (paper Figure 18 style)."""

import pytest

from repro.core import (
    GENERATE,
    INFERENCE,
    TRAIN_STEP,
    ExperimentConfig,
    ModelFunctionCallDef,
    PruneConfig,
    SearchConfig,
    auto,
    build_graph_from_defs,
)


def ppo_like_defs():
    return [
        ModelFunctionCallDef(
            model_name="actor", model_type="llama7b", interface_type=GENERATE,
            input_data=("prompts",), output_data=("seq", "logp"),
        ),
        ModelFunctionCallDef(
            model_name="reward", model_type="llama7b-critic", interface_type=INFERENCE,
            input_data=("seq",), output_data=("r",),
        ),
        ModelFunctionCallDef(
            model_name="actor", interface_type=TRAIN_STEP, model_type="llama7b",
            input_data=("seq", "logp", "r"),
        ),
    ]


class TestBuildGraphFromDefs:
    def test_basic_graph(self):
        graph, configs = build_graph_from_defs(ppo_like_defs())
        assert len(graph) == 3
        assert configs["actor"].name == "llama3-7b"
        assert configs["reward"].is_critic
        assert graph.model_names() == ["actor", "reward"]

    def test_call_names_unique_and_descriptive(self):
        graph, _ = build_graph_from_defs(ppo_like_defs())
        assert "actor_generate_0" in graph.call_names
        assert "actor_train_step_2" in graph.call_names

    def test_explicit_call_name(self):
        defs = ppo_like_defs()
        defs[0] = ModelFunctionCallDef(
            model_name="actor", model_type="llama7b", interface_type=GENERATE,
            input_data=("prompts",), output_data=("seq", "logp"), call_name="rollout",
        )
        graph, _ = build_graph_from_defs(defs)
        assert "rollout" in graph.call_names

    def test_missing_model_type_rejected(self):
        defs = [
            ModelFunctionCallDef(model_name="actor", interface_type=GENERATE,
                                 input_data=("prompts",), output_data=("seq",)),
        ]
        with pytest.raises(ValueError):
            build_graph_from_defs(defs)

    def test_conflicting_architectures_rejected(self):
        defs = ppo_like_defs()
        defs.append(
            ModelFunctionCallDef(model_name="actor", model_type="llama13b",
                                 interface_type=INFERENCE, input_data=("seq",),
                                 output_data=("x",))
        )
        with pytest.raises(ValueError):
            build_graph_from_defs(defs)

    def test_unparseable_model_type_rejected(self):
        defs = [ModelFunctionCallDef(model_name="actor", model_type="gpt-oss-120b",
                                     interface_type=GENERATE, input_data=("prompts",),
                                     output_data=("seq",))]
        with pytest.raises(ValueError):
            build_graph_from_defs(defs)


class TestAuto:
    def test_auto_builds_experiment(self):
        experiment = auto(ppo_like_defs(), n_gpus=8, batch_size=32)
        assert isinstance(experiment, ExperimentConfig)
        assert experiment.cluster.n_gpus == 8
        assert experiment.workload.batch_size == 32
        assert len(experiment.graph) == 3

    def test_auto_search_returns_feasible_plan(self):
        experiment = auto(
            ppo_like_defs(),
            n_gpus=8,
            batch_size=32,
            search=SearchConfig(max_iterations=150, time_budget_s=10, seed=0),
        )
        result = experiment.run_search()
        assert set(result.best_plan.assignments) == set(experiment.graph.call_names)
        from repro.core import RuntimeEstimator

        estimator = RuntimeEstimator(experiment.graph, experiment.workload, experiment.cluster)
        assert estimator.is_feasible(result.best_plan)


class TestFindExecutionPlan:
    def test_find_plan_for_named_algorithm(self):
        from repro.core import find_execution_plan

        result, experiment = find_execution_plan(
            algorithm="dpo",
            actor_size="7b",
            critic_size="7b",
            n_gpus=8,
            batch_size=32,
            search=SearchConfig(max_iterations=150, time_budget_s=10, seed=0),
        )
        assert result.best_cost > 0
        assert experiment.graph.name == "dpo"

    def test_unknown_algorithm_raises(self):
        from repro.core import find_execution_plan

        with pytest.raises(KeyError):
            find_execution_plan("alpaca", "7b", "7b", n_gpus=8)


class TestRunIterationTrace:
    def test_search_then_simulate_with_export(self, tmp_path):
        from repro.core import run_iteration_trace
        from repro.sim import load_chrome_trace

        path = tmp_path / "iteration.json"
        trace, experiment = run_iteration_trace(
            "ppo",
            n_gpus=8,
            batch_size=64,
            search=SearchConfig(max_iterations=60, time_budget_s=5, seed=0),
            trace_path=str(path),
        )
        assert trace.total_seconds > 0
        assert set(trace.call_spans) == set(experiment.graph.call_names)
        events = load_chrome_trace(path)
        span_names = {e["name"] for e in events if e["ph"] == "X"}
        assert set(experiment.graph.call_names) <= span_names

    def test_explicit_plan_skips_search(self):
        from repro.cluster import make_cluster
        from repro.core import ParallelStrategy, run_iteration_trace, symmetric_plan
        from repro.algorithms import build_graph

        plan = symmetric_plan(
            build_graph("grpo"), make_cluster(8), ParallelStrategy(1, 8, 1),
            n_microbatches=4,
        )
        trace, experiment = run_iteration_trace(
            "grpo", n_gpus=8, batch_size=64, plan=plan
        )
        assert experiment.graph.name == "grpo"
        assert trace.total_seconds > 0
