"""Unit and property tests for device meshes."""

import pytest
from hypothesis import given, strategies as st

from repro.cluster import (
    ClusterSpec,
    DeviceMesh,
    enumerate_device_meshes,
    full_cluster_mesh,
    make_cluster,
    meshes_tile_cluster,
)


@pytest.fixture(scope="module")
def cluster16():
    return make_cluster(16)


class TestDeviceMeshValidation:
    def test_full_cluster_mesh(self, cluster16):
        mesh = full_cluster_mesh(cluster16)
        assert mesh.n_gpus == 16
        assert mesh.shape == (2, 8)
        assert mesh.is_full_cluster()

    def test_sub_node_mesh(self, cluster16):
        mesh = DeviceMesh(cluster16, node_start=0, n_nodes=1, gpu_start=4, gpus_per_node=4)
        assert mesh.n_gpus == 4
        assert mesh.is_sub_node
        assert mesh.device_ids == (4, 5, 6, 7)

    def test_multi_node_must_cover_whole_hosts(self, cluster16):
        with pytest.raises(ValueError):
            DeviceMesh(cluster16, node_start=0, n_nodes=2, gpu_start=0, gpus_per_node=4)

    def test_sub_node_width_must_divide(self, cluster16):
        with pytest.raises(ValueError):
            DeviceMesh(cluster16, node_start=0, n_nodes=1, gpu_start=0, gpus_per_node=3)

    def test_sub_node_alignment(self, cluster16):
        with pytest.raises(ValueError):
            DeviceMesh(cluster16, node_start=0, n_nodes=1, gpu_start=2, gpus_per_node=4)

    def test_out_of_range_nodes(self, cluster16):
        with pytest.raises(ValueError):
            DeviceMesh(cluster16, node_start=1, n_nodes=2, gpu_start=0, gpus_per_node=8)

    def test_empty_mesh_rejected(self, cluster16):
        with pytest.raises(ValueError):
            DeviceMesh(cluster16, node_start=0, n_nodes=0, gpu_start=0, gpus_per_node=8)

    def test_describe_formats(self, cluster16):
        assert "trainer" in full_cluster_mesh(cluster16).describe()
        sub = DeviceMesh(cluster16, node_start=1, n_nodes=1, gpu_start=0, gpus_per_node=2)
        assert "gpu0-1" in sub.describe()


class TestDeviceMeshRelations:
    def test_device_ids_multi_node(self, cluster16):
        mesh = DeviceMesh(cluster16, node_start=0, n_nodes=2, gpu_start=0, gpus_per_node=8)
        assert mesh.device_ids == tuple(range(16))

    def test_overlap_true(self, cluster16):
        a = DeviceMesh(cluster16, 0, 1, 0, 8)
        b = DeviceMesh(cluster16, 0, 1, 4, 4)
        assert a.overlaps(b) and b.overlaps(a)

    def test_overlap_false(self, cluster16):
        a = DeviceMesh(cluster16, 0, 1, 0, 4)
        b = DeviceMesh(cluster16, 0, 1, 4, 4)
        assert not a.overlaps(b)
        assert not b.overlaps(a)

    def test_contains(self, cluster16):
        whole = full_cluster_mesh(cluster16)
        part = DeviceMesh(cluster16, 1, 1, 0, 8)
        assert whole.contains(part)
        assert not part.contains(whole)

    def test_node_ids(self, cluster16):
        mesh = DeviceMesh(cluster16, node_start=1, n_nodes=1, gpu_start=0, gpus_per_node=8)
        assert mesh.node_ids == (1,)


class TestEnumeration:
    def test_counts_for_single_node(self):
        cluster = make_cluster(8)
        meshes = enumerate_device_meshes(cluster)
        # widths 1,2,4,8 -> 8+4+2+1 = 15 meshes
        assert len(meshes) == 15

    def test_counts_for_two_nodes(self, cluster16):
        meshes = enumerate_device_meshes(cluster16)
        # 15 per node * 2 + one 2-node mesh
        assert len(meshes) == 31

    def test_min_max_filter(self, cluster16):
        meshes = enumerate_device_meshes(cluster16, min_gpus=8)
        assert all(m.n_gpus >= 8 for m in meshes)
        meshes_small = enumerate_device_meshes(cluster16, max_gpus=2)
        assert all(m.n_gpus <= 2 for m in meshes_small)

    def test_all_enumerated_meshes_are_valid(self, cluster16):
        for mesh in enumerate_device_meshes(cluster16):
            assert len(mesh.device_ids) == mesh.n_gpus
            assert len(set(mesh.device_ids)) == mesh.n_gpus

    def test_meshes_tile_cluster_detects_gap(self, cluster16):
        half = DeviceMesh(cluster16, 0, 1, 0, 8)
        assert not meshes_tile_cluster([half], cluster16)

    def test_meshes_tile_cluster_detects_overlap(self, cluster16):
        a = full_cluster_mesh(cluster16)
        b = DeviceMesh(cluster16, 0, 1, 0, 8)
        assert not meshes_tile_cluster([a, b], cluster16)

    def test_meshes_tile_cluster_accepts_partition(self, cluster16):
        a = DeviceMesh(cluster16, 0, 1, 0, 8)
        b = DeviceMesh(cluster16, 1, 1, 0, 8)
        assert meshes_tile_cluster([a, b], cluster16)


@given(n_nodes=st.integers(min_value=1, max_value=8), gpus_per_node=st.sampled_from([2, 4, 8]))
def test_enumerated_meshes_stay_inside_cluster(n_nodes, gpus_per_node):
    """Property: every enumerated mesh only references GPUs of the cluster."""
    cluster = ClusterSpec(n_nodes=n_nodes, gpus_per_node=gpus_per_node)
    for mesh in enumerate_device_meshes(cluster):
        assert all(0 <= g < cluster.n_gpus for g in mesh.device_ids)
        assert mesh.n_gpus <= cluster.n_gpus


@given(n_nodes=st.integers(min_value=1, max_value=4))
def test_overlap_is_symmetric(n_nodes):
    """Property: mesh overlap is a symmetric relation."""
    cluster = ClusterSpec(n_nodes=n_nodes, gpus_per_node=4)
    meshes = enumerate_device_meshes(cluster)
    for a in meshes[:10]:
        for b in meshes[:10]:
            assert a.overlaps(b) == b.overlaps(a)
