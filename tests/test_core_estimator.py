"""Tests for TimeCost (Algorithm 1), MaxMem and the search cost."""

import pytest

from repro.cluster import DeviceMesh, full_cluster_mesh, make_cluster
from repro.core import (
    Allocation,
    ParallelStrategy,
    Profiler,
    RuntimeEstimator,
    symmetric_plan,
)
from repro.core.estimator import DEFAULT_OOM_PENALTY


@pytest.fixture(scope="module")
def cluster():
    return make_cluster(16)


@pytest.fixture(scope="module")
def estimator(ppo_graph, small_workload, cluster):
    return RuntimeEstimator(ppo_graph, small_workload, cluster)


def concurrent_plan(ppo_graph, cluster):
    """Generation on the full cluster, the rest split across the two nodes."""
    full = full_cluster_mesh(cluster)
    node0 = DeviceMesh(cluster, 0, 1, 0, 8)
    node1 = DeviceMesh(cluster, 1, 1, 0, 8)
    strategy8 = ParallelStrategy(2, 4, 1)
    plan = symmetric_plan(ppo_graph, cluster, ParallelStrategy(2, 8, 1), n_microbatches=4)
    plan = plan.with_assignment("actor_train", Allocation(node0, strategy8, 4))
    plan = plan.with_assignment("critic_train", Allocation(node1, strategy8, 4))
    plan = plan.with_assignment("ref_inference", Allocation(node0, strategy8, 4))
    plan = plan.with_assignment("reward_inference", Allocation(node1, strategy8, 4))
    return plan


class TestTimeCost:
    def test_all_calls_scheduled(self, estimator, ppo_graph, cluster):
        plan = symmetric_plan(ppo_graph, cluster, ParallelStrategy(2, 8, 1), n_microbatches=4)
        result = estimator.time_cost(plan)
        assert set(result.spans) == set(ppo_graph.call_names)
        assert result.total_seconds > 0

    def test_dependencies_respected(self, estimator, ppo_graph, cluster):
        plan = symmetric_plan(ppo_graph, cluster, ParallelStrategy(2, 8, 1), n_microbatches=4)
        spans = estimator.time_cost(plan).spans
        # Generation finishes before any inference starts; training starts last.
        gen_end = spans["actor_generate"][1]
        for name in ("reward_inference", "ref_inference", "critic_inference"):
            assert spans[name][0] >= gen_end - 1e-9
        assert spans["actor_train"][0] >= max(spans[n][1] for n in ("reward_inference", "ref_inference", "critic_inference")) - 1e-9

    def test_total_is_max_end_time(self, estimator, ppo_graph, cluster):
        plan = symmetric_plan(ppo_graph, cluster, ParallelStrategy(2, 8, 1), n_microbatches=4)
        result = estimator.time_cost(plan)
        assert result.total_seconds == pytest.approx(max(e for _, e in result.spans.values()))

    def test_concurrent_execution_overlaps(self, estimator, ppo_graph, cluster):
        plan = concurrent_plan(ppo_graph, cluster)
        spans = estimator.time_cost(plan).spans
        a = spans["actor_train"]
        c = spans["critic_train"]
        # Disjoint meshes: the two training calls overlap in time.
        assert a[0] < c[1] and c[0] < a[1]

    def test_overlapping_meshes_serialize(self, estimator, ppo_graph, cluster):
        plan = symmetric_plan(ppo_graph, cluster, ParallelStrategy(2, 8, 1), n_microbatches=4)
        spans = estimator.time_cost(plan).spans
        ordered = sorted(spans.values())
        for (s1, e1), (s2, _e2) in zip(ordered, ordered[1:]):
            assert s2 >= e1 - 1e-6

    def test_reallocation_cost_counted(self, estimator, ppo_graph, cluster):
        plan = symmetric_plan(ppo_graph, cluster, ParallelStrategy(2, 8, 1), n_microbatches=4)
        assert estimator.time_cost(plan).realloc_seconds == 0.0
        modified = plan.with_assignment(
            "actor_generate",
            Allocation(full_cluster_mesh(cluster), ParallelStrategy(4, 4, 1), 1),
        )
        assert estimator.time_cost(modified).realloc_seconds > 0.0

    def test_call_time_memoised(self, estimator, ppo_graph, cluster):
        plan = symmetric_plan(ppo_graph, cluster, ParallelStrategy(2, 8, 1), n_microbatches=4)
        alloc = plan["actor_generate"]
        t1 = estimator.call_time("actor_generate", alloc)
        t2 = estimator.call_time("actor_generate", alloc)
        assert t1 == t2 > 0


class TestMaxMem:
    def test_memory_positive_everywhere(self, estimator, ppo_graph, cluster):
        plan = symmetric_plan(ppo_graph, cluster, ParallelStrategy(2, 8, 1), n_microbatches=8)
        mem = estimator.max_memory(plan)
        assert len(mem.per_gpu) == cluster.n_gpus
        assert all(v > 0 for v in mem.per_gpu.values())
        assert mem.max_bytes >= mem.max_static_bytes

    def test_symmetric_7b_plan_fits(self, estimator, ppo_graph, cluster):
        plan = symmetric_plan(ppo_graph, cluster, ParallelStrategy(2, 8, 1), n_microbatches=8)
        assert estimator.is_feasible(plan)

    def test_unsharded_70b_does_not_fit(self, ppo_graph, cluster):
        from repro.core import instructgpt_workload

        workload = instructgpt_workload("70b", "7b", batch_size=128)
        estimator = RuntimeEstimator(ppo_graph, workload, cluster)
        # dp=16, tp=1, pp=1 keeps the full 70B on every GPU: hopeless.
        plan = symmetric_plan(ppo_graph, cluster, ParallelStrategy(16, 1, 1), n_microbatches=8)
        assert not estimator.is_feasible(plan)

    def test_cost_applies_oom_penalty(self, ppo_graph, cluster):
        from repro.core import instructgpt_workload

        workload = instructgpt_workload("70b", "7b", batch_size=128)
        estimator = RuntimeEstimator(ppo_graph, workload, cluster)
        plan = symmetric_plan(ppo_graph, cluster, ParallelStrategy(16, 1, 1), n_microbatches=8)
        time_cost = estimator.time_cost(plan).total_seconds
        assert estimator.cost(plan) == pytest.approx(DEFAULT_OOM_PENALTY * time_cost)

    def test_cost_without_penalty_equals_time(self, estimator, ppo_graph, cluster):
        plan = symmetric_plan(ppo_graph, cluster, ParallelStrategy(2, 8, 1), n_microbatches=8)
        assert estimator.cost(plan) == pytest.approx(estimator.time_cost(plan).total_seconds)


class TestProfiledEstimator:
    def test_profiled_estimator_close_to_analytical(self, ppo_graph, small_workload, cluster):
        profiler = Profiler(cluster)
        profiles = {
            name: profiler.profile(small_workload.model_config(name), max_tokens=2 ** 19,
                                   tp_degrees=(1, 2, 4, 8), seq_lengths=(1024, 2048), max_batch=128)
            for name in ppo_graph.model_names()
        }
        exact = RuntimeEstimator(ppo_graph, small_workload, cluster)
        approx = RuntimeEstimator(ppo_graph, small_workload, cluster, profiles=profiles)
        plan = symmetric_plan(ppo_graph, cluster, ParallelStrategy(2, 8, 1), n_microbatches=4)
        t_exact = exact.time_cost(plan).total_seconds
        t_approx = approx.time_cost(plan).total_seconds
        # The paper reports estimator errors below ~25%.
        assert abs(t_approx - t_exact) / t_exact < 0.25
