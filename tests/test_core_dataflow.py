"""Tests for dataflow graphs and model function calls."""

import pytest

from repro.core import DataflowGraph, FunctionCallType, ModelFunctionCall


def simple_graph():
    calls = [
        ModelFunctionCall("gen", "actor", FunctionCallType.GENERATE, ("prompts",), ("seq",)),
        ModelFunctionCall("score", "reward", FunctionCallType.INFERENCE, ("seq",), ("r",)),
        ModelFunctionCall("train", "actor", FunctionCallType.TRAIN_STEP, ("seq", "r"), ()),
    ]
    return DataflowGraph(calls=calls)


class TestModelFunctionCall:
    def test_trainable_flag(self):
        call = ModelFunctionCall("t", "actor", FunctionCallType.TRAIN_STEP)
        assert call.is_trainable
        assert not ModelFunctionCall("g", "actor", FunctionCallType.GENERATE).is_trainable

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            ModelFunctionCall("", "actor", FunctionCallType.GENERATE)

    def test_rejects_bad_batch_scale(self):
        with pytest.raises(ValueError):
            ModelFunctionCall("g", "actor", FunctionCallType.GENERATE, batch_scale=0.0)


class TestDataflowGraph:
    def test_edges_derived_from_keys(self):
        graph = simple_graph()
        assert ("gen", "score") in graph.edges
        assert ("gen", "train") in graph.edges
        assert ("score", "train") in graph.edges

    def test_parents_and_children(self):
        graph = simple_graph()
        assert set(graph.parents("train")) == {"gen", "score"}
        assert graph.children("gen") == ["score", "train"]
        assert graph.parents("gen") == []

    def test_topological_order(self):
        order = simple_graph().topological_order()
        assert order.index("gen") < order.index("score") < order.index("train")

    def test_sources_and_sinks(self):
        graph = simple_graph()
        assert graph.sources() == ["gen"]
        assert graph.sinks() == ["train"]

    def test_model_names_preserve_order(self):
        assert simple_graph().model_names() == ["actor", "reward"]

    def test_calls_of_model_in_topo_order(self):
        calls = simple_graph().calls_of_model("actor")
        assert [c.name for c in calls] == ["gen", "train"]

    def test_trainable_models(self):
        assert simple_graph().trainable_models() == ["actor"]

    def test_contains_and_get(self):
        graph = simple_graph()
        assert "gen" in graph
        assert graph.get("gen").model_name == "actor"
        assert "missing" not in graph

    def test_len(self):
        assert len(simple_graph()) == 3

    def test_duplicate_names_rejected(self):
        calls = [
            ModelFunctionCall("x", "actor", FunctionCallType.GENERATE, ("prompts",), ("a",)),
            ModelFunctionCall("x", "actor", FunctionCallType.INFERENCE, ("a",), ("b",)),
        ]
        with pytest.raises(ValueError):
            DataflowGraph(calls=calls)

    def test_unknown_input_key_rejected(self):
        calls = [ModelFunctionCall("x", "actor", FunctionCallType.GENERATE, ("mystery",), ())]
        with pytest.raises(ValueError):
            DataflowGraph(calls=calls)

    def test_duplicate_output_key_rejected(self):
        calls = [
            ModelFunctionCall("a", "actor", FunctionCallType.GENERATE, ("prompts",), ("seq",)),
            ModelFunctionCall("b", "actor", FunctionCallType.GENERATE, ("prompts",), ("seq",)),
        ]
        with pytest.raises(ValueError):
            DataflowGraph(calls=calls)

    def test_cycle_detected_via_extra_edges(self):
        calls = [
            ModelFunctionCall("a", "actor", FunctionCallType.GENERATE, ("prompts",), ("x",)),
            ModelFunctionCall("b", "actor", FunctionCallType.INFERENCE, ("x",), ("y",)),
        ]
        with pytest.raises(ValueError):
            DataflowGraph(calls=calls, extra_edges=[("b", "a")])

    def test_extra_edge_unknown_call_rejected(self):
        calls = [ModelFunctionCall("a", "actor", FunctionCallType.GENERATE, ("prompts",), ("x",))]
        with pytest.raises(ValueError):
            DataflowGraph(calls=calls, extra_edges=[("a", "ghost")])
