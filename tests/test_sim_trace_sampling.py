"""Trace sampling and bounded retention invariants of :class:`TraceRecorder`.

Fleet-scale schedules emit millions of Chrome-trace events, so the recorder
supports deterministic systematic sampling (``REPRO_TRACE_SAMPLE``) and a
hard cap with head/tail retention (``REPRO_TRACE_MAX_EVENTS``).  Invariants
tested here:

* knobs at defaults ⇒ the export is **byte-identical** to an unsampled
  recorder (no behaviour change for existing users);
* every sampled export still passes :func:`validate_chrome_events`;
* async begin/end and flow start/finish pairs share one sampling decision —
  no orphaned halves, ever;
* metadata (``ph: "M"``) naming events are exempt from sampling and the cap,
  so every surviving payload event keeps its process/thread labels;
* the cap keeps the head verbatim, a bounded tail window, and an instant
  marker naming the drop count (only when events actually rolled out).
"""

import json

import pytest

from repro.sim import TraceRecorder, validate_chrome_events


def _populate(recorder: TraceRecorder, n: int = 40) -> None:
    """A deterministic mix of every event kind across two processes."""
    for i in range(n):
        process = "sched" if i % 2 else "engine"
        recorder.add_span(process, f"gpu {i % 3}", f"span-{i}", i * 1.0, i + 0.5,
                          category="work", args={"i": i})
        if i % 4 == 0:
            recorder.add_instant(process, "events", f"marker-{i}", i * 1.0)
        if i % 5 == 0:
            recorder.add_counter(process, "load", i * 1.0, {"jobs": float(i)})
        if i % 7 == 0:
            recorder.add_async_span(process, "sessions", f"async-{i}",
                                    i * 1.0, i + 2.0, id=i)
        if i % 9 == 0:
            recorder.add_flow("sched", "events", i * 1.0,
                              "engine", "events", i + 0.25, id=f"flow-{i}")


class TestDefaultsAreByteIdentical:
    def test_default_knobs_match_explicit_unsampled(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_SAMPLE", raising=False)
        monkeypatch.delenv("REPRO_TRACE_MAX_EVENTS", raising=False)
        default = TraceRecorder()
        explicit = TraceRecorder(sample_rate=1.0, max_events=0)
        _populate(default)
        _populate(explicit)
        assert json.dumps(default.to_json(), sort_keys=True) == json.dumps(
            explicit.to_json(), sort_keys=True
        )
        assert default.n_sampled_out == 0
        assert default.n_capped_out == 0

    def test_rate_one_from_env_is_identical_too(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_SAMPLE", "1.0")
        sampled = TraceRecorder()
        reference = TraceRecorder(sample_rate=1.0, max_events=0)
        _populate(sampled)
        _populate(reference)
        assert sampled.to_json() == reference.to_json()


class TestSampling:
    def test_sampled_export_validates_and_counts_drops(self):
        recorder = TraceRecorder(sample_rate=0.3)
        _populate(recorder)
        events = recorder.events()  # validates internally
        validate_chrome_events(events)
        assert recorder.n_sampled_out > 0
        payload = [e for e in events if e["ph"] != "M"]
        full = TraceRecorder()
        _populate(full)
        assert len(payload) < len([e for e in full.events() if e["ph"] != "M"])

    def test_pairs_share_one_decision(self):
        recorder = TraceRecorder(sample_rate=0.4)
        _populate(recorder, n=60)
        events = recorder.events()
        by_phase = {}
        for event in events:
            by_phase.setdefault(event["ph"], []).append(event)
        begins = {e["id"] for e in by_phase.get("b", [])}
        ends = {e["id"] for e in by_phase.get("e", [])}
        assert begins == ends, "orphaned async half in sampled trace"
        starts = {e["id"] for e in by_phase.get("s", [])}
        finishes = {e["id"] for e in by_phase.get("f", [])}
        assert starts == finishes, "orphaned flow half in sampled trace"

    def test_metadata_survives_for_every_kept_event(self):
        recorder = TraceRecorder(sample_rate=0.25)
        _populate(recorder, n=60)
        events = recorder.events()
        named_pids = {e["pid"] for e in events
                      if e["ph"] == "M" and e["name"] == "process_name"}
        for event in events:
            if event["ph"] != "M":
                assert event["pid"] in named_pids

    def test_sampling_is_deterministic(self):
        a, b = TraceRecorder(sample_rate=0.5), TraceRecorder(sample_rate=0.5)
        _populate(a)
        _populate(b)
        assert a.to_json() == b.to_json()

    @pytest.mark.parametrize("raw", ["banana", "0", "-0.5", "1.5"])
    def test_malformed_env_rate_fails_loudly(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_TRACE_SAMPLE", raw)
        with pytest.raises(ValueError, match="REPRO_TRACE_SAMPLE"):
            TraceRecorder()

    @pytest.mark.parametrize("raw", ["banana", "-3"])
    def test_malformed_env_cap_fails_loudly(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_TRACE_MAX_EVENTS", raw)
        with pytest.raises(ValueError, match="REPRO_TRACE_MAX_EVENTS"):
            TraceRecorder()


class TestHardCap:
    def test_head_and_tail_retention_with_marker(self):
        recorder = TraceRecorder(max_events=12)
        _populate(recorder, n=50)
        assert recorder.n_capped_out > 0
        events = recorder.events()
        validate_chrome_events(events)
        payload = [e for e in events if e["ph"] != "M"]
        markers = [e for e in payload if str(e["name"]).startswith("[trace capped:")]
        assert len(markers) == 1
        assert str(recorder.n_capped_out) in markers[0]["name"]
        # Head: the very first payload event is retained verbatim.
        assert payload[0]["name"] == "span-0"
        # Tail: the last recorded payload event survives the rolling window
        # (i=49 records span-49 then an async pair; the pair's end is last).
        assert payload[-1]["name"] == "async-49"
        # Retention bound: head + tail + marker, metadata exempt.
        assert len(payload) <= 12 + 1

    def test_no_marker_when_nothing_dropped(self):
        recorder = TraceRecorder(max_events=1000)
        _populate(recorder, n=10)
        assert recorder.n_capped_out == 0
        names = [e["name"] for e in recorder.events()]
        assert not any(str(name).startswith("[trace capped:") for name in names)

    def test_env_cap_engages(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_MAX_EVENTS", "8")
        recorder = TraceRecorder()
        assert recorder.max_events == 8
        _populate(recorder, n=30)
        payload = len([e for e in recorder.events() if e["ph"] != "M"])
        assert payload <= 8 + 1  # head + tail + possibly the marker
