"""Tests for the PPO / DPO / GRPO / ReMax dataflow graphs and the registry."""

import pytest

from repro.algorithms import (
    ALGORITHMS,
    PPO_CALL_NAMES,
    available_algorithms,
    build_dpo_graph,
    build_graph,
    build_grpo_graph,
    build_ppo_graph,
    build_remax_graph,
    register_algorithm,
)
from repro.core import FunctionCallType


class TestPPOGraph:
    def test_six_calls_four_models(self):
        graph = build_ppo_graph()
        assert len(graph) == 6
        assert set(graph.model_names()) == {"actor", "reward", "ref", "critic"}
        assert set(graph.call_names) == set(PPO_CALL_NAMES)

    def test_dependencies_match_figure1(self):
        graph = build_ppo_graph()
        assert set(graph.parents("reward_inference")) == {"actor_generate"}
        assert "reward_inference" in graph.parents("actor_train")
        assert "ref_inference" in graph.parents("actor_train")
        assert "critic_inference" in graph.parents("critic_train")
        assert graph.sources() == ["actor_generate"]
        assert set(graph.sinks()) == {"actor_train", "critic_train"}

    def test_trainable_models(self):
        assert build_ppo_graph().trainable_models() == ["actor", "critic"]

    def test_inference_calls_independent_of_each_other(self):
        graph = build_ppo_graph()
        for a in ("reward_inference", "ref_inference", "critic_inference"):
            for b in ("reward_inference", "ref_inference", "critic_inference"):
                if a != b:
                    assert b not in graph.parents(a)


class TestDPOGraph:
    def test_two_calls_no_critic(self):
        graph = build_dpo_graph()
        assert len(graph) == 2
        assert set(graph.model_names()) == {"actor", "ref"}
        assert graph.get("actor_train").call_type is FunctionCallType.TRAIN_STEP

    def test_paired_batch_scale(self):
        graph = build_dpo_graph()
        assert graph.get("ref_inference").batch_scale == 2.0
        assert graph.get("actor_train").batch_scale == 2.0

    def test_training_depends_on_reference(self):
        graph = build_dpo_graph()
        assert "ref_inference" in graph.parents("actor_train")


class TestGRPOGraph:
    def test_group_size_scales_batch(self):
        graph = build_grpo_graph(group_size=8)
        assert graph.get("actor_generate").batch_scale == 8.0
        assert graph.get("actor_train").batch_scale == 8.0

    def test_no_critic_model(self):
        graph = build_grpo_graph()
        assert "critic" not in graph.model_names()

    def test_invalid_group_size(self):
        with pytest.raises(ValueError):
            build_grpo_graph(group_size=0)

    def test_dependencies(self):
        graph = build_grpo_graph()
        assert set(graph.parents("actor_train")) >= {"actor_generate", "reward_inference", "ref_inference"}


class TestReMaxGraph:
    def test_two_generation_calls_are_independent(self):
        graph = build_remax_graph()
        gens = [c.name for c in graph.calls if c.call_type is FunctionCallType.GENERATE]
        assert len(gens) == 2
        for a in gens:
            for b in gens:
                if a != b:
                    assert b not in graph.parents(a)

    def test_training_needs_both_rewards(self):
        graph = build_remax_graph()
        parents = set(graph.parents("actor_train"))
        assert {"sample_reward_inference", "greedy_reward_inference"} <= parents

    def test_no_critic(self):
        assert "critic" not in build_remax_graph().model_names()


class TestRegistry:
    def test_all_four_algorithms_registered(self):
        assert set(available_algorithms()) >= {"ppo", "dpo", "grpo", "remax"}

    def test_build_graph_case_insensitive(self):
        assert build_graph("PPO").name == "ppo"

    def test_unknown_algorithm(self):
        with pytest.raises(KeyError):
            build_graph("rlaif")

    def test_register_new_algorithm(self):
        def builder():
            return build_dpo_graph()

        register_algorithm("test-algo", builder)
        try:
            assert build_graph("test-algo").name == "dpo"
            with pytest.raises(ValueError):
                register_algorithm("test-algo", builder)
            register_algorithm("test-algo", builder, overwrite=True)
        finally:
            ALGORITHMS.pop("test-algo", None)

    def test_every_registered_graph_is_valid(self):
        for name in available_algorithms():
            graph = build_graph(name)
            graph.validate()
            assert graph.topological_order()
