"""Unit tests of the telemetry core: registry, instruments, P², logging.

Covers the :mod:`repro.obs.metrics` instrument semantics (counters, gauges,
histograms with labeled series and streaming quantiles), the disabled-mode
null instruments and the ``REPRO_METRICS``/``REPRO_LOG_*`` environment
knobs, the ``timed``/``span`` helpers, the structured ``repro.*`` logging
setup, and the :class:`~repro.service.server.ServiceStats` delta arithmetic
the scheduler and benchmarks report per-run statistics through.
"""

from __future__ import annotations

import io
import json
import logging
import threading

import numpy as np
import pytest

from repro.obs.log import JsonFormatter, configure_logging, get_logger
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    P2Quantile,
    get_registry,
    metrics_enabled,
    set_registry,
    span,
    timed,
)
from repro.service.server import ServiceStats


@pytest.fixture
def registry():
    return MetricsRegistry(enabled=True)


class TestP2Quantile:
    def test_rejects_degenerate_quantiles(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.0)

    def test_empty_estimator_reports_zero(self):
        assert P2Quantile(0.5).value() == 0.0

    def test_exact_below_five_observations(self):
        q = P2Quantile(0.5)
        for x in (3.0, 1.0, 2.0):
            q.observe(x)
        assert q.value() == 2.0

    def test_streaming_estimates_track_numpy(self):
        rng = np.random.default_rng(7)
        samples = rng.lognormal(mean=0.0, sigma=1.0, size=20_000)
        estimators = {p: P2Quantile(p) for p in (0.5, 0.9, 0.99)}
        for x in samples:
            for estimator in estimators.values():
                estimator.observe(float(x))
        for p, estimator in estimators.items():
            exact = float(np.quantile(samples, p))
            assert estimator.value() == pytest.approx(exact, rel=0.05), p

    def test_monotone_across_quantiles(self):
        rng = np.random.default_rng(3)
        p50, p99 = P2Quantile(0.5), P2Quantile(0.99)
        for x in rng.exponential(size=5_000):
            p50.observe(float(x))
            p99.observe(float(x))
        assert p50.value() < p99.value()


class TestCounterGauge:
    def test_counter_accumulates_and_rejects_negatives(self, registry):
        c = registry.counter("requests_total", "requests")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_moves_both_ways(self, registry):
        g = registry.gauge("inflight", "in flight")
        g.set(5)
        g.dec(2)
        g.inc()
        assert g.value == 4.0

    def test_labeled_series_are_interned(self, registry):
        c = registry.counter("by_outcome", "requests", labels=("outcome",))
        c.labels(outcome="hit").inc()
        c.labels(outcome="hit").inc()
        c.labels(outcome="miss").inc()
        series = {key: s[0] for key, s in c.series_items()}
        assert series == {("hit",): 2.0, ("miss",): 1.0}

    def test_wrong_label_names_rejected(self, registry):
        c = registry.counter("labeled", "x", labels=("outcome",))
        with pytest.raises(ValueError):
            c.labels(wrong="hit")
        # A labeled family has no default series to update directly.
        with pytest.raises(ValueError):
            c.inc()

    def test_same_name_returns_same_instrument(self, registry):
        a = registry.counter("shared_total", "first")
        b = registry.counter("shared_total", "second registration ignored")
        assert a is b

    def test_type_mismatch_on_reregistration_raises(self, registry):
        registry.counter("clash", "a counter")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("clash", "now a gauge?")

    def test_thread_safety_under_contention(self, registry):
        c = registry.counter("contended_total", "")
        n_threads, n_incs = 8, 2_000

        def worker():
            for _ in range(n_incs):
                c.inc()

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == n_threads * n_incs


class TestHistogram:
    def test_moments_buckets_and_percentiles(self, registry):
        h = registry.histogram("latency_seconds", "latency", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 0.5, 2.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(3.05)
        data = h.to_dict()["series"][0]
        assert data["buckets"] == {"0.1": 1, "1.0": 3, "+Inf": 4}
        assert data["min"] == 0.05 and data["max"] == 2.0
        assert data["p50"] == pytest.approx(0.5)

    def test_percentile_lookup(self, registry):
        h = registry.histogram("p_seconds", "p")
        for v in range(1, 101):
            h.observe(float(v))
        assert h.percentile(0.5) == pytest.approx(50.0, rel=0.1)
        with pytest.raises(ValueError):
            h.percentile(0.42)

    def test_default_buckets_sorted_unique(self):
        assert tuple(sorted(set(DEFAULT_BUCKETS))) == DEFAULT_BUCKETS

    def test_rejects_empty_or_duplicate_buckets(self, registry):
        with pytest.raises(ValueError):
            registry.histogram("bad1", "", buckets=())
        with pytest.raises(ValueError):
            registry.histogram("bad2", "", buckets=(1.0, 1.0))

    def test_labeled_histogram_series(self, registry):
        h = registry.histogram("req_seconds", "", labels=("outcome",))
        h.labels(outcome="cold").observe(1.0)
        h.labels(outcome="hit").observe(0.001)
        series = dict(h.series_items())
        assert series[("cold",)].count == 1
        assert series[("hit",)].sum == pytest.approx(0.001)


class TestDisabledRegistry:
    def test_disabled_registry_hands_out_null_instruments(self):
        registry = MetricsRegistry(enabled=False)
        c = registry.counter("anything", "")
        g = registry.gauge("anything_else", "")
        h = registry.histogram("more", "")
        c.inc()
        g.set(5)
        h.observe(1.0)
        assert c.value == 0.0 and g.value == 0.0 and h.count == 0
        assert h.labels(outcome="x") is h or h.labels(outcome="x").count == 0
        assert registry.to_dict()["metrics"] == {}

    def test_disabled_registry_skips_collectors(self):
        registry = MetricsRegistry(enabled=False)
        calls = []
        registry.register_collector(lambda: calls.append(1))
        registry.collect()
        assert calls == []

    def test_env_knob_off_values(self, monkeypatch):
        for value in ("off", "0", "false", "NO", "Disabled"):
            monkeypatch.setenv("REPRO_METRICS", value)
            assert not metrics_enabled()
            assert not MetricsRegistry().enabled
        for value in ("on", "1", "anything"):
            monkeypatch.setenv("REPRO_METRICS", value)
            assert metrics_enabled()
        monkeypatch.delenv("REPRO_METRICS")
        assert metrics_enabled()

    def test_null_timed_still_measures(self):
        registry = MetricsRegistry(enabled=False)
        h = registry.histogram("t_seconds", "")
        with h.time() as t:
            pass
        assert t.elapsed >= 0.0


class TestRegistry:
    def test_collectors_run_on_snapshot_and_unregister(self, registry):
        calls = []

        def collector():
            calls.append(1)
            registry.gauge("collected", "").set(42)

        fn = registry.register_collector(collector)
        data = registry.to_dict()
        assert calls == [1]
        assert data["metrics"]["collected"]["series"][0]["value"] == 42
        registry.unregister_collector(fn)
        registry.collect()
        assert calls == [1]
        registry.unregister_collector(fn)  # idempotent

    def test_get_and_instruments_sorted(self, registry):
        registry.counter("zeta", "")
        registry.counter("alpha", "")
        assert [i.name for i in registry.instruments()] == ["alpha", "zeta"]
        assert registry.get("alpha") is not None
        assert registry.get("missing") is None

    def test_global_registry_swap(self):
        fresh = MetricsRegistry(enabled=True)
        previous = set_registry(fresh)
        try:
            assert get_registry() is fresh
        finally:
            set_registry(previous)
        assert get_registry() is previous


class TestTimedAndSpan:
    def test_timed_context_manager_observes(self, registry):
        h = registry.histogram("block_seconds", "")
        with timed(h) as t:
            pass
        assert h.count == 1
        assert t.elapsed >= 0.0

    def test_timed_decorator(self, registry):
        h = registry.histogram("fn_seconds", "")

        @timed(h)
        def work(x):
            return x * 2

        assert work(21) == 42
        assert h.count == 1

    def test_timed_on_gauge_sets_elapsed(self, registry):
        g = registry.gauge("last_seconds", "")
        with timed(g):
            pass
        assert g.value >= 0.0

    def test_span_logs_at_debug_and_observes(self, registry):
        h = registry.histogram("span_seconds", "")
        stream = io.StringIO()
        logger = logging.getLogger("test.obs.span")
        logger.setLevel(logging.DEBUG)
        logger.addHandler(logging.StreamHandler(stream))
        try:
            with span("phase", logger=logger, histogram=h, job="j1"):
                pass
        finally:
            logger.handlers.clear()
        assert h.count == 1
        out = stream.getvalue()
        assert "phase took" in out and "job=j1" in out


class TestLogging:
    def test_json_formatter_emits_extras(self):
        record = logging.LogRecord(
            "repro.test", logging.INFO, __file__, 1, "served %s", ("cold",), None
        )
        record.fingerprint = "abc"
        payload = json.loads(JsonFormatter().format(record))
        assert payload["message"] == "served cold"
        assert payload["level"] == "info"
        assert payload["logger"] == "repro.test"
        assert payload["fingerprint"] == "abc"
        assert "ts" in payload

    def test_configure_logging_levels_and_format(self, monkeypatch):
        stream = io.StringIO()
        root = configure_logging(level="debug", fmt="json", stream=stream)
        try:
            assert root.level == logging.DEBUG
            get_logger("service").debug("hello", extra={"k": "v"})
            line = stream.getvalue().strip()
            payload = json.loads(line)
            assert payload["message"] == "hello" and payload["k"] == "v"
            assert not root.propagate
            assert len(root.handlers) == 1
        finally:
            configure_logging(level="warning", fmt="text")

    def test_env_knobs_drive_configuration(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_LEVEL", "error")
        monkeypatch.setenv("REPRO_LOG_FORMAT", "json")
        stream = io.StringIO()
        root = configure_logging(stream=stream)
        try:
            assert root.level == logging.ERROR
            assert isinstance(root.handlers[0].formatter, JsonFormatter)
        finally:
            monkeypatch.delenv("REPRO_LOG_LEVEL")
            monkeypatch.delenv("REPRO_LOG_FORMAT")
            configure_logging()

    def test_get_logger_returns_repro_children(self):
        assert get_logger("sched").name == "repro.sched"
        assert get_logger().name == "repro"


class TestServiceStatsDelta:
    def test_delta_subtracts_every_counter(self):
        baseline = ServiceStats(
            requests=10, cache_hits=4, cache_misses=6, warm_starts=2,
            dedup_joins=1, estimator_reuses=3, parallel_searches=1,
            search_seconds=5.0,
        )
        live = ServiceStats(
            requests=25, cache_hits=14, cache_misses=11, warm_starts=5,
            dedup_joins=2, estimator_reuses=9, parallel_searches=2,
            search_seconds=8.5,
        )
        delta = live.delta(baseline)
        assert delta.requests == 15
        assert delta.cache_hits == 10
        assert delta.cache_misses == 5
        assert delta.search_seconds == pytest.approx(3.5)
        # hit_rate recomputes from the delta, not the cumulative counters.
        assert delta.hit_rate == pytest.approx(10 / 15)

    def test_sub_operator_matches_delta(self):
        a = ServiceStats(requests=7, cache_hits=3, cache_misses=4)
        b = ServiceStats(requests=2, cache_hits=1, cache_misses=1)
        assert (a - b) == a.delta(b)
        with pytest.raises(TypeError):
            a - 3

    def test_snapshot_isolates_from_live_mutation(self):
        live = ServiceStats(requests=1)
        frozen = live.snapshot()
        live.requests += 5
        live.cache_hits += 2
        assert frozen.requests == 1 and frozen.cache_hits == 0
        delta = live.snapshot() - frozen
        assert delta.requests == 5 and delta.cache_hits == 2

    def test_zero_delta_hit_rate(self):
        s = ServiceStats(requests=3, cache_hits=2)
        delta = s - s.snapshot()
        assert delta.requests == 0
        assert delta.hit_rate == 0.0
