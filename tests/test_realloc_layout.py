"""Tests for parameter layouts under 3D parallel strategies."""

import pytest
from hypothesis import given, strategies as st

from repro.cluster import DeviceMesh, full_cluster_mesh, make_cluster
from repro.core import ParallelStrategy
from repro.model import get_model_config
from repro.model.memory import PARAM_BYTES
from repro.realloc import EMBEDDING_BLOCK, HEAD_BLOCK, ParamLayout, layer_assignment


@pytest.fixture(scope="module")
def cluster():
    return make_cluster(16)


class TestLayerAssignment:
    def test_even_split(self):
        stages = layer_assignment(32, 4)
        assert [len(s) for s in stages] == [8, 8, 8, 8]
        assert stages[0] == range(0, 8)

    def test_uneven_split_front_loaded(self):
        stages = layer_assignment(10, 3)
        assert [len(s) for s in stages] == [4, 3, 3]

    def test_pp_greater_than_layers_rejected(self):
        with pytest.raises(ValueError):
            layer_assignment(4, 8)

    def test_covers_all_layers_exactly_once(self):
        stages = layer_assignment(80, 7)
        seen = [layer for stage in stages for layer in stage]
        assert seen == list(range(80))


class TestParamLayout:
    def layout(self, cluster, dp, tp, pp, size="7b"):
        return ParamLayout(
            config=get_model_config(size),
            mesh=full_cluster_mesh(cluster),
            parallel=ParallelStrategy(dp=dp, tp=tp, pp=pp),
        )

    def test_rank_coordinate_roundtrip(self, cluster):
        layout = self.layout(cluster, dp=2, tp=4, pp=2)
        for rank in range(16):
            pp_r, dp_r, tp_r = layout.rank_coords(rank)
            assert layout.rank_of_coords(pp_r, dp_r, tp_r) == rank

    def test_rank_out_of_range(self, cluster):
        layout = self.layout(cluster, dp=2, tp=4, pp=2)
        with pytest.raises(ValueError):
            layout.rank_coords(16)

    def test_embedding_on_first_stage_head_on_last(self, cluster):
        layout = self.layout(cluster, dp=1, tp=4, pp=4)
        assert layout.stage_of_block(EMBEDDING_BLOCK) == 0
        assert layout.stage_of_block(HEAD_BLOCK) == 3
        assert layout.stage_of_block(0) == 0
        assert layout.stage_of_block(31) == 3

    def test_block_bytes(self, cluster):
        config = get_model_config("7b")
        layout = self.layout(cluster, dp=2, tp=4, pp=2)
        assert layout.block_bytes(0) == config.layer_params() * PARAM_BYTES
        assert layout.block_bytes(EMBEDDING_BLOCK) == config.embedding_params() * PARAM_BYTES
        with pytest.raises(ValueError):
            layout.block_bytes(999)

    def test_holders_are_dp_replicas(self, cluster):
        layout = self.layout(cluster, dp=2, tp=4, pp=2)
        holders = layout.holders(block_id=0, tp_rank=1)
        assert len(holders) == 2  # one per DP rank
        assert len(set(holders)) == 2

    def test_strategy_must_match_mesh(self, cluster):
        with pytest.raises(ValueError):
            ParamLayout(
                config=get_model_config("7b"),
                mesh=full_cluster_mesh(cluster),
                parallel=ParallelStrategy(1, 4, 2),
            )

    def test_total_param_bytes_conserved(self, cluster):
        """Sum of per-GPU shards equals dp x the model's total parameter bytes."""
        config = get_model_config("7b")
        for dp, tp, pp in [(2, 4, 2), (1, 8, 2), (4, 2, 2), (16, 1, 1)]:
            layout = ParamLayout(
                config=config, mesh=full_cluster_mesh(cluster),
                parallel=ParallelStrategy(dp, tp, pp),
            )
            total = sum(layout.gpu_param_bytes(g) for g in range(16))
            assert total == pytest.approx(dp * config.param_count() * PARAM_BYTES, rel=1e-6)

    def test_holder_intervals_cover_unit_range(self, cluster):
        layout = self.layout(cluster, dp=2, tp=4, pp=2)
        intervals = layout.holder_intervals(5)
        covered = sorted(set(intervals.values()))
        assert covered[0][0] == 0.0
        assert covered[-1][1] == 1.0

    def test_gpu_blocks_nonempty_for_every_gpu(self, cluster):
        layout = self.layout(cluster, dp=2, tp=2, pp=4)
        for gpu in layout.mesh.device_ids:
            assert layout.gpu_blocks(gpu)

    def test_gpu_blocks_empty_for_foreign_gpu(self, cluster):
        node0 = DeviceMesh(cluster, 0, 1, 0, 8)
        layout = ParamLayout(
            config=get_model_config("7b"), mesh=node0, parallel=ParallelStrategy(2, 4, 1)
        )
        assert layout.gpu_blocks(15) == []


@given(
    dp=st.sampled_from([1, 2, 4]),
    tp=st.sampled_from([1, 2, 4]),
    pp=st.sampled_from([1, 2, 4]),
)
def test_every_block_fully_covered(dp, tp, pp):
    """Property: for any strategy, every parameter block is fully covered."""
    cluster = make_cluster(dp * tp * pp)
    config = get_model_config("7b")
    layout = ParamLayout(config=config, mesh=full_cluster_mesh(cluster),
                         parallel=ParallelStrategy(dp, tp, pp))
    for block in (EMBEDDING_BLOCK, HEAD_BLOCK, 0, config.n_layers - 1):
        intervals = sorted(set(layout.holder_intervals(block).values()))
        # Consecutive intervals tile [0, 1) without gaps.
        assert intervals[0][0] == pytest.approx(0.0)
        assert intervals[-1][1] == pytest.approx(1.0)
        for (_prev_lo, prev_hi), (next_lo, _next_hi) in zip(intervals[:-1], intervals[1:]):
            assert prev_hi == pytest.approx(next_lo)
