"""Tests for model workers, the worker pool and the master worker."""

import pytest

from repro.cluster import full_cluster_mesh, make_cluster
from repro.core import ParallelStrategy, symmetric_plan
from repro.runtime import MasterWorker, ModelWorker, WorkerPool


class TestModelWorker:
    def test_occupy_advances_clock(self):
        worker = ModelWorker(gpu_id=0)
        end = worker.occupy(0.0, {"compute": 1.0, "coll_comm": 0.5}, "call")
        assert end == pytest.approx(1.5)
        assert worker.free_at == pytest.approx(1.5)
        assert worker.busy_seconds() == pytest.approx(1.5)
        assert worker.busy_seconds("compute") == pytest.approx(1.0)

    def test_occupy_rejects_time_travel(self):
        worker = ModelWorker(gpu_id=0)
        worker.occupy(0.0, {"compute": 2.0}, "a")
        with pytest.raises(ValueError):
            worker.occupy(1.0, {"compute": 1.0}, "b")

    def test_zero_durations_skipped(self):
        worker = ModelWorker(gpu_id=0)
        worker.occupy(0.0, {"compute": 0.0, "pp_comm": 0.0}, "a")
        assert worker.spans == []

    def test_categories_aggregated(self):
        worker = ModelWorker(gpu_id=1)
        worker.occupy(0.0, {"compute": 1.0}, "a")
        worker.occupy(2.0, {"compute": 2.0, "bubble": 1.0}, "b")
        cats = worker.categories()
        assert cats["compute"] == pytest.approx(3.0)
        assert cats["bubble"] == pytest.approx(1.0)

    def test_model_residency_tracking(self):
        worker = ModelWorker(gpu_id=0)
        worker.load_model("actor", 1e9)
        assert worker.resident_models == {"actor": 1e9}
        worker.evict_model("actor")
        worker.evict_model("ghost")  # no-op
        assert worker.resident_models == {}


class TestWorkerPool:
    def test_pool_indexing_and_len(self):
        pool = WorkerPool(4)
        assert len(pool) == 4
        assert pool[2].gpu_id == 2

    def test_free_at_is_max_over_group(self):
        pool = WorkerPool(4)
        pool[1].occupy(0.0, {"compute": 3.0}, "x")
        assert pool.free_at((0, 1, 2)) == pytest.approx(3.0)

    def test_category_totals(self):
        pool = WorkerPool(2)
        pool[0].occupy(0.0, {"compute": 1.0}, "a")
        pool[1].occupy(0.0, {"compute": 2.0, "realloc": 0.5}, "a")
        totals = pool.category_totals()
        assert totals["compute"] == pytest.approx(3.0)
        assert totals["realloc"] == pytest.approx(0.5)
        assert pool.total_busy() == pytest.approx(3.5)


class TestMasterWorker:
    @pytest.fixture
    def master(self, ppo_graph):
        cluster = make_cluster(16)
        plan = symmetric_plan(ppo_graph, cluster, ParallelStrategy(2, 8, 1))
        return MasterWorker(ppo_graph, plan)

    def test_initial_ready_calls_are_sources(self, master, ppo_graph):
        ready = [name for name, _ in master.ready_calls()]
        assert ready == ppo_graph.sources()

    def test_dispatch_then_complete_unlocks_children(self, master, ppo_graph):
        master.dispatch("actor_generate", now=0.0)
        newly_ready = master.complete("actor_generate", finish_time=10.0)
        assert set(newly_ready) == {"reward_inference", "ref_inference", "critic_inference"}
        ready_times = dict(master.ready_calls())
        assert ready_times["reward_inference"] == pytest.approx(10.0)

    def test_double_dispatch_rejected(self, master):
        master.dispatch("actor_generate", now=0.0)
        with pytest.raises(RuntimeError):
            master.dispatch("actor_generate", now=0.0)

    def test_dispatch_before_ready_rejected(self, master):
        with pytest.raises(RuntimeError):
            master.dispatch("actor_train", now=0.0)

    def test_double_complete_rejected(self, master):
        master.dispatch("actor_generate", now=0.0)
        master.complete("actor_generate", 1.0)
        with pytest.raises(RuntimeError):
            master.complete("actor_generate", 2.0)

    def test_all_completed_after_full_walk(self, master, ppo_graph):
        clock = 0.0
        while not master.all_completed():
            ready = master.ready_calls()
            assert ready, "deadlock"
            name, ready_time = ready[0]
            master.dispatch(name, now=ready_time)
            clock = max(clock, ready_time) + 1.0
            master.complete(name, clock)
        assert master.n_completed() == len(ppo_graph)
        assert len(master.issued_requests) == len(ppo_graph)

    def test_rpc_overhead_delays_request(self, ppo_graph):
        cluster = make_cluster(16)
        plan = symmetric_plan(ppo_graph, cluster, ParallelStrategy(2, 8, 1))
        master = MasterWorker(ppo_graph, plan, rpc_overhead_s=0.5)
        request = master.dispatch("actor_generate", now=1.0)
        assert request.issued_at == pytest.approx(1.5)
