"""Gradient-correctness tests for the minimal autograd engine."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.rlhf.autograd import Tensor, concatenate, no_grad, stack


def numeric_grad(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar function of an array."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    out = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        hi = f(x)
        flat[i] = original - eps
        lo = f(x)
        flat[i] = original
        out[i] = (hi - lo) / (2 * eps)
    return grad


def check_gradient(build, x0: np.ndarray, rtol: float = 1e-4, atol: float = 1e-6):
    """Compare autograd and numeric gradients of ``build(Tensor) -> scalar Tensor``."""
    x = Tensor(x0.copy(), requires_grad=True)
    out = build(x)
    out.backward()
    analytic = x.grad

    def scalar(arr):
        return build(Tensor(arr)).item()

    numeric = numeric_grad(scalar, x0.copy())
    np.testing.assert_allclose(analytic, numeric, rtol=rtol, atol=atol)


RNG = np.random.default_rng(0)


class TestBasicOps:
    def test_add_mul_chain(self):
        check_gradient(lambda x: ((x * 3.0 + 1.0) * x).sum(), RNG.normal(size=(3, 4)))

    def test_sub_div(self):
        check_gradient(lambda x: ((x - 2.0) / (x * x + 1.0)).sum(), RNG.normal(size=(2, 5)))

    def test_pow(self):
        check_gradient(lambda x: (x ** 3).sum(), RNG.normal(size=(4,)))

    def test_matmul(self):
        w = RNG.normal(size=(4, 3))
        check_gradient(lambda x: (x @ Tensor(w)).sum(), RNG.normal(size=(2, 4)))

    def test_broadcasting_bias(self):
        bias = RNG.normal(size=(1, 5))
        check_gradient(lambda x: (x + Tensor(bias)).sum(), RNG.normal(size=(3, 5)))

    def test_mean_axis(self):
        check_gradient(lambda x: x.mean(axis=1).sum(), RNG.normal(size=(3, 6)))

    def test_transpose_reshape(self):
        check_gradient(
            lambda x: (x.transpose(0, 1).reshape(12) * 2.0).sum(), RNG.normal(size=(3, 4))
        )


class TestNonlinearities:
    def test_tanh(self):
        check_gradient(lambda x: x.tanh().sum(), RNG.normal(size=(3, 3)))

    def test_exp_log(self):
        check_gradient(lambda x: (x.exp() + 1.0).log().sum(), RNG.normal(size=(3, 3)))

    def test_gelu(self):
        check_gradient(lambda x: x.gelu().sum(), RNG.normal(size=(4, 4)))

    def test_sigmoid_logsigmoid(self):
        check_gradient(lambda x: x.sigmoid().sum(), RNG.normal(size=(5,)))
        check_gradient(lambda x: x.logsigmoid().sum(), RNG.normal(size=(5,)))

    def test_softmax_logsoftmax(self):
        weights = RNG.normal(size=(3, 5))
        check_gradient(lambda x: (x.log_softmax(axis=-1) * Tensor(weights)).sum(),
                       RNG.normal(size=(3, 5)))
        check_gradient(lambda x: (x.softmax(axis=-1) ** 2).sum(), RNG.normal(size=(2, 4)))

    def test_clip_and_maximum(self):
        x0 = RNG.normal(size=(6,)) * 2
        check_gradient(lambda x: x.clip(-0.5, 0.5).sum(), x0, atol=1e-5)
        check_gradient(lambda x: x.maximum(0.1).sum(), x0, atol=1e-5)

    def test_masked_fill(self):
        mask = RNG.random((3, 4)) > 0.5
        check_gradient(lambda x: x.masked_fill(mask, -1e9).softmax(axis=-1).sum(), RNG.normal(size=(3, 4)))


class TestIndexing:
    def test_gather_last(self):
        idx = RNG.integers(0, 5, size=(3,))
        check_gradient(lambda x: x.gather_last(idx).sum(), RNG.normal(size=(3, 5)))

    def test_index_rows(self):
        idx = np.array([0, 2, 2, 1])
        check_gradient(lambda x: (x.index_rows(idx) ** 2).sum(), RNG.normal(size=(4, 3)))

    def test_stack_and_concatenate(self):
        a0 = RNG.normal(size=(2, 3))

        def build(x):
            stacked = stack([x, x * 2.0], axis=0)
            return concatenate([stacked, stacked], axis=1).sum()

        check_gradient(build, a0)


class TestMechanics:
    def test_no_grad_disables_tracking(self):
        with no_grad():
            x = Tensor(np.ones(3), requires_grad=True)
            y = (x * 2.0).sum()
        assert not y.requires_grad

    def test_backward_requires_scalar(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2.0).backward()

    def test_backward_on_non_grad_tensor(self):
        x = Tensor(np.ones(3))
        with pytest.raises(RuntimeError):
            x.sum().backward()

    def test_gradient_accumulates_over_reuse(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * x + x * 3.0
        y.sum().backward()
        assert x.grad[0] == pytest.approx(2 * 2.0 + 3.0)

    def test_zero_grad_and_detach(self):
        x = Tensor(np.ones(2), requires_grad=True)
        (x * 2.0).sum().backward()
        assert x.grad is not None
        x.zero_grad()
        assert x.grad is None
        assert not x.detach().requires_grad


@settings(max_examples=20, deadline=None)
@given(
    x=hnp.arrays(np.float64, (3, 4), elements=st.floats(-3, 3)),
    w=hnp.arrays(np.float64, (4, 2), elements=st.floats(-3, 3)),
)
def test_mlp_gradient_property(x, w):
    """Property: autograd matches numeric gradients for a tiny MLP + softmax."""
    def build(t):
        return ((t @ Tensor(w)).gelu().log_softmax(axis=-1) * 0.5).sum()

    check_gradient(build, x, rtol=1e-3, atol=1e-4)
