"""Tests for the vectorized batch plan-evaluation kernel and table shipping.

The headline invariant of :mod:`repro.core.batch_eval` is *bit identity*:
``RuntimeEstimator.batch_cost`` must produce exactly the floats the scalar
``cost()`` / ``cost_delta()`` path produces — same table values, combined
in the same order — on PPO and GRPO, across seeds, including OOM-penalized
and empty-graph plans.  On top of that sit the shipping paths (shared
memory with a pickled-arrays fail-soft fallback, the per-poll plan codec)
and the searcher-level guarantee that the batched ``advance_chain`` sweep
consumes the RNG stream identically to the scalar loop, so flipping
``REPRO_BATCH_EVAL`` can never change search results.
"""

import dataclasses

import numpy as np
import pytest

from repro.algorithms import build_grpo_graph, build_ppo_graph
from repro.cluster import make_cluster
from repro.core import (
    ExecutionPlan,
    MCMCSearcher,
    RuntimeEstimator,
    SearchConfig,
    SearchSession,
    allocation_options,
    instructgpt_workload,
)
from repro.core.batch_eval import (
    BatchPlanState,
    PlanCodec,
    SharedTables,
    SharedTablesHandle,
    attach_batch_state,
    batch_eval_mode,
    shared_tables_enabled,
)
from repro.core.dataflow import DataflowGraph
from repro.core.parallel_search import (
    _EncodedPlan,
    _make_codec,
    _pack_state,
    _unpack_state,
)


@pytest.fixture(scope="module")
def cluster8():
    return make_cluster(8)


@pytest.fixture(scope="module")
def workload_small():
    return instructgpt_workload("7b", "7b", batch_size=64)


def _graph(algorithm: str):
    return build_ppo_graph() if algorithm == "ppo" else build_grpo_graph()


def _setup(algorithm, workload, cluster):
    graph = _graph(algorithm)
    options = allocation_options(graph, workload, cluster)
    estimator = RuntimeEstimator(graph, workload, cluster)
    searcher = MCMCSearcher(
        graph, workload, cluster, estimator=estimator, options=options
    )
    return graph, options, estimator, searcher


def _random_plans(graph, options, n, seed):
    rng = np.random.default_rng(seed)
    plans = []
    for i in range(n):
        assignment = {
            call.name: options[call.name][rng.integers(len(options[call.name]))]
            for call in graph.calls
        }
        plans.append(ExecutionPlan(assignment, name=f"rand-{i}"))
    return plans


def _random_moves(graph, options, n, seed):
    rng = np.random.default_rng(seed)
    names = [call.name for call in graph.calls]
    moves = []
    for _ in range(n):
        name = names[rng.integers(len(names))]
        moves.append((name, options[name][rng.integers(len(options[name]))]))
    return moves


class TestKnobs:
    def test_batch_eval_mode_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_BATCH_EVAL", raising=False)
        assert batch_eval_mode() == "auto"
        monkeypatch.setenv("REPRO_BATCH_EVAL", "OFF")
        assert batch_eval_mode() == "off"
        monkeypatch.setenv("REPRO_BATCH_EVAL", "on")
        assert batch_eval_mode() == "on"
        monkeypatch.setenv("REPRO_BATCH_EVAL", "nonsense")
        assert batch_eval_mode() == "auto"

    def test_shared_tables_knob(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARED_TABLES", raising=False)
        assert shared_tables_enabled() is True
        monkeypatch.setenv("REPRO_SHARED_TABLES", "off")
        assert shared_tables_enabled() is False


class TestBitIdentity:
    @pytest.mark.parametrize("algorithm", ["ppo", "grpo"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_full_plans_match_scalar_cost(
        self, algorithm, seed, workload_small, cluster8
    ):
        graph, options, estimator, _ = _setup(algorithm, workload_small, cluster8)
        estimator.batch_state(options)
        plans = _random_plans(graph, options, 24, seed)
        batch = estimator.batch_cost(plans)
        for plan, got in zip(plans, batch):
            assert float(got) == estimator.cost(plan)

    @pytest.mark.parametrize("algorithm", ["ppo", "grpo"])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_moves_match_scalar_cost_delta(
        self, algorithm, seed, workload_small, cluster8
    ):
        graph, options, estimator, searcher = _setup(
            algorithm, workload_small, cluster8
        )
        base = searcher.greedy_initial_plan()
        estimator.batch_state(options)
        moves = _random_moves(graph, options, 48, seed)
        batch = estimator.batch_cost(base_plan=base, moves=moves)
        for (name, alloc), got in zip(moves, batch):
            assert float(got) == estimator.cost_delta(base, name, alloc)

    def test_oom_penalized_plans_match(self, workload_small):
        # Shrink device memory so plenty of (otherwise prunable-feasible)
        # allocations exceed it: the vectorized OOM boundary + penalty is
        # exercised for real.
        from repro.cluster import GPUSpec, make_cluster as _mk

        tight = _mk(8, gpu=GPUSpec(memory_gb=18.0))
        graph, options, estimator, _ = _setup("ppo", workload_small, tight)
        estimator.batch_state(options)
        plans = _random_plans(graph, options, 16, 0)
        penalized = [
            estimator.cost(p, oom_penalty=100.0) != estimator.cost(p, oom_penalty=1.0)
            for p in plans
        ]
        assert any(penalized), "setup failed to produce any OOM-penalized plan"
        batch = estimator.batch_cost(plans, oom_penalty=100.0)
        for plan, got in zip(plans, batch):
            assert float(got) == estimator.cost(plan, oom_penalty=100.0)

    def test_empty_graph_scores_zero(self, workload_small, cluster8):
        graph = DataflowGraph(calls=[], external_inputs=("prompts",), name="empty")
        estimator = RuntimeEstimator(graph, workload_small, cluster8)
        plans = [ExecutionPlan({}, name="empty")]
        assert estimator.batch_cost(plans).tolist() == [0.0]
        assert estimator.batch_cost(base_plan=plans[0], moves=[]).tolist() == []

    def test_cross_check_verifies_every_row(self, workload_small, cluster8):
        graph = build_ppo_graph()
        options = allocation_options(graph, workload_small, cluster8)
        estimator = RuntimeEstimator(
            graph, workload_small, cluster8, cross_check=True
        )
        searcher = MCMCSearcher(
            graph, workload_small, cluster8, estimator=estimator, options=options
        )
        base = searcher.greedy_initial_plan()
        estimator.batch_state(options)
        # Passes only if every row equals the scalar path bit-for-bit.
        estimator.batch_cost(base_plan=base, moves=_random_moves(graph, options, 16, 5))

    def test_exactly_one_call_shape_required(self, workload_small, cluster8):
        _, options, estimator, searcher = _setup("ppo", workload_small, cluster8)
        base = searcher.greedy_initial_plan()
        with pytest.raises(ValueError):
            estimator.batch_cost()
        with pytest.raises(ValueError):
            estimator.batch_cost([base], moves=[])
        with pytest.raises(ValueError):
            estimator.batch_cost(moves=[])  # no base_plan


class TestBatchedChainParity:
    @pytest.mark.parametrize("algorithm", ["ppo", "grpo"])
    def test_batched_equals_scalar_trajectory(
        self, algorithm, monkeypatch, workload_small, cluster8
    ):
        def run():
            config = SearchConfig(
                max_iterations=250, time_budget_s=60.0, seed=11, record_history=True
            )
            return MCMCSearcher(
                _graph(algorithm), workload_small, cluster8, config=config
            ).search()

        monkeypatch.setenv("REPRO_BATCH_EVAL", "off")
        scalar = run()
        monkeypatch.setenv("REPRO_BATCH_EVAL", "on")
        batched = run()
        assert batched.best_cost == scalar.best_cost
        assert batched.best_plan.to_dict() == scalar.best_plan.to_dict()
        assert batched.n_accepted == scalar.n_accepted
        assert [(i, c) for i, _, c in batched.history] == [
            (i, c) for i, _, c in scalar.history
        ]


class TestTableShipping:
    def test_shared_memory_round_trip(self, workload_small, cluster8):
        _, options, estimator, _ = _setup("ppo", workload_small, cluster8)
        state = estimator.batch_state(options)
        owner = SharedTables.export(state)
        if owner is None:
            pytest.skip("shared memory unavailable in this environment")
        try:
            _, _, est2, _ = _setup("ppo", workload_small, cluster8)
            attached = attach_batch_state(est2, options, ("shm", owner.handle))
            source = state.export_arrays()
            mirror = attached.export_arrays()
            for field, arr in source.items():
                assert np.array_equal(arr, mirror[field]), field
            # The attached state evaluates identically to the local build.
            plans = _random_plans(_graph("ppo"), options, 8, 3)
            est2.adopt_batch_state(attached)
            assert est2.batch_cost(plans).tolist() == estimator.batch_cost(
                plans
            ).tolist()
        finally:
            owner.close()

    def test_pickled_arrays_round_trip(self, workload_small, cluster8):
        _, options, estimator, _ = _setup("ppo", workload_small, cluster8)
        state = estimator.batch_state(options)
        _, _, est2, _ = _setup("ppo", workload_small, cluster8)
        attached = attach_batch_state(est2, options, ("arrays", state.export_arrays()))
        assert attached.primed

    def test_count_mismatch_raises(self, workload_small, cluster8):
        _, options, estimator, _ = _setup("ppo", workload_small, cluster8)
        arrays = estimator.batch_state(options).export_arrays()
        arrays["static_counts"] = arrays["static_counts"] + 1
        _, _, est2, _ = _setup("ppo", workload_small, cluster8)
        with pytest.raises(ValueError, match="do not match the option table"):
            attach_batch_state(est2, options, ("arrays", arrays))

    def test_adopt_shipped_tables_is_fail_soft(self, workload_small, cluster8):
        _, options, _, searcher = _setup("ppo", workload_small, cluster8)
        bogus = SharedTablesHandle(shm_name="psm_does_not_exist", specs=(), total_bytes=0)
        searcher.adopt_shipped_tables(("shm", bogus))  # must not raise
        # The searcher still searches (local lazy rebuild).
        config = SearchConfig(max_iterations=10, time_budget_s=60.0, seed=0)
        result = MCMCSearcher(
            _graph("ppo"),
            searcher.workload,
            searcher.cluster,
            config=config,
        ).search()
        assert result.n_iterations == 10

    def test_export_respects_shared_tables_knob(
        self, monkeypatch, workload_small, cluster8
    ):
        _, _, _, searcher = _setup("ppo", workload_small, cluster8)
        monkeypatch.setenv("REPRO_SHARED_TABLES", "off")
        shipment, owner = searcher.export_batch_tables()
        assert owner is None
        assert shipment is not None and shipment[0] == "arrays"

    def test_no_shipment_when_batching_disabled(
        self, monkeypatch, workload_small, cluster8
    ):
        _, _, _, searcher = _setup("ppo", workload_small, cluster8)
        monkeypatch.setenv("REPRO_BATCH_EVAL", "off")
        assert searcher.export_batch_tables() == (None, None)


class TestPlanCodec:
    def test_encode_decode_round_trip(self, workload_small, cluster8):
        graph, options, _, searcher = _setup("ppo", workload_small, cluster8)
        codec = PlanCodec([c.name for c in graph.calls], options)
        plan = searcher.greedy_initial_plan()
        encoded = codec.encode(plan)
        assert encoded is not None
        decoded = codec.decode(encoded)
        assert decoded.to_dict() == plan.to_dict()
        assert decoded.name == plan.name

    def test_out_of_universe_allocation_stays_unencoded(
        self, workload_small, cluster8
    ):
        graph, options, _, searcher = _setup("ppo", workload_small, cluster8)
        codec = PlanCodec([c.name for c in graph.calls], options)
        plan = searcher.greedy_initial_plan()
        name = graph.calls[0].name
        foreign = dataclasses.replace(plan[name], n_microbatches=971)
        assert codec.encode(plan.with_assignment(name, foreign)) is None

    def test_pack_unpack_chain_state_round_trip(self, workload_small, cluster8):
        graph, options, _, searcher = _setup("ppo", workload_small, cluster8)
        codec = _make_codec([c.name for c in graph.calls], options)
        assert codec is not None
        plan = searcher.greedy_initial_plan()
        state = searcher.init_chain_state(0, plan, searcher.estimator.cost(plan), 10)
        packed = _pack_state(state, codec)
        assert isinstance(packed.current_plan, _EncodedPlan)
        assert isinstance(packed.best_plan, _EncodedPlan)
        unpacked = _unpack_state(packed, codec)
        assert unpacked.current_plan.to_dict() == plan.to_dict()
        assert unpacked.best_plan.to_dict() == plan.to_dict()


class TestSessionPollParity:
    @pytest.mark.parametrize("algorithm", ["ppo", "grpo"])
    def test_sliced_batched_equals_unsliced(
        self, algorithm, monkeypatch, workload_small, cluster8
    ):
        monkeypatch.setenv("REPRO_BATCH_EVAL", "on")
        kwargs = dict(
            max_iterations=60, time_budget_s=60.0, seed=4, n_chains=2, parallel="off"
        )
        reference = MCMCSearcher(
            _graph(algorithm), workload_small, cluster8, config=SearchConfig(**kwargs)
        ).search()
        session = SearchSession(
            MCMCSearcher(
                _graph(algorithm),
                workload_small,
                cluster8,
                config=SearchConfig(**kwargs),
            ),
            slice_iterations=7,
        )
        while not session.done:
            session.poll()
        result = session.stop()
        assert result.best_cost == reference.best_cost
        assert result.best_plan.to_dict() == reference.best_plan.to_dict()
        assert result.n_iterations == reference.n_iterations

    def test_sliced_process_mode_with_shipped_tables(
        self, monkeypatch, workload_small, cluster8
    ):
        monkeypatch.setenv("REPRO_BATCH_EVAL", "on")
        kwargs = dict(max_iterations=40, time_budget_s=60.0, seed=6, n_chains=2)
        reference = MCMCSearcher(
            _graph("ppo"),
            workload_small,
            cluster8,
            config=SearchConfig(parallel="off", **kwargs),
        ).search()
        session = SearchSession(
            MCMCSearcher(
                _graph("ppo"),
                workload_small,
                cluster8,
                config=SearchConfig(parallel="process", **kwargs),
            ),
            slice_iterations=9,
        )
        session.start()
        if session._runner is None:
            pytest.skip("process pool unavailable on this machine")
        while not session.done:
            session.poll()
        result = session.stop()
        assert result.best_cost == reference.best_cost
        assert result.best_plan.to_dict() == reference.best_plan.to_dict()


class TestBatchEvalStats:
    def test_base_encode_counted_once_per_sweep(self, workload_small, cluster8):
        graph, options, estimator, searcher = _setup("ppo", workload_small, cluster8)
        base = searcher.greedy_initial_plan()
        estimator.batch_state(options)
        moves = _random_moves(graph, options, 8, 0)
        estimator.batch_cost(base_plan=base, moves=moves)
        assert estimator.batch_eval_stats.misses == 1
        assert estimator.batch_eval_stats.hits == 0
        estimator.batch_cost(base_plan=base, moves=moves)
        assert estimator.batch_eval_stats.hits == 1  # memoised base row

    def test_service_publishes_batch_gauges(self):
        from repro.obs import MetricsRegistry, snapshot
        from repro.service import PlanService

        registry = MetricsRegistry()
        with PlanService(max_workers=1, registry=registry) as _service:
            metrics = snapshot(registry)["metrics"]
            assert "service_batch_eval_lookups" in metrics
            assert "service_batch_eval_hit_ratio" in metrics
            assert "service_eval_cache_lookups" in metrics
