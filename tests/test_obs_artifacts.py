"""Tests for the ``REPRO_ARTIFACT_DIR`` knob (:mod:`repro.obs.artifacts`).

One knob moves every ``BENCH_*/TRACE_*/METRICS_*/PROVENANCE_*`` writer:
benchmarks resolve outputs through :func:`artifact_path` (with their
historical repo-root default preserved when the knob is unset), and
``check_bench_regression.py`` resolves relative report paths against the
same directory without importing the package.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

from repro.obs import artifact_dir, artifact_path

BENCHMARKS_DIR = Path(__file__).resolve().parent.parent / "benchmarks"


class TestArtifactPath:
    def test_default_is_cwd_relative(self, monkeypatch):
        monkeypatch.delenv("REPRO_ARTIFACT_DIR", raising=False)
        assert artifact_dir() == Path(".")
        assert artifact_path("BENCH_x.json") == Path("BENCH_x.json")

    def test_default_dir_preserves_historical_destination(self, monkeypatch):
        monkeypatch.delenv("REPRO_ARTIFACT_DIR", raising=False)
        repo_root = Path("/some/repo")
        assert artifact_path("BENCH_x.json", default_dir=repo_root) == repo_root / "BENCH_x.json"

    def test_knob_redirects_everything(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path))
        assert artifact_dir() == tmp_path
        # The knob beats the caller's default_dir...
        assert artifact_path("TRACE_x.json", default_dir="/some/repo") == tmp_path / "TRACE_x.json"

    def test_absolute_names_always_win(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path))
        explicit = Path("/tmp/explicit/out.json")
        assert artifact_path(explicit) == explicit

    def test_blank_knob_means_unset(self, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACT_DIR", "   ")
        assert artifact_dir() == Path(".")

    def test_no_filesystem_side_effects(self, monkeypatch, tmp_path):
        target = tmp_path / "does-not-exist-yet"
        monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(target))
        artifact_path("BENCH_x.json")
        assert not target.exists()


def _load_module(name: str):
    spec = importlib.util.spec_from_file_location(name, BENCHMARKS_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    # Benchmarks import their siblings by bare name (they run standalone
    # from the benchmarks/ directory).
    sys.path.insert(0, str(BENCHMARKS_DIR))
    try:
        spec.loader.exec_module(module)
    finally:
        sys.path.remove(str(BENCHMARKS_DIR))
    return module


class TestBenchmarkWriters:
    @pytest.mark.parametrize(
        "bench",
        ["bench_search_scaling", "bench_runtime_trace", "bench_online_replanning"],
    )
    def test_benchmarks_resolve_through_the_knob(self, monkeypatch, tmp_path, bench):
        module = _load_module(bench)
        monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path))
        # Resolution happens at call time, so the env set after import wins.
        assert module._artifact("BENCH_x.json") == tmp_path / "BENCH_x.json"
        monkeypatch.delenv("REPRO_ARTIFACT_DIR")
        assert module._artifact("BENCH_x.json") == module._REPO_ROOT / "BENCH_x.json"

    def test_checker_resolves_relative_reports(self, monkeypatch, tmp_path):
        checker = _load_module("check_bench_regression")
        monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path))
        assert checker._resolve(Path("BENCH_x.json")) == tmp_path / "BENCH_x.json"
        assert checker._resolve(Path("/abs/BENCH_x.json")) == Path("/abs/BENCH_x.json")
        monkeypatch.delenv("REPRO_ARTIFACT_DIR")
        assert checker._resolve(Path("BENCH_x.json")) == Path("BENCH_x.json")

    def test_checker_main_reads_from_artifact_dir(self, monkeypatch, tmp_path, capsys):
        checker = _load_module("check_bench_regression")
        report = {"mode": "smoke", "metrics": {"m": {"value": 1.0, "higher_is_better": True}}}
        import json

        (tmp_path / "base.json").write_text(json.dumps(report))
        (tmp_path / "cur.json").write_text(json.dumps(report))
        monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path))
        code = checker.main(["--baseline", "base.json", "--current", "cur.json"])
        assert code == 0
        assert "perf check OK" in capsys.readouterr().out
