"""Tests for the experiment harness: settings, metrics, runner and ablations."""

import pytest

from repro.baselines import RealHeuristicSystem
from repro.core import SearchConfig, instructgpt_workload
from repro.cluster import make_cluster
from repro.experiments import (
    ExperimentSetting,
    algorithm_settings,
    evaluate_setting,
    figure2_opportunity,
    figure8_settings,
    format_breakdown,
    format_series,
    format_table,
    gpus_for_actor,
    petaflops_per_second,
    progressive_optimization,
    run_comparison,
    speedup,
    static_memory_utilization,
    strong_scaling_settings,
    weak_scaling_settings,
)
from repro.experiments.runner import default_search_config, default_systems


class TestSettings:
    def test_weak_scaling_matches_appendix_a(self):
        settings = weak_scaling_settings("7b")
        assert [(s.actor_size, s.n_gpus, s.batch_size) for s in settings] == [
            ("7b", 16, 512), ("13b", 32, 1024), ("34b", 64, 2048), ("70b", 128, 4096),
        ]

    def test_weak_scaling_13b_critic_panel(self):
        settings = weak_scaling_settings("13b")
        assert settings[0].actor_size == "13b"
        assert all(s.critic_size == "13b" for s in settings)

    def test_figure8_pairs(self):
        settings = figure8_settings()
        assert len(settings) == 7
        assert settings[0].actor_size == "7b" and settings[-1].critic_size == "13b"

    def test_figure8_long_context_keeps_token_budget(self):
        base = figure8_settings(2048)[0]
        long = figure8_settings(8192)[0]
        assert long.context_len == 8192
        assert long.batch_size * long.context_len == pytest.approx(
            base.batch_size * base.context_len, rel=0.05
        )

    def test_strong_scaling_fixed_problem(self):
        settings = strong_scaling_settings("7b", gpu_counts=(8, 16, 32))
        assert all(s.batch_size == 512 for s in settings)
        assert [s.n_gpus for s in settings] == [8, 16, 32]

    def test_algorithm_settings(self):
        settings = algorithm_settings(("dpo", "grpo"))
        assert [s.algorithm for s in settings] == ["dpo", "grpo"]

    def test_setting_builders(self):
        setting = ExperimentSetting("t", "7b", "7b", n_gpus=16, batch_size=64)
        assert setting.workload().batch_size == 64
        assert setting.cluster().n_gpus == 16
        assert setting.graph().name == "ppo"

    def test_gpus_for_actor(self):
        assert gpus_for_actor("70b") == 128


class TestMetrics:
    def test_petaflops(self, ppo_graph):
        workload = instructgpt_workload("7b", "7b", batch_size=128)
        value = petaflops_per_second(workload, ppo_graph, seconds_per_iteration=10.0)
        assert value > 0
        with pytest.raises(ValueError):
            petaflops_per_second(workload, ppo_graph, 0.0)

    def test_speedup(self):
        assert speedup(10.0, 5.0) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            speedup(10.0, 0.0)

    def test_static_memory_utilization(self, ppo_graph):
        from repro.core import ParallelStrategy, RuntimeEstimator, symmetric_plan

        cluster = make_cluster(16)
        workload = instructgpt_workload("7b", "7b", batch_size=128)
        plan = symmetric_plan(ppo_graph, cluster, ParallelStrategy(2, 8, 1), n_microbatches=8)
        memory = RuntimeEstimator(ppo_graph, workload, cluster).max_memory(plan)
        util = static_memory_utilization(memory, cluster.device_memory_bytes)
        assert 0 < util < 1


class TestReporting:
    def test_format_table(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy", "c": 3.5}]
        text = format_table(rows, title="T")
        assert "T" in text and "a" in text and "22" in text and "c" in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])

    def test_format_series(self):
        text = format_series({"real": [1.0, 2.0], "heuristic": [2.0]}, x_label="step")
        assert "real" in text and "heuristic" in text

    def test_format_breakdown(self):
        text = format_breakdown({"compute": 0.7, "idle": 0.3}, title="B")
        assert "compute" in text and "0.7" in text


class TestRunner:
    def test_default_systems_include_real(self):
        systems = default_systems()
        assert any(s.name == "ReaL" for s in systems)
        assert any(s.name == "ReaL-Heuristic" for s in systems)

    def test_default_search_config_scalable(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEARCH_BUDGET_SCALE", "2.0")
        assert default_search_config().max_iterations == 6000
        monkeypatch.delenv("REPRO_SEARCH_BUDGET_SCALE")
        assert default_search_config().max_iterations == 3000
        monkeypatch.setenv("REPRO_SEARCH_BUDGET_SCALE", "  ")
        assert default_search_config().max_iterations == 3000

    @pytest.mark.parametrize("bad", ["bogus", "0", "-1", "-2.5", "nan", "inf"])
    def test_default_search_config_rejects_garbage_scale(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_SEARCH_BUDGET_SCALE", bad)
        with pytest.raises(ValueError, match="REPRO_SEARCH_BUDGET_SCALE"):
            default_search_config()

    def test_evaluate_setting_produces_record(self):
        setting = ExperimentSetting("tiny", "7b", "7b", n_gpus=8, batch_size=64)
        record = evaluate_setting(setting, RealHeuristicSystem())
        assert record.setting == "tiny"
        assert record.feasible
        assert record.petaflops > 0
        assert record.extra and "static_mem_util" in record.extra
        row = record.as_row()
        assert row["system"] == "ReaL-Heuristic"

    def test_run_comparison_grid(self):
        setting = ExperimentSetting("tiny", "7b", "7b", n_gpus=8, batch_size=64)
        records = run_comparison([setting], [RealHeuristicSystem()])
        assert len(records) == 1


class TestAblations:
    @pytest.fixture(scope="class")
    def tiny_problem(self, ppo_graph):
        cluster = make_cluster(8)
        workload = instructgpt_workload("7b", "7b", batch_size=64)
        return ppo_graph, workload, cluster

    def test_progressive_optimization_monotone_overall(self, tiny_problem):
        graph, workload, cluster = tiny_problem
        levels = progressive_optimization(
            graph, workload, cluster,
            search_config=SearchConfig(max_iterations=200, time_budget_s=10, seed=0),
        )
        assert len(levels) == 5
        # The final (full ReaL) level is at least as fast as the unoptimised
        # heuristic without CUDA graphs.
        assert levels[-1].seconds_per_iteration <= levels[0].seconds_per_iteration
        # CUDA-graph capture alone already helps generation.
        assert levels[1].seconds_per_iteration <= levels[0].seconds_per_iteration

    def test_figure2_opportunity_levels(self, tiny_problem):
        graph, workload, cluster = tiny_problem
        levels = figure2_opportunity(
            graph, workload, cluster,
            search_config=SearchConfig(max_iterations=200, time_budget_s=10, seed=0),
        )
        assert [l.name for l in levels][0].startswith("3D parallelism")
        assert len(levels) == 4
        assert levels[-1].seconds_per_iteration <= levels[0].seconds_per_iteration * 1.05


class TestSchedulerComparisonTraces:
    def test_trace_dir_exports_one_merged_trace_per_policy(self, tmp_path):
        from repro.cluster import make_cluster
        from repro.core import SearchConfig
        from repro.experiments import run_scheduler_comparison
        from repro.sched import JobSpec, SchedulerConfig
        from repro.sim import load_chrome_trace

        config = SchedulerConfig(
            search=SearchConfig(max_iterations=25, time_budget_s=0.5, record_history=False)
        )
        jobs = [
            JobSpec(name="a", batch_size=64, target_iterations=3, min_gpus=8, max_gpus=8),
            JobSpec(name="b", batch_size=64, target_iterations=3, min_gpus=8, max_gpus=8),
        ]
        reports = run_scheduler_comparison(
            make_cluster(16),
            jobs,
            policies=["first_fit", "best_throughput"],
            config=config,
            trace_dir=str(tmp_path),
        )
        assert [r.policy for r in reports] == ["first_fit", "best_throughput"]
        for report in reports:
            assert report.trace_path is not None
            assert load_chrome_trace(report.trace_path)
        # Each trace brings its METRICS_* snapshot and PROVENANCE_* ledger.
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "METRICS_schedule_best_throughput.json",
            "METRICS_schedule_first_fit.json",
            "PROVENANCE_schedule_best_throughput.jsonl",
            "PROVENANCE_schedule_first_fit.jsonl",
            "schedule_best_throughput.json",
            "schedule_first_fit.json",
        ]
