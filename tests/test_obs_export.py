"""Export-path tests: Prometheus grammar, Chrome counter tracks, snapshots.

Validates the three exporters in :mod:`repro.obs.export` against their
target formats — the Prometheus text exposition grammar (escaping,
``_bucket``/``_sum``/``_count`` invariants), the Chrome Trace Event Format
(counter events round-trip through ``load_chrome_trace`` and
``validate_chrome_events``) — plus the scheduler integration that merges
live counter tracks and a ``METRICS_*.json`` snapshot into one run, and the
per-metric reporting of ``benchmarks/check_bench_regression.py``.
"""

from __future__ import annotations

import importlib.util
import json
import math
import re
import sys
from pathlib import Path

import pytest

from repro.cluster import make_cluster
from repro.core import SearchConfig
from repro.obs import (
    MetricsRegistry,
    record_counter_tracks,
    set_registry,
    snapshot,
    to_prometheus,
    write_metrics_snapshot,
)
from repro.sched import JobSpec, SchedulerConfig, schedule_trace
from repro.sim import TraceRecorder, load_chrome_trace, validate_chrome_events

TINY_SEARCH = SearchConfig(max_iterations=25, time_budget_s=0.5, record_history=False)


@pytest.fixture
def registry():
    """A fresh enabled registry installed as the process-wide default."""
    fresh = MetricsRegistry(enabled=True)
    previous = set_registry(fresh)
    try:
        yield fresh
    finally:
        set_registry(previous)


def _tiny_jobs(n: int = 2):
    return [
        JobSpec(
            name=f"job-{i}",
            algorithm="grpo" if i % 2 else "ppo",
            batch_size=64,
            target_iterations=3,
            min_gpus=8,
            max_gpus=8,
        )
        for i in range(n)
    ]


# ---------------------------------------------------------------------- #
# Prometheus text exposition
# ---------------------------------------------------------------------- #
_SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"  # metric name
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\\n]|\\\\|\\\"|\\n)*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\\n]|\\\\|\\\"|\\n)*\")*\})?"  # labels
    r" (NaN|[+-]Inf|-?[0-9.e+-]+)$"  # value
)


class TestPrometheusExposition:
    def test_every_line_matches_the_grammar(self, registry):
        registry.counter("requests_total", "total requests").inc(3)
        registry.gauge("inflight", "in flight").set(1.5)
        h = registry.histogram("latency_seconds", "latency", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        text = to_prometheus(registry)
        assert text.endswith("\n")
        for line in text.splitlines():
            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                continue
            assert _SAMPLE_LINE.match(line), f"bad exposition line: {line!r}"

    def test_help_and_type_precede_samples(self, registry):
        registry.counter("requests_total", "total requests").inc()
        lines = to_prometheus(registry).splitlines()
        assert lines[0] == "# HELP requests_total total requests"
        assert lines[1] == "# TYPE requests_total counter"
        assert lines[2] == "requests_total 1"

    def test_metric_names_are_sanitized(self, registry):
        registry.counter("weird-name.total", "").inc()
        text = to_prometheus(registry)
        assert "weird_name_total 1" in text
        assert "weird-name" not in text

    def test_label_values_are_escaped(self, registry):
        c = registry.counter("escapes_total", "", labels=("path",))
        c.labels(path='a\\b"c\nd').inc()
        text = to_prometheus(registry)
        assert 'escapes_total{path="a\\\\b\\"c\\nd"} 1' in text
        # The escaped line still parses under the grammar.
        sample = [l for l in text.splitlines() if l.startswith("escapes_total{")][0]
        assert _SAMPLE_LINE.match(sample)

    def test_histogram_bucket_sum_count_invariants(self, registry):
        h = registry.histogram("h_seconds", "h", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 2.0, 20.0):
            h.observe(v)
        lines = to_prometheus(registry).splitlines()
        buckets = [l for l in lines if l.startswith("h_seconds_bucket")]
        # One bucket per bound plus the +Inf bucket, cumulative and monotone.
        assert len(buckets) == 4
        counts = [int(l.rsplit(" ", 1)[1]) for l in buckets]
        assert counts == sorted(counts)
        assert buckets[-1] == 'h_seconds_bucket{le="+Inf"} 5'
        assert counts[-1] == 5
        les = [re.search(r'le="([^"]+)"', l).group(1) for l in buckets]
        assert les == ["0.1", "1", "10", "+Inf"]
        assert "h_seconds_count 5" in lines
        sum_line = [l for l in lines if l.startswith("h_seconds_sum ")][0]
        assert float(sum_line.split(" ")[1]) == pytest.approx(23.05)

    def test_labeled_histogram_keeps_le_with_labels(self, registry):
        h = registry.histogram("lh_seconds", "", labels=("outcome",), buckets=(1.0,))
        h.labels(outcome="hit").observe(0.5)
        text = to_prometheus(registry)
        assert 'lh_seconds_bucket{outcome="hit",le="1"} 1' in text
        assert 'lh_seconds_bucket{outcome="hit",le="+Inf"} 1' in text
        assert 'lh_seconds_count{outcome="hit"} 1' in text

    def test_histogram_min_max_lines(self, registry):
        h = registry.histogram("mm_seconds", "", buckets=(1.0,))
        for v in (0.3, 2.5, 0.9):
            h.observe(v)
        lines = to_prometheus(registry).splitlines()
        assert "mm_seconds_min 0.3" in lines
        assert "mm_seconds_max 2.5" in lines
        # The extremes parse under the grammar and sit with the other samples.
        for suffix in ("_min", "_max"):
            (sample,) = [l for l in lines if l.startswith(f"mm_seconds{suffix}")]
            assert _SAMPLE_LINE.match(sample)

    def test_labeled_histogram_min_max_keep_labels(self, registry):
        h = registry.histogram("lmm_seconds", "", labels=("outcome",), buckets=(1.0,))
        h.labels(outcome="hit").observe(0.5)
        h.labels(outcome="hit").observe(1.5)
        text = to_prometheus(registry)
        assert 'lmm_seconds_min{outcome="hit"} 0.5' in text
        assert 'lmm_seconds_max{outcome="hit"} 1.5' in text

    def test_empty_histogram_extremes_are_zero(self, registry):
        registry.histogram("empty_seconds", "", buckets=(1.0,))
        text = to_prometheus(registry)
        assert "empty_seconds_min 0" in text
        assert "empty_seconds_max 0" in text

    def test_special_float_values(self, registry):
        registry.gauge("weird_gauge", "").set(float("inf"))
        assert "weird_gauge +Inf" in to_prometheus(registry)
        registry.gauge("weird_gauge", "").set(float("nan"))
        assert "weird_gauge NaN" in to_prometheus(registry)

    def test_disabled_registry_renders_empty(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("never_total", "").inc()
        assert to_prometheus(registry) == ""


# ---------------------------------------------------------------------- #
# JSON snapshots
# ---------------------------------------------------------------------- #
class TestSnapshot:
    def test_snapshot_includes_meta_and_percentiles(self, registry):
        h = registry.histogram("s_seconds", "")
        h.observe(0.25)
        data = snapshot(registry, extra={"source": "test"})
        assert data["enabled"] is True
        assert data["meta"] == {"source": "test"}
        series = data["metrics"]["s_seconds"]["series"][0]
        for key in ("p50", "p90", "p99", "buckets", "count", "sum"):
            assert key in series

    def test_write_metrics_snapshot_round_trips(self, registry, tmp_path):
        registry.counter("w_total", "").inc(7)
        path = write_metrics_snapshot(
            registry, tmp_path / "METRICS_test.json", extra={"mode": "unit"}
        )
        data = json.loads(path.read_text())
        assert data["meta"]["mode"] == "unit"
        assert data["metrics"]["w_total"]["series"][0]["value"] == 7

    def test_snapshot_stamps_schema_version(self, registry):
        from repro.obs import SNAPSHOT_SCHEMA_VERSION

        data = snapshot(registry)
        assert data["schema_version"] == SNAPSHOT_SCHEMA_VERSION == 2

    def test_snapshot_series_carry_exact_extremes(self, registry):
        h = registry.histogram("ext_seconds", "")
        for v in (0.2, 4.0, 1.0):
            h.observe(v)
        series = snapshot(registry)["metrics"]["ext_seconds"]["series"][0]
        assert series["min"] == 0.2
        assert series["max"] == 4.0
        # Empty series report 0.0 extremes, not +/-inf (JSON-safe).
        registry.histogram("ext2_seconds", "")
        empty = snapshot(registry)["metrics"]["ext2_seconds"]["series"]
        assert empty == [] or all(
            s["min"] == 0.0 and s["max"] == 0.0 for s in empty
        )

    def test_snapshot_runs_collectors(self, registry):
        registry.register_collector(
            lambda: registry.gauge("lazy", "").set(9)
        )
        data = snapshot(registry)
        assert data["metrics"]["lazy"]["series"][0]["value"] == 9


# ---------------------------------------------------------------------- #
# Chrome-trace counter events
# ---------------------------------------------------------------------- #
class TestCounterTracks:
    def test_round_trip_through_load_and_validate(self, tmp_path):
        recorder = TraceRecorder()
        samples = [
            (0.0, {"running jobs": 0, "free GPUs": 16}),
            (5.0, {"running jobs": 2, "free GPUs": 0}),
            (9.5, {"running jobs": 1, "free GPUs": 8}),
        ]
        emitted = record_counter_tracks(recorder, "cluster", samples)
        assert emitted == 6
        path = recorder.save(tmp_path / "trace.json")
        events = load_chrome_trace(path)
        validate_chrome_events(events)
        counters = [e for e in events if e["ph"] == "C"]
        assert len(counters) == 6
        assert {e["name"] for e in counters} == {"running jobs", "free GPUs"}
        # Counter events live on tid 0 with numeric args and µs timestamps.
        by_time = sorted(
            (e for e in counters if e["name"] == "running jobs"),
            key=lambda e: e["ts"],
        )
        assert [e["ts"] for e in by_time] == [0.0, 5.0e6, 9.5e6]
        assert [e["args"]["running jobs"] for e in by_time] == [0.0, 2.0, 1.0]
        assert all(e["tid"] == 0 for e in counters)
        assert all(e["cat"] == "metrics" for e in counters)

    def test_empty_counter_args_fail_validation(self):
        events = [{"ph": "C", "ts": 0, "pid": 1, "tid": 0, "name": "x", "args": {}}]
        with pytest.raises(ValueError, match="counter"):
            validate_chrome_events(events)

    def test_non_numeric_counter_args_fail_validation(self):
        events = [
            {"ph": "C", "ts": 0, "pid": 1, "tid": 0, "name": "x",
             "args": {"x": "high"}}
        ]
        with pytest.raises(ValueError):
            validate_chrome_events(events)


# ---------------------------------------------------------------------- #
# Scheduler integration: one run -> counter tracks + METRICS snapshot
# ---------------------------------------------------------------------- #
class TestSchedulerTelemetry:
    def test_schedule_run_exports_tracks_and_snapshot(self, registry, tmp_path):
        trace_path = tmp_path / "TRACE_tiny.json"
        report = schedule_trace(
            cluster=make_cluster(16),
            jobs=_tiny_jobs(),
            policy="first_fit",
            config=SchedulerConfig(search=TINY_SEARCH),
            trace_path=str(trace_path),
        )
        assert report.all_completed

        # Counter tracks merged into the Chrome trace (>= 4 distinct).
        events = load_chrome_trace(report.trace_path)
        validate_chrome_events(events)
        tracks = {e["name"] for e in events if e["ph"] == "C"}
        assert len(tracks) >= 4
        assert {"running jobs", "queued jobs", "free GPUs", "GPU utilization"} <= tracks

        # The METRICS_*.json snapshot lands next to the trace by default.
        assert report.metrics_path == str(tmp_path / "METRICS_TRACE_tiny.json")
        data = json.loads(Path(report.metrics_path).read_text())
        assert data["meta"]["policy"] == "first_fit"
        for name in ("service_request_seconds", "sched_decision_seconds"):
            series = data["metrics"][name]["series"]
            assert series, f"{name} recorded no series"
            for entry in series:
                assert entry["count"] > 0
                assert entry["p50"] >= 0.0
                assert entry["p99"] >= entry["p50"] * 0.999

    def test_explicit_metrics_path_wins(self, registry, tmp_path):
        metrics_path = tmp_path / "custom" / "snapshot.json"
        report = schedule_trace(
            cluster=make_cluster(16),
            jobs=_tiny_jobs(1),
            policy="first_fit",
            config=SchedulerConfig(search=TINY_SEARCH),
            trace_path=str(tmp_path / "TRACE_x.json"),
            metrics_path=str(metrics_path),
        )
        assert report.metrics_path == str(metrics_path)
        assert metrics_path.exists()

    def test_no_trace_no_metrics_by_default(self, registry, tmp_path):
        report = schedule_trace(
            cluster=make_cluster(16),
            jobs=_tiny_jobs(1),
            policy="first_fit",
            config=SchedulerConfig(search=TINY_SEARCH),
        )
        assert report.metrics_path is None
        assert not list(tmp_path.glob("METRICS_*"))

    def test_disabled_registry_writes_no_snapshot(self, tmp_path):
        previous = set_registry(MetricsRegistry(enabled=False))
        try:
            report = schedule_trace(
                cluster=make_cluster(16),
                jobs=_tiny_jobs(1),
                policy="first_fit",
                config=SchedulerConfig(search=TINY_SEARCH),
                trace_path=str(tmp_path / "TRACE_off.json"),
            )
        finally:
            set_registry(previous)
        assert report.all_completed
        assert report.metrics_path is None
        assert not (tmp_path / "METRICS_TRACE_off.json").exists()
        # The trace itself still exports in full: counter tracks ride on the
        # explicitly requested trace_path, not on the REPRO_METRICS knob.
        events = load_chrome_trace(report.trace_path)
        assert any(e["ph"] == "C" for e in events)


# ---------------------------------------------------------------------- #
# check_bench_regression: per-metric comparison lines
# ---------------------------------------------------------------------- #
def _load_checker():
    path = (
        Path(__file__).resolve().parent.parent
        / "benchmarks"
        / "check_bench_regression.py"
    )
    spec = importlib.util.spec_from_file_location("check_bench_regression", path)
    module = importlib.util.module_from_spec(spec)
    # Register before exec: dataclasses resolves string annotations through
    # sys.modules[cls.__module__].
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def _report(mode: str, **metrics: tuple) -> dict:
    return {
        "mode": mode,
        "metrics": {
            name: {"value": value, "higher_is_better": hib}
            for name, (value, hib) in metrics.items()
        },
    }


class TestBenchRegressionCheck:
    def test_reports_every_metric_pass_and_fail(self):
        checker = _load_checker()
        baseline = _report("smoke", fast=(100.0, True), slow=(10.0, False))
        current = _report("smoke", fast=(90.0, True), slow=(15.0, False))
        comparisons = checker.compare(baseline, current, threshold=0.2)
        by_name = {c.name: c for c in comparisons}
        assert set(by_name) == {"fast", "slow"}
        fast, slow = by_name["fast"], by_name["slow"]
        # fast dropped 10% (within 20% tolerance); slow rose 50% (regressed).
        assert not fast.regressed and fast.change == pytest.approx(-0.1)
        assert slow.regressed and slow.change == pytest.approx(0.5)
        assert "dropped 10.0%" in fast.describe() and "[ok]" in fast.describe()
        assert "rose 50.0%" in slow.describe() and "[REGRESSED]" in slow.describe()
        assert "lower is better" in slow.describe()
        assert "tolerance 20%" in fast.describe()

    def test_mode_mismatch_doubles_tolerance(self):
        checker = _load_checker()
        baseline = _report("full", fast=(100.0, True))
        current = _report("smoke", fast=(70.0, True))
        (comparison,) = checker.compare(baseline, current, threshold=0.2)
        assert comparison.threshold == pytest.approx(0.4)
        assert not comparison.regressed  # 30% drop < 40% doubled tolerance

    def test_missing_metric_is_a_regression(self):
        checker = _load_checker()
        baseline = _report("smoke", gone=(5.0, True))
        current = _report("smoke")
        (comparison,) = checker.compare(baseline, current, threshold=0.2)
        assert comparison.missing and comparison.regressed
        assert math.isnan(comparison.cur_value)
        assert "missing now [REGRESSED]" in comparison.describe()

    def test_zero_baseline_never_regresses(self):
        checker = _load_checker()
        baseline = _report("smoke", zeroed=(0.0, True))
        current = _report("smoke", zeroed=(5.0, True))
        (comparison,) = checker.compare(baseline, current, threshold=0.2)
        assert not comparison.regressed and comparison.change == 0.0

    def test_main_prints_per_metric_lines(self, tmp_path, capsys):
        checker = _load_checker()
        base_path = tmp_path / "base.json"
        cur_path = tmp_path / "cur.json"
        base_path.write_text(json.dumps(_report("smoke", m1=(10.0, True), m2=(1.0, False))))
        cur_path.write_text(json.dumps(_report("smoke", m1=(11.0, True), m2=(0.9, False))))
        code = checker.main(
            ["--baseline", str(base_path), "--current", str(cur_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "perf check OK" in out
        assert "2/2 metrics within tolerance" in out
        assert "m1: rose 10.0%" in out
        assert "m2: dropped 10.0%" in out

    def test_main_strict_fails_on_regression(self, tmp_path, capsys):
        checker = _load_checker()
        base_path = tmp_path / "base.json"
        cur_path = tmp_path / "cur.json"
        base_path.write_text(json.dumps(_report("smoke", m1=(10.0, True))))
        cur_path.write_text(json.dumps(_report("smoke", m1=(1.0, True))))
        soft = checker.main(["--baseline", str(base_path), "--current", str(cur_path)])
        strict = checker.main(
            ["--baseline", str(base_path), "--current", str(cur_path), "--strict"]
        )
        out = capsys.readouterr().out
        assert soft == 0 and strict == 1
        assert "REGRESSION WARNING" in out
        assert "[REGRESSED]" in out
