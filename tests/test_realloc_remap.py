"""Unit and property tests for the parameter reallocation planner (Figure 6)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import DeviceMesh, full_cluster_mesh, make_cluster
from repro.core import Allocation, ParallelStrategy
from repro.model import get_model_config
from repro.realloc import (
    ParamLayout,
    ReallocCostModel,
    plan_reallocation,
    reallocation_time,
)


@pytest.fixture(scope="module")
def cluster():
    return make_cluster(16)


def layout(cluster, mesh, dp, tp, pp, size="7b"):
    return ParamLayout(
        config=get_model_config(size), mesh=mesh, parallel=ParallelStrategy(dp, tp, pp)
    )


def coverage_holds(src: ParamLayout, dst: ParamLayout, plan) -> bool:
    """Check the invariant: every destination shard is fully covered."""
    eps = 1e-9
    for block in dst.block_ids():
        src_holders = src.holder_intervals(block)
        for gpu, needed in dst.holder_intervals(block).items():
            pieces = []
            held = src_holders.get(gpu)
            if held is not None:
                overlap = (max(needed[0], held[0]), min(needed[1], held[1]))
                if overlap[1] > overlap[0]:
                    pieces.append(overlap)
            for step in plan.steps:
                if step.block_id == block and gpu in step.dst_gpus:
                    overlap = (max(needed[0], step.interval[0]), min(needed[1], step.interval[1]))
                    if overlap[1] > overlap[0]:
                        pieces.append(overlap)
            pieces.sort()
            cursor = needed[0]
            for lo, hi in pieces:
                if lo > cursor + eps:
                    return False
                cursor = max(cursor, hi)
            if cursor < needed[1] - eps:
                return False
    return True


class TestPlanReallocation:
    def test_identical_layouts_need_nothing(self, cluster):
        mesh = full_cluster_mesh(cluster)
        a = layout(cluster, mesh, 2, 4, 2)
        plan = plan_reallocation(a, a)
        assert plan.is_empty()
        assert reallocation_time(plan, cluster) == 0.0

    def test_different_models_rejected(self, cluster):
        mesh = full_cluster_mesh(cluster)
        a = layout(cluster, mesh, 2, 4, 2, size="7b")
        b = layout(cluster, mesh, 2, 4, 2, size="13b")
        with pytest.raises(ValueError):
            plan_reallocation(a, b)

    def test_same_mesh_different_strategy(self, cluster):
        mesh = full_cluster_mesh(cluster)
        src = layout(cluster, mesh, 2, 8, 1)
        dst = layout(cluster, mesh, 4, 4, 1)
        plan = plan_reallocation(src, dst)
        assert not plan.is_empty()
        assert coverage_holds(src, dst, plan)
        assert reallocation_time(plan, cluster) > 0

    def test_disjoint_meshes(self, cluster):
        node0 = DeviceMesh(cluster, 0, 1, 0, 8)
        node1 = DeviceMesh(cluster, 1, 1, 0, 8)
        src = layout(cluster, node0, 2, 4, 1)
        dst = layout(cluster, node1, 1, 8, 1)
        plan = plan_reallocation(src, dst)
        assert coverage_holds(src, dst, plan)
        # Every byte must travel: destinations hold nothing initially.
        assert plan.total_received_bytes > 0
        src_gpus = set(node0.device_ids)
        assert all(step.src_gpu in src_gpus for step in plan.steps)

    def test_no_step_targets_its_own_source(self, cluster):
        mesh = full_cluster_mesh(cluster)
        plan = plan_reallocation(layout(cluster, mesh, 2, 8, 1), layout(cluster, mesh, 8, 2, 1))
        assert all(step.src_gpu not in step.dst_gpus for step in plan.steps)

    def test_accounting_helpers(self, cluster):
        mesh = full_cluster_mesh(cluster)
        plan = plan_reallocation(layout(cluster, mesh, 2, 8, 1), layout(cluster, mesh, 4, 4, 1))
        sent = sum(plan.bytes_sent_by(g) for g in range(16))
        assert sent == pytest.approx(plan.total_bytes)
        received = sum(plan.bytes_received_by(g) for g in range(16))
        assert received == pytest.approx(plan.total_received_bytes)

    def test_pp_remap_only_moves_changed_stages(self, cluster):
        mesh = full_cluster_mesh(cluster)
        src = layout(cluster, mesh, 2, 4, 2)
        dst = layout(cluster, mesh, 2, 2, 4)
        plan = plan_reallocation(src, dst)
        assert coverage_holds(src, dst, plan)


class TestReallocCostModel:
    def test_noop_costs_nothing(self, cluster):
        model = ReallocCostModel(cluster, exact=True)
        mesh = full_cluster_mesh(cluster)
        alloc = Allocation(mesh, ParallelStrategy(2, 8, 1))
        cost = model.cost(get_model_config("7b"), alloc, alloc)
        assert cost.seconds == 0.0 and cost.bytes_sent == 0.0

    def test_exact_and_fast_agree_on_order_of_magnitude(self, cluster):
        mesh = full_cluster_mesh(cluster)
        src = Allocation(mesh, ParallelStrategy(2, 8, 1))
        dst = Allocation(mesh, ParallelStrategy(8, 2, 1))
        config = get_model_config("7b")
        exact = ReallocCostModel(cluster, exact=True).cost(config, src, dst)
        fast = ReallocCostModel(cluster, exact=False).cost(config, src, dst)
        assert exact.seconds > 0 and fast.seconds > 0
        assert 0.05 < exact.seconds / fast.seconds < 20

    def test_cost_is_cached(self, cluster):
        model = ReallocCostModel(cluster, exact=True)
        mesh = full_cluster_mesh(cluster)
        src = Allocation(mesh, ParallelStrategy(2, 8, 1))
        dst = Allocation(mesh, ParallelStrategy(4, 4, 1))
        config = get_model_config("7b")
        first = model.cost(config, src, dst)
        second = model.cost(config, src, dst)
        assert first is second

    def test_bigger_model_costs_more(self, cluster):
        model = ReallocCostModel(cluster, exact=True)
        mesh = full_cluster_mesh(cluster)
        src = Allocation(mesh, ParallelStrategy(2, 8, 1))
        dst = Allocation(mesh, ParallelStrategy(8, 2, 1))
        small = model.cost(get_model_config("7b"), src, dst)
        large = model.cost(get_model_config("34b"), src, dst)
        assert large.seconds > small.seconds


STRATS_16 = [(2, 8, 1), (4, 4, 1), (8, 2, 1), (2, 4, 2), (1, 8, 2), (4, 2, 2), (2, 2, 4)]


@settings(max_examples=15, deadline=None)
@given(src=st.sampled_from(STRATS_16), dst=st.sampled_from(STRATS_16))
def test_reallocation_coverage_property(src, dst):
    """Property: the broadcast plan always reconstructs the destination layout."""
    cluster = make_cluster(16)
    mesh = full_cluster_mesh(cluster)
    config = get_model_config("7b")
    src_layout = ParamLayout(config=config, mesh=mesh, parallel=ParallelStrategy(*src))
    dst_layout = ParamLayout(config=config, mesh=mesh, parallel=ParallelStrategy(*dst))
    plan = plan_reallocation(src_layout, dst_layout)
    assert coverage_holds(src_layout, dst_layout, plan)
    assert reallocation_time(plan, cluster) >= 0.0
