"""Tests for execution plans and their derived reallocation/transfer edges."""

import pytest

from repro.cluster import DeviceMesh, full_cluster_mesh, make_cluster
from repro.core import (
    Allocation,
    ExecutionPlan,
    ParallelStrategy,
    data_transfer_edges,
    reallocation_edges,
    symmetric_plan,
)


@pytest.fixture(scope="module")
def cluster():
    return make_cluster(16)


class TestAllocation:
    def test_strategy_must_fill_mesh(self, cluster):
        mesh = full_cluster_mesh(cluster)
        with pytest.raises(ValueError):
            Allocation(mesh=mesh, parallel=ParallelStrategy(1, 8, 1))

    def test_microbatches_positive(self, cluster):
        mesh = full_cluster_mesh(cluster)
        with pytest.raises(ValueError):
            Allocation(mesh=mesh, parallel=ParallelStrategy(2, 8, 1), n_microbatches=0)

    def test_describe_mentions_zero3(self, cluster):
        mesh = full_cluster_mesh(cluster)
        alloc = Allocation(mesh=mesh, parallel=ParallelStrategy(16, 1, 1), zero3=True)
        assert "zero3" in alloc.describe()


class TestExecutionPlan:
    def test_symmetric_plan_covers_graph(self, ppo_graph, cluster):
        plan = symmetric_plan(ppo_graph, cluster, ParallelStrategy(2, 8, 1))
        assert len(plan) == len(ppo_graph)
        plan.validate(ppo_graph, cluster)

    def test_symmetric_plan_rejects_partial_strategy(self, ppo_graph, cluster):
        with pytest.raises(ValueError):
            symmetric_plan(ppo_graph, cluster, ParallelStrategy(1, 8, 1))

    def test_validate_detects_missing_call(self, ppo_graph, cluster):
        plan = symmetric_plan(ppo_graph, cluster, ParallelStrategy(2, 8, 1))
        del plan.assignments["actor_train"]
        with pytest.raises(ValueError):
            plan.validate(ppo_graph, cluster)

    def test_validate_detects_extra_call(self, ppo_graph, cluster):
        plan = symmetric_plan(ppo_graph, cluster, ParallelStrategy(2, 8, 1))
        plan.assignments["ghost"] = plan["actor_train"]
        with pytest.raises(ValueError):
            plan.validate(ppo_graph, cluster)

    def test_validate_detects_wrong_cluster_shape(self, ppo_graph, cluster):
        plan = symmetric_plan(ppo_graph, cluster, ParallelStrategy(2, 8, 1))
        other = make_cluster(32)
        with pytest.raises(ValueError):
            plan.validate(ppo_graph, other)

    def test_with_assignment_returns_new_plan(self, ppo_graph, cluster):
        plan = symmetric_plan(ppo_graph, cluster, ParallelStrategy(2, 8, 1))
        node0 = DeviceMesh(cluster, 0, 1, 0, 8)
        new_alloc = Allocation(mesh=node0, parallel=ParallelStrategy(1, 8, 1))
        new_plan = plan.with_assignment("actor_generate", new_alloc)
        assert new_plan["actor_generate"].mesh == node0
        assert plan["actor_generate"].mesh != node0  # original untouched

    def test_describe_lists_all_calls(self, ppo_graph, cluster):
        plan = symmetric_plan(ppo_graph, cluster, ParallelStrategy(2, 8, 1))
        text = plan.describe(ppo_graph)
        for name in ppo_graph.call_names:
            assert name in text

    def test_per_call_microbatch_override(self, ppo_graph, cluster):
        plan = symmetric_plan(
            ppo_graph, cluster, ParallelStrategy(2, 8, 1),
            n_microbatches=1, per_call_microbatches={"actor_train": 8},
        )
        assert plan["actor_train"].n_microbatches == 8
        assert plan["actor_generate"].n_microbatches == 1


class TestDerivedEdges:
    def test_symmetric_plan_has_no_reallocations(self, ppo_graph, cluster):
        plan = symmetric_plan(ppo_graph, cluster, ParallelStrategy(2, 8, 1))
        assert reallocation_edges(ppo_graph, plan) == []

    def test_changing_actor_strategy_adds_reallocation(self, ppo_graph, cluster):
        plan = symmetric_plan(ppo_graph, cluster, ParallelStrategy(2, 8, 1))
        mesh = full_cluster_mesh(cluster)
        plan = plan.with_assignment(
            "actor_generate", Allocation(mesh=mesh, parallel=ParallelStrategy(4, 4, 1))
        )
        edges = reallocation_edges(ppo_graph, plan)
        actor_edges = [e for e in edges if e.model_name == "actor"]
        # generate -> train and the wrap-around train -> generate both realloc.
        assert len(actor_edges) == 2
        assert all(not e.is_noop for e in actor_edges)

    def test_data_transfer_edges_match_graph_edges(self, ppo_graph, cluster):
        plan = symmetric_plan(ppo_graph, cluster, ParallelStrategy(2, 8, 1))
        edges = data_transfer_edges(ppo_graph, plan)
        assert len(edges) == len(ppo_graph.edges)
        assert all(edge.is_local for edge in edges)

    def test_data_transfer_detects_layout_change(self, ppo_graph, cluster):
        plan = symmetric_plan(ppo_graph, cluster, ParallelStrategy(2, 8, 1))
        node0 = DeviceMesh(cluster, 0, 1, 0, 8)
        plan = plan.with_assignment(
            "reward_inference", Allocation(mesh=node0, parallel=ParallelStrategy(1, 8, 1))
        )
        edges = data_transfer_edges(ppo_graph, plan)
        changed = [e for e in edges if e.dst_call == "reward_inference"]
        assert changed and all(not e.is_local for e in changed)
