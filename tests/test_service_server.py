"""Tests for the concurrent plan server, warm starts and service routing."""

from __future__ import annotations

import time

import pytest

from repro.baselines import RealSystem
from repro.cluster import make_cluster
from repro.core import SearchConfig, find_execution_plan, instructgpt_workload
from repro.experiments import ExperimentSetting, run_comparison
from repro.service import (
    PlanClient,
    PlanRequest,
    PlanService,
    select_warm_start,
)


def _request(batch_size=128, n_gpus=8, max_iterations=300, seed=0, graph=None):
    from repro.algorithms import build_ppo_graph

    graph = graph if graph is not None else build_ppo_graph()
    return PlanRequest(
        graph=graph,
        workload=instructgpt_workload("7b", "7b", batch_size=batch_size),
        cluster=make_cluster(n_gpus),
        search=SearchConfig(
            max_iterations=max_iterations,
            time_budget_s=30.0,
            seed=seed,
            record_history=False,
        ),
    )


@pytest.fixture()
def service():
    svc = PlanService(max_workers=2)
    yield svc
    svc.shutdown()


class TestCacheHits:
    def test_second_identical_request_is_10x_faster(self, service):
        request = _request(max_iterations=400)
        start = time.perf_counter()
        first = service.plan(request)
        miss_seconds = time.perf_counter() - start

        start = time.perf_counter()
        second = service.plan(request)
        hit_seconds = time.perf_counter() - start

        assert not first.stats.cache_hit and second.stats.cache_hit
        assert second.cost == first.cost
        assert second.plan.assignments == first.plan.assignments
        # The cached answer must be at least 10x faster than the search.
        assert miss_seconds >= 10.0 * hit_seconds
        assert service.stats.cache_hits == 1 and service.stats.cache_misses == 1
        assert service.stats.hit_rate == pytest.approx(0.5)

    def test_hit_reconstructs_search_result(self, service):
        request = _request(max_iterations=120)
        first = service.plan(request)
        second = service.plan(request)
        assert second.result.best_cost == first.result.best_cost
        assert second.result.initial_cost == first.result.initial_cost
        assert second.result.n_iterations == first.result.n_iterations

    def test_different_requests_do_not_collide(self, service):
        a = service.plan(_request(batch_size=128, max_iterations=80))
        b = service.plan(_request(batch_size=192, max_iterations=80))
        assert service.stats.cache_hits == 0
        assert a.stats.fingerprint != b.stats.fingerprint


class TestDeduplication:
    def test_inflight_duplicates_share_one_search(self, service):
        request = _request(max_iterations=1200)
        futures = [service.submit(request) for _ in range(3)]
        responses = [future.result() for future in futures]
        assert service.stats.dedup_joins == 2
        assert sum(r.stats.dedup_joined for r in responses) == 2
        assert len({r.cost for r in responses}) == 1
        # Only one search actually ran.
        assert service.stats.cache_misses == 1

    def test_submit_after_shutdown_raises(self):
        svc = PlanService(max_workers=1)
        svc.shutdown()
        with pytest.raises(RuntimeError):
            svc.submit(_request(max_iterations=10))


class TestWarmStart:
    def test_warm_start_no_worse_than_cold_on_same_budget(self):
        budget = SearchConfig(
            max_iterations=150, time_budget_s=30.0, seed=0, record_history=False
        )
        perturbed = _request(batch_size=192)
        perturbed = PlanRequest(
            graph=perturbed.graph,
            workload=perturbed.workload,
            cluster=perturbed.cluster,
            search=budget,
        )

        cold = PlanService(max_workers=1, warm_start=False)
        try:
            cold_response = cold.plan(perturbed)
        finally:
            cold.shutdown()

        warm = PlanService(max_workers=1, warm_start=True)
        try:
            # Solve a *similar* workload first (larger budget, so the cached
            # plan is well optimized), then the perturbed one warm-starts.
            warm.plan(_request(batch_size=128, max_iterations=1000))
            warm_response = warm.plan(perturbed)
        finally:
            warm.shutdown()

        assert warm_response.stats.warm_started
        assert not cold_response.stats.warm_started
        assert warm_response.cost <= cold_response.cost

    def test_warm_start_across_cluster_sizes(self):
        svc = PlanService(max_workers=1)
        try:
            svc.plan(_request(batch_size=128, n_gpus=8, max_iterations=600))
            response = svc.plan(_request(batch_size=256, n_gpus=16, max_iterations=100))
        finally:
            svc.shutdown()
        assert response.stats.warm_started
        assert svc.stats.warm_starts == 1
        # The adapted seed lives on the 16-GPU cluster.
        for alloc in response.plan.assignments.values():
            assert alloc.mesh.cluster.n_gpus == 16

    def test_select_warm_start_prefers_similar_scale(self, service):
        service.plan(_request(batch_size=64, max_iterations=40))
        service.plan(_request(batch_size=256, max_iterations=40))
        fingerprint = _request(batch_size=224).fingerprint()
        chosen = select_warm_start(service.cache, fingerprint)
        assert chosen is not None
        assert chosen.features["batch_size"] == 256.0


class TestClientAndRouting:
    def test_client_batch_api_mixed_stream(self):
        with PlanClient(max_workers=2) as client:
            requests = [
                _request(batch_size=128, max_iterations=80),
                _request(batch_size=192, max_iterations=80),
                _request(batch_size=128, max_iterations=80),
                _request(batch_size=192, max_iterations=80),
            ]
            responses = client.plan_many(requests)
            assert len(responses) == 4
            assert responses[0].cost == responses[2].cost
            assert responses[1].cost == responses[3].cost
            stats = client.stats
            # Duplicates were either cache hits or dedup joins, never a
            # second search.
            assert stats.cache_misses == 2
            assert stats.cache_hits + stats.dedup_joins == 2

    def test_find_execution_plan_routes_through_service(self):
        search = SearchConfig(max_iterations=80, time_budget_s=30.0, seed=0)
        with PlanService(max_workers=1) as svc:
            result_a, _ = find_execution_plan(
                "ppo", "7b", "7b", n_gpus=8, batch_size=128,
                search=search, service=svc,
            )
            result_b, experiment = find_execution_plan(
                "ppo", "7b", "7b", n_gpus=8, batch_size=128,
                search=search, service=svc,
            )
            assert svc.stats.cache_hits == 1
            assert result_b.best_cost == result_a.best_cost
            assert experiment.cluster.n_gpus == 8

    def test_real_system_reuses_service_across_evaluations(self):
        setting = ExperimentSetting("tiny", "7b", "7b", n_gpus=8, batch_size=64)
        search = SearchConfig(max_iterations=120, time_budget_s=30.0, seed=0)
        with PlanService(max_workers=1) as svc:
            system = RealSystem(search_config=search)
            run_comparison([setting], [system], plan_service=svc)
            assert svc.stats.cache_misses == 1
            run_comparison([setting], [system], plan_service=svc)
            assert svc.stats.cache_hits == 1
            assert system.last_result is not None
            # The grid borrows the service; the system is restored after,
            # so a later direct evaluation does not hit a shut-down service.
            assert system.plan_service is None

    def test_initial_plan_hook_in_search_execution_plan(self):
        from repro.core import search_execution_plan
        from repro.baselines import build_heuristic_plan

        request = _request()
        hint = build_heuristic_plan(request.graph, request.workload, request.cluster)
        config = SearchConfig(max_iterations=0, time_budget_s=30.0, seed=0)
        cold = search_execution_plan(
            request.graph, request.workload, request.cluster, config=config
        )
        hinted = search_execution_plan(
            request.graph, request.workload, request.cluster, config=config,
            initial_plan=hint,
        )
        # With a zero budget the result is the best starting candidate, so
        # the hint can only improve (here: strictly, greedy plans OOM).
        assert hinted.best_cost <= cold.best_cost


class TestEstimatorSharing:
    def test_same_workload_different_budget_shares_estimator(self, service):
        # Different search seeds -> different fingerprints (both are cold
        # searches) but the same estimation problem -> one shared estimator.
        first = _request(max_iterations=50, seed=0)
        second = _request(max_iterations=50, seed=1)
        assert first.fingerprint().key != second.fingerprint().key
        assert first.fingerprint().estimator_key == second.fingerprint().estimator_key
        service.plan(first)
        assert service.stats.estimator_reuses == 0
        service.plan(second)
        assert service.stats.estimator_reuses == 1
        assert len(service._estimators) == 1

    def test_different_workloads_use_distinct_estimators(self, service):
        service.plan(_request(batch_size=128, max_iterations=50))
        service.plan(_request(batch_size=256, max_iterations=50))
        assert service.stats.estimator_reuses == 0
        assert len(service._estimators) == 2

    def test_estimator_cache_size_validation(self):
        with pytest.raises(ValueError):
            PlanService(estimator_cache_size=0)


class TestLifecycle:
    def test_close_flushes_persistent_cache(self, tmp_path):
        path = str(tmp_path / "plans.json")
        service = PlanService(max_workers=1, persist_path=path)
        service.plan(_request(max_iterations=20))
        # Sabotage the file written eagerly by put(), then close: the final
        # flush must rewrite it so no cached plan is lost on exit.
        (tmp_path / "plans.json").write_text("{}")
        service.close()
        reloaded = PlanService(max_workers=1, persist_path=path)
        try:
            assert len(reloaded.cache) == 1
        finally:
            reloaded.close()

    def test_close_is_idempotent_and_blocks_submissions(self):
        service = PlanService(max_workers=1)
        service.close()
        service.close()
        with pytest.raises(RuntimeError):
            service.submit(_request(max_iterations=10))

    def test_context_manager_closes(self, tmp_path):
        path = str(tmp_path / "plans.json")
        with PlanService(max_workers=1, persist_path=path) as service:
            service.plan(_request(max_iterations=20))
        assert (tmp_path / "plans.json").exists()
        with pytest.raises(RuntimeError):
            service.submit(_request(max_iterations=10))

    def test_owning_client_close_flushes(self, tmp_path):
        path = str(tmp_path / "plans.json")
        client = PlanClient(max_workers=1, persist_path=path)
        client.plan_algorithm(
            "ppo", "7b", "7b", n_gpus=8, batch_size=64,
            search=SearchConfig(max_iterations=20, record_history=False),
        )
        (tmp_path / "plans.json").write_text("{}")
        client.close()
        reloaded = PlanService(max_workers=1, persist_path=path)
        try:
            assert len(reloaded.cache) == 1
        finally:
            reloaded.close()

    def test_borrowing_client_close_keeps_service_open(self):
        service = PlanService(max_workers=1)
        client = PlanClient(service=service)
        client.close()
        service.plan(_request(max_iterations=10))  # still usable
        service.close()


class TestServiceStatsDict:
    def test_to_dict_is_machine_readable(self, service):
        service.plan(_request(max_iterations=20))
        service.plan(_request(max_iterations=20))
        data = service.stats.snapshot().to_dict()
        assert data["requests"] == 2
        assert data["cache_hits"] == 1
        assert data["cache_misses"] == 1
        assert data["hit_rate"] == pytest.approx(0.5)
        assert isinstance(data["search_seconds"], float)


class TestFeasibility:
    def test_feasible_plan_reports_peak_memory(self, service):
        response = service.plan(_request(max_iterations=50))
        assert response.peak_memory_bytes > 0
        assert response.feasible
        # The cache hit carries the same verdict.
        hit = service.plan(_request(max_iterations=50))
        assert hit.stats.cache_hit
        assert hit.peak_memory_bytes == response.peak_memory_bytes
        assert hit.feasible

    def test_oom_plan_marked_infeasible(self, service):
        # A 70B actor on a single 8-GPU node cannot fit; with static-OOM
        # pruning disabled the search still returns a plan, which the
        # response must flag as infeasible.
        from repro.algorithms import build_ppo_graph
        from repro.core import PruneConfig

        request = PlanRequest(
            graph=build_ppo_graph(),
            workload=instructgpt_workload("70b", "7b", batch_size=512),
            cluster=make_cluster(8),
            search=SearchConfig(max_iterations=30, record_history=False),
            prune=PruneConfig(prune_static_oom=False),
        )
        response = service.plan(request)
        assert not response.feasible
        assert response.peak_memory_bytes >= request.cluster.device_memory_bytes
