"""Tests for the causal span tracer (:mod:`repro.obs.tracing`).

Covers the tracer's own contract — implicit parentage through the context
variable, explicit grafting, the ``REPRO_TRACING`` kill switch, thread-hop
propagation via :meth:`Tracer.activate`, Chrome-trace export with flow
arrows — and the cross-*process* invariant the search layer depends on: a
process-mode :class:`SearchSession` polled in slices yields the same
span-tree parentage as a sequential one, and spans keep flowing after the
fail-soft in-process fallback.
"""

from __future__ import annotations

import threading

import pytest

from repro.algorithms import build_ppo_graph
from repro.cluster import make_cluster
from repro.core import MCMCSearcher, SearchConfig, SearchSession, instructgpt_workload
from repro.obs import (
    SpanContext,
    SpanRecord,
    Tracer,
    current_span,
    set_tracer,
    tracing_enabled,
)
from repro.sim import TraceRecorder, load_chrome_trace, validate_chrome_events


@pytest.fixture
def tracer():
    """A fresh enabled tracer installed as the process-wide default."""
    fresh = Tracer(enabled=True)
    previous = set_tracer(fresh)
    try:
        yield fresh
    finally:
        set_tracer(previous)


# ---------------------------------------------------------------------- #
# The knob
# ---------------------------------------------------------------------- #
class TestTracingKnob:
    @pytest.mark.parametrize("value", ["off", "0", "false", "NO", "Disabled"])
    def test_off_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_TRACING", value)
        assert not tracing_enabled()
        assert not Tracer().enabled

    @pytest.mark.parametrize("value", [None, "on", "1", "anything"])
    def test_on_values(self, monkeypatch, value):
        if value is None:
            monkeypatch.delenv("REPRO_TRACING", raising=False)
        else:
            monkeypatch.setenv("REPRO_TRACING", value)
        assert tracing_enabled()

    def test_disabled_tracer_is_free(self):
        disabled = Tracer(enabled=False)
        with disabled.start_span("never", category="x") as span:
            assert span.context is None
            span.set(key="value")  # no-op, chainable
        assert disabled.n_records == 0
        assert disabled.extend([_record("orphan")]) == 0


def _record(name: str, context: SpanContext = None) -> SpanRecord:
    context = context or SpanContext(trace_id="t", span_id=name)
    return SpanRecord(name=name, category="test", start_s=0.0, end_s=1.0, context=context)


# ---------------------------------------------------------------------- #
# Span tree construction
# ---------------------------------------------------------------------- #
class TestSpanTree:
    def test_implicit_parentage_follows_nesting(self, tracer):
        with tracer.start_span("outer") as outer:
            assert current_span() is outer.context
            with tracer.start_span("inner") as inner:
                assert inner.context.parent_id == outer.context.span_id
                assert inner.context.trace_id == outer.context.trace_id
        assert current_span() is None
        names = {r.name: r for r in tracer.records()}
        assert set(names) == {"outer", "inner"}
        assert names["inner"].end_s <= names["outer"].end_s

    def test_explicit_parent_grafts_elsewhere(self, tracer):
        with tracer.start_span("a") as a:
            pass
        with tracer.start_span("b"):
            with tracer.start_span("grafted", parent=a.context) as grafted:
                assert grafted.context.parent_id == a.context.span_id

    def test_parent_none_forces_new_root(self, tracer):
        with tracer.start_span("root1"):
            with tracer.start_span("root2", parent=None) as root2:
                assert root2.context.parent_id is None

    def test_set_attaches_args_late(self, tracer):
        with tracer.start_span("spanned", args={"early": 1}) as span:
            span.set(late="outcome")
        (record,) = tracer.records()
        assert record.args == {"early": 1, "late": "outcome"}
        assert record.duration_s >= 0.0

    def test_activate_propagates_across_threads(self, tracer):
        with tracer.start_span("submit") as submit:
            captured = submit.context
        seen = {}

        def worker():
            with tracer.activate(captured):
                with tracer.start_span("work") as span:
                    seen["parent"] = span.context.parent_id

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert seen["parent"] == captured.span_id

    def test_extend_folds_foreign_records(self, tracer):
        with tracer.start_span("parent") as parent:
            pass
        shipped = _record("shipped", parent.context.child())
        assert tracer.extend([shipped]) == 1
        assert tracer.records(since=1) == [shipped]

    def test_records_since_and_clear(self, tracer):
        with tracer.start_span("one"):
            pass
        baseline = tracer.n_records
        with tracer.start_span("two"):
            pass
        assert [r.name for r in tracer.records(since=baseline)] == ["two"]
        tracer.clear()
        assert tracer.n_records == 0

    def test_context_pickles(self, tracer):
        import pickle

        with tracer.start_span("portable") as span:
            context = span.context
        clone = pickle.loads(pickle.dumps(context))
        assert clone == context
        assert clone.child().parent_id == context.span_id


# ---------------------------------------------------------------------- #
# Chrome export: async spans + flow arrows
# ---------------------------------------------------------------------- #
class TestChromeExport:
    def test_spans_and_flows_round_trip(self, tracer, tmp_path):
        with tracer.start_span("decision", category="sched"):
            with tracer.start_span("request", category="service"):
                with tracer.start_span("chain 0", category="search"):
                    pass
        recorder = TraceRecorder()
        assert tracer.record_chrome(recorder) == 3
        events = load_chrome_trace(recorder.save(tmp_path / "trace.json"))
        validate_chrome_events(events)
        begins = {e["name"]: e for e in events if e["ph"] == "b"}
        assert set(begins) == {"decision", "request", "chain 0"}
        assert len([e for e in events if e["ph"] == "e"]) == 3
        # One flow arrow per parent->child edge, anchored at the begins.
        starts = [e for e in events if e["ph"] == "s"]
        finishes = [e for e in events if e["ph"] == "f"]
        assert len(starts) == len(finishes) == 2
        assert all(e.get("bp") == "e" for e in finishes)
        # The child's ancestry is readable straight from the args.
        assert begins["request"]["args"]["parent_id"] == begins["decision"]["args"]["span_id"]
        assert begins["chain 0"]["args"]["parent_id"] == begins["request"]["args"]["span_id"]
        # Earliest span is rebased to t=0.
        assert min(e["ts"] for e in begins.values()) == 0.0

    def test_since_exports_only_the_delta(self, tracer):
        with tracer.start_span("before"):
            pass
        baseline = tracer.n_records
        with tracer.start_span("after"):
            pass
        recorder = TraceRecorder()
        assert tracer.record_chrome(recorder, since=baseline) == 1

    def test_empty_export_is_zero(self, tracer):
        assert tracer.record_chrome(TraceRecorder()) == 0


# ---------------------------------------------------------------------- #
# Cross-process propagation through SearchSession
# ---------------------------------------------------------------------- #
def _session(parallel: str) -> SearchSession:
    config = SearchConfig(
        max_iterations=40, time_budget_s=60.0, seed=5, n_chains=2, parallel=parallel
    )
    searcher = MCMCSearcher(
        build_ppo_graph(),
        instructgpt_workload("7b", "7b", batch_size=64),
        make_cluster(8),
        config=config,
    )
    return SearchSession(searcher, slice_iterations=9)


def _polled_parentage(tracer: Tracer, session: SearchSession):
    """Poll to completion, one span per poll; return edges + execution modes."""
    session.start()
    modes = set()
    while not session.done:
        with tracer.start_span("session poll", category="service"):
            modes.add(session.poll().execution_mode)
    session.stop()
    by_id = {r.context.span_id: r for r in tracer.records()}
    edges = sorted(
        (r.name, by_id[r.context.parent_id].name)
        for r in tracer.records()
        if r.context.parent_id in by_id
    )
    return edges, modes


class TestCrossProcessSpans:
    def test_process_parentage_matches_sequential(self):
        sequential_tracer = Tracer(enabled=True)
        previous = set_tracer(sequential_tracer)
        try:
            sequential_edges, _ = _polled_parentage(sequential_tracer, _session("off"))
        finally:
            set_tracer(previous)
        assert sequential_edges, "sequential session recorded no span edges"
        assert ("chain 0", "session poll") in sequential_edges

        process_tracer = Tracer(enabled=True)
        previous = set_tracer(process_tracer)
        try:
            session = _session("process")
            session.start()
            if session._runner is None:
                pytest.skip("process pool unavailable on this machine")
            process_edges, modes = _polled_parentage(process_tracer, session)
        finally:
            set_tracer(previous)
        assert "process" in modes
        # Same tree shape: every chain slice hangs under the poll that ran
        # it, regardless of which process executed the slice.
        assert process_edges == sequential_edges

    def test_spans_survive_in_process_fallback(self):
        tracer = Tracer(enabled=True)
        previous = set_tracer(tracer)
        try:
            session = _session("process")
            session.start()
            if session._runner is None:
                pytest.skip("process pool unavailable on this machine")
            with tracer.start_span("session poll", category="service"):
                session.poll()
            before = len([r for r in tracer.records() if r.name.startswith("chain")])
            assert before >= 1
            # Kill the pool: later polls fall back to the calling thread.
            session._runner.close_session()
            session._runner = None
            while not session.done:
                with tracer.start_span("session poll", category="service"):
                    assert session.poll().execution_mode in ("sequential", "idle")
            session.stop()
        finally:
            set_tracer(previous)
        chains = [r for r in tracer.records() if r.name.startswith("chain")]
        assert len(chains) > before, "fallback slices recorded no spans"
        by_id = {r.context.span_id: r for r in tracer.records()}
        for record in chains:
            assert by_id[record.context.parent_id].name == "session poll"
