"""Integration tests for the discrete-event runtime engine."""

import pytest

from repro.cluster import DeviceMesh, full_cluster_mesh, make_cluster
from repro.core import (
    Allocation,
    ParallelStrategy,
    RuntimeEstimator,
    symmetric_plan,
)
from repro.runtime import RuntimeEngine


@pytest.fixture(scope="module")
def cluster():
    return make_cluster(16)


@pytest.fixture(scope="module")
def engine(small_workload, cluster):
    return RuntimeEngine(cluster, small_workload)


@pytest.fixture(scope="module")
def sym_plan(ppo_graph, cluster):
    return symmetric_plan(ppo_graph, cluster, ParallelStrategy(2, 8, 1), n_microbatches=8)


class TestRunIteration:
    def test_trace_covers_all_calls(self, engine, ppo_graph, sym_plan):
        trace = engine.run_iteration(ppo_graph, sym_plan)
        assert set(trace.call_spans) == set(ppo_graph.call_names)
        assert trace.total_seconds > 0
        assert trace.total_seconds == pytest.approx(
            max(end for _, end in trace.call_spans.values())
        )

    def test_dependencies_respected(self, engine, ppo_graph, sym_plan):
        trace = engine.run_iteration(ppo_graph, sym_plan)
        spans = trace.call_spans
        gen_end = spans["actor_generate"][1]
        for child in ("reward_inference", "ref_inference", "critic_inference"):
            assert spans[child][0] >= gen_end - 1e-9

    def test_gpu_accounting_consistent(self, engine, ppo_graph, sym_plan, cluster):
        trace = engine.run_iteration(ppo_graph, sym_plan)
        assert len(trace.gpu_category_seconds) == cluster.n_gpus
        fractions = trace.gpu_time_fractions()
        assert set(fractions) == {"compute", "p2p", "collective", "idle"}
        assert sum(fractions.values()) == pytest.approx(1.0, abs=1e-6)
        assert all(v >= -1e-9 for v in fractions.values())

    def test_engine_matches_estimator_on_symmetric_plan(
        self, engine, ppo_graph, sym_plan, small_workload, cluster
    ):
        estimator = RuntimeEstimator(ppo_graph, small_workload, cluster)
        est = estimator.time_cost(sym_plan).total_seconds
        real = engine.run_iteration(ppo_graph, sym_plan).total_seconds
        assert abs(real - est) / est < 0.25

    def test_concurrent_plan_beats_serialized_inferences(
        self, engine, ppo_graph, cluster, small_workload
    ):
        node0 = DeviceMesh(cluster, 0, 1, 0, 8)
        node1 = DeviceMesh(cluster, 1, 1, 0, 8)
        base = symmetric_plan(ppo_graph, cluster, ParallelStrategy(2, 8, 1), n_microbatches=8)
        concurrent = (
            base
            .with_assignment("ref_inference", Allocation(node0, ParallelStrategy(1, 8, 1), 2))
            .with_assignment("reward_inference", Allocation(node1, ParallelStrategy(1, 8, 1), 2))
            .with_assignment("critic_inference", Allocation(node1, ParallelStrategy(1, 8, 1), 2))
        )
        t_base = engine.run_iteration(ppo_graph, base).total_seconds
        t_concurrent = engine.run_iteration(ppo_graph, concurrent).total_seconds
        # Inference is a small share of the iteration, but overlap + the
        # reallocation cost must not make things dramatically worse.
        assert t_concurrent < t_base * 1.1

    def test_realloc_recorded_when_strategies_differ(self, engine, ppo_graph, sym_plan, cluster):
        trace_same = engine.run_iteration(ppo_graph, sym_plan)
        assert trace_same.realloc_seconds == 0.0
        changed = sym_plan.with_assignment(
            "actor_generate",
            Allocation(full_cluster_mesh(cluster), ParallelStrategy(4, 4, 1), 1),
        )
        trace_changed = engine.run_iteration(ppo_graph, changed)
        assert trace_changed.realloc_seconds > 0.0

    def test_memory_estimate_attached(self, engine, ppo_graph, sym_plan, cluster):
        trace = engine.run_iteration(ppo_graph, sym_plan)
        assert trace.memory.max_bytes > 0
        assert len(trace.memory.per_gpu) == cluster.n_gpus

    def test_invalid_plan_rejected(self, engine, ppo_graph, cluster, sym_plan):
        broken = dict(sym_plan.assignments)
        del broken["actor_train"]
        from repro.core import ExecutionPlan

        with pytest.raises(ValueError):
            engine.run_iteration(ppo_graph, ExecutionPlan(broken))


class TestThroughput:
    def test_throughput_metric(self, engine, ppo_graph, sym_plan, small_workload):
        result = engine.measure_throughput(ppo_graph, sym_plan, n_iterations=2)
        assert result.n_iterations == 2
        assert result.petaflops_per_second > 0
        expected = small_workload.iteration_flops(ppo_graph.calls)
        assert result.total_flops_per_iteration == pytest.approx(expected)

    def test_cuda_graph_engine_is_faster(self, ppo_graph, sym_plan, small_workload, cluster):
        fast = RuntimeEngine(cluster, small_workload, use_cuda_graph=True)
        slow = RuntimeEngine(cluster, small_workload, use_cuda_graph=False)
        t_fast = fast.run_iteration(ppo_graph, sym_plan).total_seconds
        t_slow = slow.run_iteration(ppo_graph, sym_plan).total_seconds
        assert t_slow > t_fast

    def test_zero_iterations_rejected(self, engine, ppo_graph, sym_plan):
        with pytest.raises(ValueError):
            engine.measure_throughput(ppo_graph, sym_plan, n_iterations=0)
