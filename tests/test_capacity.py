"""Fleet trace generation and the capacity what-if grid."""

import json

import pytest

from repro.capacity import (
    DEFAULT_JOB_TYPES,
    CapacityCandidate,
    CapacityReport,
    FleetJobType,
    FleetTraceConfig,
    capacity_whatif,
    fleet_scheduler_config,
    generate_fleet_trace,
)
from repro.capacity.whatif import CandidateOutcome, _pareto_frontier
from repro.service import PlanService

TINY_TRACE = FleetTraceConfig(n_jobs=8, horizon_s=600.0, seed=3)


class TestFleetTraceGenerator:
    def test_deterministic(self):
        first = generate_fleet_trace(TINY_TRACE)
        second = generate_fleet_trace(TINY_TRACE)
        assert first == second

    def test_different_seeds_differ(self):
        a = generate_fleet_trace(FleetTraceConfig(n_jobs=8, horizon_s=600.0, seed=0))
        b = generate_fleet_trace(FleetTraceConfig(n_jobs=8, horizon_s=600.0, seed=1))
        assert [s.arrival_time for s in a] != [s.arrival_time for s in b]

    def test_trace_shape(self):
        jobs = generate_fleet_trace(FleetTraceConfig(n_jobs=50, horizon_s=3600.0))
        assert len(jobs) == 50
        names = [spec.name for spec in jobs]
        assert len(set(names)) == len(names)
        arrivals = [spec.arrival_time for spec in jobs]
        assert arrivals == sorted(arrivals)
        assert arrivals[0] > 0.0
        by_type = {jtype.name: jtype for jtype in DEFAULT_JOB_TYPES}
        for spec in jobs:
            jtype = by_type[spec.name.rsplit("-", 1)[0]]
            low, high = jtype.iterations
            assert low <= spec.target_iterations <= high
            assert spec.min_gpus == jtype.min_gpus

    def test_mix_respects_weights_roughly(self):
        jobs = generate_fleet_trace(FleetTraceConfig(n_jobs=400, horizon_s=86400.0))
        small = sum(1 for spec in jobs if spec.name.startswith("ppo-small"))
        large = sum(1 for spec in jobs if spec.name.startswith("ppo-large"))
        assert small > large

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FleetTraceConfig(n_jobs=0)
        with pytest.raises(ValueError):
            FleetTraceConfig(horizon_s=0.0)
        with pytest.raises(ValueError):
            FleetTraceConfig(diurnal_amplitude=1.0)
        with pytest.raises(ValueError):
            FleetTraceConfig(job_types=())
        with pytest.raises(ValueError):
            FleetJobType(name="bad", iterations=(5, 2))
        with pytest.raises(ValueError):
            FleetJobType(name="bad", weight=0.0)

    def test_fleet_scheduler_preset(self):
        config = fleet_scheduler_config()
        assert config.timeline is False
        assert config.counter_interval_s == 600.0
        assert config.memoize_candidates is True
        assert config.elastic is False
        assert config.search.record_history is False


class TestParetoFrontier:
    def _outcome(self, name, cost, throughput):
        return CandidateOutcome(
            name=name, n_gpus=8, gpus_per_node=8, policy="first_fit",
            cost_per_gpu_hour=2.0, n_jobs=1, n_skipped=0, n_completed=1,
            total_iterations=1.0, makespan_s=1.0, gpu_utilization=1.0,
            provisioned_gpu_hours=1.0, provisioned_cost=cost,
            iterations_per_hour=throughput, cost_per_1k_iterations=1.0,
            n_events=1, wall_seconds=1.0, events_per_sec=1.0,
        )

    def test_dominated_candidate_excluded(self):
        cheap_fast = self._outcome("cheap-fast", cost=10.0, throughput=100.0)
        pricey_slow = self._outcome("pricey-slow", cost=20.0, throughput=50.0)
        pricey_fast = self._outcome("pricey-fast", cost=20.0, throughput=200.0)
        frontier = _pareto_frontier([cheap_fast, pricey_slow, pricey_fast])
        assert frontier == ["cheap-fast", "pricey-fast"]

    def test_ties_both_survive(self):
        a = self._outcome("a", cost=10.0, throughput=100.0)
        b = self._outcome("b", cost=10.0, throughput=100.0)
        assert _pareto_frontier([a, b]) == ["a", "b"]


class TestCapacityWhatIf:
    @pytest.fixture(scope="class")
    def report(self):
        jobs = generate_fleet_trace(TINY_TRACE)
        candidates = [
            CapacityCandidate(name="32g", n_gpus=32),
            CapacityCandidate(name="64g", n_gpus=64),
            CapacityCandidate(name="64g-spot", n_gpus=64, cost_per_gpu_hour=1.2),
        ]
        with PlanService(max_workers=4, estimator_cache_size=32) as service:
            return capacity_whatif(jobs, candidates, service=service)

    def test_every_candidate_has_an_outcome(self, report):
        assert [o.name for o in report.outcomes] == ["32g", "64g", "64g-spot"]
        assert report.n_jobs == TINY_TRACE.n_jobs
        for outcome in report.outcomes:
            assert outcome.n_completed == outcome.n_jobs
            assert outcome.total_iterations > 0
            assert outcome.makespan_s > 0
            assert outcome.provisioned_cost > 0
            assert outcome.n_events > 0

    def test_frontier_is_nonempty_subset(self, report):
        names = {o.name for o in report.outcomes}
        assert report.frontier
        assert set(report.frontier) <= names
        assert {o.name for o in report.frontier_outcomes()} == set(report.frontier)

    def test_spot_pricing_dominates_on_demand_twin(self, report):
        # Identical cluster and replay, lower $/GPU-hour: the on-demand twin
        # is dominated and must be off the frontier.
        on_demand = report.outcome("64g")
        spot = report.outcome("64g-spot")
        assert spot.makespan_s == on_demand.makespan_s
        assert spot.provisioned_cost < on_demand.provisioned_cost
        assert "64g" not in report.frontier
        assert "64g-spot" in report.frontier

    def test_report_round_trips_through_json(self, report, tmp_path):
        path = report.save(tmp_path / "frontier.json")
        payload = json.loads(path.read_text())
        assert payload["frontier"] == list(report.frontier)
        assert len(payload["candidates"]) == 3
        assert payload["candidates"][0]["name"] == "32g"

    def test_unknown_outcome_name_raises(self, report):
        assert isinstance(report, CapacityReport)
        with pytest.raises(KeyError):
            report.outcome("nope")

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one candidate"):
            capacity_whatif([], [])
        with pytest.raises(ValueError, match="unique"):
            capacity_whatif(
                [],
                [CapacityCandidate(name="x", n_gpus=8),
                 CapacityCandidate(name="x", n_gpus=16)],
            )
        with pytest.raises(ValueError):
            CapacityCandidate(name="", n_gpus=8)
        with pytest.raises(ValueError):
            CapacityCandidate(name="x", n_gpus=0)

    def test_too_small_cluster_skips_big_jobs(self):
        jobs = generate_fleet_trace(FleetTraceConfig(n_jobs=12, horizon_s=600.0, seed=5))
        assert any(spec.min_gpus > 8 for spec in jobs), "seed must draw a big job"
        with PlanService(max_workers=4, estimator_cache_size=32) as service:
            report = capacity_whatif(
                jobs, [CapacityCandidate(name="8g", n_gpus=8)], service=service
            )
        outcome = report.outcome("8g")
        assert outcome.n_skipped > 0
        assert outcome.n_jobs + outcome.n_skipped == len(jobs)


class TestCoreApiWiring:
    def test_capacity_whatif_exported_and_saves_report(self, tmp_path):
        from repro.core import api

        assert "capacity_whatif" in api.__all__
        jobs = generate_fleet_trace(FleetTraceConfig(n_jobs=4, horizon_s=300.0, seed=2))
        path = tmp_path / "report.json"
        report = api.capacity_whatif(
            jobs,
            [CapacityCandidate(name="32g", n_gpus=32)],
            report_path=str(path),
        )
        assert path.exists()
        assert json.loads(path.read_text())["frontier"] == list(report.frontier)
