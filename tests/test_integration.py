"""Cross-module integration tests: search -> plan -> runtime -> metrics."""

import pytest

from repro.algorithms import build_graph
from repro.baselines import RealHeuristicSystem, RealSystem, build_heuristic_plan
from repro.cluster import make_cluster
from repro.core import (
    Profiler,
    RuntimeEstimator,
    SearchConfig,
    MCMCSearcher,
    instructgpt_workload,
)
from repro.experiments import petaflops_per_second
from repro.runtime import RuntimeEngine


@pytest.fixture(scope="module")
def problem():
    graph = build_graph("ppo")
    workload = instructgpt_workload("7b", "7b", batch_size=128)
    cluster = make_cluster(16)
    return graph, workload, cluster


class TestSearchToRuntime:
    def test_searched_plan_runs_and_beats_heuristic(self, problem):
        """The paper's headline claim at miniature scale: ReaL > heuristic."""
        graph, workload, cluster = problem
        heuristic = build_heuristic_plan(graph, workload, cluster)
        system = RealSystem(search_config=SearchConfig(max_iterations=2000, time_budget_s=25, seed=0))
        searched = system.build_plan(graph, workload, cluster)

        engine = RuntimeEngine(cluster, workload)
        t_heuristic = engine.run_iteration(graph, heuristic).total_seconds
        t_searched = engine.run_iteration(graph, searched).total_seconds
        assert t_searched <= t_heuristic * 1.02

    def test_estimator_tracks_engine_across_plans(self, problem):
        """Figure 12 (right): estimates are within ~25% and rank-preserving."""
        graph, workload, cluster = problem
        estimator = RuntimeEstimator(graph, workload, cluster)
        engine = RuntimeEngine(cluster, workload)

        heuristic = build_heuristic_plan(graph, workload, cluster)
        searched = RealSystem(
            search_config=SearchConfig(max_iterations=800, time_budget_s=15, seed=1)
        ).build_plan(graph, workload, cluster)

        plans = {"heuristic": heuristic, "searched": searched}
        estimated = {k: estimator.time_cost(p).total_seconds for k, p in plans.items()}
        measured = {k: engine.run_iteration(graph, p).total_seconds for k, p in plans.items()}
        for key in plans:
            rel_err = abs(estimated[key] - measured[key]) / measured[key]
            assert rel_err < 0.3
        # Rank preservation.
        assert (estimated["searched"] <= estimated["heuristic"]) == (
            measured["searched"] <= measured["heuristic"]
        )

    def test_profiled_search_pipeline(self, problem):
        """Full pipeline with profiling: profile -> estimate -> search -> run."""
        graph, workload, cluster = problem
        profiler = Profiler(cluster)
        profiles = {
            name: profiler.profile(
                workload.model_config(name), max_tokens=2 ** 19,
                tp_degrees=(1, 2, 4, 8), seq_lengths=(1024, 2048), max_batch=128,
            )
            for name in graph.model_names()
        }
        estimator = RuntimeEstimator(graph, workload, cluster, profiles=profiles)
        searcher = MCMCSearcher(
            graph, workload, cluster, estimator=estimator,
            config=SearchConfig(max_iterations=500, time_budget_s=15, seed=0),
            seed_plans=[build_heuristic_plan(graph, workload, cluster)],
        )
        result = searcher.search()
        trace = RuntimeEngine(cluster, workload).run_iteration(graph, result.best_plan)
        assert trace.total_seconds > 0
        assert petaflops_per_second(workload, graph, trace.total_seconds) > 0


class TestBeyondPPOIntegration:
    @pytest.mark.parametrize("algorithm", ["dpo", "grpo", "remax"])
    def test_other_algorithms_plan_and_run(self, algorithm):
        graph = build_graph(algorithm)
        workload = instructgpt_workload("7b", "7b", batch_size=64)
        cluster = make_cluster(8)
        evaluation = RealHeuristicSystem().evaluate(graph, workload, cluster)
        assert evaluation.feasible
        assert evaluation.petaflops > 0

    def test_remax_concurrent_generations_help(self):
        """ReMax's two generation calls can overlap under a searched plan."""
        graph = build_graph("remax")
        workload = instructgpt_workload("7b", "7b", batch_size=64)
        cluster = make_cluster(16)
        heuristic = build_heuristic_plan(graph, workload, cluster)
        searched = RealSystem(
            search_config=SearchConfig(max_iterations=1500, time_budget_s=20, seed=0)
        ).build_plan(graph, workload, cluster)
        engine = RuntimeEngine(cluster, workload)
        t_heuristic = engine.run_iteration(graph, heuristic).total_seconds
        t_searched = engine.run_iteration(graph, searched).total_seconds
        assert t_searched <= t_heuristic * 1.02
