"""Tests for the decision-provenance ledger (:mod:`repro.obs.provenance`).

The ledger's append/filter/serialize contract, the shared ``REPRO_TRACING``
gate, and — most load-bearing — :func:`load_provenance`'s validation: the
report CLI and CI hold every ``PROVENANCE_*.jsonl`` artifact to "each line
is a JSON object with a ``kind``", so malformed files must raise.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    ProvenanceLedger,
    load_provenance,
    set_ledger,
    write_provenance,
)


@pytest.fixture
def ledger():
    """A fresh enabled ledger installed as the process-wide default."""
    fresh = ProvenanceLedger(enabled=True)
    previous = set_ledger(fresh)
    try:
        yield fresh
    finally:
        set_ledger(previous)


class TestLedger:
    def test_record_stamps_kind_and_seq(self, ledger):
        ledger.record("placement", job="a")
        ledger.record("swap", job="a", outcome="taken")
        events = ledger.events()
        assert [e["seq"] for e in events] == [0, 1]
        assert [e["kind"] for e in events] == ["placement", "swap"]
        assert events[1]["outcome"] == "taken"

    def test_events_filter_by_since_and_kind(self, ledger):
        ledger.record("placement", job="a")
        baseline = ledger.n_events
        ledger.record("swap", job="a")
        ledger.record("placement", job="b")
        assert [e["kind"] for e in ledger.events(since=baseline)] == ["swap", "placement"]
        assert [e["job"] for e in ledger.events(kind="placement")] == ["a", "b"]

    def test_disabled_ledger_records_nothing(self):
        disabled = ProvenanceLedger(enabled=False)
        disabled.record("placement", job="never")
        assert disabled.n_events == 0
        assert disabled.events() == []

    def test_clear(self, ledger):
        ledger.record("swap")
        ledger.clear()
        assert ledger.n_events == 0


class TestSerialization:
    def test_write_and_load_round_trip(self, ledger, tmp_path):
        ledger.record("decision_wave", candidates=[{"job": "a", "cost": 1.5}])
        ledger.record("swap", outcome="rejected", ratio=0.97)
        path = ledger.write_jsonl(tmp_path / "PROVENANCE_run.jsonl")
        events = load_provenance(path)
        assert [e["kind"] for e in events] == ["decision_wave", "swap"]
        assert events[0]["candidates"] == [{"job": "a", "cost": 1.5}]
        assert events[1]["ratio"] == 0.97

    def test_write_jsonl_since_exports_the_delta(self, ledger, tmp_path):
        ledger.record("placement", job="warmup")
        baseline = ledger.n_events
        ledger.record("swap", job="real")
        events = load_provenance(ledger.write_jsonl(tmp_path / "p.jsonl", since=baseline))
        assert [e["kind"] for e in events] == ["swap"]

    def test_write_provenance_creates_parent_dirs(self, tmp_path):
        path = write_provenance([{"kind": "x"}], tmp_path / "deep" / "p.jsonl")
        assert load_provenance(path) == [{"kind": "x"}]

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "p.jsonl"
        path.write_text('{"kind": "a"}\n\n  \n{"kind": "b"}\n')
        assert [e["kind"] for e in load_provenance(path)] == ["a", "b"]


class TestMalformedProvenance:
    def test_non_json_line_raises_with_location(self, tmp_path):
        path = tmp_path / "p.jsonl"
        path.write_text('{"kind": "ok"}\nnot json at all\n')
        with pytest.raises(ValueError, match=r":2: malformed provenance line"):
            load_provenance(path)

    def test_non_object_line_raises(self, tmp_path):
        path = tmp_path / "p.jsonl"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(ValueError, match="not an object"):
            load_provenance(path)

    @pytest.mark.parametrize(
        "event", [{}, {"kind": ""}, {"kind": 7}, {"seq": 0, "job": "a"}]
    )
    def test_missing_or_bad_kind_raises(self, tmp_path, event):
        path = tmp_path / "p.jsonl"
        path.write_text(json.dumps(event) + "\n")
        with pytest.raises(ValueError, match="kind"):
            load_provenance(path)
