"""Cross-layer causal span tracing (scheduler → service → search chains).

The metrics registry (:mod:`repro.obs.metrics`) answers *how much*; this
module answers *why this job got this plan*: a lightweight span-tree tracer
that follows one scheduling decision through every layer it touches.

* A :class:`SpanContext` is the portable identity of a span —
  ``trace_id``/``span_id``/``parent_id`` — and nothing else, so it pickles
  across process boundaries.
* :meth:`Tracer.start_span` is a context manager that opens a child of the
  *implicitly current* span (a ``contextvars.ContextVar``, so propagation
  follows the call stack and survives thread hops made with
  :meth:`Tracer.activate`).
* Cross-**process** propagation is explicit: the parent ships a
  :class:`SpanContext` inside the search work units
  (:class:`~repro.core.parallel_search.ChainProblem` /
  :class:`~repro.core.parallel_search.ChainState`), workers record finished
  :class:`SpanRecord` entries locally and return them with their results,
  and the parent folds them back in with :meth:`Tracer.extend`.  Span
  timestamps use the shared wall clock (``time.time()``), so records from
  different processes land on one consistent timeline.
* :meth:`Tracer.record_chrome` merges the span tree into a
  :class:`~repro.sim.trace.TraceRecorder` as Chrome-trace async events
  (``ph: "b"``/``"e"``) plus flow arrows (``ph: "s"``/``"f"``) from each
  parent to each child — Perfetto then draws the
  scheduler-decision → service-request → per-chain-search causality inside
  the same trace file as the virtual-time cluster timeline.

``REPRO_TRACING=off`` (default on, mirroring ``REPRO_METRICS``) makes
:meth:`start_span` return a shared no-op span whose context is ``None`` —
instrumented hot paths cost one attribute check and nothing is recorded.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional

__all__ = [
    "tracing_enabled",
    "SpanContext",
    "SpanRecord",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "current_span",
]

_OFF_VALUES = {"off", "0", "false", "no", "disabled"}


def tracing_enabled() -> bool:
    """Whether span recording is live (``REPRO_TRACING`` knob).

    Any of ``off``/``0``/``false``/``no``/``disabled`` (case-insensitive)
    disables tracing; everything else — including unset — enables it.
    """
    return os.environ.get("REPRO_TRACING", "on").strip().lower() not in _OFF_VALUES


@dataclass(frozen=True)
class SpanContext:
    """Portable identity of one span (picklable, immutable).

    ``trace_id`` groups every span of one causal tree; ``span_id`` is unique
    per span (process-qualified, so ids minted in worker processes never
    collide with the parent's); ``parent_id`` is ``None`` for roots.
    """

    trace_id: str
    span_id: str
    parent_id: Optional[str] = None

    def child(self) -> "SpanContext":
        """Mint a fresh child context of this span."""
        return SpanContext(
            trace_id=self.trace_id, span_id=_new_id(), parent_id=self.span_id
        )


@dataclass
class SpanRecord:
    """One finished span (picklable — workers ship these back).

    Timestamps are ``time.time()`` seconds: the one clock that is consistent
    across the processes of one machine, which is what lets worker-side
    chain spans merge onto the parent's timeline.
    """

    name: str
    category: str
    start_s: float
    end_s: float
    context: SpanContext
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return max(0.0, self.end_s - self.start_s)


_ids = itertools.count(1)


def _new_id() -> str:
    """A span/trace id unique across the processes of one run."""
    return f"{os.getpid():x}-{next(_ids):x}"


_current_span: "ContextVar[Optional[SpanContext]]" = ContextVar(
    "repro_current_span", default=None
)


def current_span() -> Optional[SpanContext]:
    """The implicitly propagated span context of the calling context."""
    return _current_span.get()


class _NullSpan:
    """Shared no-op span handle (``REPRO_TRACING=off`` / disabled tracer)."""

    __slots__ = ()
    context: Optional[SpanContext] = None

    def set(self, **_args: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()

_IMPLICIT = object()
"""Sentinel: ``start_span(parent=_IMPLICIT)`` parents under the current span."""


class _ActiveSpan:
    """A live span: context manager that records on exit.

    ``set(key=value, ...)`` attaches arguments at any point before exit
    (e.g. an outcome only known at the end of the spanned work).
    """

    __slots__ = ("_tracer", "name", "category", "context", "args", "_start_s", "_token")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        category: str,
        context: SpanContext,
        args: Optional[Mapping[str, Any]],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.category = category
        self.context = context
        self.args: Dict[str, Any] = dict(args) if args else {}
        self._start_s = 0.0
        self._token = None

    def set(self, **args: Any) -> "_ActiveSpan":
        self.args.update(args)
        return self

    def __enter__(self) -> "_ActiveSpan":
        self._start_s = time.time()
        self._token = _current_span.set(self.context)
        return self

    def __exit__(self, *_exc: object) -> bool:
        if self._token is not None:
            _current_span.reset(self._token)
            self._token = None
        self._tracer._append(
            SpanRecord(
                name=self.name,
                category=self.category,
                start_s=self._start_s,
                end_s=time.time(),
                context=self.context,
                args=self.args,
            )
        )
        return False


class Tracer:
    """Collects the span tree of a run; thread-safe.

    The default process-global tracer (:func:`get_tracer`) is what every
    instrumented layer reports into, so one scheduler run's spans — whether
    opened on the scheduler thread, a plan-service worker thread or shipped
    back from a search worker process — accumulate in a single place.
    Consumers snapshot :attr:`n_records` before a run and export the delta
    (see :meth:`record_chrome`).
    """

    def __init__(self, enabled: Optional[bool] = None) -> None:
        self.enabled = tracing_enabled() if enabled is None else bool(enabled)
        self._lock = threading.Lock()
        self._records: List[SpanRecord] = []

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def start_span(
        self,
        name: str,
        category: str = "",
        parent: Any = _IMPLICIT,
        args: Optional[Mapping[str, Any]] = None,
    ):
        """Open a span as a context manager.

        ``parent`` defaults to the implicitly current span; pass an explicit
        :class:`SpanContext` to graft the span elsewhere in the tree (e.g. a
        scheduler-side swap decision under the service-side poll that found
        the winning plan), or ``None`` to force a new root.  When tracing is
        disabled the shared no-op span (``context is None``) is returned.
        """
        if not self.enabled:
            return _NULL_SPAN
        parent_ctx = current_span() if parent is _IMPLICIT else parent
        if parent_ctx is not None:
            context = parent_ctx.child()
        else:
            context = SpanContext(trace_id=_new_id(), span_id=_new_id())
        return _ActiveSpan(self, name, category, context, args)

    @contextmanager
    def activate(self, context: Optional[SpanContext]) -> Iterator[None]:
        """Make ``context`` the implicit parent for the enclosed block.

        The cross-*thread* propagation primitive: a worker thread activates
        the context captured at submit time, then opens spans normally.
        """
        token = _current_span.set(context)
        try:
            yield
        finally:
            _current_span.reset(token)

    def _append(self, record: SpanRecord) -> None:
        with self._lock:
            self._records.append(record)

    def extend(self, records: Iterable[SpanRecord]) -> int:
        """Fold spans recorded elsewhere (worker processes) into this tracer."""
        if not self.enabled:
            return 0
        added = list(records)
        if not added:
            return 0
        with self._lock:
            self._records.extend(added)
        return len(added)

    # ------------------------------------------------------------------ #
    # Reading / export
    # ------------------------------------------------------------------ #
    @property
    def n_records(self) -> int:
        with self._lock:
            return len(self._records)

    def records(self, since: int = 0) -> List[SpanRecord]:
        """Finished spans recorded at index ``since`` or later."""
        with self._lock:
            return list(self._records[since:])

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    def record_chrome(
        self,
        recorder: Any,
        since: int = 0,
        process: str = "planning",
        epoch_s: Optional[float] = None,
    ) -> int:
        """Merge the span tree into a Chrome-trace recorder; returns #spans.

        Spans become async events (``ph: "b"``/``"e"``) on a ``process``
        whose threads are the span categories, rebased so the earliest span
        starts at zero (or at ``epoch_s`` wall-clock seconds).  Every
        parent→child edge within the exported set additionally gets a flow
        arrow (``ph: "s"`` at the parent's begin → ``ph: "f"`` at the
        child's begin), which Perfetto renders as the causal arrows between
        tracks.  ``recorder`` is a :class:`~repro.sim.trace.TraceRecorder`
        (duck-typed — this module never imports the simulator).
        """
        records = self.records(since)
        if not records:
            return 0
        epoch = min(r.start_s for r in records) if epoch_s is None else epoch_s
        by_id = {r.context.span_id: r for r in records}
        for record in records:
            thread = record.category or "spans"
            args = dict(record.args)
            args["trace_id"] = record.context.trace_id
            args["span_id"] = record.context.span_id
            if record.context.parent_id is not None:
                args["parent_id"] = record.context.parent_id
            recorder.add_async_span(
                process,
                thread,
                record.name,
                record.start_s - epoch,
                record.end_s - epoch,
                id=record.context.span_id,
                category=record.category or "span",
                args=args,
            )
        for record in records:
            parent_id = record.context.parent_id
            parent = by_id.get(parent_id) if parent_id is not None else None
            if parent is None:
                continue
            recorder.add_flow(
                process,
                parent.category or "spans",
                parent.start_s - epoch,
                process,
                record.category or "spans",
                record.start_s - epoch,
                id=record.context.span_id,
                name="causal",
            )
        return len(records)


_TRACER = Tracer()
_tracer_lock = threading.Lock()


def get_tracer() -> Tracer:
    """The process-global tracer every instrumented layer reports into."""
    return _TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the global tracer (tests, isolated runs); returns the old one."""
    global _TRACER
    with _tracer_lock:
        previous, _TRACER = _TRACER, tracer
    return previous
