"""Explain a run from its artifacts: ``python -m repro.obs.report <run dir>``.

A traced scheduler run leaves a family of sibling files behind —
``TRACE_*.json`` (the merged Chrome trace), ``METRICS_*.json`` (the registry
snapshot) and ``PROVENANCE_*.jsonl`` (the decision ledger).  This module
digests them into one human-readable report per run:

* the per-job **timeline narrative** (arrivals, placements, swaps,
  displacements, completions — the cluster-process instant events);
* the **top-k slowest spans** across both the virtual-time cluster timeline
  (``ph: "X"``) and the causal planning spans (``ph: "b"``/``"e"`` pairs);
* the **swap ledger**: every hot-swap evaluation, accept or reject, with
  the full margin arithmetic it was decided on;
* the **plan lineage table**: how each job's plan came to be — cold search,
  warm-started-from-*X*, exact cache hit or dedup join.

Malformed provenance (a non-JSON line, a non-object, an event without its
``kind``) fails the run with a nonzero exit — this is the contract CI holds
``PROVENANCE_*`` artifacts to.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .provenance import load_provenance

__all__ = ["discover_runs", "render_run", "render_report", "main"]

_US_PER_S = 1e6


# ---------------------------------------------------------------------- #
# Artifact discovery
# ---------------------------------------------------------------------- #
def discover_runs(run_dir: Path) -> List[Dict[str, Optional[Path]]]:
    """Group one directory's artifacts into runs.

    A run is anchored by its ``TRACE_<stem>.json`` and picks up the sibling
    ``METRICS_TRACE_<stem>.json`` / ``PROVENANCE_TRACE_<stem>.jsonl`` written
    next to it; provenance or metrics files without a matching trace become
    trace-less runs so nothing in the directory goes unvalidated.
    """
    runs: "Dict[str, Dict[str, Optional[Path]]]" = {}

    def _run(stem: str) -> Dict[str, Optional[Path]]:
        return runs.setdefault(
            stem, {"stem": stem, "trace": None, "metrics": None, "provenance": None}
        )

    for trace in sorted(run_dir.glob("TRACE_*.json")):
        if trace.name.startswith("METRICS_") or trace.name.startswith("PROVENANCE_"):
            continue
        _run(trace.stem)["trace"] = trace
    for metrics in sorted(run_dir.glob("METRICS_*.json")):
        _run(metrics.stem[len("METRICS_"):])["metrics"] = metrics
    for provenance in sorted(run_dir.glob("PROVENANCE_*.jsonl")):
        _run(provenance.stem[len("PROVENANCE_"):])["provenance"] = provenance
    return [runs[stem] for stem in sorted(runs)]


# ---------------------------------------------------------------------- #
# Trace digestion
# ---------------------------------------------------------------------- #
def _load_events(trace: Path) -> List[Dict[str, Any]]:
    data = json.loads(trace.read_text())
    events = data.get("traceEvents", data) if isinstance(data, dict) else data
    if not isinstance(events, list):
        raise ValueError(f"{trace}: not a Chrome trace (no traceEvents list)")
    return events


def _process_names(events: Sequence[Dict[str, Any]]) -> Dict[Any, str]:
    names: Dict[Any, str] = {}
    for event in events:
        if event.get("ph") == "M" and event.get("name") == "process_name":
            names[event.get("pid")] = str(event.get("args", {}).get("name", ""))
    return names


def _timeline_lines(events: Sequence[Dict[str, Any]], names: Dict[Any, str]) -> List[str]:
    """The cluster-process instant events as a chronological narrative."""
    entries: List[Tuple[float, str]] = []
    for event in events:
        if event.get("ph") != "i":
            continue
        if names.get(event.get("pid")) != "cluster":
            continue
        time_s = float(event.get("ts", 0.0)) / _US_PER_S
        detail = event.get("args", {}).get("detail", "")
        entry = f"  t={time_s:10.2f}s  {event.get('name', '?')}"
        if detail:
            entry += f" — {detail}"
        entries.append((time_s, entry))
    entries.sort(key=lambda pair: pair[0])
    return [entry for _, entry in entries]


def _slowest_spans(
    events: Sequence[Dict[str, Any]], names: Dict[Any, str], top_k: int
) -> List[str]:
    """Top-k durations over complete (``X``) and async (``b``/``e``) spans."""
    spans: List[Tuple[float, str, str]] = []
    open_async: Dict[Tuple[Any, Any], Dict[str, Any]] = {}
    for event in events:
        ph = event.get("ph")
        if ph == "X":
            duration_s = float(event.get("dur", 0.0)) / _US_PER_S
            spans.append(
                (duration_s, str(event.get("name", "?")), names.get(event.get("pid"), "?"))
            )
        elif ph == "b":
            open_async[(event.get("cat"), event.get("id"))] = event
        elif ph == "e":
            begin = open_async.pop((event.get("cat"), event.get("id")), None)
            if begin is None:
                continue
            duration_s = (float(event.get("ts", 0.0)) - float(begin.get("ts", 0.0))) / _US_PER_S
            spans.append(
                (duration_s, str(begin.get("name", "?")), names.get(begin.get("pid"), "?"))
            )
    spans.sort(key=lambda item: item[0], reverse=True)
    return [
        f"  {duration_s:10.3f}s  {name}  [{process}]"
        for duration_s, name, process in spans[:top_k]
    ]


# ---------------------------------------------------------------------- #
# Provenance digestion
# ---------------------------------------------------------------------- #
def _lineage_label(event: Dict[str, Any]) -> str:
    lineage = event.get("lineage", "unknown")
    if lineage == "hit":
        return "exact hit"
    if lineage == "dedup":
        return "dedup join"
    if lineage == "warm":
        return f"warm-started-from-{event.get('seeded_from')}"
    return str(lineage)


def _swap_lines(events: Sequence[Dict[str, Any]]) -> List[str]:
    lines: List[str] = []
    for event in events:
        if event.get("kind") != "swap":
            continue
        taken = event.get("outcome") == "taken"
        verdict = "ACCEPTED" if taken else "rejected"
        comparator = ">=" if taken else "<"
        line = (
            f"  t={float(event.get('time', 0.0)):10.2f}s  {event.get('job', '?')}: "
            f"{verdict} — planned {float(event.get('planned', 0.0)):.3f} s/iter vs "
            f"candidate {float(event.get('cost', 0.0)):.3f} + "
            f"switch {float(event.get('switch', 0.0)):.2f}s / "
            f"{float(event.get('remaining', 0.0)):.0f} iters left = "
            f"effective {float(event.get('effective', 0.0)):.3f}; "
            f"ratio {float(event.get('ratio', 0.0)):.3f} {comparator} "
            f"margin {float(event.get('threshold', 0.0)):.3f}"
        )
        if taken:
            line += f" (~{float(event.get('saved', 0.0)):.1f}s saved)"
        lines.append(line)
    return lines


def _lineage_lines(events: Sequence[Dict[str, Any]]) -> List[str]:
    lines: List[str] = []
    for event in events:
        if event.get("kind") != "placement":
            continue
        fingerprint = event.get("fingerprint") or "?"
        lines.append(
            f"  t={float(event.get('time', 0.0)):10.2f}s  {event.get('job', '?')}: "
            f"{event.get('decision', 'placement')} on {event.get('partition', '?')} "
            f"→ {_lineage_label(event)} "
            f"({float(event.get('cost', 0.0)):.3f} s/iter, "
            f"fingerprint {str(fingerprint)[:16]})"
        )
    return lines


def _request_summary(events: Sequence[Dict[str, Any]]) -> List[str]:
    counts: Dict[str, int] = {}
    for event in events:
        if event.get("kind") != "plan_request":
            continue
        outcome = str(event.get("outcome", "?"))
        counts[outcome] = counts.get(outcome, 0) + 1
    if not counts:
        return []
    summary = ", ".join(f"{outcome}: {count}" for outcome, count in sorted(counts.items()))
    return [f"  plan requests — {summary}"]


# ---------------------------------------------------------------------- #
# Metrics digestion
# ---------------------------------------------------------------------- #
def _metrics_lines(metrics_path: Path) -> List[str]:
    data = json.loads(metrics_path.read_text())
    lines = [f"  schema version {data.get('schema_version', 1)}"]
    meta = data.get("meta", {})
    for key in sorted(meta):
        lines.append(f"  {key}: {meta[key]}")
    metrics = data.get("metrics", {})
    lines.append(f"  {len(metrics)} instruments recorded")
    return lines


# ---------------------------------------------------------------------- #
# Rendering
# ---------------------------------------------------------------------- #
def render_run(run: Dict[str, Optional[Path]], top_k: int = 10) -> str:
    """Render one run's artifacts as a plain-text report section."""
    sections: List[str] = [f"== run {run['stem']} =="]
    provenance_events: List[Dict[str, Any]] = []
    if run["provenance"] is not None:
        provenance_events = load_provenance(run["provenance"])
    if run["trace"] is not None:
        events = _load_events(run["trace"])
        names = _process_names(events)
        timeline = _timeline_lines(events, names)
        if timeline:
            sections.append("-- timeline --")
            sections.extend(timeline)
        slowest = _slowest_spans(events, names, top_k)
        if slowest:
            sections.append(f"-- slowest spans (top {min(top_k, len(slowest))}) --")
            sections.extend(slowest)
    if provenance_events:
        swap_lines = _swap_lines(provenance_events)
        sections.append("-- swap ledger --")
        sections.extend(swap_lines if swap_lines else ["  (no swap decisions)"])
        lineage = _lineage_lines(provenance_events)
        sections.append("-- plan lineage --")
        sections.extend(lineage if lineage else ["  (no placements recorded)"])
        sections.extend(_request_summary(provenance_events))
    if run["metrics"] is not None:
        sections.append("-- metrics snapshot --")
        sections.extend(_metrics_lines(run["metrics"]))
    return "\n".join(sections)


def render_report(run_dir: Path, top_k: int = 10) -> str:
    """Render every run found in ``run_dir``; raises when there is none."""
    runs = discover_runs(run_dir)
    if not runs:
        raise FileNotFoundError(
            f"{run_dir}: no TRACE_*/METRICS_*/PROVENANCE_* artifacts found"
        )
    return "\n\n".join(render_run(run, top_k=top_k) for run in runs)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Digest a run directory's TRACE/METRICS/PROVENANCE artifacts "
        "into a human-readable report.",
    )
    parser.add_argument("run_dir", type=Path, help="directory holding the artifacts")
    parser.add_argument(
        "--top-k", type=int, default=10, help="slowest spans to list per run"
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="write the report here instead of stdout"
    )
    args = parser.parse_args(argv)
    if not args.run_dir.is_dir():
        print(f"error: {args.run_dir} is not a directory", file=sys.stderr)
        return 2
    try:
        report = render_report(args.run_dir, top_k=args.top_k)
    except (ValueError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(report + "\n")
        print(f"wrote {args.out}")
    else:
        print(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
