"""Unified telemetry: metrics registry, structured logging, exporters.

The observability layer every subsystem reports through:

* :mod:`repro.obs.metrics` — the process-wide :class:`MetricsRegistry` with
  :class:`Counter`/:class:`Gauge`/:class:`Histogram` instruments (labeled
  series, streaming p50/p90/p99, ``REPRO_METRICS=off`` no-op mode) and the
  :func:`timed`/:func:`span` timing helpers;
* :mod:`repro.obs.log` — the ``repro.*`` structured logger hierarchy
  (``REPRO_LOG_LEVEL``, ``REPRO_LOG_FORMAT=text|json``);
* :mod:`repro.obs.export` — JSON snapshots (``METRICS_*.json``), Prometheus
  text exposition and Chrome-trace counter tracks;
* :mod:`repro.obs.tracing` — the causal span tracer (``SpanContext``
  propagation across threads and processes, ``REPRO_TRACING=off`` no-op
  mode, Chrome-trace async-event/flow-arrow export);
* :mod:`repro.obs.provenance` — the decision-provenance ledger
  (``PROVENANCE_*.jsonl``: costing waves, placements, swap arithmetic,
  plan-request lineage);
* :mod:`repro.obs.report` — the ``python -m repro.obs.report <run dir>``
  CLI digesting one run's TRACE/METRICS/PROVENANCE files;
* :mod:`repro.obs.artifacts` — the ``REPRO_ARTIFACT_DIR`` knob all
  artifact writers resolve their output paths through.
"""

from .artifacts import artifact_dir, artifact_path, machine_fingerprint
from .export import (
    SNAPSHOT_SCHEMA_VERSION,
    record_counter_tracks,
    snapshot,
    to_prometheus,
    write_metrics_snapshot,
)
from .log import JsonFormatter, configure_logging, get_logger
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    P2Quantile,
    get_registry,
    metrics_enabled,
    set_registry,
    span,
    timed,
)
from .provenance import (
    ProvenanceLedger,
    get_ledger,
    load_provenance,
    set_ledger,
    write_provenance,
)
from .tracing import (
    SpanContext,
    SpanRecord,
    Tracer,
    current_span,
    get_tracer,
    set_tracer,
    tracing_enabled,
)

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "P2Quantile",
    "DEFAULT_BUCKETS",
    "get_registry",
    "set_registry",
    "metrics_enabled",
    "timed",
    "span",
    "get_logger",
    "configure_logging",
    "JsonFormatter",
    "to_prometheus",
    "snapshot",
    "write_metrics_snapshot",
    "SNAPSHOT_SCHEMA_VERSION",
    "record_counter_tracks",
    "artifact_dir",
    "artifact_path",
    "machine_fingerprint",
    "tracing_enabled",
    "SpanContext",
    "SpanRecord",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "current_span",
    "ProvenanceLedger",
    "get_ledger",
    "set_ledger",
    "write_provenance",
    "load_provenance",
]
