"""Unified telemetry: metrics registry, structured logging, exporters.

The observability layer every subsystem reports through:

* :mod:`repro.obs.metrics` — the process-wide :class:`MetricsRegistry` with
  :class:`Counter`/:class:`Gauge`/:class:`Histogram` instruments (labeled
  series, streaming p50/p90/p99, ``REPRO_METRICS=off`` no-op mode) and the
  :func:`timed`/:func:`span` timing helpers;
* :mod:`repro.obs.log` — the ``repro.*`` structured logger hierarchy
  (``REPRO_LOG_LEVEL``, ``REPRO_LOG_FORMAT=text|json``);
* :mod:`repro.obs.export` — JSON snapshots (``METRICS_*.json``), Prometheus
  text exposition and Chrome-trace counter tracks.
"""

from .export import (
    record_counter_tracks,
    snapshot,
    to_prometheus,
    write_metrics_snapshot,
)
from .log import JsonFormatter, configure_logging, get_logger
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    P2Quantile,
    get_registry,
    metrics_enabled,
    set_registry,
    span,
    timed,
)

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "P2Quantile",
    "DEFAULT_BUCKETS",
    "get_registry",
    "set_registry",
    "metrics_enabled",
    "timed",
    "span",
    "get_logger",
    "configure_logging",
    "JsonFormatter",
    "to_prometheus",
    "snapshot",
    "write_metrics_snapshot",
    "record_counter_tracks",
]
