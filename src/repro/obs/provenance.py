"""Decision-provenance ledger: *why* each scheduling decision went that way.

Where :mod:`repro.obs.tracing` records *when* the layers of one decision
ran, the provenance ledger records the arithmetic behind the decisions
themselves, as structured events:

* ``decision_wave`` — one :meth:`~repro.sched.costing.PlanCosting.score`
  call: every candidate ``(job, partition)`` with its scored cost,
  feasibility and how the service answered it;
* ``placement`` — the candidate the policy actually picked, with the reason
  and the plan's cache lineage (cold / warm-started-from-*X* / exact hit /
  dedup join);
* ``swap`` — one hot-swap evaluation at an iteration boundary, **accept or
  reject**, with the full margin arithmetic (planned vs. candidate cost,
  switch charge, amortization over remaining iterations, the ratio and the
  threshold it was held against);
* ``plan_request`` — one :meth:`~repro.service.server.PlanService` answer:
  hit/cold/warm/dedup plus which cached entry seeded a warm-started search.

Events append to the process-global :class:`ProvenanceLedger`
(:func:`get_ledger`), mirroring the metrics registry and tracer; a
scheduler run snapshots :attr:`ProvenanceLedger.n_events` before starting
and serializes its delta as a ``PROVENANCE_*.jsonl`` file next to the
Chrome trace (one JSON object per line, ``kind`` + ``seq`` always present).
Recording is gated by the same ``REPRO_TRACING`` knob as span tracing —
provenance and spans are two views of one causal layer.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

from .tracing import tracing_enabled

__all__ = [
    "ProvenanceLedger",
    "get_ledger",
    "set_ledger",
    "write_provenance",
    "load_provenance",
]


class ProvenanceLedger:
    """Append-only list of decision events; thread-safe.

    Events are plain dicts (JSON-serializable by construction of the
    callers); the ledger stamps each with a monotonically increasing
    ``seq`` so files stay ordered even when several threads record.
    """

    def __init__(self, enabled: Optional[bool] = None) -> None:
        self.enabled = tracing_enabled() if enabled is None else bool(enabled)
        self._lock = threading.Lock()
        self._events: List[Dict[str, Any]] = []

    def record(self, kind: str, **fields: Any) -> None:
        """Append one event (no-op when disabled)."""
        if not self.enabled:
            return
        with self._lock:
            event = {"kind": kind, "seq": len(self._events)}
            event.update(fields)
            self._events.append(event)

    @property
    def n_events(self) -> int:
        with self._lock:
            return len(self._events)

    def events(self, since: int = 0, kind: Optional[str] = None) -> List[Dict[str, Any]]:
        """Events recorded at index ``since`` or later (optionally by kind)."""
        with self._lock:
            selected = list(self._events[since:])
        if kind is not None:
            selected = [event for event in selected if event.get("kind") == kind]
        return selected

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    def write_jsonl(self, path: Union[str, Path], since: int = 0) -> Path:
        """Serialize events (from ``since``) as one JSON object per line."""
        return write_provenance(self.events(since), path)


def write_provenance(events: Iterable[Dict[str, Any]], path: Union[str, Path]) -> Path:
    """Write provenance events to ``path`` (``PROVENANCE_*.jsonl``)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        for event in events:
            handle.write(json.dumps(event, sort_keys=True, default=str))
            handle.write("\n")
    return path


def load_provenance(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Load and validate a ``PROVENANCE_*.jsonl`` file.

    Raises ``ValueError`` on malformed content: a line that is not a JSON
    object, or an object without its ``kind`` — the contract the report CLI
    (and CI) hold provenance files to.
    """
    events: List[Dict[str, Any]] = []
    with Path(path).open() as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: malformed provenance line: {exc}"
                ) from exc
            if not isinstance(event, dict):
                raise ValueError(
                    f"{path}:{lineno}: provenance line is not an object: {event!r}"
                )
            if not isinstance(event.get("kind"), str) or not event["kind"]:
                raise ValueError(
                    f"{path}:{lineno}: provenance event misses its 'kind': {event!r}"
                )
            events.append(event)
    return events


_LEDGER = ProvenanceLedger()
_ledger_lock = threading.Lock()


def get_ledger() -> ProvenanceLedger:
    """The process-global ledger every decision layer records into."""
    return _LEDGER


def set_ledger(ledger: ProvenanceLedger) -> ProvenanceLedger:
    """Swap the global ledger (tests, isolated runs); returns the old one."""
    global _LEDGER
    with _ledger_lock:
        previous, _LEDGER = _LEDGER, ledger
    return previous
