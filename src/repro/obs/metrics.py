"""Process-wide metrics registry: counters, gauges and histograms.

Every subsystem used to carry its own ad-hoc dataclass counters
(``ServiceStats``, ``ScheduleReport``, ``EvalCacheStats``, ``wave_stats``)
with no histograms, no percentiles and no common export path.  This module
is the shared instrumentation substrate they now report through:

* a :class:`MetricsRegistry` hands out named :class:`Counter`,
  :class:`Gauge` and :class:`Histogram` instruments.  Instruments may
  declare label names; ``instrument.labels(**values)`` returns (and interns)
  the per-label-tuple series, so hot paths resolve a series once and update
  it with a single method call;
* :class:`Histogram` combines fixed cumulative buckets (for Prometheus
  exposition) with streaming P² quantile estimation for p50/p90/p99 — no
  sample retention, O(1) memory per series;
* everything is thread-safe (one lock per instrument family; the registry
  lock only guards registration);
* the whole layer is near-zero-cost when disabled: with ``REPRO_METRICS=off``
  the registry hands out shared no-op null instruments, so an instrumented
  code path costs one no-op method call.

Exporters (JSON snapshot, Prometheus text exposition, Chrome-trace counter
events) live in :mod:`repro.obs.export`; the structured logging setup in
:mod:`repro.obs.log`.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "metrics_enabled",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "get_registry",
    "set_registry",
    "timed",
    "span",
    "DEFAULT_BUCKETS",
]

_OFF_VALUES = {"off", "0", "false", "no", "disabled"}

DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)
"""Default latency buckets (seconds), Prometheus-style."""

_DEFAULT_QUANTILES: Tuple[float, ...] = (0.5, 0.9, 0.99)


def metrics_enabled() -> bool:
    """Whether instrument updates are live (``REPRO_METRICS`` knob).

    Any of ``off``/``0``/``false``/``no``/``disabled`` (case-insensitive)
    disables metrics; everything else — including unset — enables them.
    """
    return os.environ.get("REPRO_METRICS", "on").strip().lower() not in _OFF_VALUES


# ---------------------------------------------------------------------- #
# Streaming quantiles (P² algorithm)
# ---------------------------------------------------------------------- #
class P2Quantile:
    """Jain & Chlamtac's P² streaming quantile estimator.

    Tracks one quantile ``q`` with five markers in O(1) memory and O(1)
    update time — no sample retention.  Below five observations the estimate
    is the exact interpolated quantile of the observed values.
    """

    __slots__ = ("q", "_initial", "_heights", "_positions", "_desired", "_dn")

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        self.q = q
        self._initial: List[float] = []
        self._heights: Optional[List[float]] = None
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
        self._dn = (0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0)

    def observe(self, x: float) -> None:
        if self._heights is None:
            self._initial.append(x)
            if len(self._initial) == 5:
                self._initial.sort()
                self._heights = list(self._initial)
            return
        h, pos = self._heights, self._positions
        if x < h[0]:
            h[0] = x
            k = 0
        elif x >= h[4]:
            h[4] = x
            k = 3
        else:
            k = 3
            for i in range(1, 5):
                if x < h[i]:
                    k = i - 1
                    break
        for i in range(k + 1, 5):
            pos[i] += 1.0
        for i in range(5):
            self._desired[i] += self._dn[i]
        for i in range(1, 4):
            d = self._desired[i] - pos[i]
            if (d >= 1.0 and pos[i + 1] - pos[i] > 1.0) or (
                d <= -1.0 and pos[i - 1] - pos[i] < -1.0
            ):
                step = 1.0 if d >= 0 else -1.0
                candidate = self._parabolic(i, step)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    h[i] = self._linear(i, step)
                pos[i] += step

    def _parabolic(self, i: int, d: float) -> float:
        h, pos = self._heights, self._positions
        return h[i] + d / (pos[i + 1] - pos[i - 1]) * (
            (pos[i] - pos[i - 1] + d) * (h[i + 1] - h[i]) / (pos[i + 1] - pos[i])
            + (pos[i + 1] - pos[i] - d) * (h[i] - h[i - 1]) / (pos[i] - pos[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        h, pos = self._heights, self._positions
        j = i + int(d)
        return h[i] + d * (h[j] - h[i]) / (pos[j] - pos[i])

    def value(self) -> float:
        """The current quantile estimate (0.0 before any observation)."""
        if self._heights is not None:
            return self._heights[2]
        if not self._initial:
            return 0.0
        ordered = sorted(self._initial)
        rank = self.q * (len(ordered) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(ordered) - 1)
        return ordered[lo] + (rank - lo) * (ordered[hi] - ordered[lo])


# ---------------------------------------------------------------------- #
# Instruments
# ---------------------------------------------------------------------- #
class _Instrument:
    """Common machinery: named series keyed by interned label tuples."""

    kind = "untyped"

    def __init__(self, name: str, help: str, label_names: Sequence[str]) -> None:
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self._lock = threading.Lock()
        self._series: Dict[Tuple[str, ...], Any] = {}
        if not self.label_names:
            self._series[()] = self._new_series()

    def _new_series(self) -> Any:
        raise NotImplementedError

    def _label_key(self, labels: Mapping[str, object]) -> Tuple[str, ...]:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name} expects labels {self.label_names}, got {sorted(labels)}"
            )
        return tuple(str(labels[name]) for name in self.label_names)

    def labels(self, **labels: object) -> "_Instrument":
        """The child series for one label-value combination (interned)."""
        key = self._label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._new_series()
                self._series[key] = series
        return _Child(self, key, series)

    def _default_series(self) -> Any:
        if self.label_names:
            raise ValueError(
                f"{self.name} is labeled by {self.label_names}; use .labels(...)"
            )
        return self._series[()]

    def series_items(self) -> List[Tuple[Tuple[str, ...], Any]]:
        with self._lock:
            return sorted(self._series.items())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": self.kind,
            "help": self.help,
            "label_names": list(self.label_names),
            "series": [
                {
                    "labels": dict(zip(self.label_names, key)),
                    **self._series_dict(series),
                }
                for key, series in self.series_items()
            ],
        }

    def _series_dict(self, series: Any) -> Dict[str, Any]:
        raise NotImplementedError


class _Child:
    """A bound (instrument, label-tuple) pair — what hot paths hold on to."""

    __slots__ = ("_parent", "_key", "_series")

    def __init__(self, parent: _Instrument, key: Tuple[str, ...], series: Any) -> None:
        self._parent = parent
        self._key = key
        self._series = series

    def __getattr__(self, attr: str) -> Any:
        method = getattr(type(self._parent), f"_series_{attr}", None)
        if method is None:
            raise AttributeError(attr)
        parent, series = self._parent, self._series

        def bound(*args: object, **kwargs: object) -> Any:
            with parent._lock:
                return method(parent, series, *args, **kwargs)

        return bound

    @property
    def value(self) -> float:
        return self._parent._series_dict(self._series).get("value", 0.0)


class Counter(_Instrument):
    """A monotonically increasing count (events, requests, iterations)."""

    kind = "counter"

    def _new_series(self) -> List[float]:
        return [0.0]

    def _series_inc(self, series: List[float], amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        series[0] += amount

    def inc(self, amount: float = 1.0) -> None:
        series = self._default_series()
        with self._lock:
            self._series_inc(series, amount)

    @property
    def value(self) -> float:
        return self._default_series()[0]

    def _series_dict(self, series: List[float]) -> Dict[str, Any]:
        return {"value": series[0]}


class Gauge(_Instrument):
    """A value that goes up and down (in-flight requests, free GPUs)."""

    kind = "gauge"

    def _new_series(self) -> List[float]:
        return [0.0]

    def _series_set(self, series: List[float], value: float) -> None:
        series[0] = float(value)

    def _series_inc(self, series: List[float], amount: float = 1.0) -> None:
        series[0] += amount

    def _series_dec(self, series: List[float], amount: float = 1.0) -> None:
        series[0] -= amount

    def set(self, value: float) -> None:
        series = self._default_series()
        with self._lock:
            self._series_set(series, value)

    def inc(self, amount: float = 1.0) -> None:
        series = self._default_series()
        with self._lock:
            self._series_inc(series, amount)

    def dec(self, amount: float = 1.0) -> None:
        series = self._default_series()
        with self._lock:
            self._series_dec(series, amount)

    @property
    def value(self) -> float:
        return self._default_series()[0]

    def _series_dict(self, series: List[float]) -> Dict[str, Any]:
        return {"value": series[0]}


class _HistogramSeries:
    """State of one histogram series: buckets + moments + P² quantiles."""

    __slots__ = ("count", "sum", "min", "max", "bucket_counts", "quantiles")

    def __init__(self, bounds: Tuple[float, ...], quantiles: Tuple[float, ...]) -> None:
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.bucket_counts = [0] * (len(bounds) + 1)  # last = +Inf
        self.quantiles = tuple(P2Quantile(q) for q in quantiles)


class Histogram(_Instrument):
    """A distribution: fixed cumulative buckets plus streaming percentiles.

    ``observe(v)`` updates count/sum/min/max, the fixed bucket counts and
    one P² estimator per tracked quantile (p50/p90/p99 by default), so a
    snapshot can report percentiles without retaining samples.  ``time()``
    returns a context manager *and* decorator observing wall-clock seconds.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        label_names: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        quantiles: Sequence[float] = _DEFAULT_QUANTILES,
    ) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if len(set(bounds)) != len(bounds):
            raise ValueError(f"duplicate bucket bounds: {bounds}")
        self.bucket_bounds = bounds
        self.quantile_points = tuple(quantiles)
        super().__init__(name, help, label_names)

    def _new_series(self) -> _HistogramSeries:
        return _HistogramSeries(self.bucket_bounds, self.quantile_points)

    def _series_observe(self, series: _HistogramSeries, value: float) -> None:
        value = float(value)
        series.count += 1
        series.sum += value
        if value < series.min:
            series.min = value
        if value > series.max:
            series.max = value
        placed = False
        for index, bound in enumerate(self.bucket_bounds):
            if value <= bound:
                series.bucket_counts[index] += 1
                placed = True
                break
        if not placed:
            series.bucket_counts[-1] += 1
        for quantile in series.quantiles:
            quantile.observe(value)

    def observe(self, value: float) -> None:
        series = self._default_series()
        with self._lock:
            self._series_observe(series, value)

    def time(self) -> "timed":
        """Context manager / decorator observing elapsed wall-clock seconds."""
        return timed(self)

    def percentile(self, q: float) -> float:
        """Streaming estimate of quantile ``q`` on the unlabeled series."""
        series = self._default_series()
        with self._lock:
            for estimator in series.quantiles:
                if estimator.q == q:
                    return estimator.value()
        raise ValueError(f"{self.name} does not track quantile {q}")

    @property
    def count(self) -> int:
        return self._default_series().count

    @property
    def sum(self) -> float:
        return self._default_series().sum

    def _series_dict(self, series: _HistogramSeries) -> Dict[str, Any]:
        cumulative: Dict[str, int] = {}
        running = 0
        for bound, count in zip(self.bucket_bounds, series.bucket_counts):
            running += count
            cumulative[repr(bound)] = running
        cumulative["+Inf"] = series.count
        data: Dict[str, Any] = {
            "count": series.count,
            "sum": series.sum,
            "min": series.min if series.count else 0.0,
            "max": series.max if series.count else 0.0,
            "mean": series.sum / series.count if series.count else 0.0,
            "buckets": cumulative,
        }
        for estimator in series.quantiles:
            data[f"p{round(estimator.q * 100):d}"] = estimator.value()
        return data


# ---------------------------------------------------------------------- #
# Null instruments (disabled registries)
# ---------------------------------------------------------------------- #
class _NullInstrument:
    """Shared no-op stand-in handed out by disabled registries.

    Every update is a single no-op method call, so instrumented code paths
    cost effectively nothing under ``REPRO_METRICS=off``.
    """

    kind = "null"
    name = "null"
    value = 0.0
    count = 0
    sum = 0.0

    def labels(self, **labels: object) -> "_NullInstrument":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def time(self) -> "timed":
        return timed(self)

    def percentile(self, q: float) -> float:
        return 0.0


_NULL = _NullInstrument()


# ---------------------------------------------------------------------- #
# Registry
# ---------------------------------------------------------------------- #
class MetricsRegistry:
    """Named instruments plus collector callbacks, with one export surface.

    Re-requesting an existing name returns the same instrument (families are
    process-wide singletons per registry), so independently constructed
    components share series.  ``enabled`` defaults to the ``REPRO_METRICS``
    environment knob; a disabled registry hands out no-op instruments and
    snapshots empty.
    """

    def __init__(self, enabled: Optional[bool] = None) -> None:
        self.enabled = metrics_enabled() if enabled is None else bool(enabled)
        self._metrics: Dict[str, _Instrument] = {}
        self._collectors: List[Callable[[], None]] = []
        self._lock = threading.Lock()

    # -- instrument factories ------------------------------------------- #
    def _get_or_create(
        self, cls: type, name: str, help: str, label_names: Sequence[str], **kwargs: Any
    ) -> Any:
        if not self.enabled:
            return _NULL
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls:
                    raise ValueError(
                        f"{name} already registered as {existing.kind}, "
                        f"requested {cls.kind}"
                    )
                return existing
            instrument = cls(name, help, label_names, **kwargs)
            self._metrics[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        quantiles: Sequence[float] = _DEFAULT_QUANTILES,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labels, buckets=buckets, quantiles=quantiles
        )

    # -- collectors ----------------------------------------------------- #
    def register_collector(self, fn: Callable[[], None]) -> Callable[[], None]:
        """Register a callback run just before every snapshot/export.

        Collectors let components with cheap internal counters (e.g. the
        estimator's eval cache) publish gauges lazily instead of updating
        the registry on their hot paths.  Returns ``fn`` for symmetry with
        :meth:`unregister_collector`.
        """
        if self.enabled:
            with self._lock:
                self._collectors.append(fn)
        return fn

    def unregister_collector(self, fn: Callable[[], None]) -> None:
        with self._lock:
            try:
                self._collectors.remove(fn)
            except ValueError:
                pass

    def collect(self) -> None:
        """Run the registered collectors (snapshot/export call this)."""
        with self._lock:
            collectors = list(self._collectors)
        for fn in collectors:
            fn()

    # -- export surface ------------------------------------------------- #
    def instruments(self) -> List[_Instrument]:
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    def get(self, name: str) -> Optional[_Instrument]:
        with self._lock:
            return self._metrics.get(name)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable snapshot of every instrument's series."""
        self.collect()
        return {
            "enabled": self.enabled,
            "metrics": {
                instrument.name: instrument.to_dict()
                for instrument in self.instruments()
            },
        }


_GLOBAL_REGISTRY = MetricsRegistry()
_GLOBAL_LOCK = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry (instrumented modules use this)."""
    return _GLOBAL_REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry (tests); returns the previous one."""
    global _GLOBAL_REGISTRY
    with _GLOBAL_LOCK:
        previous = _GLOBAL_REGISTRY
        _GLOBAL_REGISTRY = registry
    return previous


# ---------------------------------------------------------------------- #
# timed() / span()
# ---------------------------------------------------------------------- #
class timed:
    """Observe wall-clock seconds into a histogram (or gauge).

    Usable both as a context manager and as a decorator::

        with timed(histogram):
            handle_request()

        @timed(histogram)
        def handle_request(): ...

    The elapsed seconds of the block are available as ``.elapsed`` after
    exit.  Works transparently with null instruments.
    """

    def __init__(self, instrument: Any) -> None:
        self._instrument = instrument
        self._started = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "timed":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self._started
        observe = getattr(self._instrument, "observe", None)
        if observe is not None:
            observe(self.elapsed)
        else:
            self._instrument.set(self.elapsed)

    def __call__(self, fn: Callable[..., Any]) -> Callable[..., Any]:
        import functools

        @functools.wraps(fn)
        def wrapper(*args: object, **kwargs: object) -> Any:
            with timed(self._instrument):
                return fn(*args, **kwargs)

        return wrapper


class span:
    """A timed, logged block: debug log on exit, optional histogram.

    ``with span("plan_search", logger=log, histogram=hist, job="j1"): ...``
    logs ``plan_search took 0.123s (job=j1)`` at DEBUG when the block exits
    and observes the elapsed seconds into ``histogram`` when one is given.
    """

    def __init__(
        self,
        name: str,
        logger: Optional[Any] = None,
        histogram: Optional[Any] = None,
        **fields: object,
    ) -> None:
        self.name = name
        self.fields = fields
        self.elapsed = 0.0
        self._logger = logger
        self._histogram = histogram
        self._started = 0.0

    def __enter__(self) -> "span":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self._started
        if self._histogram is not None:
            self._histogram.observe(self.elapsed)
        logger = self._logger
        if logger is None:
            from .log import get_logger

            logger = get_logger("obs")
        if logger.isEnabledFor(10):  # logging.DEBUG without the import
            suffix = ""
            if self.fields:
                inner = ", ".join(f"{k}={v}" for k, v in sorted(self.fields.items()))
                suffix = f" ({inner})"
            logger.debug("%s took %.6fs%s", self.name, self.elapsed, suffix)

    def __call__(self, fn: Callable[..., Any]) -> Callable[..., Any]:
        import functools

        @functools.wraps(fn)
        def wrapper(*args: object, **kwargs: object) -> Any:
            with span(
                self.name,
                logger=self._logger,
                histogram=self._histogram,
                **self.fields,
            ):
                return fn(*args, **kwargs)

        return wrapper
