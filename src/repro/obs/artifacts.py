"""Where run artifacts land: the ``REPRO_ARTIFACT_DIR`` knob.

Benchmarks and traced runs emit a family of sibling files —
``BENCH_*.json``, ``TRACE_*.json``, ``METRICS_*.json``,
``PROVENANCE_*.jsonl`` — that historically always landed in the repository
root.  ``REPRO_ARTIFACT_DIR`` (default ``.``: the current working
directory, which in CI *is* the repo root, so the default changes nothing
there) redirects every writer in one place: benchmarks resolve their
output paths through :func:`artifact_path`, and the regression checker
resolves relative baseline/current paths against the same directory.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Union

__all__ = ["artifact_dir", "artifact_path"]


def artifact_dir(default: Union[str, Path] = ".") -> Path:
    """The directory run artifacts are written to (``REPRO_ARTIFACT_DIR``).

    Falls back to ``default`` (``.``: the current working directory) when the
    knob is unset; benchmarks pass their historical repo-root default so the
    knob redirects them without changing the no-knob behaviour.  The
    directory is created on first use by the writers (``Path.mkdir`` in
    their save paths), not here — reading the knob has no filesystem side
    effects.
    """
    value = os.environ.get("REPRO_ARTIFACT_DIR", "").strip()
    return Path(value) if value else Path(default)


def artifact_path(name: Union[str, Path], default_dir: Union[str, Path] = ".") -> Path:
    """Resolve one artifact file name inside :func:`artifact_dir`.

    Absolute names pass through untouched, so explicit ``--output /tmp/x``
    style arguments always win over the knob.
    """
    name = Path(name)
    if name.is_absolute():
        return name
    return artifact_dir(default_dir) / name
