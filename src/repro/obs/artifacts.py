"""Where run artifacts land: the ``REPRO_ARTIFACT_DIR`` knob.

Benchmarks and traced runs emit a family of sibling files —
``BENCH_*.json``, ``TRACE_*.json``, ``METRICS_*.json``,
``PROVENANCE_*.jsonl`` — that historically always landed in the repository
root.  ``REPRO_ARTIFACT_DIR`` (default ``.``: the current working
directory, which in CI *is* the repo root, so the default changes nothing
there) redirects every writer in one place: benchmarks resolve their
output paths through :func:`artifact_path`, and the regression checker
resolves relative baseline/current paths against the same directory.
"""

from __future__ import annotations

import os
import platform
from pathlib import Path
from typing import Dict, Union

__all__ = ["artifact_dir", "artifact_path", "machine_fingerprint"]


def artifact_dir(default: Union[str, Path] = ".") -> Path:
    """The directory run artifacts are written to (``REPRO_ARTIFACT_DIR``).

    Falls back to ``default`` (``.``: the current working directory) when the
    knob is unset; benchmarks pass their historical repo-root default so the
    knob redirects them without changing the no-knob behaviour.  The
    directory is created on first use by the writers (``Path.mkdir`` in
    their save paths), not here — reading the knob has no filesystem side
    effects.
    """
    value = os.environ.get("REPRO_ARTIFACT_DIR", "").strip()
    return Path(value) if value else Path(default)


def artifact_path(name: Union[str, Path], default_dir: Union[str, Path] = ".") -> Path:
    """Resolve one artifact file name inside :func:`artifact_dir`.

    Absolute names pass through untouched, so explicit ``--output /tmp/x``
    style arguments always win over the knob.
    """
    name = Path(name)
    if name.is_absolute():
        return name
    return artifact_dir(default_dir) / name


def machine_fingerprint() -> Dict[str, object]:
    """The machine identity block benchmark reports embed.

    One shared implementation so every ``BENCH_*.json`` records the same
    fields the same way — historically each benchmark hand-rolled its own
    dict and recorded only ``os.cpu_count()``, which made a report with
    ``parallel_workers: 4`` but ``cores: 1`` impossible to interpret.

    * ``cores`` — ``os.cpu_count()``: the machine's logical core count;
    * ``usable_cores`` — the scheduler-affinity mask size, which is what a
      containerised run can actually use (falls back to ``cores``);
    * ``core_budget`` — the effective ``CoreBudget`` total: the
      ``REPRO_CORE_BUDGET`` override when set, else ``cores`` (computed
      from the environment directly — ``repro.obs`` stays import-free of
      ``repro.core``).
    """
    cores = os.cpu_count() or 1
    try:
        usable = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        usable = cores
    try:
        budget = int(float(os.environ.get("REPRO_CORE_BUDGET", "0") or "0"))
    except ValueError:
        budget = 0
    return {
        "cores": cores,
        "usable_cores": usable,
        "core_budget": budget if budget > 0 else cores,
        "platform": platform.platform(),
        "python": platform.python_version(),
    }
