"""Exporters of a :class:`~repro.obs.metrics.MetricsRegistry`.

Three export paths, one registry:

* :func:`snapshot` / :func:`write_metrics_snapshot` — the JSON form
  (``registry.to_dict()`` plus run metadata), written to ``METRICS_*.json``
  files next to the existing ``BENCH_*``/``TRACE_*`` reports;
* :func:`to_prometheus` — the Prometheus text exposition format (v0.0.4):
  ``# HELP``/``# TYPE`` headers, escaped label values, and the
  ``_bucket``/``_sum``/``_count`` triplet for histograms with cumulative
  ``le`` buckets ending at ``+Inf``;
* :func:`record_counter_tracks` — Chrome-trace **counter events**
  (``ph: "C"``) emitted through the shared
  :class:`~repro.sim.trace.TraceRecorder`, which is how a scheduler run's
  merged trace gains live metric tracks (running/queued jobs, free GPUs,
  cache hit ratio, …) alongside its spans.
"""

from __future__ import annotations

import json
import math
import re
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from .metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "to_prometheus",
    "snapshot",
    "write_metrics_snapshot",
    "record_counter_tracks",
]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _sanitize_name(name: str) -> str:
    """Coerce a metric name into the Prometheus grammar."""
    name = _NAME_RE.sub("_", name)
    if not name or name[0].isdigit():
        name = f"_{name}"
    return name


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _label_str(pairs: Sequence[Tuple[str, str]]) -> str:
    if not pairs:
        return ""
    inner = ",".join(
        f'{_sanitize_name(name)}="{_escape_label_value(value)}"'
        for name, value in pairs
    )
    return "{" + inner + "}"


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format."""
    registry.collect()
    lines: List[str] = []
    for instrument in registry.instruments():
        name = _sanitize_name(instrument.name)
        if instrument.help:
            lines.append(f"# HELP {name} {_escape_help(instrument.help)}")
        lines.append(f"# TYPE {name} {instrument.kind}")
        label_names = instrument.label_names
        for key, series in instrument.series_items():
            labels = list(zip(label_names, key))
            if isinstance(instrument, Histogram):
                running = 0
                for bound, count in zip(
                    instrument.bucket_bounds, series.bucket_counts
                ):
                    running += count
                    bucket_labels = labels + [("le", _format_value(bound))]
                    lines.append(
                        f"{name}_bucket{_label_str(bucket_labels)} {running}"
                    )
                inf_labels = labels + [("le", "+Inf")]
                lines.append(f"{name}_bucket{_label_str(inf_labels)} {series.count}")
                lines.append(
                    f"{name}_sum{_label_str(labels)} {_format_value(series.sum)}"
                )
                lines.append(f"{name}_count{_label_str(labels)} {series.count}")
                # Exact observed extremes alongside the P² quantile estimates
                # (0 on an empty series, matching the JSON snapshot form).
                low = series.min if series.count else 0.0
                high = series.max if series.count else 0.0
                lines.append(f"{name}_min{_label_str(labels)} {_format_value(low)}")
                lines.append(f"{name}_max{_label_str(labels)} {_format_value(high)}")
            elif isinstance(instrument, (Counter, Gauge)):
                lines.append(
                    f"{name}{_label_str(labels)} {_format_value(series[0])}"
                )
    return "\n".join(lines) + "\n" if lines else ""


SNAPSHOT_SCHEMA_VERSION = 2
"""Version stamp of the ``METRICS_*.json`` layout.  Version 2 added
histogram ``min``/``max`` alongside the P² quantiles; consumers (the run
report CLI, dashboards) can branch on it instead of sniffing keys."""


def snapshot(
    registry: MetricsRegistry, extra: Optional[Mapping[str, Any]] = None
) -> Dict[str, Any]:
    """The JSON snapshot object: registry contents plus caller metadata."""
    data = registry.to_dict()
    data["schema_version"] = SNAPSHOT_SCHEMA_VERSION
    if extra:
        data["meta"] = dict(extra)
    return data


def write_metrics_snapshot(
    registry: MetricsRegistry,
    path: Union[str, Path],
    extra: Optional[Mapping[str, Any]] = None,
) -> Path:
    """Write the JSON snapshot to ``path`` (``METRICS_*.json``); returns it."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(snapshot(registry, extra), indent=2, sort_keys=True, default=str)
        + "\n"
    )
    return path


def record_counter_tracks(
    recorder: Any,
    process: str,
    samples: Sequence[Tuple[float, Mapping[str, float]]],
    category: str = "metrics",
) -> int:
    """Emit time-series samples as Chrome-trace counter tracks.

    ``samples`` is a chronological list of ``(time_seconds, {track: value})``
    mappings; every distinct track name becomes its own counter track in the
    Perfetto/chrome://tracing UI (grouped under ``process``).  Returns the
    number of counter events emitted.  ``recorder`` is a
    :class:`~repro.sim.trace.TraceRecorder` (kept duck-typed so this module
    never imports the simulator).
    """
    emitted = 0
    for time_s, values in samples:
        for track, value in values.items():
            recorder.add_counter(
                process, track, time_s, {track: float(value)}, category=category
            )
            emitted += 1
    return emitted
