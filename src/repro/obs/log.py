"""Structured logging for the ``repro.*`` logger hierarchy.

All subsystems log through children of the ``repro`` logger —
``repro.service``, ``repro.search``, ``repro.sched``, ``repro.sim`` — so one
handler configuration controls the whole stack.  Two environment knobs:

``REPRO_LOG_LEVEL``
    Root level of the hierarchy (``debug``/``info``/``warning``/``error``;
    default ``warning``, so instrumented paths are silent unless asked).
``REPRO_LOG_FORMAT``
    ``text`` (default, human-readable single lines) or ``json`` (one JSON
    object per line: ``ts``, ``level``, ``logger``, ``message`` plus any
    ``extra=`` fields — machine-parseable for log pipelines).

:func:`get_logger` lazily configures the hierarchy on first use and returns
the per-subsystem child logger; :func:`configure_logging` reconfigures
explicitly (tests, embedding applications).  The ``repro`` root does not
propagate to the global root logger, so applications embedding the library
keep full control of their own logging.
"""

from __future__ import annotations

import json
import logging
import os
import sys
import threading
from typing import Any, Dict, Optional, TextIO

__all__ = ["ROOT_LOGGER_NAME", "get_logger", "configure_logging", "JsonFormatter"]

ROOT_LOGGER_NAME = "repro"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "warn": logging.WARNING,
    "error": logging.ERROR,
    "critical": logging.CRITICAL,
}

_FORMATS = ("text", "json")

# Attributes every LogRecord carries; anything else came in via ``extra=``
# and is emitted as a structured field by the JSON formatter.
_STANDARD_ATTRS = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__
) | {"message", "asctime", "taskName"}

_configured = False
_config_lock = threading.Lock()


class JsonFormatter(logging.Formatter):
    """One JSON object per line: timestamp, level, logger, message, extras."""

    def format(self, record: logging.LogRecord) -> str:
        payload: Dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key not in _STANDARD_ATTRS and not key.startswith("_"):
                payload[key] = value
        if record.exc_info:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=str)


def _env_level(explicit: Optional[str]) -> int:
    raw = (explicit or os.environ.get("REPRO_LOG_LEVEL", "warning")).strip().lower()
    return _LEVELS.get(raw, logging.WARNING)


def _env_format(explicit: Optional[str]) -> str:
    raw = (explicit or os.environ.get("REPRO_LOG_FORMAT", "text")).strip().lower()
    return raw if raw in _FORMATS else "text"


def configure_logging(
    level: Optional[str] = None,
    fmt: Optional[str] = None,
    stream: Optional[TextIO] = None,
) -> logging.Logger:
    """(Re)configure the ``repro`` logger hierarchy; returns its root.

    Explicit arguments win over the ``REPRO_LOG_LEVEL``/``REPRO_LOG_FORMAT``
    environment knobs.  The hierarchy gets exactly one stream handler
    (default ``sys.stderr``) and stops propagating to the global root.
    """
    global _configured
    root = logging.getLogger(ROOT_LOGGER_NAME)
    with _config_lock:
        root.setLevel(_env_level(level))
        handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
        if _env_format(fmt) == "json":
            handler.setFormatter(JsonFormatter())
        else:
            handler.setFormatter(
                logging.Formatter(
                    "%(asctime)s %(levelname)s %(name)s: %(message)s",
                    datefmt="%H:%M:%S",
                )
            )
        root.handlers[:] = [handler]
        root.propagate = False
        _configured = True
    return root


def get_logger(subsystem: str = "") -> logging.Logger:
    """The ``repro.<subsystem>`` child logger, configuring lazily on first use.

    An application that configured the ``repro`` logger itself (any handler
    attached before the first call) is left alone.
    """
    global _configured
    if not _configured:
        with _config_lock:
            pre_configured = logging.getLogger(ROOT_LOGGER_NAME).handlers
            _configured = True
        if not pre_configured:
            configure_logging()
    name = f"{ROOT_LOGGER_NAME}.{subsystem}" if subsystem else ROOT_LOGGER_NAME
    return logging.getLogger(name)
