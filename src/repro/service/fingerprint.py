"""Workload fingerprinting: stable cache keys for planning requests.

The plan service amortizes the MCMC search across requests, which requires a
canonical identity for a planning request.  A request is fully determined by
the tuple (dataflow graph, workload, cluster, search config, prune config);
this module canonicalizes that tuple into a JSON document and hashes it into
a stable hex *key*.

Two keys are derived per request:

* ``key`` — the exact identity.  Two requests with equal keys are guaranteed
  to produce the same search problem, so a cached plan can be served
  verbatim.
* ``family`` — the identity with the *scale* knobs removed (batch size,
  prompt/generation lengths, number of nodes, PPO minibatches and the search
  budget).  Requests in the same family share the dataflow structure, model
  architectures, per-node hardware and pruning rules, so a plan cached for
  one member is a useful warm start for another (see
  :mod:`repro.service.warm_start`).

Fields that do not change the search *problem* are excluded from both keys:
``SearchConfig.record_history`` (observability only),
``SearchConfig.initial_plan`` (a hint that can only improve the result) and
``SearchConfig.parallel`` (the execution mode of the chains, not part of the
problem: iteration-bounded searches are bit-identical across modes, and
searches whose *time* budget binds were never run-to-run deterministic in
the first place — the cache's contract for those is "a plan searched under
this budget", in any mode).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping

from ..cluster.hardware import ClusterSpec
from ..core.dataflow import DataflowGraph, ModelFunctionCall
from ..core.pruning import PruneConfig
from ..core.search import SearchConfig
from ..core.workload import RLHFWorkload
from ..model.config import ModelConfig

__all__ = [
    "WorkloadFingerprint",
    "canonical_request",
    "fingerprint_request",
]


def _call_dict(call: ModelFunctionCall) -> Dict[str, Any]:
    return {
        "name": call.name,
        "model_name": call.model_name,
        "call_type": call.call_type.value,
        "input_keys": list(call.input_keys),
        "output_keys": list(call.output_keys),
        "batch_scale": call.batch_scale,
        "gen_len_scale": call.gen_len_scale,
    }


def _graph_dict(graph: DataflowGraph) -> Dict[str, Any]:
    return {
        "name": graph.name,
        "calls": [_call_dict(call) for call in graph.calls],
        "external_inputs": list(graph.external_inputs),
        "extra_edges": [list(edge) for edge in graph.extra_edges],
    }


def _model_dict(config: ModelConfig) -> Dict[str, Any]:
    return dataclasses.asdict(config)


def _cluster_dict(cluster: ClusterSpec) -> Dict[str, Any]:
    return dataclasses.asdict(cluster)


def _search_dict(search: SearchConfig) -> Dict[str, Any]:
    # record_history, initial_plan and parallel do not change the search
    # problem (see the module docstring on why the execution mode is not
    # part of a request's identity).
    return {
        "beta": search.beta,
        "oom_penalty": search.oom_penalty,
        "max_iterations": search.max_iterations,
        "time_budget_s": search.time_budget_s,
        "seed": search.seed,
        "n_chains": search.n_chains,
    }


def _prune_dict(prune: PruneConfig) -> Dict[str, Any]:
    data = dataclasses.asdict(prune)
    data["microbatch_choices"] = list(data["microbatch_choices"])
    return data


def canonical_request(
    graph: DataflowGraph,
    workload: RLHFWorkload,
    cluster: ClusterSpec,
    search: SearchConfig = SearchConfig(),
    prune: PruneConfig = PruneConfig(),
) -> Dict[str, Any]:
    """Canonical JSON-serializable document identifying a planning request."""
    return {
        "graph": _graph_dict(graph),
        "workload": {
            "batch_size": workload.batch_size,
            "prompt_len": workload.prompt_len,
            "gen_len": workload.gen_len,
            "n_ppo_minibatches": workload.n_ppo_minibatches,
            "models": {
                name: _model_dict(workload.model_configs[name])
                for name in sorted(workload.model_configs)
            },
        },
        "cluster": _cluster_dict(cluster),
        "search": _search_dict(search),
        "prune": _prune_dict(prune),
    }


def _digest(document: Mapping[str, Any]) -> str:
    payload = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class WorkloadFingerprint:
    """Stable identity of a planning request plus its warm-start features.

    ``features`` holds the scale knobs excluded from the family key; the
    warm-start selector uses them to rank cached plans of the same family by
    similarity to the incoming request.
    """

    key: str
    family: str
    features: Mapping[str, float] = field(default_factory=dict)
    estimator_key: str = ""
    """Identity of the (graph, workload, cluster) triple only.  Requests that
    share it pose different search problems but identical estimation
    problems, so they can share one memoised
    :class:`~repro.core.estimator.RuntimeEstimator`."""

    @property
    def short_key(self) -> str:
        """Abbreviated key for logs and stats tables."""
        return self.key[:12]


def fingerprint_request(
    graph: DataflowGraph,
    workload: RLHFWorkload,
    cluster: ClusterSpec,
    search: SearchConfig = SearchConfig(),
    prune: PruneConfig = PruneConfig(),
) -> WorkloadFingerprint:
    """Fingerprint a planning request into exact and family keys."""
    canonical = canonical_request(graph, workload, cluster, search, prune)
    family_document = {
        "graph": canonical["graph"],
        "models": canonical["workload"]["models"],
        "gpus_per_node": cluster.gpus_per_node,
        "gpu": dataclasses.asdict(cluster.gpu),
        "interconnect": dataclasses.asdict(cluster.interconnect),
        "rpc_overhead_s": cluster.rpc_overhead_s,
        "prune": canonical["prune"],
    }
    features: Dict[str, float] = {
        "batch_size": float(workload.batch_size),
        "prompt_len": float(workload.prompt_len),
        "gen_len": float(workload.gen_len),
        "n_ppo_minibatches": float(workload.n_ppo_minibatches),
        "n_nodes": float(cluster.n_nodes),
        "n_gpus": float(cluster.n_gpus),
    }
    estimator_document = {
        "graph": canonical["graph"],
        "workload": canonical["workload"],
        "cluster": canonical["cluster"],
    }
    return WorkloadFingerprint(
        key=_digest(canonical),
        family=_digest(family_document),
        features=features,
        estimator_key=_digest(estimator_document),
    )
