"""Planner-as-a-service: cached, concurrent, warm-started plan serving.

The paper's execution-plan search is a one-shot offline procedure; this
subsystem turns it into a shared service so heavy planning traffic is cheap:

* :mod:`repro.service.fingerprint` — canonical cache keys for planning
  requests (exact key + warm-start family key).
* :mod:`repro.service.cache` — thread-safe LRU plan cache with optional
  on-disk JSON persistence.
* :mod:`repro.service.warm_start` — seeding the MCMC search from the most
  similar cached plan, adapted across cluster sizes.
* :mod:`repro.service.server` — the concurrent :class:`PlanService` with
  request deduplication and per-request statistics.
* :mod:`repro.service.client` — the ergonomic :class:`PlanClient` front door
  (single, named-algorithm and batch requests).
"""

from .cache import PlanCache, PlanCacheEntry
from .client import PlanClient
from .fingerprint import WorkloadFingerprint, canonical_request, fingerprint_request
from .server import (
    PlanRequest,
    PlanResponse,
    PlanService,
    PlanSession,
    RequestStats,
    ServiceStats,
    SessionStatus,
)
from .warm_start import adapt_plan, select_warm_start, similarity_distance

__all__ = [
    "WorkloadFingerprint",
    "canonical_request",
    "fingerprint_request",
    "PlanCache",
    "PlanCacheEntry",
    "select_warm_start",
    "adapt_plan",
    "similarity_distance",
    "PlanRequest",
    "PlanResponse",
    "RequestStats",
    "ServiceStats",
    "SessionStatus",
    "PlanSession",
    "PlanService",
    "PlanClient",
]
