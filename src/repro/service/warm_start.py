"""Warm-starting the MCMC plan search from cached plans of similar workloads.

Cold-starting the Metropolis-Hastings search means beginning from the greedy
per-call-optimal plan and spending most of the budget rediscovering structure
(which calls should share meshes, where pipeline stages pay off) that a
previously solved *similar* workload already exhibits.  This module selects
the most similar cached plan within the request's fingerprint family — same
dataflow graph, model architectures, per-node hardware and pruning rules, but
possibly different batch size, sequence lengths or cluster size — adapts it
to the target cluster, and feeds it to the searcher through the
``initial_plan`` hook of :class:`~repro.core.search.SearchConfig`.

Because the searcher evaluates the hint alongside its own greedy start and
keeps the best plan ever visited, a warm start can only lower (never raise)
the cost reachable within a given budget relative to the hint itself.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Mapping, Optional

from ..cluster.hardware import ClusterSpec
from ..core.dataflow import DataflowGraph
from ..core.plan import Allocation, ExecutionPlan
from .cache import PlanCache, PlanCacheEntry
from .fingerprint import WorkloadFingerprint

__all__ = ["similarity_distance", "select_warm_start", "adapt_plan"]

#: Feature weights of the similarity metric.  Cluster size dominates (a plan
#: for a different cluster needs projection), then batch size and sequence
#: lengths, which shift the memory/compute balance the plan was tuned for.
_FEATURE_WEIGHTS = {
    "n_gpus": 2.0,
    "batch_size": 1.0,
    "prompt_len": 0.5,
    "gen_len": 0.5,
    "n_ppo_minibatches": 0.25,
}


def _log_ratio(a: float, b: float) -> float:
    return abs(math.log(max(a, 1e-9) / max(b, 1e-9)))


def similarity_distance(
    entry_features: Mapping[str, float], request_features: Mapping[str, float]
) -> float:
    """Weighted log-ratio distance between two requests' scale features.

    Zero means identical scale; the warm-start selector picks the cached
    entry minimizing this distance.
    """
    distance = 0.0
    for name, weight in _FEATURE_WEIGHTS.items():
        if name in entry_features and name in request_features:
            distance += weight * _log_ratio(entry_features[name], request_features[name])
    return distance


def select_warm_start(
    cache: PlanCache, fingerprint: WorkloadFingerprint
) -> Optional[PlanCacheEntry]:
    """Most similar cached entry of the request's family, or ``None``.

    The exact key is excluded — an exact match would have been a cache hit
    and never reaches the warm-start path.
    """
    candidates = [
        entry
        for entry in cache.family_entries(fingerprint.family)
        if entry.key != fingerprint.key
    ]
    if not candidates:
        return None
    return min(
        candidates,
        key=lambda entry: (
            similarity_distance(entry.features, fingerprint.features),
            entry.key,
        ),
    )


def _allocation_distance(
    cached: Mapping[str, Any],
    source_shape: tuple,
    candidate: Allocation,
    target_gpus: int,
) -> float:
    """How far a candidate allocation is from a cached one, scale-normalised.

    The mesh is compared by its *fraction* of the cluster (so a half-cluster
    mesh maps to a half-cluster mesh even when the cluster grew), the TP/PP
    degrees and micro-batch count by log ratio.  DP is implied by mesh size
    and TP/PP, so it needs no term of its own.
    """
    cached_mesh = cached["mesh"]
    cached_parallel = cached["parallel"]
    source_nodes, source_node_width = source_shape
    source_gpus = max(1, source_nodes * source_node_width)
    cached_gpus = int(cached_mesh["n_nodes"]) * int(cached_mesh["gpus_per_node"])
    distance = 2.0 * _log_ratio(
        candidate.mesh.n_gpus / target_gpus, cached_gpus / source_gpus
    )
    distance += _log_ratio(candidate.parallel.tp, int(cached_parallel["tp"]))
    distance += _log_ratio(candidate.parallel.pp, int(cached_parallel["pp"]))
    distance += 0.25 * _log_ratio(
        candidate.n_microbatches, int(cached.get("n_microbatches", 1))
    )
    # Prefer the same position within the cluster, normalised to [0, 1).
    cached_start = int(cached_mesh["node_start"]) / max(1, source_nodes)
    target_nodes = candidate.mesh.cluster.n_nodes
    candidate_start = candidate.mesh.node_start / target_nodes
    distance += 0.1 * abs(candidate_start - cached_start)
    return distance


def adapt_plan(
    entry: PlanCacheEntry,
    graph: DataflowGraph,
    cluster: ClusterSpec,
    options: Dict[str, List[Allocation]],
) -> Optional[ExecutionPlan]:
    """Project a cached plan onto the target cluster's allocation options.

    When the target cluster has the same shape as the plan's source cluster
    the plan deserializes directly.  Otherwise every call's cached allocation
    is replaced by the nearest option available on the target cluster
    (nearest in mesh fraction, TP/PP degrees and micro-batch count).  Returns
    ``None`` when the cached plan does not cover the graph — the search then
    simply cold-starts.
    """
    if set(graph.call_names) - set(entry.plan_data.get("assignments", {})):
        return None
    target_shape = (cluster.n_nodes, cluster.gpus_per_node)
    if tuple(entry.cluster_shape) == target_shape:
        plan = entry.plan(cluster)
        return ExecutionPlan(dict(plan.assignments), name="warm-start")
    source_shape = tuple(entry.cluster_shape)
    assignments: Dict[str, Allocation] = {}
    for call_name in graph.call_names:
        cached = entry.plan_data["assignments"][call_name]
        choices = options.get(call_name)
        if not choices:
            return None
        best = min(
            range(len(choices)),
            key=lambda i: (
                _allocation_distance(cached, source_shape, choices[i], cluster.n_gpus),
                i,
            ),
        )
        assignments[call_name] = choices[best]
    return ExecutionPlan(assignments, name="warm-start")
