"""Plan cache: LRU storage of search results keyed by workload fingerprint.

The cache maps a :class:`~repro.service.fingerprint.WorkloadFingerprint` key
to a :class:`PlanCacheEntry` — the serialized best plan plus the summary
statistics of the search that produced it.  Entries are kept in LRU order and
optionally persisted to a JSON file so a restarted service keeps its warm
plans (the multi-tenant "plans as shared state" pattern of service-oriented
FL/RLHF systems).

The cache is thread-safe: the plan server's worker pool reads and writes it
concurrently.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..cluster.hardware import ClusterSpec
from ..core.plan import ExecutionPlan, plan_from_dict
from ..core.search import SearchResult
from .fingerprint import WorkloadFingerprint

__all__ = ["PlanCacheEntry", "PlanCache"]

DEFAULT_CACHE_CAPACITY = 128


@dataclass
class PlanCacheEntry:
    """One cached search outcome.

    ``plan_data`` is the JSON form of the best plan (meshes stored by
    coordinates); ``cluster_shape`` records the ``(n_nodes, gpus_per_node)``
    shape those coordinates refer to.  ``features`` mirrors the fingerprint's
    scale knobs so the warm-start selector can rank entries without
    re-deriving workloads.
    """

    key: str
    family: str
    features: Dict[str, float]
    cluster_shape: Tuple[int, int]
    plan_data: Dict[str, Any]
    best_cost: float
    initial_cost: float
    n_iterations: int = 0
    n_accepted: int = 0
    elapsed_seconds: float = 0.0
    search_space: float = 0.0
    peak_memory_bytes: float = 0.0
    """Estimated MaxMem of the best plan; 0 means unknown (legacy entries)."""

    @classmethod
    def from_search_result(
        cls,
        fingerprint: WorkloadFingerprint,
        result: SearchResult,
        cluster: ClusterSpec,
        peak_memory_bytes: float = 0.0,
    ) -> "PlanCacheEntry":
        """Build an entry from a finished search."""
        return cls(
            key=fingerprint.key,
            family=fingerprint.family,
            features=dict(fingerprint.features),
            cluster_shape=(cluster.n_nodes, cluster.gpus_per_node),
            plan_data=result.best_plan.to_dict(),
            best_cost=result.best_cost,
            initial_cost=result.initial_cost,
            n_iterations=result.n_iterations,
            n_accepted=result.n_accepted,
            elapsed_seconds=result.elapsed_seconds,
            search_space=result.search_space,
            peak_memory_bytes=peak_memory_bytes,
        )

    def plan(self, cluster: ClusterSpec) -> ExecutionPlan:
        """Rebuild the cached plan on ``cluster`` (must match the stored shape)."""
        return plan_from_dict(self.plan_data, cluster)

    def to_search_result(self, cluster: ClusterSpec) -> SearchResult:
        """Reconstruct a summary :class:`SearchResult` for cache hits.

        The proposal history is not persisted, and the initial plan is not
        stored separately (it is only used for the improvement ratio), so the
        reconstructed result reuses the best plan with the recorded initial
        cost.
        """
        plan = self.plan(cluster)
        return SearchResult(
            best_plan=plan,
            best_cost=self.best_cost,
            initial_plan=plan,
            initial_cost=self.initial_cost,
            n_iterations=self.n_iterations,
            n_accepted=self.n_accepted,
            elapsed_seconds=self.elapsed_seconds,
            history=[],
            search_space=self.search_space,
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form for on-disk persistence."""
        return {
            "key": self.key,
            "family": self.family,
            "features": dict(self.features),
            "cluster_shape": list(self.cluster_shape),
            "plan": self.plan_data,
            "best_cost": self.best_cost,
            "initial_cost": self.initial_cost,
            "n_iterations": self.n_iterations,
            "n_accepted": self.n_accepted,
            "elapsed_seconds": self.elapsed_seconds,
            "search_space": self.search_space,
            "peak_memory_bytes": self.peak_memory_bytes,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PlanCacheEntry":
        """Inverse of :meth:`to_dict`."""
        shape = tuple(int(v) for v in data["cluster_shape"])
        if len(shape) != 2:
            raise ValueError(f"cluster_shape must have two entries, got {shape}")
        plan_shape = data["plan"].get("cluster_shape")
        if plan_shape is not None and tuple(int(v) for v in plan_shape) != shape:
            raise ValueError(
                f"entry cluster_shape {shape} disagrees with the plan's "
                f"{tuple(plan_shape)}"
            )
        return cls(
            key=str(data["key"]),
            family=str(data["family"]),
            features={k: float(v) for k, v in data.get("features", {}).items()},
            cluster_shape=(shape[0], shape[1]),
            plan_data=dict(data["plan"]),
            best_cost=float(data["best_cost"]),
            initial_cost=float(data["initial_cost"]),
            n_iterations=int(data.get("n_iterations", 0)),
            n_accepted=int(data.get("n_accepted", 0)),
            elapsed_seconds=float(data.get("elapsed_seconds", 0.0)),
            search_space=float(data.get("search_space", 0.0)),
            peak_memory_bytes=float(data.get("peak_memory_bytes", 0.0)),
        )


class PlanCache:
    """Thread-safe LRU cache of :class:`PlanCacheEntry` objects.

    Parameters
    ----------
    capacity:
        Maximum number of entries; the least recently used entry is evicted
        when the cache overflows.
    persist_path:
        Optional JSON file.  When given, the cache loads existing entries at
        construction and rewrites the file (atomically) after every mutation,
        so plans survive service restarts.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CACHE_CAPACITY,
        persist_path: Optional[str] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.persist_path = persist_path
        self._entries: "OrderedDict[str, PlanCacheEntry]" = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        if persist_path is not None and os.path.exists(persist_path):
            self._load(persist_path)

    # ------------------------------------------------------------------ #
    # Core operations
    # ------------------------------------------------------------------ #
    def get(self, key: str) -> Optional[PlanCacheEntry]:
        """Look up an entry by exact fingerprint key (refreshes LRU order)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def peek(self, key: str) -> Optional[PlanCacheEntry]:
        """Look up an entry without touching LRU order or hit/miss counters."""
        with self._lock:
            return self._entries.get(key)

    def put(self, entry: PlanCacheEntry) -> None:
        """Insert (or refresh) an entry, evicting the LRU entry on overflow."""
        with self._lock:
            if entry.key in self._entries:
                self._entries.move_to_end(entry.key)
            self._entries[entry.key] = entry
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
            self._persist()

    def refresh(self, entry: PlanCacheEntry) -> bool:
        """Replace the cached entry for ``entry.key`` only if this one is better.

        The staleness hook of online re-planning: a background session that
        beats the cached cost for its fingerprint writes its improved plan
        back (including persistence), so future requests are never served a
        plan the service already knows how to beat.  Entries at least as good
        as the candidate are left untouched; returns whether the cache
        changed.
        """
        with self._lock:
            existing = self._entries.get(entry.key)
            if existing is not None and existing.best_cost <= entry.best_cost:
                return False
            self.put(entry)
            return True

    def family_entries(self, family: str) -> List[PlanCacheEntry]:
        """All cached entries of a fingerprint family, most recent first."""
        with self._lock:
            return [
                entry
                for entry in reversed(self._entries.values())
                if entry.family == family
            ]

    def keys(self) -> List[str]:
        """Cached fingerprint keys in LRU-to-MRU order."""
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        """Drop every entry (and rewrite the persistence file, if any)."""
        with self._lock:
            self._entries.clear()
            self._persist()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def flush(self) -> None:
        """Force a rewrite of the persistence file (no-op without one)."""
        with self._lock:
            self._persist()

    def _persist(self) -> None:
        if self.persist_path is None:
            return
        payload = {
            "version": 1,
            "entries": [entry.to_dict() for entry in self._entries.values()],
        }
        directory = os.path.dirname(os.path.abspath(self.persist_path))
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp_path, self.persist_path)
        except BaseException:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise

    def _load(self, path: str) -> None:
        # A cache file is disposable state: a corrupted or incompatible file
        # must not prevent the service from starting, so bad payloads (or
        # individual bad entries) are dropped instead of raised.
        try:
            with open(path) as handle:
                payload = json.load(handle)
            entries = payload.get("entries", [])
        except (OSError, json.JSONDecodeError, AttributeError):
            return
        if not isinstance(entries, list):
            return
        for data in entries:
            try:
                entry = PlanCacheEntry.from_dict(data)
            except (KeyError, TypeError, ValueError):
                continue
            self._entries[entry.key] = entry
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
