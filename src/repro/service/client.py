"""Client-side API of the plan service: single, named and batch requests.

:class:`PlanClient` is the ergonomic front door of the planning subsystem:
it owns (or borrows) a :class:`~repro.service.server.PlanService`, builds
:class:`~repro.service.server.PlanRequest` objects from the same declarative
inputs the rest of the library uses, and exposes a batch API that overlaps
many searches on the service's worker pool.

The experiment runner and :func:`repro.core.api.find_execution_plan` accept a
service/client, so repeated planning calls — sweeps over settings, repeated
benchmark invocations, multi-tenant callers — transparently share the plan
cache and warm starts.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..cluster.hardware import ClusterSpec, make_cluster
from ..core.dataflow import DataflowGraph
from ..core.pruning import PruneConfig
from ..core.search import SearchConfig
from ..core.workload import RLHFWorkload, instructgpt_workload
from .server import PlanRequest, PlanResponse, PlanService, ServiceStats

__all__ = ["PlanClient"]


class PlanClient:
    """High-level client of a :class:`PlanService`.

    When constructed without an explicit service the client creates and owns
    one (closed by :meth:`close` or the context manager); when given a
    service it only borrows it, so several clients can share a cache.
    """

    def __init__(self, service: Optional[PlanService] = None, **service_kwargs) -> None:
        self._owns_service = service is None
        self.service = service if service is not None else PlanService(**service_kwargs)

    # ------------------------------------------------------------------ #
    # Request construction + dispatch
    # ------------------------------------------------------------------ #
    def plan(
        self,
        graph: DataflowGraph,
        workload: RLHFWorkload,
        cluster: ClusterSpec,
        search: SearchConfig = SearchConfig(),
        prune: PruneConfig = PruneConfig(),
        timeout: Optional[float] = None,
    ) -> PlanResponse:
        """Plan one fully specified workload (blocking)."""
        request = PlanRequest(
            graph=graph, workload=workload, cluster=cluster, search=search, prune=prune
        )
        return self.service.plan(request, timeout=timeout)

    def plan_algorithm(
        self,
        algorithm: str,
        actor_size: str,
        critic_size: str,
        n_gpus: int,
        batch_size: int = 512,
        prompt_len: int = 1024,
        gen_len: int = 1024,
        n_ppo_minibatches: int = 8,
        gpus_per_node: int = 8,
        search: SearchConfig = SearchConfig(),
        prune: PruneConfig = PruneConfig(),
        timeout: Optional[float] = None,
    ) -> PlanResponse:
        """Plan a named RLHF algorithm (mirrors :func:`repro.core.api.find_execution_plan`)."""
        from ..algorithms.registry import build_graph  # local import avoids a cycle

        graph = build_graph(algorithm)
        workload = instructgpt_workload(
            actor_size=actor_size,
            critic_size=critic_size,
            batch_size=batch_size,
            prompt_len=prompt_len,
            gen_len=gen_len,
            n_ppo_minibatches=n_ppo_minibatches,
        )
        cluster = make_cluster(n_gpus, gpus_per_node=gpus_per_node)
        return self.plan(graph, workload, cluster, search=search, prune=prune, timeout=timeout)

    def plan_many(
        self, requests: Sequence[PlanRequest], timeout: Optional[float] = None
    ) -> List[PlanResponse]:
        """Batch API: submit every request, then gather responses in order.

        All requests are enqueued before the first result is awaited, so
        distinct workloads search concurrently on the service's worker pool
        while duplicates collapse onto a single search.
        """
        return self.service.plan_many(list(requests), timeout=timeout)

    # ------------------------------------------------------------------ #
    # Introspection + lifecycle
    # ------------------------------------------------------------------ #
    @property
    def stats(self) -> ServiceStats:
        """Aggregate counters of the underlying service."""
        return self.service.stats

    def close(self) -> None:
        """Close the service (pool shutdown + cache flush) if this client owns it."""
        if self._owns_service:
            self.service.close()

    def __enter__(self) -> "PlanClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
