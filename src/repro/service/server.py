"""Concurrent plan server: cached, deduplicated, warm-started plan search.

The :class:`PlanService` turns the one-shot
:func:`~repro.core.search.search_execution_plan` into a long-lived service:

* requests are fingerprinted (:mod:`repro.service.fingerprint`) and served
  from the :class:`~repro.service.cache.PlanCache` when an identical request
  was solved before;
* cache misses run on a thread-pool of search workers, and identical
  requests arriving while one is already being searched *join* the in-flight
  computation instead of starting a duplicate search;
* misses are warm-started from the most similar cached plan of the same
  fingerprint family (:mod:`repro.service.warm_start`);
* every response carries per-request statistics (hit/miss, warm vs cold,
  queue and search time) and the service aggregates them.

The search itself is pure Python/NumPy and holds no locks, so a small pool
genuinely overlaps request handling; the pool size bounds the number of
concurrent searches, and the futures returned by :meth:`PlanService.submit`
form the request queue.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..cluster.hardware import ClusterSpec
from ..core.dataflow import DataflowGraph
from ..core.estimator import RuntimeEstimator
from ..core.parallel_search import GLOBAL_CORE_BUDGET, CoreBudget
from ..core.plan import ExecutionPlan
from ..core.pruning import PruneConfig, allocation_options
from ..core.search import MCMCSearcher, SearchConfig, SearchResult, SearchSession
from ..core.workload import RLHFWorkload
from ..obs.log import get_logger
from ..obs.metrics import MetricsRegistry, get_registry
from ..obs.provenance import get_ledger
from ..obs.tracing import SpanContext, current_span, get_tracer
from .cache import PlanCache, PlanCacheEntry
from .fingerprint import WorkloadFingerprint, fingerprint_request
from .warm_start import adapt_plan, select_warm_start

__all__ = [
    "PlanRequest",
    "RequestStats",
    "PlanResponse",
    "ServiceStats",
    "SessionStatus",
    "PlanSession",
    "PlanService",
]


@dataclass(frozen=True)
class PlanRequest:
    """One planning request: the full search problem."""

    graph: DataflowGraph
    workload: RLHFWorkload
    cluster: ClusterSpec
    search: SearchConfig = field(default_factory=SearchConfig)
    prune: PruneConfig = field(default_factory=PruneConfig)

    def fingerprint(self) -> WorkloadFingerprint:
        """Stable identity of this request (exact key + family key)."""
        return fingerprint_request(
            self.graph, self.workload, self.cluster, self.search, self.prune
        )


@dataclass(frozen=True)
class RequestStats:
    """How one request was served."""

    fingerprint: str
    cache_hit: bool
    warm_started: bool = False
    dedup_joined: bool = False
    queue_seconds: float = 0.0
    search_seconds: float = 0.0
    total_seconds: float = 0.0
    seeded_from: Optional[str] = None
    """Cache key of the entry that warm-started this search (``None`` when
    the search started cold, was a hit, or joined an in-flight search)."""

    @property
    def outcome(self) -> str:
        """The canonical outcome label: ``hit``/``dedup``/``warm``/``cold``."""
        if self.cache_hit:
            return "hit"
        if self.dedup_joined:
            return "dedup"
        return "warm" if self.warm_started else "cold"


@dataclass(frozen=True)
class PlanResponse:
    """A served plan plus provenance.

    ``peak_memory_bytes`` is the estimator's MaxMem of the served plan
    (0 when unknown, e.g. a legacy persisted cache entry); ``feasible`` is
    that peak compared against the request cluster's per-device capacity.
    Schedulers use it to reject (job, partition) candidates whose best plan
    still OOMs.
    """

    plan: ExecutionPlan
    cost: float
    result: SearchResult
    stats: RequestStats
    peak_memory_bytes: float = 0.0
    feasible: bool = True


@dataclass
class ServiceStats:
    """Aggregate counters of a :class:`PlanService`."""

    requests: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    warm_starts: int = 0
    dedup_joins: int = 0
    estimator_reuses: int = 0
    parallel_searches: int = 0
    """Searches whose chains ran on worker processes (vs in the request
    thread); bounded by what the shared core-budget governor granted."""
    sessions_started: int = 0
    """Online (pollable) search sessions opened via :meth:`start_session`."""
    session_polls: int = 0
    """Slices consumed across all online sessions."""
    cache_refreshes: int = 0
    """Cached entries replaced because an online session beat their cost."""
    search_seconds: float = 0.0

    @property
    def hit_rate(self) -> float:
        """Fraction of requests answered from the cache."""
        return self.cache_hits / self.requests if self.requests else 0.0

    def snapshot(self) -> "ServiceStats":
        """Copy of the counters (the live object keeps mutating)."""
        return dataclasses.replace(self)

    def delta(self, baseline: "ServiceStats") -> "ServiceStats":
        """Field-wise difference: this run's share of shared-service counters.

        ``live.snapshot().delta(baseline)`` (or ``snapshot - baseline``)
        returns a new :class:`ServiceStats` whose derived ``hit_rate`` is
        recomputed from the delta counters — the per-run view schedulers and
        benchmarks report when several runs share one service.
        """
        return ServiceStats(
            **{
                spec.name: getattr(self, spec.name) - getattr(baseline, spec.name)
                for spec in dataclasses.fields(self)
            }
        )

    def __sub__(self, baseline: "ServiceStats") -> "ServiceStats":
        if not isinstance(baseline, ServiceStats):
            return NotImplemented
        return self.delta(baseline)

    def to_dict(self) -> Dict[str, float]:
        """Machine-readable form of the counters (benchmarks, schedulers)."""
        data: Dict[str, float] = dataclasses.asdict(self)
        data["hit_rate"] = self.hit_rate
        return data


@dataclass(frozen=True)
class SessionStatus:
    """Progress report of one :meth:`PlanSession.poll`."""

    session_id: str
    fingerprint: str
    best_cost: float
    initial_cost: float
    n_iterations: int
    n_polls: int
    done: bool
    improved: bool
    """Whether this poll lowered the session's best cost."""
    cache_refreshed: bool
    """Whether this poll's improvement replaced the cached entry."""
    search_seconds: float
    """Compute seconds consumed so far (summed over chains, not session age)."""


class PlanSession:
    """A registered online search session of a :class:`PlanService`.

    Wraps a :class:`~repro.core.search.SearchSession` with the service's
    bookkeeping: every improving poll writes the session's current best back
    to the plan cache (see :meth:`PlanCache.refresh`), polls and refreshes
    are counted in :class:`ServiceStats`, and :meth:`stop` settles the
    session into an ordinary :class:`PlanResponse`.  Obtain instances via
    :meth:`PlanService.start_session`; thread-safe.
    """

    def __init__(
        self,
        service: "PlanService",
        session_id: str,
        request: PlanRequest,
        fingerprint: WorkloadFingerprint,
        session: SearchSession,
        estimator: RuntimeEstimator,
        warm_started: bool = False,
        seeded_from: Optional[str] = None,
    ) -> None:
        self.service = service
        self.session_id = session_id
        self.request = request
        self.fingerprint = fingerprint
        self.session = session
        self.estimator = estimator
        self.warm_started = warm_started
        self.seeded_from = seeded_from
        self.winning_poll_context: Optional[SpanContext] = None
        """Span context of the most recent *improving* poll — what a
        scheduler-side plan swap grafts its span under, closing the causal
        loop from the swap back to the slice that found the winning plan."""
        self._lock = threading.Lock()
        self._closed = False
        self._final: Optional[PlanResponse] = None

    # ------------------------------------------------------------------ #
    # Progress
    # ------------------------------------------------------------------ #
    @property
    def done(self) -> bool:
        """Whether every chain exhausted its budgets (polls become no-ops)."""
        return self.session.done

    @property
    def closed(self) -> bool:
        return self._closed

    def best_so_far(self) -> "Tuple[Optional[ExecutionPlan], float]":
        """Current merged best (plan, cost) — readable at any time."""
        return self.session.best_so_far()

    def status(self) -> SessionStatus:
        """Current progress without consuming any budget."""
        with self._lock:
            return self._status(improved=False, cache_refreshed=False)

    def _status(self, improved: bool, cache_refreshed: bool) -> SessionStatus:
        session = self.session
        return SessionStatus(
            session_id=self.session_id,
            fingerprint=self.fingerprint.key,
            best_cost=session.best_cost,
            initial_cost=session.initial_cost,
            n_iterations=session.n_iterations,
            n_polls=session.n_polls,
            done=session.done,
            improved=improved,
            cache_refreshed=cache_refreshed,
            search_seconds=sum(s.wall_seconds for s in session.states),
        )

    def poll(
        self,
        max_iterations: Optional[int] = None,
        time_budget_s: Optional[float] = None,
    ) -> SessionStatus:
        """Advance the session by one slice; write improvements to the cache."""
        with self._lock:
            if self._closed:
                raise RuntimeError(f"session {self.session_id} has been stopped")
            with get_tracer().start_span(
                "session poll",
                category="service",
                args={
                    "session_id": self.session_id,
                    "fingerprint": self.fingerprint.key,
                },
            ) as poll_span:
                progress = self.session.poll(max_iterations, time_budget_s)
                poll_span.set(
                    improved=progress.improved,
                    best_cost=progress.best_cost,
                    new_iterations=progress.new_iterations,
                )
                if progress.improved and poll_span.context is not None:
                    self.winning_poll_context = poll_span.context
            refreshed = False
            if progress.improved:
                refreshed = self.service._session_write_back(self)
            service = self.service
            with service._lock:
                service.stats.session_polls += 1
            service._m_session_polls.inc()
            return self._status(improved=progress.improved, cache_refreshed=refreshed)

    def stop(self) -> PlanResponse:
        """Finish the session: final cache write-back and a settled response.

        Idempotent — repeated stops return the same response.  The response's
        ``search_seconds`` bill the compute actually consumed by the slices,
        not the session's wall-clock age (sessions idle between polls).
        """
        with self._lock:
            if self._final is not None:
                return self._final
            result = self.session.stop()
            self.service._session_write_back(self)
            peak = self.estimator.max_memory(result.best_plan).max_bytes
            search_seconds = sum(result.chain_wall_seconds)
            service = self.service
            with service._lock:
                service.stats.search_seconds += search_seconds
            stats = RequestStats(
                fingerprint=self.fingerprint.key,
                cache_hit=False,
                warm_started=self.warm_started,
                search_seconds=search_seconds,
                total_seconds=result.elapsed_seconds,
                seeded_from=self.seeded_from,
            )
            self._final = PlanResponse(
                plan=result.best_plan,
                cost=result.best_cost,
                result=result,
                stats=stats,
                peak_memory_bytes=peak,
                feasible=service._fits_memory(peak, self.request.cluster),
            )
            self._closed = True
            return self._final


class PlanService:
    """Planner-as-a-service on top of :mod:`repro.core.search`.

    Parameters
    ----------
    max_workers:
        Size of the search worker pool (concurrent cold searches).
    cache:
        An existing :class:`PlanCache` to share between services; by default
        a private cache is created from ``cache_capacity``/``persist_path``.
    warm_start:
        Whether cache misses are seeded from the most similar cached plan of
        the same fingerprint family.
    estimator_cache_size:
        How many :class:`~repro.core.estimator.RuntimeEstimator` instances to
        keep (LRU, keyed by the graph/workload/cluster identity).  Requests
        that pose the same estimation problem — including deduplicated and
        differently-budgeted searches over one workload — share a single
        estimator, so its memoised per-call and per-edge costs amortise
        across requests.  Estimator caches are GIL-safe for concurrent
        searches (racing writes store identical values).
    core_budget:
        The :class:`~repro.core.parallel_search.CoreBudget` governor shared
        between this service's request threads and any process-parallel
        searches they spawn (``SearchConfig.n_chains > 1``).  One governor
        spans both layers, so multi-chain searches degrade to in-process
        execution instead of oversubscribing the machine when many requests
        are in flight.  Defaults to the process-global governor.
    registry:
        The :class:`~repro.obs.metrics.MetricsRegistry` this service reports
        into: request latency histogram labeled by outcome
        (``hit``/``cold``/``warm``/``dedup``), cache hit/miss counters, an
        in-flight-search gauge and lazily collected eval-cache gauges.
        Defaults to the process-global registry.

    The service is a context manager; :meth:`shutdown` drains the pool.
    """

    def __init__(
        self,
        max_workers: int = 4,
        cache: Optional[PlanCache] = None,
        cache_capacity: int = 128,
        persist_path: Optional[str] = None,
        warm_start: bool = True,
        estimator_cache_size: int = 8,
        core_budget: Optional[CoreBudget] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if estimator_cache_size < 1:
            raise ValueError(
                f"estimator_cache_size must be >= 1, got {estimator_cache_size}"
            )
        self.cache = cache if cache is not None else PlanCache(
            capacity=cache_capacity, persist_path=persist_path
        )
        self.warm_start = warm_start
        self.core_budget = core_budget if core_budget is not None else GLOBAL_CORE_BUDGET
        self.stats = ServiceStats()
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="plan-service"
        )
        self._inflight: Dict[str, "Future[PlanResponse]"] = {}
        self._sessions: Dict[str, PlanSession] = {}
        self._session_counter = 0
        self._estimators: "OrderedDict[str, RuntimeEstimator]" = OrderedDict()
        self._estimator_cache_size = estimator_cache_size
        self._lock = threading.RLock()
        self._closed = False
        self._log = get_logger("service")
        self.registry = registry if registry is not None else get_registry()
        self._m_requests = self.registry.counter(
            "service_requests_total",
            "Plan requests by outcome (hit/cold/warm/dedup)",
            labels=("outcome",),
        )
        self._m_latency = self.registry.histogram(
            "service_request_seconds",
            "Request latency (submit to response) by outcome",
            labels=("outcome",),
        )
        self._m_inflight = self.registry.gauge(
            "service_inflight_searches", "Plan searches currently executing"
        )
        self._m_search_seconds = self.registry.counter(
            "service_search_seconds_total", "Wall-clock seconds spent in plan search"
        )
        self._m_sessions = self.registry.counter(
            "service_sessions_total", "Online search sessions started"
        )
        self._m_session_polls = self.registry.counter(
            "service_session_polls_total", "Online search session slices consumed"
        )
        self._m_cache_refreshes = self.registry.counter(
            "service_cache_refreshes_total",
            "Cache entries replaced by improved online-session plans",
        )
        self._collector = self.registry.register_collector(self._collect_gauges)

    # ------------------------------------------------------------------ #
    # Request handling
    # ------------------------------------------------------------------ #
    def submit(self, request: PlanRequest) -> "Future[PlanResponse]":
        """Enqueue a request; returns a future resolving to a :class:`PlanResponse`.

        Cache hits resolve immediately; identical in-flight requests share a
        single search (the joined future's response is marked
        ``dedup_joined``).
        """
        if self._closed:
            raise RuntimeError("PlanService has been shut down")
        fingerprint = request.fingerprint()
        submitted_at = time.perf_counter()
        # The caller's span context travels with the request onto the worker
        # thread, so the service-side request span stays a child of the
        # scheduler decision that triggered it.
        caller_context = current_span()
        with self._lock:
            self.stats.requests += 1
            entry = self.cache.get(fingerprint.key)
            if entry is None:
                primary = self._inflight.get(fingerprint.key)
                if primary is not None:
                    self.stats.dedup_joins += 1
                    self._m_requests.labels(outcome="dedup").inc()
                    get_ledger().record(
                        "plan_request",
                        fingerprint=fingerprint.key,
                        outcome="dedup",
                    )
                    return self._join_inflight(primary)
                self.stats.cache_misses += 1
                future = self._pool.submit(
                    self._execute, request, fingerprint, submitted_at, caller_context
                )
                self._inflight[fingerprint.key] = future
                future.add_done_callback(
                    lambda _f, key=fingerprint.key: self._clear_inflight(key)
                )
                return future
            self.stats.cache_hits += 1
        # Deserializing the cached plan can be comparatively expensive, so
        # hits are materialised outside the lock to keep submission concurrent.
        with get_tracer().start_span(
            "plan request",
            category="service",
            args={"fingerprint": fingerprint.key, "outcome": "hit"},
        ) as request_span:
            response = self._response_from_entry(
                entry, request, fingerprint, submitted_at
            )
            request_span.set(cost=response.cost)
        get_ledger().record(
            "plan_request",
            fingerprint=fingerprint.key,
            outcome="hit",
            cost=response.cost,
        )
        self._m_requests.labels(outcome="hit").inc()
        self._m_latency.labels(outcome="hit").observe(response.stats.total_seconds)
        done: "Future[PlanResponse]" = Future()
        done.set_result(response)
        return done

    def plan(self, request: PlanRequest, timeout: Optional[float] = None) -> PlanResponse:
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(request).result(timeout=timeout)

    def plan_many(
        self, requests: List[PlanRequest], timeout: Optional[float] = None
    ) -> List[PlanResponse]:
        """Submit a batch of requests and gather the responses in order."""
        futures = [self.submit(request) for request in requests]
        return [future.result(timeout=timeout) for future in futures]

    # ------------------------------------------------------------------ #
    # Online sessions
    # ------------------------------------------------------------------ #
    def start_session(
        self,
        request: PlanRequest,
        slice_iterations: Optional[int] = None,
        slice_time_s: Optional[float] = None,
        max_workers: Optional[int] = None,
    ) -> PlanSession:
        """Open a resumable background search for ``request``.

        Unlike :meth:`submit`, nothing blocks: the returned
        :class:`PlanSession` consumes its budgets one :meth:`PlanSession.poll`
        at a time, its :meth:`~PlanSession.best_so_far` is readable between
        polls, and every improving poll refreshes the plan cache for the
        session's fingerprint.  The session is seeded exactly like a blocking
        request — from the exact cached entry (if any) plus the family
        warm-start — so polling starts from the best plan the service already
        knows.  ``max_workers`` caps the cores a multi-chain session may
        borrow from the shared governor per poll (the background core share).
        """
        if self._closed:
            raise RuntimeError("PlanService has been shut down")
        fingerprint = request.fingerprint()
        options = allocation_options(
            request.graph, request.workload, request.cluster, request.prune
        )
        seed_plans: List[ExecutionPlan] = []
        warm_started = False
        seeded_from: Optional[str] = None
        exact = self.cache.peek(fingerprint.key)
        if exact is not None:
            seed_plans.append(exact.plan(request.cluster))
        if self.warm_start:
            entry = select_warm_start(self.cache, fingerprint)
            if entry is not None:
                warm_plan = adapt_plan(entry, request.graph, request.cluster, options)
                if warm_plan is not None:
                    seed_plans.append(warm_plan)
                    warm_started = True
                    seeded_from = entry.key
        estimator = self._estimator_for(request, fingerprint)
        searcher = MCMCSearcher(
            graph=request.graph,
            workload=request.workload,
            cluster=request.cluster,
            estimator=estimator,
            options=options,
            prune=request.prune,
            config=request.search,
            seed_plans=seed_plans,
            core_budget=self.core_budget,
        )
        session = SearchSession(
            searcher,
            slice_iterations=slice_iterations,
            slice_time_s=slice_time_s,
            max_workers=max_workers,
        ).start()
        with self._lock:
            self._session_counter += 1
            session_id = f"session-{self._session_counter}"
            handle = PlanSession(
                service=self,
                session_id=session_id,
                request=request,
                fingerprint=fingerprint,
                session=session,
                estimator=estimator,
                warm_started=warm_started,
                seeded_from=seeded_from,
            )
            self._sessions[session_id] = handle
            self.stats.sessions_started += 1
        get_ledger().record(
            "plan_request",
            fingerprint=fingerprint.key,
            outcome="session",
            session_id=session_id,
            exact_seed=exact is not None,
            seeded_from=seeded_from,
        )
        self._m_sessions.inc()
        self._log.debug(
            "opened online session %s", session_id,
            extra={"fingerprint": fingerprint.key, "session_id": session_id},
        )
        return handle

    def get_session(self, session_id: str) -> PlanSession:
        """Look up a live session by id (:class:`KeyError` when unknown)."""
        with self._lock:
            return self._sessions[session_id]

    def poll_session(self, session_id: str) -> SessionStatus:
        """Advance a registered session by one slice."""
        return self.get_session(session_id).poll()

    def stop_session(self, session_id: str) -> PlanResponse:
        """Stop and unregister a session; returns its settled response."""
        with self._lock:
            handle = self._sessions.pop(session_id)
        return handle.stop()

    @property
    def active_sessions(self) -> List[str]:
        """Ids of the currently registered online sessions."""
        with self._lock:
            return list(self._sessions)

    def _session_write_back(self, handle: PlanSession) -> bool:
        """Refresh the cache when a session's current best beats the entry."""
        result = handle.session.result()
        peak = handle.estimator.max_memory(result.best_plan).max_bytes
        entry = PlanCacheEntry.from_search_result(
            handle.fingerprint, result, handle.request.cluster, peak
        )
        if not self.cache.refresh(entry):
            return False
        with self._lock:
            self.stats.cache_refreshes += 1
        self._m_cache_refreshes.inc()
        return True

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _clear_inflight(self, key: str) -> None:
        with self._lock:
            self._inflight.pop(key, None)

    def _estimator_for(
        self, request: PlanRequest, fingerprint: WorkloadFingerprint
    ) -> RuntimeEstimator:
        """One shared fast-path estimator per (graph, workload, cluster).

        Searches that pose the same estimation problem (identical or
        differently-budgeted requests over one workload) reuse the memoised
        per-call and per-edge costs instead of re-deriving them from scratch.
        """
        key = fingerprint.estimator_key
        with self._lock:
            estimator = self._estimators.get(key)
            if estimator is not None:
                self._estimators.move_to_end(key)
                self.stats.estimator_reuses += 1
                return estimator
        estimator = RuntimeEstimator(request.graph, request.workload, request.cluster)
        with self._lock:
            existing = self._estimators.get(key)
            if existing is not None:
                self.stats.estimator_reuses += 1
                return existing
            self._estimators[key] = estimator
            while len(self._estimators) > self._estimator_cache_size:
                self._estimators.popitem(last=False)
        return estimator

    def _join_inflight(
        self,
        primary: "Future[PlanResponse]",
    ) -> "Future[PlanResponse]":
        """Chain a secondary future onto an in-flight search.

        The joined caller receives the same plan but its response stats are
        marked as a dedup join (it consumed no search budget of its own; the
        observed latency is the primary search's, which is what the joined
        caller actually waited for).
        """
        secondary: "Future[PlanResponse]" = Future()

        def _propagate(done: "Future[PlanResponse]") -> None:
            exc = done.exception()
            if exc is not None:
                secondary.set_exception(exc)
                return
            response = done.result()
            self._m_latency.labels(outcome="dedup").observe(
                response.stats.total_seconds
            )
            secondary.set_result(
                dataclasses.replace(
                    response,
                    stats=dataclasses.replace(response.stats, dedup_joined=True),
                )
            )

        primary.add_done_callback(_propagate)
        return secondary

    def _response_from_entry(
        self,
        entry: PlanCacheEntry,
        request: PlanRequest,
        fingerprint: WorkloadFingerprint,
        submitted_at: float,
    ) -> PlanResponse:
        result = entry.to_search_result(request.cluster)
        elapsed = time.perf_counter() - submitted_at
        stats = RequestStats(
            fingerprint=fingerprint.key,
            cache_hit=True,
            total_seconds=elapsed,
        )
        return PlanResponse(
            plan=result.best_plan,
            cost=result.best_cost,
            result=result,
            stats=stats,
            peak_memory_bytes=entry.peak_memory_bytes,
            feasible=self._fits_memory(entry.peak_memory_bytes, request.cluster),
        )

    @staticmethod
    def _fits_memory(peak_memory_bytes: float, cluster: ClusterSpec) -> bool:
        """Whether a plan's estimated MaxMem fits the per-device capacity.

        An unknown peak (0, from legacy cache entries) is treated as fitting —
        the pre-existing behaviour of serving the plan unconditionally.
        """
        if peak_memory_bytes <= 0:
            return True
        return peak_memory_bytes < cluster.device_memory_bytes

    def _collect_gauges(self) -> None:
        """Publish lazily collected gauges (run by registry snapshots/exports).

        The estimator's eval cache counts hits/misses on the search hot path
        with plain attribute increments; this collector sums those private
        counters across the service's cached estimators and publishes them as
        gauges — observability without touching the hot loop.
        """
        with self._lock:
            estimators = list(self._estimators.values())
            hit_rate = self.stats.hit_rate
        hits = sum(e.eval_cache_stats.hits for e in estimators)
        misses = sum(e.eval_cache_stats.misses for e in estimators)
        evictions = sum(e.eval_cache_stats.evictions for e in estimators)
        lookups = hits + misses
        self.registry.gauge(
            "service_cache_hit_ratio", "Plan-cache hit fraction of all requests"
        ).set(hit_rate)
        self.registry.gauge(
            "service_eval_cache_lookups", "Estimator eval-cache lookups (cached estimators)"
        ).set(lookups)
        self.registry.gauge(
            "service_eval_cache_hit_ratio", "Estimator eval-cache hit fraction"
        ).set(hits / lookups if lookups else 0.0)
        self.registry.gauge(
            "service_eval_cache_evictions", "Estimator eval-cache LRU evictions"
        ).set(evictions)
        # The batch kernel counts one lookup per base-plan encode (one per
        # sweep, not per proposal) into its own EvalCacheStats; published
        # with the same shape as the scalar gauges above.
        batch_hits = sum(e.batch_eval_stats.hits for e in estimators)
        batch_misses = sum(e.batch_eval_stats.misses for e in estimators)
        batch_lookups = batch_hits + batch_misses
        self.registry.gauge(
            "service_batch_eval_lookups",
            "Batch-kernel base-plan encode lookups (one per sweep)",
        ).set(batch_lookups)
        self.registry.gauge(
            "service_batch_eval_hit_ratio",
            "Batch-kernel base-plan encode hit fraction",
        ).set(batch_hits / batch_lookups if batch_lookups else 0.0)

    def _execute(
        self,
        request: PlanRequest,
        fingerprint: WorkloadFingerprint,
        submitted_at: float,
        caller_context: Optional[SpanContext] = None,
    ) -> PlanResponse:
        self._m_inflight.inc()
        try:
            # Re-establish the submitter's span context on this worker
            # thread, then span the whole request under it.
            tracer = get_tracer()
            with tracer.activate(caller_context):
                with tracer.start_span(
                    "plan request",
                    category="service",
                    args={"fingerprint": fingerprint.key},
                ) as request_span:
                    response = self._execute_inner(
                        request, fingerprint, submitted_at
                    )
                    request_span.set(
                        outcome=response.stats.outcome,
                        cost=response.cost,
                        seeded_from=response.stats.seeded_from,
                    )
            return response
        finally:
            self._m_inflight.dec()

    def _execute_inner(
        self,
        request: PlanRequest,
        fingerprint: WorkloadFingerprint,
        submitted_at: float,
    ) -> PlanResponse:
        started_at = time.perf_counter()
        queue_seconds = started_at - submitted_at
        options = allocation_options(
            request.graph, request.workload, request.cluster, request.prune
        )
        seed_plans: List[ExecutionPlan] = []
        warm_started = False
        seeded_from: Optional[str] = None
        if self.warm_start:
            entry = select_warm_start(self.cache, fingerprint)
            if entry is not None:
                warm_plan = adapt_plan(entry, request.graph, request.cluster, options)
                if warm_plan is not None:
                    seed_plans.append(warm_plan)
                    warm_started = True
                    seeded_from = entry.key
        estimator = self._estimator_for(request, fingerprint)
        searcher = MCMCSearcher(
            graph=request.graph,
            workload=request.workload,
            cluster=request.cluster,
            estimator=estimator,
            options=options,
            prune=request.prune,
            config=request.search,
            seed_plans=seed_plans,
            core_budget=self.core_budget,
        )
        result = searcher.search()
        peak_memory_bytes = estimator.max_memory(result.best_plan).max_bytes
        self.cache.put(
            PlanCacheEntry.from_search_result(
                fingerprint, result, request.cluster, peak_memory_bytes
            )
        )
        finished_at = time.perf_counter()
        with self._lock:
            if warm_started:
                self.stats.warm_starts += 1
            if result.execution_mode == "process":
                self.stats.parallel_searches += 1
            self.stats.search_seconds += result.elapsed_seconds
        total_seconds = finished_at - submitted_at
        outcome = "warm" if warm_started else "cold"
        get_ledger().record(
            "plan_request",
            fingerprint=fingerprint.key,
            outcome=outcome,
            seeded_from=seeded_from,
            cost=result.best_cost,
            initial_cost=result.initial_cost,
            search_seconds=result.elapsed_seconds,
        )
        self._m_requests.labels(outcome=outcome).inc()
        self._m_latency.labels(outcome=outcome).observe(total_seconds)
        self._m_search_seconds.inc(result.elapsed_seconds)
        self._log.debug(
            "served %s search in %.3fs (queue %.3fs, cost %.4f)",
            outcome,
            total_seconds,
            queue_seconds,
            result.best_cost,
            extra={
                "fingerprint": fingerprint.key,
                "outcome": outcome,
                "search_seconds": result.elapsed_seconds,
            },
        )
        stats = RequestStats(
            fingerprint=fingerprint.key,
            cache_hit=False,
            warm_started=warm_started,
            queue_seconds=queue_seconds,
            search_seconds=result.elapsed_seconds,
            total_seconds=total_seconds,
            seeded_from=seeded_from,
        )
        return PlanResponse(
            plan=result.best_plan,
            cost=result.best_cost,
            result=result,
            stats=stats,
            peak_memory_bytes=peak_memory_bytes,
            feasible=self._fits_memory(peak_memory_bytes, request.cluster),
        )

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting requests and optionally wait for in-flight searches.

        Open online sessions are stopped (releasing their worker pools) and
        settled with a final cache write-back before the request pool drains.
        """
        self._closed = True
        with self._lock:
            sessions = list(self._sessions.values())
            self._sessions.clear()
        for handle in sessions:
            handle.stop()
        self._pool.shutdown(wait=wait)

    def close(self, wait: bool = True) -> None:
        """Shut the worker pool down and flush the plan cache to disk.

        ``shutdown`` alone leaves a persistent cache at whatever state its
        last mutation wrote; ``close`` additionally forces a final
        :meth:`PlanCache.flush`, so a persisted cache is never lost on exit.
        Safe to call more than once.
        """
        self.shutdown(wait=wait)
        self.cache.flush()
        # Publish the final gauge values before unhooking the collector, so
        # snapshots taken after close still carry this service's last state.
        if self.registry.enabled:
            self._collect_gauges()
        self.registry.unregister_collector(self._collector)

    def __enter__(self) -> "PlanService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
