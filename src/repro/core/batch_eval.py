"""Vectorized batch plan evaluation: the numpy array-of-plans estimator kernel.

The scalar estimator scores one proposal at a time through Python objects
(:meth:`~repro.core.estimator.RuntimeEstimator.cost_delta`); this module
scores a whole *batch* of plans in vectorized numpy sweeps.  The key data
structure is :class:`BatchPlanState`, a structure-of-arrays over the
per-workload lookup tables the scalar path memoises one entry at a time:

* per-call **option tables** — every allocation option of every call gets a
  dense index, and flat ``[n_calls, capacity]`` arrays hold its wall time,
  memory contributions (static / parameter-shard / active bytes), mesh span
  and the interned layout / transfer / node-range class ids that decide
  whether a reallocation or data transfer is charged;
* per-reallocation-edge **value tables** keyed by the destination's (TP, PP)
  class and the cross-node bit — exactly the approximate reallocation
  model's memo key (the exact broadcast-schedule model keys on full layout
  pairs and is therefore not batchable; estimators using it report
  ``batch_supported = False``);
* per-call **transfer tables** keyed by the cross-node bit.

A plan is then just an ``int64`` row of per-call option indices, and
:meth:`BatchPlanState.evaluate` runs Algorithm 1 over a ``[B, n_calls]``
index matrix in lock-step: every row completes exactly one call per step,
the frontier pick replicates the scalar heap's ``(ready_time, rank)``
ordering with a two-stage masked minimum, and the boundary-event MaxMem is a
per-GPU masked accumulation that combines contributions in exactly the
ascending-call-id / first-seen-model order of
:meth:`RuntimeEstimator._aggregate_memory`.  Every float is produced by the
same memoised scalar functions and every arithmetic chain keeps the scalar
path's association order, so the batch result is **bit-identical** to
``cost()`` / ``cost_delta()`` — the test suite proves this through the
estimator's existing ``cross_check`` machinery.

The tables are built once per workload (cheap after the searcher's greedy
initialisation has warmed the per-call time memo) and can be shipped to
chain worker processes through one ``multiprocessing.shared_memory`` block
(:class:`SharedTables`, fail-soft to plain pickling) so workers attach
zero-copy views instead of recomputing ~thousands of cost-model entries.
:class:`PlanCodec` complements that by encoding plans as per-call option
indices for the per-poll ``ChainState`` round-trips of sliced searches.

Knobs (environment variables, read per call so tests can flip them):

``REPRO_BATCH_EVAL``
    ``on`` / ``off`` / ``auto`` (default ``auto``).  Gates whether the MCMC
    searcher scores proposal batches through this kernel.  The mode never
    changes search results — the batched chain consumes the RNG stream
    identically to the scalar chain — only throughput.
``REPRO_SHARED_TABLES``
    ``on`` (default) / ``off``.  Whether parallel searches ship the batch
    tables to workers via shared memory; ``off`` (or any shared-memory
    failure) falls back to pickling the arrays into the worker problem.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, TYPE_CHECKING

import numpy as np

from .plan import Allocation, ExecutionPlan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .estimator import RuntimeEstimator

__all__ = [
    "BatchPlanState",
    "PlanCodec",
    "SharedTables",
    "SharedTablesHandle",
    "attach_shared_tables",
    "batch_eval_mode",
    "shared_tables_enabled",
]


def batch_eval_mode() -> str:
    """``REPRO_BATCH_EVAL``: ``on`` / ``off`` / ``auto`` (default ``auto``)."""
    raw = os.environ.get("REPRO_BATCH_EVAL", "auto").strip().lower()
    return raw if raw in ("on", "off", "auto") else "auto"


def shared_tables_enabled() -> bool:
    """``REPRO_SHARED_TABLES``: shared-memory table shipping (default on)."""
    return os.environ.get("REPRO_SHARED_TABLES", "on").strip().lower() != "off"


_GROW_MIN = 16
"""Minimum option-table capacity when growing the dynamic region."""

_NO_CALL = np.iinfo(np.int64).max
"""Sentinel first-cover call id for (model, GPU) pairs never covered."""

#: Arrays shipped to worker processes (shared memory or pickled), in a fixed
#: order so offsets are reproducible.  Everything else — key dicts, intern
#: maps, reallocation value tables — is rebuilt deterministically from the
#: option table on the other side.
_SHIPPED_FIELDS = (
    "dur",
    "mem_static",
    "mem_param",
    "mem_active",
    "span_lo",
    "span_hi",
    "layout_id",
    "transfer_id",
    "node_id",
    "tp_pp_id",
    "static_counts",
    "transfer_val",
)


class BatchPlanState:
    """Structure-of-arrays lookup tables for batched plan evaluation.

    Built from an estimator (and, usually, the searcher's option table via
    ``options``); allocations outside the primed universe — e.g. align-move
    proposals borrowing another call's allocation — register lazily into a
    process-local dynamic region.  All values come from the estimator's
    memoised scalar functions, so batch and scalar paths cannot diverge.

    Thread safety matches the estimator's memo caches: reads are lock-free,
    registrations (the cold path) serialise on a small lock, and in-flight
    evaluations keep working on the array objects they captured even if a
    concurrent registration grows (replaces) the attributes.
    """

    def __init__(
        self,
        estimator: "RuntimeEstimator",
        options: Optional[Mapping[str, Sequence[Allocation]]] = None,
        _arrays: Optional[Dict[str, np.ndarray]] = None,
        _shm_ref: Optional[object] = None,
    ) -> None:
        est = estimator
        self._est = est
        self._lock = threading.Lock()
        n = len(est._call_names)
        self.n_calls = n
        cluster = est.cluster
        self.n_gpus = cluster.n_gpus
        self._rpc_overhead = float(cluster.rpc_overhead_s)
        self._device_memory_bytes = float(cluster.device_memory_bytes)
        # Per-call option tables (grown on demand).
        self.capacity = 0
        self.counts = np.zeros(n, dtype=np.int64)
        self.dur = np.zeros((n, 0))
        self.mem_static = np.zeros((n, 0))
        self.mem_param = np.zeros((n, 0))
        self.mem_active = np.zeros((n, 0))
        self.span_lo = np.zeros((n, 0), dtype=np.int64)
        self.span_hi = np.zeros((n, 0), dtype=np.int64)
        self.layout_id = np.zeros((n, 0), dtype=np.int64)
        self.transfer_id = np.zeros((n, 0), dtype=np.int64)
        self.node_id = np.zeros((n, 0), dtype=np.int64)
        self.tp_pp_id = np.zeros((n, 0), dtype=np.int64)
        self._writable = True
        self._shm_ref = _shm_ref  # pins an attached shared-memory block
        # Key -> index maps (per call) and the class-id intern maps.  The
        # class ids are assigned in registration-encounter order, which makes
        # a fresh prime over the same option table reproduce them exactly —
        # the invariant that lets workers attach shipped arrays without
        # shipping the maps themselves.
        self.key_to_idx: List[Dict[Tuple, int]] = [dict() for _ in range(n)]
        self.allocs: List[List[Allocation]] = [[] for _ in range(n)]
        # Object-identity fast path for index_of: id(alloc) -> index, with a
        # keepalive list so a collected allocation can never recycle an id
        # that still maps to a stale index.
        self._idx_memo: List[Dict[int, int]] = [dict() for _ in range(n)]
        self._idx_keep: List[List[Allocation]] = [[] for _ in range(n)]
        self._layout_ids: Dict[Tuple, int] = {}
        self._transfer_ids: Dict[Tuple, int] = {}
        self._node_ids: Dict[Tuple, int] = {}
        self._tp_pp_ids: Dict[Tuple, int] = {}
        # Reallocation edges (src call id, dst call id, model name) with one
        # lazily NaN-filled value table [tp_pp classes, 2 (cross)] per edge.
        self._realloc_edges: List[Tuple[int, int, str]] = []
        for model_name, calls in est._model_calls.items():
            if len(calls) < 2:
                continue
            sequence = calls + [calls[0]]
            for src_call, dst_call in zip(sequence[:-1], sequence[1:]):
                self._realloc_edges.append(
                    (est._call_index[src_call], est._call_index[dst_call], model_name)
                )
        self._realloc_vals: List[np.ndarray] = [
            np.full((0, 2), np.nan) for _ in self._realloc_edges
        ]
        # Per-call data-transfer seconds by cross-node bit, and graph edges.
        self.transfer_val = np.array(
            [
                [est._transfer_seconds(name, False), est._transfer_seconds(name, True)]
                for name in est._call_names
            ]
        ).reshape(n, 2)
        self.edge_src = np.array(
            [est._call_index[s] for s, _ in est._edges], dtype=np.int64
        )
        self.edge_dst = np.array(
            [est._call_index[d] for _, d in est._edges], dtype=np.int64
        )
        order = np.lexsort((np.arange(len(self.edge_dst)), self.edge_dst))
        self._edge_order = order
        sorted_dst = self.edge_dst[order]
        if len(order):
            starts = np.flatnonzero(
                np.r_[True, sorted_dst[1:] != sorted_dst[:-1]]
            )
            self._child_starts = starts
            self._child_cols = sorted_dst[starts]
        else:
            self._child_starts = np.zeros(0, dtype=np.int64)
            self._child_cols = np.zeros(0, dtype=np.int64)
        # Simulation constants mirroring the scalar heap setup.
        self._rank_of = np.array(est._rank_of, dtype=np.int64)
        self._rank_to_id = np.array(est._rank_to_id, dtype=np.int64)
        parent_mat = np.zeros((n, n))
        for s, d in zip(self.edge_src, self.edge_dst):
            parent_mat[s, d] += 1.0
        self._parent_mat = parent_mat
        self._indeg = parent_mat.sum(axis=0)
        # Model ids in first-appearance order over the call list.
        model_ids: Dict[str, int] = {}
        for name in est._model_by_id:
            model_ids.setdefault(name, len(model_ids))
        self.n_models = len(model_ids)
        self._model_of_call = np.array(
            [model_ids[m] for m in est._model_by_id], dtype=np.int64
        )
        self._cols = np.arange(n)
        self._gpu_ids = np.arange(self.n_gpus, dtype=np.int64)
        self.static_counts: Optional[np.ndarray] = None

        if _arrays is not None:
            self._adopt_arrays(options or {}, _arrays)
        elif options is not None:
            self.prime(options)

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    @property
    def primed(self) -> bool:
        """Whether the state was primed over a full option table."""
        return self.static_counts is not None

    def prime(self, options: Mapping[str, Sequence[Allocation]]) -> None:
        """Register every allocation option, in deterministic table order.

        The static region this creates is what ships to worker processes;
        its indices (and the class-id intern maps) are a pure function of
        the option table's order, so both sides agree without exchanging
        the maps.
        """
        est = self._est
        for call_id, name in enumerate(est._call_names):
            for alloc in options.get(name, ()):
                self.index_of(call_id, alloc)
        self.static_counts = self.counts.copy()

    def index_of(
        self, call_id: int, alloc: Allocation, key: Optional[Tuple] = None
    ) -> int:
        """Dense option index of ``alloc`` for ``call_id`` (registering it
        on first sight — the dynamic, process-local region)."""
        memo = self._idx_memo[call_id]
        idx = memo.get(id(alloc))
        if idx is not None:
            return idx
        if key is None:
            key = self._est._key_for(alloc)
        idx = self.key_to_idx[call_id].get(key)
        if idx is None:
            idx = self._register(call_id, alloc, key)
        memo[id(alloc)] = idx
        self._idx_keep[call_id].append(alloc)
        return idx

    def _register(self, call_id: int, alloc: Allocation, key: Tuple) -> int:
        with self._lock:
            idx = self.key_to_idx[call_id].get(key)
            if idx is not None:  # lost a benign registration race
                return idx
            self._ensure_writable()
            idx = int(self.counts[call_id])
            if idx >= self.capacity:
                self._grow(idx + 1)
            est = self._est
            name = est._call_names[call_id]
            self.dur[call_id, idx] = est.call_time(name, alloc)
            call_static, param_bytes, call_active = est._mem_contrib(name, alloc)
            self.mem_static[call_id, idx] = call_static
            self.mem_param[call_id, idx] = param_bytes
            self.mem_active[call_id, idx] = call_active
            lo, hi = est._mesh_span(alloc.mesh)
            self.span_lo[call_id, idx] = lo
            self.span_hi[call_id, idx] = hi
            self.layout_id[call_id, idx] = self._intern(self._layout_ids, key[:7])
            self.transfer_id[call_id, idx] = self._intern(self._transfer_ids, key[:6])
            self.node_id[call_id, idx] = self._intern(self._node_ids, key[:2])
            tp_pp = self._intern(self._tp_pp_ids, (key[5], key[6]))
            self.tp_pp_id[call_id, idx] = tp_pp
            self._grow_realloc(tp_pp + 1)
            self.allocs[call_id].append(alloc)
            self.key_to_idx[call_id][key] = idx
            self.counts[call_id] = idx + 1
            return idx

    @staticmethod
    def _intern(table: Dict[Tuple, int], key: Tuple) -> int:
        idx = table.get(key)
        if idx is None:
            idx = len(table)
            table[key] = idx
        return idx

    def _grow(self, needed: int) -> None:
        new_cap = max(needed, self.capacity * 2, _GROW_MIN)
        extra = new_cap - self.capacity
        n = self.n_calls

        def pad(arr: np.ndarray, fill) -> np.ndarray:
            block = np.full((n, extra), fill, dtype=arr.dtype)
            return np.concatenate([arr, block], axis=1)

        self.dur = pad(self.dur, 0.0)
        self.mem_static = pad(self.mem_static, 0.0)
        self.mem_param = pad(self.mem_param, 0.0)
        self.mem_active = pad(self.mem_active, 0.0)
        self.span_lo = pad(self.span_lo, 0)
        self.span_hi = pad(self.span_hi, 0)
        self.layout_id = pad(self.layout_id, -1)
        self.transfer_id = pad(self.transfer_id, -1)
        self.node_id = pad(self.node_id, -1)
        self.tp_pp_id = pad(self.tp_pp_id, -1)
        self.capacity = new_cap

    def _grow_realloc(self, n_classes: int) -> None:
        for i, table in enumerate(self._realloc_vals):
            if len(table) < n_classes:
                grown = np.full((max(n_classes, 2 * len(table)), 2), np.nan)
                grown[: len(table)] = table
                self._realloc_vals[i] = grown

    def _ensure_writable(self) -> None:
        """Copy-on-write for states attached to read-only shared memory."""
        if self._writable:
            return
        for field in (
            "dur", "mem_static", "mem_param", "mem_active",
            "span_lo", "span_hi", "layout_id", "transfer_id",
            "node_id", "tp_pp_id",
        ):
            setattr(self, field, getattr(self, field).copy())
        self._writable = True
        self._shm_ref = None

    # ------------------------------------------------------------------ #
    # Shipping (shared memory / pickled arrays)
    # ------------------------------------------------------------------ #
    def export_arrays(self) -> Dict[str, np.ndarray]:
        """Static-region copies of the shipped tables (prime first)."""
        if self.static_counts is None:
            raise RuntimeError("cannot export an unprimed BatchPlanState")
        cap = int(self.static_counts.max(initial=0))
        out: Dict[str, np.ndarray] = {}
        for field in _SHIPPED_FIELDS:
            if field == "static_counts":
                out[field] = self.static_counts.copy()
            elif field == "transfer_val":
                out[field] = np.ascontiguousarray(self.transfer_val)
            else:
                out[field] = np.ascontiguousarray(getattr(self, field)[:, :cap])
        return out

    def _adopt_arrays(
        self,
        options: Mapping[str, Sequence[Allocation]],
        arrays: Dict[str, np.ndarray],
    ) -> None:
        """Rebuild the key/intern maps from ``options`` and take the shipped
        numeric arrays as the static region (zero scalar-model calls)."""
        est = self._est
        counts = np.zeros(self.n_calls, dtype=np.int64)
        for call_id, name in enumerate(est._call_names):
            seen = self.key_to_idx[call_id]
            for alloc in options.get(name, ()):
                key = est._key_for(alloc)
                if key in seen:
                    continue
                seen[key] = int(counts[call_id])
                self.allocs[call_id].append(alloc)
                self._intern(self._layout_ids, key[:7])
                self._intern(self._transfer_ids, key[:6])
                self._intern(self._node_ids, key[:2])
                self._grow_realloc(
                    self._intern(self._tp_pp_ids, (key[5], key[6])) + 1
                )
                counts[call_id] += 1
        shipped_counts = np.asarray(arrays["static_counts"], dtype=np.int64)
        if not np.array_equal(counts, shipped_counts):
            raise ValueError(
                "shipped batch tables do not match the option table "
                f"(counts {shipped_counts.tolist()} != {counts.tolist()})"
            )
        for field in _SHIPPED_FIELDS:
            if field in ("static_counts", "transfer_val"):
                continue
            setattr(self, field, arrays[field])
        self.transfer_val = np.asarray(arrays["transfer_val"]).reshape(
            self.n_calls, 2
        )
        self.counts = counts
        self.static_counts = counts.copy()
        self.capacity = self.dur.shape[1]
        self._writable = False

    # ------------------------------------------------------------------ #
    # Plan encoding
    # ------------------------------------------------------------------ #
    def encode_plan(self, plan: ExecutionPlan) -> np.ndarray:
        """Per-call option-index row of ``plan`` (registering lazily)."""
        est = self._est
        signature = est._plan_signature(plan)
        row = np.empty(self.n_calls, dtype=np.int64)
        for call_id, name in enumerate(est._call_names):
            row[call_id] = self.index_of(call_id, plan[name], key=signature[call_id])
        return row

    # ------------------------------------------------------------------ #
    # The kernel
    # ------------------------------------------------------------------ #
    def _fill_realloc(
        self,
        edge_pos: int,
        src_id: int,
        dst_id: int,
        model: str,
        idx: np.ndarray,
        need: np.ndarray,
    ) -> None:
        """Lazily fill missing reallocation-value entries for one edge.

        Values go through :meth:`RuntimeEstimator._realloc_seconds` (and its
        memo), whose approximate-model key is exactly ``(model, dst tp,
        dst pp, cross)`` — so any differing-layout row realising a missing
        (class, cross) cell is a valid representative.  ``need`` masks the
        rows whose layouts actually differ: equal-layout pairs never reach
        ``_realloc_seconds`` on the scalar path (the model shortcuts
        identical allocations to zero), so they must not seed the memo here
        either.
        """
        est = self._est
        with self._lock:
            table = self._realloc_vals[edge_pos]
            dst_idx = idx[:, dst_id]
            classes = self.tp_pp_id[dst_id, dst_idx]
            cross = (
                self.node_id[src_id, idx[:, src_id]]
                != self.node_id[dst_id, dst_idx]
            ).astype(np.int64)
            missing = np.flatnonzero(need & np.isnan(table[classes, cross]))
            for b in missing:
                cls, crs = int(classes[b]), int(cross[b])
                if not np.isnan(table[cls, crs]):
                    continue
                src_alloc = self.allocs[src_id][int(idx[b, src_id])]
                dst_alloc = self.allocs[dst_id][int(idx[b, dst_id])]
                table[cls, crs] = est._realloc_seconds(model, src_alloc, dst_alloc)

    def evaluate(self, idx: np.ndarray, oom_penalty: float) -> np.ndarray:
        """Scores of a ``[B, n_calls]`` option-index matrix, one per row.

        Bit-identical to ``cost()`` of the corresponding plans: the same
        table values, combined in the same order — see the module docstring
        for the exact correspondence argument.
        """
        B, n = idx.shape
        if n == 0 or B == 0:
            return np.zeros(B)
        cols = self._cols
        dur = self.dur[cols, idx]
        lo = self.span_lo[cols, idx]
        hi = self.span_hi[cols, idx]
        layout = self.layout_id[cols, idx]
        transf = self.transfer_id[cols, idx]
        node = self.node_id[cols, idx]

        # Reallocation seconds charged per call (destination side).
        realloc_in = np.zeros((B, n))
        for pos, (s, d, model) in enumerate(self._realloc_edges):
            layout_eq = layout[:, s] == layout[:, d]
            classes = self.tp_pp_id[d, idx[:, d]]
            cross = (node[:, s] != node[:, d]).astype(np.int64)
            vals = self._realloc_vals[pos][classes, cross]
            need = ~layout_eq
            if np.isnan(vals[need]).any():
                self._fill_realloc(pos, s, d, model, idx, need)
                vals = self._realloc_vals[pos][classes, cross]
            realloc_in[:, d] = np.where(layout_eq, 0.0, vals)

        # Data-transfer seconds per graph edge.
        E = len(self.edge_src)
        if E:
            es, ed = self.edge_src, self.edge_dst
            tv = self.transfer_val[ed]  # [E, 2]
            cross_e = node[:, es] != node[:, ed]
            tvals = np.where(cross_e, tv[:, 1], tv[:, 0])
            trans = np.where(transf[:, es] == transf[:, ed], 0.0, tvals)
        else:
            trans = np.zeros((B, 0))

        # Lock-step Algorithm-1 simulation: every row completes exactly one
        # call per step; the frontier pick is min (ready_time, rank) over
        # ready calls — the scalar heap's exact ordering.
        gpu_ids = self._gpu_ids
        cover = (gpu_ids >= lo[:, :, None]) & (gpu_ids < hi[:, :, None])
        rows = np.arange(B)
        ready = np.zeros((B, n))
        done = np.zeros((B, n))
        gpu_free = np.zeros((B, self.n_gpus))
        total = np.zeros(B)
        rank_of, rank_to_id = self._rank_of, self._rank_to_id
        parent_mat, indeg = self._parent_mat, self._indeg
        rpc = self._rpc_overhead
        for _ in range(n):
            parents_done = done @ parent_mat
            avail = (parents_done == indeg) & (done == 0.0)
            ready_m = np.where(avail, ready, np.inf)
            min_ready = ready_m.min(axis=1)
            cand = avail & (ready_m == min_ready[:, None])
            chosen = rank_to_id[np.where(cand, rank_of, n).min(axis=1)]
            covered = cover[rows, chosen]
            mesh_free = np.where(covered, gpu_free, -np.inf).max(axis=1)
            start = np.maximum(min_ready, mesh_free)
            end = start + dur[rows, chosen]
            end = end + realloc_in[rows, chosen]
            end = end + rpc
            total = np.maximum(total, end)
            done[rows, chosen] = 1.0
            gpu_free = np.where(covered, end[:, None], gpu_free)
            if E:
                upd = np.where(
                    self.edge_src == chosen[:, None], end[:, None] + trans, -np.inf
                )
                grouped = np.maximum.reduceat(
                    upd[:, self._edge_order], self._child_starts, axis=1
                )
                cc = self._child_cols
                ready[:, cc] = np.maximum(ready[:, cc], grouped)

        # MaxMem: per-GPU totals combined exactly like _aggregate_memory —
        # static bytes summed in ascending call-id order, the per-model
        # parameter maxima summed in first-seen order, active bytes maxed.
        ms = self.mem_static[cols, idx]
        mp = self.mem_param[cols, idx]
        ma = self.mem_active[cols, idx]
        G = self.n_gpus
        static_pg = np.zeros((B, G))
        active_pg = np.zeros((B, G))
        pmax = np.full((B, self.n_models, G), -np.inf)
        first = np.full((B, self.n_models, G), _NO_CALL, dtype=np.int64)
        model_of = self._model_of_call
        for c in range(n):
            cov = cover[:, c, :]
            # Masked accumulate via bool multiply: uncovered cells see
            # ``x + 0.0`` / ``max(x, 0.0)``, both identity for the
            # non-negative byte counts involved — bit-identical to the
            # three-operand np.where form, one array pass cheaper.
            static_pg += ms[:, c, None] * cov
            np.maximum(active_pg, ma[:, c, None] * cov, out=active_pg)
            m = model_of[c]
            pmax[:, m, :] = np.where(
                cov, np.maximum(pmax[:, m, :], mp[:, c, None]), pmax[:, m, :]
            )
            first[:, m, :] = np.where(
                cov & (first[:, m, :] == _NO_CALL), c, first[:, m, :]
            )
        order = np.argsort(first, axis=1, kind="stable")
        b_ix = rows[:, None, None]
        g_ix = self._gpu_ids[None, None, :]
        pmax_sorted = pmax[b_ix, order, g_ix]
        first_sorted = first[b_ix, order, g_ix]
        param_sum = np.zeros((B, G))
        for j in range(self.n_models):
            present = first_sorted[:, j, :] != _NO_CALL
            param_sum = param_sum + np.where(present, pmax_sorted[:, j, :], 0.0)
        per_gpu = (static_pg + param_sum) + active_pg
        max_bytes = per_gpu.max(axis=1, initial=0.0)
        return np.where(
            max_bytes < self._device_memory_bytes, total, oom_penalty * total
        )


# ---------------------------------------------------------------------- #
# Plan codec: compact cross-process plan encoding
# ---------------------------------------------------------------------- #
class PlanCodec:
    """Encode plans as per-call option indices over a shared allocation universe.

    Both sides of a worker round-trip build the codec from the same option
    table (which already ships with :class:`ChainProblem`), so an encoded
    plan is just ``(name, tuple_of_ints)`` — the "chain-local scalars" a
    per-poll :class:`ChainState` round-trip should carry instead of full
    ``Allocation`` object graphs.  Plans containing an allocation outside
    the universe (possible after align moves across calls with disjoint
    option tables) simply stay unencoded; the codec is an optimisation, not
    a requirement.
    """

    def __init__(
        self,
        call_names: Sequence[str],
        options: Mapping[str, Sequence[Allocation]],
    ) -> None:
        from .estimator import RuntimeEstimator

        self._names = list(call_names)
        self._key = RuntimeEstimator._alloc_key
        self._by_key: Dict[Tuple, int] = {}
        self._allocs: List[Allocation] = []
        for name in self._names:
            for alloc in options.get(name, ()):
                key = self._key(alloc)
                if key not in self._by_key:
                    self._by_key[key] = len(self._allocs)
                    self._allocs.append(alloc)

    def encode(self, plan: ExecutionPlan) -> Optional[Tuple[str, Tuple[int, ...]]]:
        by_key, key = self._by_key, self._key
        try:
            gids = tuple(by_key[key(plan[name])] for name in self._names)
        except KeyError:
            return None
        return (plan.name, gids)

    def decode(self, encoded: Tuple[str, Tuple[int, ...]]) -> ExecutionPlan:
        name, gids = encoded
        allocs = self._allocs
        return ExecutionPlan(
            {call: allocs[gid] for call, gid in zip(self._names, gids)}, name=name
        )


# ---------------------------------------------------------------------- #
# Shared-memory table shipping
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class SharedTablesHandle:
    """Picklable descriptor of one exported shared-memory table block."""

    shm_name: str
    specs: Tuple[Tuple[str, Tuple[int, ...], str, int], ...]
    """Per array: (field name, shape, dtype string, byte offset)."""
    total_bytes: int


class SharedTables:
    """Parent-side owner of one exported shared-memory table block.

    ``export`` copies a primed state's static tables into a single
    ``multiprocessing.shared_memory`` block and returns the owner (or
    ``None`` on any failure — callers fall back to pickling).  The parent
    must keep the owner alive until every worker has attached, then
    :meth:`close` unlinks the block.
    """

    def __init__(self, shm: object, handle: SharedTablesHandle) -> None:
        self._shm = shm
        self.handle = handle

    @classmethod
    def export(cls, state: BatchPlanState) -> Optional["SharedTables"]:
        try:
            from multiprocessing import shared_memory

            arrays = state.export_arrays()
            specs: List[Tuple[str, Tuple[int, ...], str, int]] = []
            offset = 0
            for field in _SHIPPED_FIELDS:
                arr = arrays[field]
                specs.append((field, tuple(arr.shape), arr.dtype.str, offset))
                offset += arr.nbytes
            shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
            for (field, shape, dtype, off) in specs:
                arr = arrays[field]
                view = np.ndarray(shape, dtype=dtype, buffer=shm.buf, offset=off)
                view[...] = arr
            handle = SharedTablesHandle(
                shm_name=shm.name, specs=tuple(specs), total_bytes=offset
            )
            return cls(shm, handle)
        except (OSError, ValueError, ImportError, RuntimeError):
            return None

    def close(self, unlink: bool = True) -> None:
        shm, self._shm = self._shm, None
        if shm is None:
            return
        try:
            shm.close()
            if unlink:
                shm.unlink()
        except (OSError, FileNotFoundError):  # pragma: no cover - already gone
            pass


def attach_shared_tables(
    handle: SharedTablesHandle,
) -> Tuple[Dict[str, np.ndarray], object]:
    """Read-only numpy views over an exported table block.

    Returns ``(arrays, shm)``; the caller must keep ``shm`` referenced for
    as long as the views are used.  Raises on any failure — callers treat
    that as "rebuild locally".
    """
    from multiprocessing import shared_memory

    # Attaching registers the segment with the resource tracker on
    # Python < 3.13 (no ``track=False``), which would unlink it once per
    # worker exit even though the parent owns the lifecycle — and under
    # ``fork`` all workers share the parent's tracker, so the interleaved
    # register/unregister messages race into tracker warnings.  Suppress
    # the registration for the duration of the attach instead.
    try:
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register
        resource_tracker.register = lambda name, rtype: None
    except Exception:  # pragma: no cover - tracker internals vary
        resource_tracker = None
        original_register = None
    try:
        shm = shared_memory.SharedMemory(name=handle.shm_name)
    finally:
        if original_register is not None:
            resource_tracker.register = original_register
    arrays: Dict[str, np.ndarray] = {}
    for field, shape, dtype, offset in handle.specs:
        view = np.ndarray(shape, dtype=dtype, buffer=shm.buf, offset=offset)
        view.flags.writeable = False
        arrays[field] = view
    return arrays, shm


def attach_batch_state(
    estimator: "RuntimeEstimator",
    options: Mapping[str, Sequence[Allocation]],
    shipment: object,
) -> BatchPlanState:
    """Build a :class:`BatchPlanState` from a shipped table payload.

    ``shipment`` is either ``("shm", SharedTablesHandle)`` or
    ``("arrays", dict_of_ndarrays)`` (the pickled fallback).  Raises on any
    mismatch; callers fall back to a local lazy build.
    """
    kind, payload = shipment
    if kind == "shm":
        arrays, shm = attach_shared_tables(payload)
        return BatchPlanState(estimator, options, _arrays=arrays, _shm_ref=shm)
    if kind == "arrays":
        return BatchPlanState(estimator, options, _arrays=dict(payload))
    raise ValueError(f"unknown batch-table shipment kind: {kind!r}")
