"""Exhaustive execution-plan search for small clusters.

Figure 15 of the paper compares the MCMC search against the brute-force
optimum on an 8-GPU cluster.  Full enumeration is only tractable for small
search spaces, so the enumerator accepts an explicit option dictionary (for
example produced by an aggressive :class:`~repro.core.pruning.PruneConfig`)
and refuses to run when the plan count exceeds a safety limit.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..cluster.hardware import ClusterSpec
from .dataflow import DataflowGraph
from .estimator import DEFAULT_OOM_PENALTY, RuntimeEstimator
from .plan import Allocation, ExecutionPlan
from .pruning import PruneConfig, allocation_options, search_space_size
from .workload import RLHFWorkload

__all__ = ["BruteForceResult", "brute_force_search"]


@dataclass
class BruteForceResult:
    """The optimal plan found by exhaustive enumeration."""

    best_plan: ExecutionPlan
    best_cost: float
    n_evaluated: int
    search_space: float


def brute_force_search(
    graph: DataflowGraph,
    workload: RLHFWorkload,
    cluster: ClusterSpec,
    options: Optional[Dict[str, List[Allocation]]] = None,
    prune: PruneConfig = PruneConfig(),
    estimator: Optional[RuntimeEstimator] = None,
    oom_penalty: float = DEFAULT_OOM_PENALTY,
    max_plans: int = 2_000_000,
) -> BruteForceResult:
    """Enumerate every plan in the (pruned) search space and return the best.

    Raises ``ValueError`` when the space exceeds ``max_plans``; callers should
    shrink it (fewer micro-batch choices, larger ``mesh_stride``) rather than
    waiting forever.
    """
    estimator = estimator or RuntimeEstimator(graph, workload, cluster)
    options = options or allocation_options(graph, workload, cluster, prune)
    size = search_space_size(options)
    if size > max_plans:
        raise ValueError(
            f"search space of {size:.3g} plans exceeds the brute-force limit of {max_plans}; "
            "prune more aggressively"
        )

    call_names = graph.call_names
    choice_lists = [options[name] for name in call_names]
    best_plan: Optional[ExecutionPlan] = None
    best_cost = float("inf")
    n_evaluated = 0
    for combo in itertools.product(*choice_lists):
        plan = ExecutionPlan(dict(zip(call_names, combo)), name="brute-force")
        cost = estimator.cost(plan, oom_penalty)
        n_evaluated += 1
        if cost < best_cost:
            best_cost = cost
            best_plan = plan
    assert best_plan is not None
    return BruteForceResult(
        best_plan=best_plan,
        best_cost=best_cost,
        n_evaluated=n_evaluated,
        search_space=size,
    )
