"""ReaL's core: dataflow graphs, execution plans, estimator and MCMC search."""

from .api import (
    GENERATE,
    INFERENCE,
    TRAIN_STEP,
    ExperimentConfig,
    ModelFunctionCallDef,
    auto,
    build_graph_from_defs,
    find_execution_plan,
    run_iteration_trace,
    schedule_jobs,
)
from .brute_force import BruteForceResult, brute_force_search
from .call_cost import CallCostModel, CostBreakdown
from .dataflow import DataflowGraph, FunctionCallType, ModelFunctionCall
from .estimator import (
    DEFAULT_OOM_PENALTY,
    EvalCacheStats,
    MemoryEstimate,
    RuntimeEstimator,
    TimeCostResult,
)
from .parallel import ParallelStrategy, enumerate_strategies, factorize_3d
from .parallel_search import (
    GLOBAL_CORE_BUDGET,
    ChainResult,
    ChainSpec,
    ChainState,
    CoreBudget,
    ParallelSearchRunner,
)
from .plan import (
    Allocation,
    DataTransferEdge,
    ExecutionPlan,
    ReallocationEdge,
    allocation_from_dict,
    data_transfer_edges,
    plan_from_dict,
    reallocation_edges,
    symmetric_plan,
)
from .profiler import (
    AnalyticalProvider,
    LayerTimeProvider,
    ProfiledProvider,
    Profiler,
    ProfileStats,
)
from .pruning import PruneConfig, allocation_options, enumerate_allocations, search_space_size
from .search import (
    MCMCSearcher,
    SearchConfig,
    SearchResult,
    SearchSession,
    SessionProgress,
    search_execution_plan,
)
from .workload import CallWorkload, RLHFWorkload, instructgpt_workload

__all__ = [
    # dataflow
    "FunctionCallType",
    "ModelFunctionCall",
    "DataflowGraph",
    # workload
    "CallWorkload",
    "RLHFWorkload",
    "instructgpt_workload",
    # parallelism / plan
    "ParallelStrategy",
    "enumerate_strategies",
    "factorize_3d",
    "Allocation",
    "ExecutionPlan",
    "ReallocationEdge",
    "DataTransferEdge",
    "reallocation_edges",
    "data_transfer_edges",
    "symmetric_plan",
    "allocation_from_dict",
    "plan_from_dict",
    # estimator
    "CallCostModel",
    "CostBreakdown",
    "RuntimeEstimator",
    "TimeCostResult",
    "MemoryEstimate",
    "EvalCacheStats",
    "DEFAULT_OOM_PENALTY",
    # profiler
    "Profiler",
    "ProfileStats",
    "LayerTimeProvider",
    "AnalyticalProvider",
    "ProfiledProvider",
    # search
    "PruneConfig",
    "enumerate_allocations",
    "allocation_options",
    "search_space_size",
    "SearchConfig",
    "SearchResult",
    "MCMCSearcher",
    "SearchSession",
    "SessionProgress",
    "search_execution_plan",
    "BruteForceResult",
    "brute_force_search",
    # parallel search / core governor
    "CoreBudget",
    "GLOBAL_CORE_BUDGET",
    "ChainSpec",
    "ChainResult",
    "ChainState",
    "ParallelSearchRunner",
    # api
    "GENERATE",
    "INFERENCE",
    "TRAIN_STEP",
    "ModelFunctionCallDef",
    "ExperimentConfig",
    "auto",
    "build_graph_from_defs",
    "find_execution_plan",
    "run_iteration_trace",
    "schedule_jobs",
]
