"""Search-space construction and pruning for execution plans.

The number of execution plans grows exponentially with the cluster size
(Section 5.2: more than :math:`10^{16}` plans on 64 GPUs, :math:`10^{24}` on
1000+ GPUs).  This module enumerates the per-call allocation options and
implements the pruning heuristics of Section 8.2: tensor parallelism never
exceeds the node width (inter-node TP is bandwidth-bound), strategies must
fully occupy their device mesh, obviously-OOM allocations are discarded, and
the micro-batch count is restricted to a small set of powers of two.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..cluster.hardware import ClusterSpec
from ..cluster.topology import DeviceMesh, enumerate_device_meshes
from ..model.config import ModelConfig
from ..model.memory import PARAM_BYTES, MemoryModel
from .dataflow import DataflowGraph, FunctionCallType, ModelFunctionCall
from .parallel import ParallelStrategy, enumerate_strategies
from .plan import Allocation
from .workload import RLHFWorkload

__all__ = ["PruneConfig", "enumerate_allocations", "allocation_options", "search_space_size"]

DEFAULT_MICROBATCH_CHOICES = (1, 2, 4, 8, 16, 32)


@dataclass(frozen=True)
class PruneConfig:
    """Knobs controlling how aggressively the search space is pruned.

    Attributes
    ----------
    max_tp_per_node:
        Discard strategies whose TP degree exceeds the number of GPUs per
        node (the paper's main pruning rule).
    prune_static_oom:
        Discard allocations whose static + parameter memory already exceeds
        the device capacity (cheap necessary condition for feasibility).
    microbatch_choices:
        Allowed numbers of micro-batches.
    min_mesh_gpus / max_mesh_gpus:
        Restrict the size of candidate device meshes (1 = no restriction).
    mesh_stride:
        Keep only every ``mesh_stride``-th mesh of each size class; a crude
        way to emulate coarser pruning levels for the Figure 14 ablation.
    """

    max_tp_per_node: bool = True
    prune_static_oom: bool = True
    microbatch_choices: Sequence[int] = DEFAULT_MICROBATCH_CHOICES
    min_mesh_gpus: int = 1
    max_mesh_gpus: Optional[int] = None
    mesh_stride: int = 1
    power_of_two_meshes: bool = True
    """Keep only multi-node meshes whose node count is a power of two and whose
    start is aligned to that count, so candidate meshes tile the cluster."""
    sub_node_mesh_gpu_limit: int = 32
    """Sub-node meshes (fractions of one host) are only considered on clusters
    of at most this many GPUs; on larger clusters a per-call mesh smaller than
    one node is never worthwhile and only inflates the search space."""

    def restrict(self, **changes) -> "PruneConfig":
        """Return a modified copy (dataclasses.replace wrapper)."""
        import dataclasses

        return dataclasses.replace(self, **changes)


def _is_power_of_two(n: int) -> bool:
    return n >= 1 and (n & (n - 1)) == 0


def _candidate_meshes(cluster: ClusterSpec, prune: PruneConfig) -> List[DeviceMesh]:
    meshes = enumerate_device_meshes(
        cluster,
        min_gpus=prune.min_mesh_gpus,
        max_gpus=prune.max_mesh_gpus or cluster.n_gpus,
    )
    if prune.power_of_two_meshes:
        kept: List[DeviceMesh] = []
        for mesh in meshes:
            if mesh.is_sub_node:
                if cluster.n_gpus > prune.sub_node_mesh_gpu_limit:
                    continue
                kept.append(mesh)
            elif mesh.is_full_cluster():
                kept.append(mesh)
            elif _is_power_of_two(mesh.n_nodes) and mesh.node_start % mesh.n_nodes == 0:
                kept.append(mesh)
        meshes = kept
    if prune.mesh_stride > 1:
        # Keep every stride-th mesh within each size class so that all sizes
        # stay represented.
        by_size: Dict[int, List[DeviceMesh]] = {}
        for mesh in meshes:
            by_size.setdefault(mesh.n_gpus, []).append(mesh)
        meshes = []
        for size in sorted(by_size):
            meshes.extend(by_size[size][:: prune.mesh_stride])
    return meshes


def enumerate_allocations(
    call: ModelFunctionCall,
    config: ModelConfig,
    workload: RLHFWorkload,
    cluster: ClusterSpec,
    prune: PruneConfig = PruneConfig(),
) -> List[Allocation]:
    """All pruned allocation options for one model function call."""
    wl = workload.call_workload(call)
    memory = MemoryModel(config)
    max_tp = cluster.gpus_per_node if prune.max_tp_per_node else None
    options: List[Allocation] = []
    for mesh in _candidate_meshes(cluster, prune):
        strategies = enumerate_strategies(mesh.n_gpus, config, max_tp=max_tp)
        for strategy in strategies:
            if strategy.dp > wl.batch_size:
                continue
            if prune.prune_static_oom:
                param_bytes = config.param_count() / (strategy.tp * strategy.pp) * PARAM_BYTES
                static = 0.0
                if call.call_type is FunctionCallType.TRAIN_STEP:
                    static = memory.static_bytes_per_gpu(strategy.dp, strategy.tp, strategy.pp)
                if param_bytes + static > cluster.device_memory_bytes:
                    continue
            for mbs in prune.microbatch_choices:
                # Ceiling division: the runtime shards ceil(batch / dp)
                # sequences onto each DP rank, so a micro-batch count up to
                # that ceiling is admissible even when dp does not divide
                # the batch size.
                per_dp_batch = -(-wl.batch_size // strategy.dp)
                if mbs > per_dp_batch:
                    continue
                options.append(
                    Allocation(mesh=mesh, parallel=strategy, n_microbatches=mbs)
                )
    if not options:
        raise ValueError(
            f"pruning left no feasible allocation for call {call.name!r}; "
            "relax the PruneConfig"
        )
    return options


def allocation_options(
    graph: DataflowGraph,
    workload: RLHFWorkload,
    cluster: ClusterSpec,
    prune: PruneConfig = PruneConfig(),
) -> Dict[str, List[Allocation]]:
    """Per-call allocation options for every call of the graph."""
    return {
        call.name: enumerate_allocations(
            call, workload.model_config(call.model_name), workload, cluster, prune
        )
        for call in graph.calls
    }


def search_space_size(options: Dict[str, List[Allocation]]) -> float:
    """Number of execution plans in the (pruned) search space."""
    size = 1.0
    for choices in options.values():
        size *= max(1, len(choices))
    return size
