"""Execution plans: per-function-call device meshes and parallel strategies.

An execution plan (Section 4 of the paper) assigns every model function call
of a dataflow graph a device mesh :math:`D_i`, a 3D parallelization strategy
:math:`S_i` and a number of micro-batches.  The *augmented* graph
:math:`G_p` additionally contains parameter-reallocation, data-transfer and
offload nodes; here we represent those implicitly as annotated edges
(:func:`reallocation_edges`, :func:`data_transfer_edges`) whose costs are
computed by :mod:`repro.realloc` and :mod:`repro.runtime.data_transfer`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from ..cluster.hardware import ClusterSpec
from ..cluster.topology import DeviceMesh, full_cluster_mesh
from .dataflow import DataflowGraph, ModelFunctionCall
from .parallel import ParallelStrategy

__all__ = [
    "Allocation",
    "ExecutionPlan",
    "ReallocationEdge",
    "DataTransferEdge",
    "allocation_from_dict",
    "plan_from_dict",
    "reallocation_edges",
    "data_transfer_edges",
    "symmetric_plan",
]


@dataclass(frozen=True, slots=True)
class Allocation:
    """Resources assigned to a single model function call.

    ``zero3`` marks DeepSpeed ZeRO-3 style data parallelism, where parameters,
    gradients and optimizer states are additionally sharded across the DP
    group at the cost of per-layer parameter all-gathers.  It is used by the
    DeepSpeed-Chat and OpenRLHF baseline models; ReaL's own plans use the
    Megatron 3D layout (``zero3=False``).
    """

    mesh: DeviceMesh
    parallel: ParallelStrategy
    n_microbatches: int = 1
    zero3: bool = False

    def __post_init__(self) -> None:
        if self.n_microbatches < 1:
            raise ValueError("n_microbatches must be >= 1")
        if self.parallel.world_size != self.mesh.n_gpus:
            raise ValueError(
                f"strategy {self.parallel} needs {self.parallel.world_size} GPUs "
                f"but mesh has {self.mesh.n_gpus}"
            )

    def describe(self) -> str:
        """Human readable one-line summary of the allocation."""
        suffix = " zero3" if self.zero3 else ""
        return (
            f"{self.mesh.describe()}  {self.parallel.describe()}  "
            f"mbs={self.n_microbatches}{suffix}"
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable representation (cluster shape is stored separately).

        The mesh is stored by its coordinates within its cluster; rebuilding
        the allocation therefore requires a :class:`ClusterSpec` of the same
        shape (see :func:`allocation_from_dict`).
        """
        return {
            "mesh": {
                "node_start": self.mesh.node_start,
                "n_nodes": self.mesh.n_nodes,
                "gpu_start": self.mesh.gpu_start,
                "gpus_per_node": self.mesh.gpus_per_node,
            },
            "parallel": {
                "dp": self.parallel.dp,
                "tp": self.parallel.tp,
                "pp": self.parallel.pp,
            },
            "n_microbatches": self.n_microbatches,
            "zero3": self.zero3,
        }


@dataclass(frozen=True)
class ReallocationEdge:
    """A parameter redistribution between two calls of the same model."""

    model_name: str
    src_call: str
    dst_call: str
    src: Allocation
    dst: Allocation

    @property
    def is_noop(self) -> bool:
        """True when source and destination layouts are identical."""
        return self.src.mesh == self.dst.mesh and self.src.parallel == self.dst.parallel


@dataclass(frozen=True)
class DataTransferEdge:
    """A data movement between a producer call and a consumer call."""

    src_call: str
    dst_call: str
    src: Allocation
    dst: Allocation

    @property
    def is_local(self) -> bool:
        """True when producer and consumer share mesh and DP/TP layout."""
        return (
            self.src.mesh == self.dst.mesh
            and self.src.parallel.dp == self.dst.parallel.dp
            and self.src.parallel.tp == self.dst.parallel.tp
        )


class ExecutionPlan:
    """Mapping from every call of a dataflow graph to an :class:`Allocation`."""

    def __init__(self, assignments: Mapping[str, Allocation], name: str = "plan") -> None:
        self.assignments: Dict[str, Allocation] = dict(assignments)
        self.name = name

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    def __getitem__(self, call_name: str) -> Allocation:
        return self.assignments[call_name]

    def __contains__(self, call_name: str) -> bool:
        return call_name in self.assignments

    def __len__(self) -> int:
        return len(self.assignments)

    def get(self, call_name: str) -> Allocation:
        """Allocation of a call (raises ``KeyError`` if unassigned)."""
        return self.assignments[call_name]

    def items(self) -> Iterable[Tuple[str, Allocation]]:
        """Iterate over ``(call_name, allocation)`` pairs."""
        return self.assignments.items()

    def with_assignment(self, call_name: str, allocation: Allocation) -> "ExecutionPlan":
        """Return a copy of the plan with one call reassigned."""
        new = dict(self.assignments)
        new[call_name] = allocation
        return ExecutionPlan(new, name=self.name)

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def validate(self, graph: DataflowGraph, cluster: ClusterSpec) -> None:
        """Check that the plan covers the graph and fits the cluster.

        Raises ``ValueError`` on any inconsistency: missing/extra calls,
        strategy/mesh mismatches or meshes outside the cluster.
        """
        missing = set(graph.call_names) - set(self.assignments)
        if missing:
            raise ValueError(f"plan misses allocations for calls: {sorted(missing)}")
        extra = set(self.assignments) - set(graph.call_names)
        if extra:
            raise ValueError(f"plan has allocations for unknown calls: {sorted(extra)}")
        for call_name, alloc in self.assignments.items():
            mesh_cluster = alloc.mesh.cluster
            if (mesh_cluster.n_nodes, mesh_cluster.gpus_per_node) != (
                cluster.n_nodes,
                cluster.gpus_per_node,
            ):
                raise ValueError(
                    f"allocation of {call_name!r} targets a cluster of shape "
                    f"({mesh_cluster.n_nodes}, {mesh_cluster.gpus_per_node}), "
                    f"expected ({cluster.n_nodes}, {cluster.gpus_per_node})"
                )

    def describe(self, graph: Optional[DataflowGraph] = None) -> str:
        """Multi-line table of the plan, similar to Tables 2--5 of the paper."""
        lines = [f"ExecutionPlan {self.name!r}:"]
        names = graph.topological_order() if graph is not None else sorted(self.assignments)
        for call_name in names:
            alloc = self.assignments[call_name]
            lines.append(f"  {call_name:<20s} {alloc.describe()}")
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable representation of the plan.

        The originating cluster's shape is recorded so deserialization can
        verify the target cluster is compatible (meshes are stored by
        coordinates, not by the full hardware spec).
        """
        clusters = {a.mesh.cluster for a in self.assignments.values()}
        shape: Optional[Tuple[int, int]] = None
        if clusters:
            any_cluster = next(iter(clusters))
            shape = (any_cluster.n_nodes, any_cluster.gpus_per_node)
        return {
            "name": self.name,
            "cluster_shape": list(shape) if shape is not None else None,
            "assignments": {
                call_name: alloc.to_dict()
                for call_name, alloc in sorted(self.assignments.items())
            },
        }


def allocation_from_dict(data: Mapping[str, Any], cluster: ClusterSpec) -> Allocation:
    """Rebuild an :class:`Allocation` serialized by :meth:`Allocation.to_dict`.

    ``cluster`` supplies the hardware substrate the stored mesh coordinates
    refer to; it must have the same shape as the cluster the allocation was
    serialized from, otherwise mesh construction fails with a clear error.
    """
    mesh_data = data["mesh"]
    mesh = DeviceMesh(
        cluster=cluster,
        node_start=int(mesh_data["node_start"]),
        n_nodes=int(mesh_data["n_nodes"]),
        gpu_start=int(mesh_data["gpu_start"]),
        gpus_per_node=int(mesh_data["gpus_per_node"]),
    )
    parallel_data = data["parallel"]
    parallel = ParallelStrategy(
        dp=int(parallel_data["dp"]),
        tp=int(parallel_data["tp"]),
        pp=int(parallel_data["pp"]),
    )
    return Allocation(
        mesh=mesh,
        parallel=parallel,
        n_microbatches=int(data.get("n_microbatches", 1)),
        zero3=bool(data.get("zero3", False)),
    )


def plan_from_dict(data: Mapping[str, Any], cluster: ClusterSpec) -> ExecutionPlan:
    """Rebuild an :class:`ExecutionPlan` serialized by :meth:`ExecutionPlan.to_dict`."""
    shape = data.get("cluster_shape")
    if shape is not None and tuple(shape) != (cluster.n_nodes, cluster.gpus_per_node):
        raise ValueError(
            f"plan was serialized on a cluster of shape {tuple(shape)}, cannot "
            f"deserialize onto ({cluster.n_nodes}, {cluster.gpus_per_node})"
        )
    assignments = {
        call_name: allocation_from_dict(alloc_data, cluster)
        for call_name, alloc_data in data["assignments"].items()
    }
    return ExecutionPlan(assignments, name=str(data.get("name", "plan")))


# ---------------------------------------------------------------------- #
# Augmentation helpers (parameter reallocation and data transfer edges)
# ---------------------------------------------------------------------- #
def reallocation_edges(graph: DataflowGraph, plan: ExecutionPlan) -> List[ReallocationEdge]:
    """Parameter reallocations implied by ``plan``.

    For every model, consecutive calls (in topological order) that use
    different meshes or strategies require redistributing the model's
    parameters between the two layouts.  The final call of the iteration also
    reallocates back to the first call's layout for the next iteration, which
    we represent as a wrap-around edge (the paper's parameter-version edge
    between iterations).
    """
    edges: List[ReallocationEdge] = []
    for model_name in graph.model_names():
        calls = graph.calls_of_model(model_name)
        if len(calls) < 2:
            continue
        sequence = calls + [calls[0]]  # wrap around to the next iteration
        for src_call, dst_call in zip(sequence[:-1], sequence[1:]):
            src = plan[src_call.name]
            dst = plan[dst_call.name]
            edge = ReallocationEdge(
                model_name=model_name,
                src_call=src_call.name,
                dst_call=dst_call.name,
                src=src,
                dst=dst,
            )
            if not edge.is_noop:
                edges.append(edge)
    return edges


def data_transfer_edges(graph: DataflowGraph, plan: ExecutionPlan) -> List[DataTransferEdge]:
    """Data transfers implied by ``plan`` along the graph's data edges."""
    edges: List[DataTransferEdge] = []
    for src_name, dst_name in graph.edges:
        edge = DataTransferEdge(
            src_call=src_name,
            dst_call=dst_name,
            src=plan[src_name],
            dst=plan[dst_name],
        )
        edges.append(edge)
    return edges


def symmetric_plan(
    graph: DataflowGraph,
    cluster: ClusterSpec,
    strategy: ParallelStrategy,
    n_microbatches: int = 1,
    per_call_microbatches: Optional[Mapping[str, int]] = None,
    name: str = "symmetric",
) -> ExecutionPlan:
    """Build a plan that runs every call on the full cluster with one strategy.

    This is the "symmetric parallelization" configuration of Figure 1 (top)
    and the basis of the REAL-Heuristic baseline.
    """
    mesh = full_cluster_mesh(cluster)
    if strategy.world_size != mesh.n_gpus:
        raise ValueError(
            f"strategy {strategy} does not occupy the full cluster of {mesh.n_gpus} GPUs"
        )
    assignments: Dict[str, Allocation] = {}
    for call in graph.calls:
        mbs = n_microbatches
        if per_call_microbatches and call.name in per_call_microbatches:
            mbs = per_call_microbatches[call.name]
        assignments[call.name] = Allocation(mesh=mesh, parallel=strategy, n_microbatches=mbs)
    return ExecutionPlan(assignments, name=name)
