"""Experiment workloads: which models, batch size, context length, algorithm.

The paper's base setting follows InstructGPT (Appendix A): a global batch of
512 prompts, context length 2048 with a maximum prompt length of 1024, and 8
PPO minibatches.  :class:`RLHFWorkload` captures these knobs together with the
model configurations of each LLM role and derives the per-function-call data
sizes consumed by the profiler, estimator, runtime engine and throughput
metric.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Mapping

from ..model import flops as F
from ..model.config import ModelConfig, get_model_config
from .dataflow import FunctionCallType, ModelFunctionCall

__all__ = ["CallWorkload", "RLHFWorkload", "instructgpt_workload"]


@dataclass(frozen=True)
class CallWorkload:
    """Data sizes of a single model function call.

    ``n_minibatches`` only applies to training calls: the global batch is
    split into that many PPO minibatches whose parameter updates happen
    sequentially (this is *not* gradient accumulation, see Section 2.1).
    """

    batch_size: int
    prompt_len: int
    gen_len: int
    n_minibatches: int = 1

    @property
    def seqlen(self) -> int:
        """Full sequence length (prompt + generated response)."""
        return self.prompt_len + self.gen_len

    @property
    def total_tokens(self) -> int:
        """Total tokens processed by the call (full sequences)."""
        return self.batch_size * self.seqlen

    def per_minibatch(self) -> "CallWorkload":
        """The workload of one training minibatch."""
        return dataclasses.replace(
            self, batch_size=max(1, self.batch_size // self.n_minibatches), n_minibatches=1
        )


@dataclass(frozen=True)
class RLHFWorkload:
    """A complete RLHF experiment configuration.

    Attributes
    ----------
    model_configs:
        Mapping from model name (``"actor"``, ``"critic"``, ``"ref"``,
        ``"reward"``) to its architecture.
    batch_size:
        Global number of prompts per RLHF iteration.
    prompt_len / gen_len:
        Maximum prompt and generation lengths.  The paper synthesises data at
        the maximum lengths for fair comparisons; we do the same.
    n_ppo_minibatches:
        Number of sequential PPO minibatches per training call.
    """

    model_configs: Mapping[str, ModelConfig]
    batch_size: int = 512
    prompt_len: int = 1024
    gen_len: int = 1024
    n_ppo_minibatches: int = 8

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.prompt_len < 1 or self.gen_len < 0:
            raise ValueError("prompt_len must be >= 1 and gen_len >= 0")
        if self.n_ppo_minibatches < 1:
            raise ValueError("n_ppo_minibatches must be >= 1")

    # ------------------------------------------------------------------ #
    # Model lookup
    # ------------------------------------------------------------------ #
    @property
    def context_len(self) -> int:
        """Total context length (prompt + generation)."""
        return self.prompt_len + self.gen_len

    def model_config(self, model_name: str) -> ModelConfig:
        """Architecture of the named model."""
        if model_name not in self.model_configs:
            raise KeyError(
                f"model {model_name!r} not in workload (have {sorted(self.model_configs)})"
            )
        return self.model_configs[model_name]

    def with_batch_size(self, batch_size: int) -> "RLHFWorkload":
        """Copy of the workload with a different global batch size."""
        return dataclasses.replace(self, batch_size=batch_size)

    def with_context(self, prompt_len: int, gen_len: int) -> "RLHFWorkload":
        """Copy of the workload with different prompt/generation lengths."""
        return dataclasses.replace(self, prompt_len=prompt_len, gen_len=gen_len)

    # ------------------------------------------------------------------ #
    # Per-call workload derivation
    # ------------------------------------------------------------------ #
    def call_workload(self, call: ModelFunctionCall) -> CallWorkload:
        """Data sizes processed by ``call`` under this workload."""
        batch = max(1, int(round(self.batch_size * call.batch_scale)))
        gen_len = int(round(self.gen_len * call.gen_len_scale))
        n_minibatches = self.n_ppo_minibatches if call.is_trainable else 1
        return CallWorkload(
            batch_size=batch,
            prompt_len=self.prompt_len,
            gen_len=gen_len,
            n_minibatches=n_minibatches,
        )

    def call_flops(self, call: ModelFunctionCall) -> float:
        """Dense FLOPs performed by ``call`` (used for throughput accounting)."""
        config = self.model_config(call.model_name)
        wl = self.call_workload(call)
        if call.call_type is FunctionCallType.GENERATE:
            return F.generation_flops(config, wl.batch_size, wl.prompt_len, wl.gen_len)
        if call.call_type is FunctionCallType.INFERENCE:
            return F.inference_flops(config, wl.batch_size, wl.seqlen)
        return F.training_step_flops(config, wl.batch_size, wl.seqlen)

    def iteration_flops(self, calls: list[ModelFunctionCall] | None = None) -> float:
        """Total FLOPs of one iteration over all calls of a dataflow graph."""
        if calls is None:
            raise ValueError("pass the dataflow graph's calls")
        return sum(self.call_flops(call) for call in calls)


def instructgpt_workload(
    actor_size: str = "7b",
    critic_size: str = "7b",
    batch_size: int = 512,
    prompt_len: int = 1024,
    gen_len: int = 1024,
    n_ppo_minibatches: int = 8,
) -> RLHFWorkload:
    """The paper's base experiment configuration (Appendix A).

    The actor and reference models share the actor architecture; the critic
    and reward models share the critic architecture with a scalar output head.
    """
    actor = get_model_config(actor_size)
    critic = get_model_config(critic_size, critic=True)
    configs: Dict[str, ModelConfig] = {
        "actor": actor,
        "ref": actor,
        "critic": critic,
        "reward": critic,
    }
    return RLHFWorkload(
        model_configs=configs,
        batch_size=batch_size,
        prompt_len=prompt_len,
        gen_len=gen_len,
        n_ppo_minibatches=n_ppo_minibatches,
    )
