"""Process-parallel execution of MCMC search chains.

The multi-chain search of :mod:`repro.core.search` runs ``n_chains``
*independent* Metropolis-Hastings chains — independent RNG streams, a full
wall-clock budget each, no shared mutable state.  That makes them perfect
process-parallel work: this module ships each chain to a worker process of a
:class:`concurrent.futures.ProcessPoolExecutor` and collects the per-chain
results, which the searcher then merges exactly as it would after running the
chains in-process.  Because a chain's outcome is a pure function of
``(problem, seed, chain index, iteration budget)`` as long as its time
budget does not cut it short, parallel and sequential execution produce
**bit-identical** best plans and costs for the same seeds whenever the
iteration budget binds (wall-clock timings differ, results do not; a
binding time budget is timing-dependent in *any* execution mode, sequential
reruns included).

Oversubscription is prevented by a :class:`CoreBudget` governor shared by
everything that burns CPU concurrently — the plan service's request pool and
every parallel search.  A search *asks* for one core per chain; the governor
grants what is actually free, and a grant below two cores makes the search
fall back to plain in-process execution (there is nothing to win).  Tiny
searches (sub-second budgets or a handful of iterations per chain) never
leave the calling thread either: forking, re-building the estimator and
pickling the option table costs more than it saves.

Knobs (environment variables, read once per process):

``REPRO_CORE_BUDGET``
    Total cores the global governor hands out (default: ``os.cpu_count()``).
``REPRO_PARALLEL_MIN_BUDGET_S``
    Minimum ``time_budget_s`` for ``parallel="auto"`` to leave the calling
    thread (default 1.0).
``REPRO_PARALLEL_MIN_ITERS``
    Minimum per-chain iteration budget for ``parallel="auto"`` to leave the
    calling thread (default 2000).
``REPRO_PARALLEL_START_METHOD``
    Multiprocessing start method for chain workers (``fork`` / ``forkserver``
    / ``spawn``; default: the platform default, i.e. ``fork`` on Linux).
    ``fork`` starts workers in ~tens of milliseconds; the workers never touch
    the parent's locks or service state (they unpickle a self-contained
    :class:`ChainProblem` and resolve already-imported modules through
    ``sys.modules``, avoiding the import lock), but processes forked from a
    heavily multithreaded parent can in principle inherit an unrelated lock
    mid-acquisition — set ``forkserver`` or ``spawn`` to trade start-up time
    for full isolation.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import sys
import threading
from concurrent.futures import ProcessPoolExecutor, TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, TYPE_CHECKING

import numpy as np

from ..cluster.hardware import ClusterSpec
from ..obs.log import get_logger
from ..obs.metrics import get_registry
from ..obs.tracing import SpanContext, SpanRecord, current_span
from .dataflow import DataflowGraph
from .plan import Allocation, ExecutionPlan
from .workload import RLHFWorkload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .search import MCMCSearcher, SearchConfig

__all__ = [
    "CoreBudget",
    "GLOBAL_CORE_BUDGET",
    "ChainSpec",
    "ChainResult",
    "ChainState",
    "ChainProblem",
    "ParallelSearchRunner",
    "min_parallel_budget_s",
    "min_parallel_chain_iters",
]


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError:
        return default
    return value if value >= 0 else default


def min_parallel_budget_s() -> float:
    """Smallest ``time_budget_s`` worth a process pool in ``auto`` mode."""
    return _env_float("REPRO_PARALLEL_MIN_BUDGET_S", 1.0)


def min_parallel_chain_iters() -> int:
    """Smallest per-chain iteration budget worth a process pool in ``auto`` mode."""
    return int(_env_float("REPRO_PARALLEL_MIN_ITERS", 2000))


_WORKER_TIMEOUT_MARGIN_S = 60.0
"""Grace period past a chain's wall-clock budget before its worker is
declared hung.  Every chain self-terminates at its deadline, so a result
that is this late means the worker never got to run (e.g. a process forked
from a multithreaded parent that inherited a held lock) — the runner then
abandons the pool and the searcher re-runs the chains in-process, bounding
the damage to one timeout instead of a forever-blocked request thread."""


# ---------------------------------------------------------------------- #
# Core-budget governor
# ---------------------------------------------------------------------- #
class CoreBudget:
    """Cooperative accounting of CPU cores across concurrent components.

    The governor does not pin or enforce anything — it is bookkeeping that
    lets independent thread pools and process pools agree not to spawn more
    CPU-bound workers than the machine has cores.  ``acquire`` grants
    *up to* the requested number of cores (whatever is free), or nothing at
    all when fewer than ``minimum`` are available, so callers can degrade to
    in-process execution instead of oversubscribing.
    """

    def __init__(self, total: Optional[int] = None) -> None:
        if total is None:
            total = int(_env_float("REPRO_CORE_BUDGET", 0.0)) or (os.cpu_count() or 1)
        if total < 1:
            raise ValueError(f"core budget must be >= 1, got {total}")
        self.total = int(total)
        self._in_use = 0
        self._lock = threading.Lock()

    @property
    def in_use(self) -> int:
        """Cores currently granted."""
        return self._in_use

    @property
    def available(self) -> int:
        """Cores not currently granted."""
        with self._lock:
            return self.total - self._in_use

    def acquire(self, want: int, minimum: int = 1) -> int:
        """Grant up to ``want`` free cores; 0 when fewer than ``minimum`` are free.

        Never blocks: concurrency is degraded, not queued — a denied caller
        runs the work on the thread it already has.
        """
        want = int(want)
        if want <= 0:
            return 0
        with self._lock:
            free = self.total - self._in_use
            granted = min(want, free)
            if granted <= 0 or granted < minimum:
                return 0
            self._in_use += granted
            return granted

    def release(self, n: int) -> None:
        """Return ``n`` previously granted cores."""
        if n <= 0:
            return
        with self._lock:
            self._in_use = max(0, self._in_use - int(n))

    @contextmanager
    def lease(self, want: int, minimum: int = 1) -> Iterator[int]:
        """``with budget.lease(n) as granted:`` — auto-releasing :meth:`acquire`."""
        granted = self.acquire(want, minimum=minimum)
        try:
            yield granted
        finally:
            self.release(granted)


GLOBAL_CORE_BUDGET = CoreBudget()
"""Default governor shared by plan services and parallel searches."""


# ---------------------------------------------------------------------- #
# Picklable chain work units
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class ChainSpec:
    """One chain's share of a search: which stream, how many proposals."""

    chain: int
    max_iterations: int


@dataclass
class ChainResult:
    """Outcome of one Metropolis-Hastings chain (picklable).

    ``best_plan``/``best_cost`` are the chain-local optimum; ``history``
    holds chain-local ``(iteration, elapsed_seconds, best_cost_so_far)``
    samples with iteration counting from 1 and elapsed measured from the
    chain's own start.  ``wall_seconds`` is the chain's wall-clock time and
    ``cpu_seconds`` its CPU time (``time.process_time`` delta), which differ
    once chains share cores.
    """

    chain: int
    best_plan: ExecutionPlan
    best_cost: float
    n_iterations: int
    n_accepted: int
    history: List[Tuple[int, float, float]] = field(default_factory=list)
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0
    spans: List[SpanRecord] = field(default_factory=list)
    """Per-slice trace spans recorded while the chain ran (empty when
    tracing is off).  Workers record locally and ship them back here; the
    parent folds them into its tracer."""


@dataclass
class ChainState:
    """Resumable mid-flight snapshot of one Metropolis-Hastings chain (picklable).

    The searcher's :meth:`~repro.core.search.MCMCSearcher.advance_chain`
    consumes a slice of the chain's budgets and writes the outcome back here,
    so a chain can run in slices — on the calling thread or round-tripping
    through worker processes — and still produce exactly the chain one
    uninterrupted ``run_chain`` would have produced: the RNG travels *in* the
    state, iteration numbering picks up where the previous slice stopped, and
    wall/CPU seconds accumulate across slices.
    """

    chain: int
    max_iterations: int
    """The chain's **total** proposal budget (not a per-slice bound)."""
    rng: np.random.Generator
    current_plan: ExecutionPlan
    current_cost: float
    best_plan: ExecutionPlan
    best_cost: float
    n_iterations: int = 0
    n_accepted: int = 0
    history: List[Tuple[int, float, float]] = field(default_factory=list)
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0
    done: bool = False
    """Set once the iteration or wall-clock budget is exhausted."""
    span_context: Optional[SpanContext] = None
    """Trace parent of this chain's slice spans.  Set at initialisation from
    the enclosing search span and refreshed per poll by the session, it is
    the explicit cross-process propagation channel: the context pickles with
    the state, so a slice advanced in a worker process still records spans
    under the right parent."""
    slice_spans: List[SpanRecord] = field(default_factory=list)
    """Spans recorded by advances since the consumer last drained them.
    Self-contained like the RNG: the list travels with the state through
    worker pickles, and the parent empties it after folding the spans into
    its tracer (so repeated round-trips never re-ship old spans)."""

    @property
    def remaining_iterations(self) -> int:
        """Proposals left in the chain's total budget."""
        return max(0, self.max_iterations - self.n_iterations)

    def drain_spans(self) -> List[SpanRecord]:
        """Hand over (and forget) the spans recorded since the last drain."""
        spans, self.slice_spans = self.slice_spans, []
        return spans

    def to_result(self) -> ChainResult:
        """The chain's outcome so far, in the merged-result format."""
        return ChainResult(
            chain=self.chain,
            best_plan=self.best_plan,
            best_cost=self.best_cost,
            n_iterations=self.n_iterations,
            n_accepted=self.n_accepted,
            history=list(self.history),
            wall_seconds=self.wall_seconds,
            cpu_seconds=self.cpu_seconds,
            spans=self.drain_spans(),
        )


@dataclass
class ChainProblem:
    """Everything a worker process needs to re-create the searcher.

    The estimator *object* is deliberately not shipped — its memo caches can
    be large and re-derive themselves during the chain — but its full
    configuration (``profiles``, ``use_cuda_graph``, ``use_cache``,
    ``cross_check``) is, so each worker rebuilds an *equivalent* estimator
    and scores proposals under exactly the caller's cost model.  (Custom
    estimator subclasses cannot be rebuilt this way; the searcher refuses to
    parallelize those and runs the chains in-process instead.)  The
    allocation options *are* shipped so workers skip the enumeration/pruning
    pass and, more importantly, propose from an identical,
    identically-ordered option table — a prerequisite for bit-identical
    RNG-driven proposals.
    """

    graph: DataflowGraph
    workload: RLHFWorkload
    cluster: ClusterSpec
    options: Dict[str, List[Allocation]]
    config: "SearchConfig"
    start_assignments: Dict[str, Allocation]
    start_plan_name: str
    start_cost: float
    profiles: Optional[Dict[str, object]] = None
    use_cuda_graph: bool = True
    use_cache: bool = True
    cross_check: bool = False
    span_context: Optional[SpanContext] = None
    """Trace context of the parent's search span.  Contextvars do not cross
    process boundaries, so the context rides in the problem; the rebuilt
    worker searcher adopts it as the parent of every chain span it starts."""
    batch_tables: Optional[Tuple[str, object]] = None
    """Batch-evaluation lookup tables shipped once per pool: ``("shm",
    SharedTablesHandle)`` when the parent exported a shared-memory block
    (workers attach zero-copy views), ``("arrays", dict)`` as the pickled
    fallback, ``None`` when batching is disabled.  Purely a table-build
    cost optimisation — a failed attach rebuilds locally with identical
    values."""

    def build_searcher(self) -> "MCMCSearcher":
        """Re-create the searcher inside a worker process.

        Under the ``fork`` start method the parent's modules are inherited,
        so the searcher class is resolved through ``sys.modules`` without
        touching the import machinery (a fork from a multithreaded parent
        must not wait on the import lock another thread might have held).
        Spawned workers import the module normally while unpickling this
        problem, before this method runs.
        """
        module = sys.modules.get("repro.core.search")
        if module is None:  # pragma: no cover - spawn/forkserver cold path
            from . import search as module  # deferred: search.py imports us
        from .estimator import RuntimeEstimator

        estimator = RuntimeEstimator(
            self.graph,
            self.workload,
            self.cluster,
            profiles=self.profiles,
            use_cuda_graph=self.use_cuda_graph,
            use_cache=self.use_cache,
            cross_check=self.cross_check,
        )
        searcher = module.MCMCSearcher(
            graph=self.graph,
            workload=self.workload,
            cluster=self.cluster,
            estimator=estimator,
            options=self.options,
            config=self.config,
        )
        searcher.span_parent = self.span_context
        searcher.adopt_shipped_tables(self.batch_tables)
        return searcher

    def start_plan(self) -> ExecutionPlan:
        return ExecutionPlan(dict(self.start_assignments), name=self.start_plan_name)


def _make_codec(call_names, options) -> Optional["PlanCodec"]:
    """Codec over the shipped option table, or ``None`` if unavailable.

    Both pool sides build it from the same (identically ordered) options, so
    encoded plans — ``(name, per-call option index)`` tuples — decode to
    value-identical plans on the other side.
    """
    try:
        from .batch_eval import PlanCodec

        return PlanCodec(call_names, options)
    except Exception:  # pragma: no cover - codec is purely an optimisation
        return None


@dataclass(frozen=True)
class _EncodedPlan:
    """Wire form of one plan inside a ChainState round-trip."""

    name: str
    gids: Tuple[int, ...]


def _pack_state(state: ChainState, codec: Optional["PlanCodec"]) -> ChainState:
    """Replace the state's plan objects with codec indices where possible.

    Mutates and returns ``state`` (states hand over ownership for the
    round-trip).  Plans containing allocations outside the codec universe
    (e.g. a caller-supplied seed plan) simply stay as full objects.
    """
    if codec is not None:
        for attr in ("current_plan", "best_plan"):
            plan = getattr(state, attr)
            if isinstance(plan, ExecutionPlan):
                encoded = codec.encode(plan)
                if encoded is not None:
                    setattr(state, attr, _EncodedPlan(*encoded))
    return state


def _unpack_state(state: ChainState, codec: Optional["PlanCodec"]) -> ChainState:
    """Inverse of :func:`_pack_state`."""
    for attr in ("current_plan", "best_plan"):
        plan = getattr(state, attr)
        if isinstance(plan, _EncodedPlan):
            if codec is None:
                raise RuntimeError("encoded ChainState without a codec")
            setattr(state, attr, codec.decode((plan.name, plan.gids)))
    return state


_WORKER_SEARCHER: Optional["MCMCSearcher"] = None
_WORKER_START: Optional[Tuple[ExecutionPlan, float]] = None
_WORKER_CODEC: Optional["PlanCodec"] = None


def _init_chain_worker(problem: ChainProblem) -> None:
    """Process-pool initializer: build the searcher once per worker process."""
    global _WORKER_SEARCHER, _WORKER_START, _WORKER_CODEC
    _WORKER_SEARCHER = problem.build_searcher()
    _WORKER_START = (problem.start_plan(), problem.start_cost)
    _WORKER_CODEC = _make_codec(problem.graph.call_names, problem.options)


def _run_chain_in_worker(spec: ChainSpec) -> ChainResult:
    """Run one chain on the worker's process-local searcher."""
    if _WORKER_SEARCHER is None or _WORKER_START is None:
        raise RuntimeError("chain worker used before initialization")
    start_plan, start_cost = _WORKER_START
    return _WORKER_SEARCHER.run_chain(
        spec.chain, start_plan, start_cost, spec.max_iterations
    )


def _advance_state_in_worker(
    state: ChainState,
    max_iterations: Optional[int],
    time_budget_s: Optional[float],
) -> ChainState:
    """Advance one checkpointed chain on the worker's process-local searcher.

    The state is self-contained (RNG included), so which worker advances
    which slice — or whether a slice runs in the parent process instead —
    never changes the chain's outcome.  Plans cross the process boundary as
    codec indices (chain-local scalars) whenever the pool sides share an
    option universe; see :func:`_pack_state`.
    """
    if _WORKER_SEARCHER is None:
        raise RuntimeError("chain worker used before initialization")
    advanced = _WORKER_SEARCHER.advance_chain(
        _unpack_state(state, _WORKER_CODEC),
        max_iterations=max_iterations,
        time_budget_s=time_budget_s,
    )
    return _pack_state(advanced, _WORKER_CODEC)


def _start_context() -> Optional[multiprocessing.context.BaseContext]:
    """Start method for chain workers: platform default unless overridden.

    ``REPRO_PARALLEL_START_METHOD`` selects ``fork``/``forkserver``/``spawn``;
    an unknown value falls back to the default (``None`` lets
    :class:`ProcessPoolExecutor` pick).
    """
    method = os.environ.get("REPRO_PARALLEL_START_METHOD", "").strip().lower()
    if not method:
        return None
    try:
        return multiprocessing.get_context(method)
    except ValueError:
        return None


# ---------------------------------------------------------------------- #
# Runner
# ---------------------------------------------------------------------- #
class ParallelSearchRunner:
    """Dispatch the chains of one search onto a process pool.

    ``run`` returns the per-chain results in chain order, or ``None`` when
    the runner decided (or was forced by the governor / the OS) to stay
    in-process — the caller then executes the chains sequentially, which by
    construction yields the same merged result.
    """

    def __init__(
        self,
        core_budget: Optional[CoreBudget] = None,
        max_workers: Optional[int] = None,
    ) -> None:
        self.core_budget = core_budget if core_budget is not None else GLOBAL_CORE_BUDGET
        self.max_workers = max_workers
        self.last_granted = 0
        self.last_error: Optional[BaseException] = None
        self._session_pool: Optional[ProcessPoolExecutor] = None
        self._session_workers = 0
        self._session_force = False
        self._session_time_budget_s = 0.0
        self._session_tables: Optional[object] = None
        self._session_codec: Optional["PlanCodec"] = None

    def run(
        self,
        searcher: "MCMCSearcher",
        specs: List[ChainSpec],
        start_plan: ExecutionPlan,
        start_cost: float,
        force: bool = False,
    ) -> Optional[List[ChainResult]]:
        """Execute ``specs`` on worker processes; ``None`` means "run it yourself".

        In the default (governed) mode the pool is sized by what the
        :class:`CoreBudget` actually grants, and fewer than two granted cores
        aborts the attempt.  ``force=True`` (``SearchConfig.parallel ==
        "process"``) always spawns one worker per chain — the governor is
        still charged for accounting, but cannot veto; benchmarks use this to
        measure scaling behaviour regardless of the machine's spare capacity.
        """
        n_chains = len(specs)
        if n_chains < 2:
            return None
        want = n_chains if self.max_workers is None else min(n_chains, self.max_workers)
        if force:
            workers = want
            granted = self.core_budget.acquire(want, minimum=0)
        else:
            granted = self.core_budget.acquire(want, minimum=2)
            if granted < 2:
                self.core_budget.release(granted)
                return None
            workers = granted
        self.last_granted = workers
        estimator = searcher.estimator
        tables, tables_owner = searcher.export_batch_tables()
        problem = ChainProblem(
            graph=searcher.graph,
            workload=searcher.workload,
            cluster=searcher.cluster,
            options=searcher.options,
            config=searcher.config,
            start_assignments=dict(start_plan.assignments),
            start_plan_name=start_plan.name,
            start_cost=start_cost,
            profiles=getattr(estimator, "profiles", None),
            use_cuda_graph=getattr(estimator, "use_cuda_graph", True),
            use_cache=getattr(estimator, "use_cache", True),
            cross_check=getattr(estimator, "cross_check", False),
            span_context=current_span(),
            batch_tables=tables,
        )
        # A chain self-terminates at its wall-clock deadline, so any result
        # later than budget + margin means the worker is wedged, not slow.
        timeout = searcher.config.time_budget_s + _WORKER_TIMEOUT_MARGIN_S
        pool: Optional[ProcessPoolExecutor] = None
        try:
            pool = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=_start_context(),
                initializer=_init_chain_worker,
                initargs=(problem,),
            )
            futures = [pool.submit(_run_chain_in_worker, spec) for spec in specs]
            results = [future.result(timeout=timeout) for future in futures]
        except (
            OSError,
            BrokenProcessPool,
            pickle.PicklingError,
            ImportError,
            FutureTimeoutError,
        ) as exc:
            # Sandboxes without fork/spawn, dead workers, an unpicklable
            # problem, or a hung worker: degrade to in-process execution
            # instead of failing (or blocking) the search.  Results are
            # identical either way.  The abandoned pool is shut down without
            # waiting so a wedged child cannot hold this thread hostage.
            self.last_error = exc
            get_logger("search").warning(
                "parallel search fell back to in-process execution: %s: %s",
                type(exc).__name__,
                exc,
            )
            get_registry().counter(
                "search_parallel_fallbacks_total",
                "Process-parallel searches degraded to in-process execution",
            ).inc()
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
            return None
        finally:
            self.core_budget.release(granted)
            # By success here every worker has initialized (all futures
            # resolved), so the attached mappings survive the unlink; on the
            # fallback path a late-attaching worker just rebuilds locally.
            if tables_owner is not None:
                tables_owner.close()
        pool.shutdown(wait=True)
        return sorted(results, key=lambda r: r.chain)

    # ------------------------------------------------------------------ #
    # Persistent sessions (sliced chain advances for online re-planning)
    # ------------------------------------------------------------------ #
    @property
    def session_open(self) -> bool:
        """Whether a persistent worker pool is ready for sliced advances."""
        return self._session_pool is not None

    def open_session(
        self,
        searcher: "MCMCSearcher",
        start_plan: ExecutionPlan,
        start_cost: float,
        n_workers: Optional[int] = None,
        force: bool = False,
    ) -> bool:
        """Start a persistent worker pool for sliced chain advances.

        Unlike :meth:`run`, the pool outlives the call: the chains stay alive
        across polls as :class:`ChainState` checkpoints round-trip between
        the caller and the workers.  Cores are **not** held while the session
        idles between polls — every :meth:`advance_states` leases cores from
        the governor for just that slice, so a background session can never
        oversubscribe foreground searches.  Returns whether a pool is ready
        (``False`` means the caller should advance in-process).
        """
        if self._session_pool is not None:
            return True
        n_chains = max(1, int(searcher.config.n_chains))
        want = n_chains if self.max_workers is None else min(n_chains, self.max_workers)
        if n_workers is not None:
            want = min(want, max(1, int(n_workers)))
        estimator = searcher.estimator
        tables, tables_owner = searcher.export_batch_tables()
        problem = ChainProblem(
            graph=searcher.graph,
            workload=searcher.workload,
            cluster=searcher.cluster,
            options=searcher.options,
            config=searcher.config,
            start_assignments=dict(start_plan.assignments),
            start_plan_name=start_plan.name,
            start_cost=start_cost,
            profiles=getattr(estimator, "profiles", None),
            use_cuda_graph=getattr(estimator, "use_cuda_graph", True),
            use_cache=getattr(estimator, "use_cache", True),
            cross_check=getattr(estimator, "cross_check", False),
            span_context=current_span(),
            batch_tables=tables,
        )
        try:
            self._session_pool = ProcessPoolExecutor(
                max_workers=want,
                mp_context=_start_context(),
                initializer=_init_chain_worker,
                initargs=(problem,),
            )
        except OSError as exc:  # pragma: no cover - sandboxes without fork
            self.last_error = exc
            if tables_owner is not None:
                tables_owner.close()
            return False
        # The shared block stays owned (and linked) for the session's whole
        # life: pool workers spawn lazily on first submit, possibly much
        # later than this call.
        self._session_tables = tables_owner
        self._session_codec = _make_codec(searcher.graph.call_names, searcher.options)
        self._session_workers = want
        self._session_force = force
        self._session_time_budget_s = searcher.config.time_budget_s
        return True

    def advance_states(
        self,
        states: List[ChainState],
        max_iterations: Optional[int] = None,
        time_budget_s: Optional[float] = None,
    ) -> Optional[List[ChainState]]:
        """Advance checkpointed chains one slice each on the session pool.

        Returns the advanced states (in input order), or ``None`` when this
        slice should run in-process instead: no session pool is open, the
        governor granted no cores for this poll (a temporary condition — try
        again next poll), or the pool died (permanent: the session is closed,
        :attr:`session_open` turns ``False``, and a fallback counter is
        bumped, mirroring :meth:`run`).
        """
        if self._session_pool is None or not states:
            return None
        want = min(len(states), self._session_workers)
        if self._session_force:
            granted = self.core_budget.acquire(want, minimum=0)
        else:
            granted = self.core_budget.acquire(want, minimum=1)
            if granted < 1:
                return None
        self.last_granted = max(granted, 1)
        slice_budget = (
            time_budget_s if time_budget_s is not None else self._session_time_budget_s
        )
        timeout = slice_budget + _WORKER_TIMEOUT_MARGIN_S
        codec = self._session_codec
        try:
            futures = [
                self._session_pool.submit(
                    _advance_state_in_worker,
                    _pack_state(state, codec),
                    max_iterations,
                    time_budget_s,
                )
                for state in states
            ]
            results = [
                _unpack_state(future.result(timeout=timeout), codec)
                for future in futures
            ]
        except (
            OSError,
            BrokenProcessPool,
            pickle.PicklingError,
            ImportError,
            FutureTimeoutError,
        ) as exc:
            self.last_error = exc
            # The inputs were packed in place for the round-trip; the caller
            # will now advance these very states in-process, so restore the
            # plan objects before handing them back.
            for state in states:
                _unpack_state(state, codec)
            get_logger("search").warning(
                "search session fell back to in-process execution: %s: %s",
                type(exc).__name__,
                exc,
            )
            get_registry().counter(
                "search_parallel_fallbacks_total",
                "Process-parallel searches degraded to in-process execution",
            ).inc()
            self.close_session(wait=False)
            return None
        finally:
            self.core_budget.release(granted)
        return results

    def close_session(self, wait: bool = True) -> None:
        """Shut the persistent session pool down (idempotent)."""
        pool, self._session_pool = self._session_pool, None
        if pool is not None:
            pool.shutdown(wait=wait, cancel_futures=not wait)
        tables, self._session_tables = self._session_tables, None
        if tables is not None:
            tables.close()
        self._session_codec = None
