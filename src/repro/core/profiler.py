"""Profiling-assisted layer statistics for the lightweight runtime estimator.

Section 5.1 of the paper: ReaL profiles the cost of forward, backward and
decoding operations of *individual layers* at data input sizes that are powers
of two, plus the intra/inter-node bandwidths, in a few minutes per model.  The
estimator then reconstructs the cost of any candidate execution plan from
these statistics by linear interpolation, in hundreds of microseconds per
plan.

In this reproduction the "measurement" source is the analytical kernel model
(:class:`repro.model.layers.LayerCostModel`); the profiler samples it exactly
the way the paper's profiler samples CUDA kernels, records the statistics in a
:class:`ProfileStats` table, and the estimator interpolates from that table.
The runtime engine, by contrast, evaluates the analytical model at the exact
data sizes, which is what creates the estimated-versus-measured gap studied in
Figure 12 (right).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Protocol, Sequence, Tuple

from ..cluster.hardware import ClusterSpec
from ..model.config import ModelConfig
from ..model.layers import LayerCostModel, LayerTiming

__all__ = [
    "LayerTimeProvider",
    "AnalyticalProvider",
    "ProfiledProvider",
    "ProfileStats",
    "Profiler",
]

DEFAULT_TP_DEGREES = (1, 2, 4, 8)
DEFAULT_SEQ_LENGTHS = (256, 512, 1024, 2048, 4096, 8192)
DEFAULT_MAX_TOKENS = 2 ** 21
PROFILE_TRIALS = 3
"""Number of repetitions the (simulated) profiler runs per measurement."""


class LayerTimeProvider(Protocol):
    """Interface shared by the exact analytical model and the profile table."""

    def forward(self, n_tokens: int, seqlen: int, tp: int) -> LayerTiming:
        """One layer's forward pass over ``n_tokens`` tokens."""
        ...

    def backward(self, n_tokens: int, seqlen: int, tp: int) -> LayerTiming:
        """One layer's backward pass."""
        ...

    def decode(self, batch: int, kv_len: float, tp: int, use_cuda_graph: bool) -> LayerTiming:
        """One layer's decoding step for ``batch`` sequences."""
        ...

    def head_forward(self, n_tokens: int, tp: int) -> LayerTiming:
        """Output head forward pass."""
        ...

    def head_backward(self, n_tokens: int, tp: int) -> LayerTiming:
        """Output head backward pass."""
        ...

    def optimizer_step(self, tp: int, pp: int) -> LayerTiming:
        """Per-layer optimizer update."""
        ...


class AnalyticalProvider:
    """Exact per-layer costs from the analytical kernel model."""

    def __init__(self, config: ModelConfig, cluster: ClusterSpec) -> None:
        self.config = config
        self.cluster = cluster
        self._model = LayerCostModel(config, cluster)

    def forward(self, n_tokens: int, seqlen: int, tp: int) -> LayerTiming:
        return self._model.forward_time(n_tokens, seqlen, tp)

    def backward(self, n_tokens: int, seqlen: int, tp: int) -> LayerTiming:
        return self._model.backward_time(n_tokens, seqlen, tp)

    def decode(self, batch: int, kv_len: float, tp: int, use_cuda_graph: bool) -> LayerTiming:
        return self._model.decode_time(batch, kv_len, tp, use_cuda_graph)

    def head_forward(self, n_tokens: int, tp: int) -> LayerTiming:
        return self._model.head_forward_time(n_tokens, tp)

    def head_backward(self, n_tokens: int, tp: int) -> LayerTiming:
        return self._model.head_backward_time(n_tokens, tp)

    def optimizer_step(self, tp: int, pp: int) -> LayerTiming:
        return self._model.optimizer_step_time(tp, pp)


@dataclass
class ProfileStats:
    """Per-layer timing samples for one model on one cluster.

    Samples are keyed by ``(op, tp)`` and stored as sorted ``(size, timing)``
    lists, where *size* is the token count (forward/backward) or batch size
    (decode).  Decode samples additionally carry the key/value length.
    """

    model_name: str
    token_sizes: Tuple[int, ...]
    tp_degrees: Tuple[int, ...]
    seq_lengths: Tuple[int, ...]
    forward_samples: Dict[Tuple[int, int], List[Tuple[int, LayerTiming]]] = field(default_factory=dict)
    backward_samples: Dict[Tuple[int, int], List[Tuple[int, LayerTiming]]] = field(default_factory=dict)
    decode_samples: Dict[Tuple[int, int, bool], List[Tuple[int, LayerTiming]]] = field(default_factory=dict)
    head_samples: Dict[int, List[Tuple[int, LayerTiming]]] = field(default_factory=dict)
    optimizer_samples: Dict[int, LayerTiming] = field(default_factory=dict)
    profiling_seconds: float = 0.0
    n_measurements: int = 0

    def sample_count(self) -> int:
        """Total number of recorded measurements."""
        return self.n_measurements


def _interp_timing(
    samples: Sequence[Tuple[int, LayerTiming]], size: float
) -> LayerTiming:
    """Piecewise-linear interpolation of a timing table, clamped at the ends.

    Beyond the profiled range the cost is extrapolated proportionally to the
    data size, matching the paper's linear interpolation of profiling
    statistics.
    """
    if not samples:
        raise ValueError("cannot interpolate from an empty sample table")
    sizes = [s for s, _ in samples]
    if size <= sizes[0]:
        base = samples[0][1]
        scale = size / sizes[0]
        return LayerTiming(base.compute_s * scale, base.tp_comm_s * scale, base.launch_s)
    if size >= sizes[-1]:
        base = samples[-1][1]
        scale = size / sizes[-1]
        return LayerTiming(base.compute_s * scale, base.tp_comm_s * scale, base.launch_s)
    hi = bisect.bisect_left(sizes, size)
    lo = hi - 1
    (s0, t0), (s1, t1) = samples[lo], samples[hi]
    w = (size - s0) / (s1 - s0)
    return LayerTiming(
        compute_s=t0.compute_s + w * (t1.compute_s - t0.compute_s),
        tp_comm_s=t0.tp_comm_s + w * (t1.tp_comm_s - t0.tp_comm_s),
        launch_s=t0.launch_s + w * (t1.launch_s - t0.launch_s),
    )


class Profiler:
    """Collects per-layer timing statistics from the analytical kernel model.

    ``profile`` measures forward/backward times at power-of-two token counts,
    decode times at power-of-two batch sizes for a set of sequence lengths,
    and head/optimizer costs, for every tensor-parallel degree of interest.
    ``profiling_seconds`` models the wall time this would have taken on real
    hardware (each measurement repeated :data:`PROFILE_TRIALS` times), which
    reproduces Figure 12 (left).
    """

    def __init__(self, cluster: ClusterSpec) -> None:
        self.cluster = cluster

    @staticmethod
    def powers_of_two(lo: int, hi: int) -> List[int]:
        """Powers of two in ``[lo, hi]`` (both clamped to at least 1)."""
        out: List[int] = []
        value = max(1, lo)
        # round up to a power of two
        p = 1
        while p < value:
            p *= 2
        while p <= hi:
            out.append(p)
            p *= 2
        return out

    def profile(
        self,
        config: ModelConfig,
        max_tokens: int = DEFAULT_MAX_TOKENS,
        tp_degrees: Sequence[int] = DEFAULT_TP_DEGREES,
        seq_lengths: Sequence[int] = DEFAULT_SEQ_LENGTHS,
        max_batch: int = 512,
    ) -> ProfileStats:
        """Profile one model and return its statistics table."""
        provider = AnalyticalProvider(config, self.cluster)
        token_sizes = self.powers_of_two(256, max_tokens)
        batch_sizes = self.powers_of_two(1, max_batch)
        tp_degrees = tuple(t for t in tp_degrees if config.n_heads % t == 0)
        stats = ProfileStats(
            model_name=config.name,
            token_sizes=tuple(token_sizes),
            tp_degrees=tp_degrees,
            seq_lengths=tuple(seq_lengths),
        )
        wall = 0.0
        n = 0
        for tp in tp_degrees:
            for seqlen in seq_lengths:
                fwd_key = (tp, seqlen)
                stats.forward_samples[fwd_key] = []
                stats.backward_samples[fwd_key] = []
                for tokens in token_sizes:
                    fwd = provider.forward(tokens, seqlen, tp)
                    bwd = provider.backward(tokens, seqlen, tp)
                    stats.forward_samples[fwd_key].append((tokens, fwd))
                    stats.backward_samples[fwd_key].append((tokens, bwd))
                    wall += PROFILE_TRIALS * (fwd.total_s + bwd.total_s)
                    n += 2
                for graph in (False, True):
                    dec_key = (tp, seqlen, graph)
                    stats.decode_samples[dec_key] = []
                    for batch in batch_sizes:
                        dec = provider.decode(batch, seqlen, tp, use_cuda_graph=graph)
                        stats.decode_samples[dec_key].append((batch, dec))
                        wall += PROFILE_TRIALS * dec.total_s
                        n += 1
            stats.head_samples[tp] = []
            for tokens in token_sizes:
                head = provider.head_forward(tokens, tp)
                stats.head_samples[tp].append((tokens, head))
                wall += PROFILE_TRIALS * head.total_s
                n += 1
            stats.optimizer_samples[tp] = provider.optimizer_step(tp, 1)
            wall += PROFILE_TRIALS * stats.optimizer_samples[tp].total_s
            n += 1
        stats.profiling_seconds = wall
        stats.n_measurements = n
        return stats


class ProfiledProvider:
    """Layer time provider that interpolates a :class:`ProfileStats` table."""

    def __init__(self, config: ModelConfig, cluster: ClusterSpec, stats: ProfileStats) -> None:
        if stats.model_name != config.name:
            raise ValueError(
                f"profile is for {stats.model_name!r}, not {config.name!r}"
            )
        self.config = config
        self.cluster = cluster
        self.stats = stats
        # Fallback for TP degrees / sequence lengths outside the profiled set.
        self._fallback = AnalyticalProvider(config, cluster)

    # ------------------------------------------------------------------ #
    # Key resolution helpers
    # ------------------------------------------------------------------ #
    def _nearest_seq(self, seqlen: float) -> int:
        return min(self.stats.seq_lengths, key=lambda s: abs(s - seqlen))

    def _has_tp(self, tp: int) -> bool:
        return tp in self.stats.tp_degrees

    # ------------------------------------------------------------------ #
    # Provider interface
    # ------------------------------------------------------------------ #
    def forward(self, n_tokens: int, seqlen: int, tp: int) -> LayerTiming:
        if not self._has_tp(tp):
            return self._fallback.forward(n_tokens, seqlen, tp)
        key = (tp, self._nearest_seq(seqlen))
        return _interp_timing(self.stats.forward_samples[key], n_tokens)

    def backward(self, n_tokens: int, seqlen: int, tp: int) -> LayerTiming:
        if not self._has_tp(tp):
            return self._fallback.backward(n_tokens, seqlen, tp)
        key = (tp, self._nearest_seq(seqlen))
        return _interp_timing(self.stats.backward_samples[key], n_tokens)

    def decode(self, batch: int, kv_len: float, tp: int, use_cuda_graph: bool) -> LayerTiming:
        if not self._has_tp(tp):
            return self._fallback.decode(batch, kv_len, tp, use_cuda_graph)
        key = (tp, self._nearest_seq(kv_len), use_cuda_graph)
        return _interp_timing(self.stats.decode_samples[key], batch)

    def head_forward(self, n_tokens: int, tp: int) -> LayerTiming:
        if not self._has_tp(tp):
            return self._fallback.head_forward(n_tokens, tp)
        return _interp_timing(self.stats.head_samples[tp], n_tokens)

    def head_backward(self, n_tokens: int, tp: int) -> LayerTiming:
        fwd = self.head_forward(n_tokens, tp)
        return LayerTiming(2.0 * fwd.compute_s, 2.0 * fwd.tp_comm_s, fwd.launch_s)

    def optimizer_step(self, tp: int, pp: int) -> LayerTiming:
        if not self._has_tp(tp):
            return self._fallback.optimizer_step(tp, pp)
        return self.stats.optimizer_samples[tp]
