"""MCMC-based execution plan search (Section 5.2 of the paper).

The searcher draws execution plans from the energy-based distribution
:math:`P(p) \\propto \\exp(-\\beta \\cdot cost(G_p))` with the
Metropolis-Hastings algorithm.  It starts from a greedy plan that minimises
the sum of per-call times (ignoring overlap and memory), proposes transitions
that reassign the device mesh, parallel strategy and micro-batch count of a
random function call, and keeps the lowest-cost plan ever visited.

Proposals are scored through the estimator's incremental
:meth:`~repro.core.estimator.RuntimeEstimator.cost_delta` path (a proposal
changes exactly one call's allocation).  ``SearchConfig.n_chains`` runs
several *independent* Metropolis-Hastings chains: every chain starts from the
same best initial candidate, explores with its own RNG stream, keeps its own
running best (for the normalised acceptance temperature) and receives the
**full** wall-clock budget; the iteration budget is split evenly across
chains.  Because chains share no mutable state, they can execute either
in-process (one after another) or on worker processes
(:mod:`repro.core.parallel_search`) — whenever the *iteration* budget binds,
both modes produce bit-identical best plans and costs for the same seeds, so
parallelism only changes wall-clock time, never results.  (A binding *time*
budget makes any run timing-dependent — two sequential runs under machine
load already differ — so time-bounded searches are best-effort in every
execution mode.)
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..cluster.hardware import ClusterSpec
from ..obs.log import get_logger
from ..obs.metrics import get_registry
from ..obs.tracing import SpanContext, SpanRecord, current_span, get_tracer
from .batch_eval import (
    SharedTables,
    attach_batch_state,
    batch_eval_mode,
    shared_tables_enabled,
)
from .dataflow import DataflowGraph
from .estimator import DEFAULT_OOM_PENALTY, RuntimeEstimator
from .parallel_search import (
    GLOBAL_CORE_BUDGET,
    ChainResult,
    ChainSpec,
    ChainState,
    CoreBudget,
    ParallelSearchRunner,
    min_parallel_budget_s,
    min_parallel_chain_iters,
)
from .plan import Allocation, ExecutionPlan
from .pruning import PruneConfig, allocation_options, search_space_size
from .workload import RLHFWorkload

__all__ = [
    "SearchConfig",
    "SearchResult",
    "SessionProgress",
    "SearchSession",
    "MCMCSearcher",
    "search_execution_plan",
]

_PARALLEL_MODES = ("auto", "process", "off")

_BATCH_MIN_GAP = 16.0
"""Rejections-per-acceptance level at which batched sweeps engage.

A sweep's fixed kernel overhead is worth roughly a dozen scalar
``cost_delta`` evaluations, and a sweep stops at its first acceptance — so
batching only wins once the chain typically rejects more than this many
proposals in a row.  Below it the scalar loop is faster; the switch is a
pure perf heuristic and never affects the trajectory."""

_BATCH_SWEEP_MIN = 16
"""Minimum sweep width once sweeps engage (amortises the fixed overhead
even while the adaptive width is still warming up)."""


@dataclass(frozen=True)
class SearchConfig:
    """Hyper-parameters of the Metropolis-Hastings search.

    ``beta`` is the sampling temperature applied to the *normalised* cost
    (cost divided by the chain's best cost so far), which keeps acceptance
    rates comparable across experiment scales.  Each of the ``n_chains``
    chains stops after its share of ``max_iterations`` proposals (split
    evenly) or after ``time_budget_s`` wall-clock seconds of its own,
    whichever comes first.
    """

    beta: float = 8.0
    oom_penalty: float = DEFAULT_OOM_PENALTY
    max_iterations: int = 2000
    time_budget_s: float = 30.0
    seed: int = 0
    record_history: bool = True
    n_chains: int = 1
    """Number of independent Metropolis-Hastings chains.  Each chain uses its
    own RNG stream, an even share of the iteration budget and the **full**
    wall-clock budget; the search returns the best plan over all chains with
    merged history."""
    parallel: str = "auto"
    """Chain execution mode: ``"auto"`` runs chains on worker processes when
    the search is big enough and the core-budget governor grants cores,
    ``"process"`` always uses worker processes, ``"off"`` always runs chains
    in-process.  The mode never changes the result (chains are deterministic
    given their seeds), so it is excluded from workload fingerprints."""
    initial_plan: Optional[ExecutionPlan] = None
    """Optional warm-start hint: evaluated alongside the greedy plan and any
    seed plans, so the chain starts from the best available candidate.  The
    hint never hurts — the search result is at least as good as the hint's
    cost.  Excluded from workload fingerprints (see :mod:`repro.service`)."""

    def __post_init__(self) -> None:
        if self.parallel not in _PARALLEL_MODES:
            raise ValueError(
                f"parallel must be one of {_PARALLEL_MODES}, got {self.parallel!r}"
            )
        # Budget validation at construction: a bad budget would otherwise
        # fail deep in chain setup (or silently search nothing forever).
        # ``max_iterations=0`` stays legal on purpose — it is the documented
        # "evaluate the initial candidates only" budget.
        if self.max_iterations < 0:
            raise ValueError(
                f"max_iterations must be >= 0, got {self.max_iterations}"
            )
        if not self.time_budget_s > 0:
            raise ValueError(
                f"time_budget_s must be > 0, got {self.time_budget_s}"
            )
        if self.n_chains < 1:
            raise ValueError(f"n_chains must be >= 1, got {self.n_chains}")


@dataclass
class SearchResult:
    """Outcome of one search run."""

    best_plan: ExecutionPlan
    best_cost: float
    initial_plan: ExecutionPlan
    initial_cost: float
    n_iterations: int
    n_accepted: int
    elapsed_seconds: float
    """True wall-clock time of the whole search, including initial-candidate
    evaluation and (for parallel runs) worker pool start-up — *not* the sum
    of per-chain times."""
    history: List[Tuple[int, float, float]] = field(default_factory=list)
    """``(iteration, chain_elapsed_seconds, best_cost_so_far)`` samples.
    Iterations number chains back to back (chain-major); elapsed times are
    chain-local (measured from each chain's own start)."""
    search_space: float = 0.0
    n_chains: int = 1
    cpu_seconds: float = 0.0
    """Summed per-chain CPU time (``time.process_time``).  For sequential
    runs this tracks ``elapsed_seconds``; for parallel runs it is the compute
    actually spent across worker processes."""
    chain_wall_seconds: List[float] = field(default_factory=list)
    """Per-chain wall-clock seconds, in chain order."""
    chain_cpu_seconds: List[float] = field(default_factory=list)
    """Per-chain CPU seconds, in chain order."""
    execution_mode: str = "sequential"
    """How the chains ran: ``"sequential"`` (in-process) or ``"process"``."""
    n_workers: int = 1
    """Worker processes used (1 for sequential runs)."""

    @property
    def improvement_ratio(self) -> float:
        """Best cost relative to the initial plan (lower is better)."""
        if self.initial_cost <= 0:
            return 1.0
        return self.best_cost / self.initial_cost

    @property
    def acceptance_rate(self) -> float:
        """Fraction of accepted MCMC proposals."""
        return self.n_accepted / max(1, self.n_iterations)

    @property
    def parallel_efficiency(self) -> float:
        """CPU seconds per wall second, normalised by workers (1.0 is ideal)."""
        if self.elapsed_seconds <= 0 or self.n_workers <= 0:
            return 0.0
        return self.cpu_seconds / (self.elapsed_seconds * self.n_workers)


class MCMCSearcher:
    """Metropolis-Hastings search over per-call allocations."""

    def __init__(
        self,
        graph: DataflowGraph,
        workload: RLHFWorkload,
        cluster: ClusterSpec,
        estimator: Optional[RuntimeEstimator] = None,
        options: Optional[Dict[str, List[Allocation]]] = None,
        prune: PruneConfig = PruneConfig(),
        config: SearchConfig = SearchConfig(),
        seed_plans: Optional[Sequence[ExecutionPlan]] = None,
        core_budget: Optional[CoreBudget] = None,
    ) -> None:
        self.graph = graph
        self.workload = workload
        self.cluster = cluster
        self.config = config
        self.estimator = estimator or RuntimeEstimator(graph, workload, cluster)
        self.options = options or allocation_options(graph, workload, cluster, prune)
        missing = set(graph.call_names) - set(self.options)
        if missing:
            raise ValueError(f"no allocation options for calls: {sorted(missing)}")
        self.seed_plans = list(seed_plans or [])
        self.core_budget = core_budget if core_budget is not None else GLOBAL_CORE_BUDGET
        self.span_parent: Optional[SpanContext] = None
        """Fallback trace parent for chain spans when no contextvar context
        is active — set by :meth:`ChainProblem.build_searcher` inside worker
        processes, where the parent's contextvars do not exist."""
        # Per-call proposal indexes: options grouped by mesh, and the set of
        # (mesh, strategy) layouts available, so proposing a move never scans
        # the full option list comparing dataclasses.
        self._options_by_mesh: Dict[str, Dict[Tuple, List[Allocation]]] = {}
        self._layouts: Dict[str, set] = {}
        for call_name, choices in self.options.items():
            by_mesh: Dict[Tuple, List[Allocation]] = {}
            layouts = set()
            for alloc in choices:
                mesh_key = self._mesh_key(alloc.mesh)
                by_mesh.setdefault(mesh_key, []).append(alloc)
                layouts.add(mesh_key + (alloc.parallel.dp, alloc.parallel.tp, alloc.parallel.pp))
            self._options_by_mesh[call_name] = by_mesh
            self._layouts[call_name] = layouts
        # Batched-evaluation sweep width: adapts to the chain's observed
        # acceptance run length (EMA), so most sweeps score just past the
        # next accepted proposal.  K only affects throughput, never the
        # trajectory — the chain always consumes proposals in RNG order up
        # to the first acceptance.  The EMA starts below _BATCH_MIN_GAP, so
        # fresh (hot, frequently-accepting) chains run the scalar loop until
        # rejections actually dominate.
        self._batch_k = 8
        self._batch_ema = 4.0

    @staticmethod
    def _mesh_key(mesh) -> Tuple:
        return (mesh.node_start, mesh.n_nodes, mesh.gpu_start, mesh.gpus_per_node)

    # ------------------------------------------------------------------ #
    # Initialisation
    # ------------------------------------------------------------------ #
    def greedy_initial_plan(self) -> ExecutionPlan:
        """Plan minimising the sum of per-call times in isolation.

        As the paper notes, this plan is usually sub-optimal: every call grabs
        as many GPUs as help it individually, which prevents concurrent
        execution and may overload device memory — but it is a good starting
        point for the Markov chain.
        """
        assignments: Dict[str, Allocation] = {}
        for call_name, choices in self.options.items():
            best = min(choices, key=lambda a: self.estimator.call_time(call_name, a))
            assignments[call_name] = best
        return ExecutionPlan(assignments, name="greedy-initial")

    def initial_candidate(self) -> Tuple[ExecutionPlan, float]:
        """Best of the greedy plan, the seed plans and ``config.initial_plan``.

        This is the plan every chain starts from — and the floor any search
        or session result can only improve on.
        """
        cfg = self.config
        start_plan = self.greedy_initial_plan()
        start_cost = self.estimator.cost(start_plan, cfg.oom_penalty)
        candidates = list(self.seed_plans)
        if cfg.initial_plan is not None:
            candidates.append(cfg.initial_plan)
        for seed_plan in candidates:
            seed_cost = self.estimator.cost(seed_plan, cfg.oom_penalty)
            if seed_cost < start_cost:
                start_plan, start_cost = seed_plan, seed_cost
        return start_plan, start_cost

    # ------------------------------------------------------------------ #
    # MCMC
    # ------------------------------------------------------------------ #
    def _propose(
        self, plan: ExecutionPlan, rng: np.random.Generator
    ) -> Tuple[str, Allocation]:
        """Propose a single-call move ``(call_name, new_allocation)``.

        Three move types are mixed: (a) reassign a random call to a random
        allocation option, (b) align a call with the allocation of another
        call (which removes a reallocation edge when they share a model), and
        (c) keep a call's mesh but change its strategy or micro-batch count.
        """
        call_names = self.graph.call_names
        call_name = call_names[int(rng.integers(len(call_names)))]
        choices = self.options[call_name]
        roll = rng.random()
        if roll < 0.2 and len(call_names) > 1:
            # Align with another call's allocation if it is a valid option here.
            other = call_names[int(rng.integers(len(call_names)))]
            if other != call_name:
                other_alloc = plan[other]
                parallel = other_alloc.parallel
                layout = self._mesh_key(other_alloc.mesh) + (
                    parallel.dp,
                    parallel.tp,
                    parallel.pp,
                )
                if layout in self._layouts[call_name]:
                    return call_name, other_alloc
        elif roll < 0.45:
            # Same mesh, different strategy / micro-batch count.
            current = plan[call_name]
            same_mesh = self._options_by_mesh[call_name].get(self._mesh_key(current.mesh))
            if same_mesh:
                return call_name, same_mesh[int(rng.integers(len(same_mesh)))]
        return call_name, choices[int(rng.integers(len(choices)))]

    def _proposal_cost(
        self, plan: ExecutionPlan, call_name: str, new_alloc: Allocation
    ) -> float:
        """Score a single-call move via the estimator's incremental path."""
        cost_delta = getattr(self.estimator, "cost_delta", None)
        if cost_delta is not None:
            return cost_delta(plan, call_name, new_alloc, self.config.oom_penalty)
        return self.estimator.cost(
            plan.with_assignment(call_name, new_alloc), self.config.oom_penalty
        )

    def _batch_enabled(self) -> bool:
        """Whether chains score proposal sweeps through the batch kernel.

        Gated by ``REPRO_BATCH_EVAL`` (``on``/``auto`` enable, ``off``
        disables) and by estimator capability: the kernel needs the memo
        caches, the approximate reallocation model and an incremental
        ``cost_delta`` path (reference estimators that null it out keep the
        scalar loop).  The mode never changes results — batched and scalar
        chains consume the RNG stream identically — so ``on`` and ``auto``
        are equivalent today; ``on`` is reserved for callers that want a
        hard failure if support regresses.
        """
        if batch_eval_mode() == "off":
            return False
        estimator = self.estimator
        return bool(getattr(estimator, "batch_supported", False)) and (
            getattr(estimator, "cost_delta", None) is not None
        )

    def export_batch_tables(self):
        """Shipment of the batch lookup tables for worker processes.

        Returns ``(shipment, owner)``: ``shipment`` travels inside the
        pickled :class:`ChainProblem` (``("shm", handle)`` when a shared
        memory block was exported, ``("arrays", dict)`` as the pickled
        fallback, ``None`` when batching is disabled), and ``owner`` is the
        parent-side :class:`SharedTables` to close once workers are done
        (``None`` unless shared memory is in use).
        """
        if not self._batch_enabled():
            return None, None
        state = self.estimator.batch_state(self.options)
        if shared_tables_enabled():
            owner = SharedTables.export(state)
            if owner is not None:
                return ("shm", owner.handle), owner
        return ("arrays", state.export_arrays()), None

    def adopt_shipped_tables(self, shipment) -> None:
        """Attach shipped batch tables in a worker process (fail-soft).

        Any attach failure — stale shared-memory name, option-table drift —
        just logs and keeps the local lazy build; results never depend on
        the shipment, only the table-construction cost does.
        """
        if shipment is None or not self._batch_enabled():
            return
        try:
            state = attach_batch_state(self.estimator, self.options, shipment)
        except Exception as exc:  # noqa: BLE001 - any failure means rebuild
            get_logger("search").warning(
                "batch-table attach failed (%s: %s); rebuilding locally",
                type(exc).__name__,
                exc,
            )
            return
        self.estimator.adopt_batch_state(state)

    def _chain_rng(self, chain: int) -> np.random.Generator:
        """Chain 0 keeps the classic single-chain stream (bit-compatible with
        the pre-multi-chain searcher); further chains get independent streams."""
        if chain == 0:
            return np.random.default_rng(self.config.seed)
        return np.random.default_rng([self.config.seed, chain])

    def init_chain_state(
        self,
        chain: int,
        start_plan: ExecutionPlan,
        start_cost: float,
        max_iterations: int,
    ) -> ChainState:
        """A fresh checkpointable chain, positioned before its first proposal."""
        return ChainState(
            chain=chain,
            max_iterations=max(0, int(max_iterations)),
            rng=self._chain_rng(chain),
            current_plan=start_plan,
            current_cost=start_cost,
            best_plan=start_plan,
            best_cost=start_cost,
            span_context=current_span() or self.span_parent,
        )

    def advance_chain(
        self,
        state: ChainState,
        max_iterations: Optional[int] = None,
        time_budget_s: Optional[float] = None,
    ) -> ChainState:
        """Advance one checkpointed chain by a slice of its budgets.

        Mutates and returns ``state``.  ``max_iterations``/``time_budget_s``
        bound this *slice*; the chain's total budgets
        (``state.max_iterations`` and ``config.time_budget_s`` worth of
        accumulated wall time) always apply on top, and exhausting either
        marks the state ``done``.  Advancing a fresh state without slice
        bounds is exactly :meth:`run_chain`; because the RNG travels in the
        state and nothing is drawn between slices, the proposal stream —
        and therefore the best plan/cost and history — is bit-identical no
        matter how the iteration budget is sliced (a binding *time* budget
        is timing-dependent in any mode, sliced or not).
        """
        cfg = self.config
        if state.done:
            return state
        slice_iters = state.remaining_iterations
        if max_iterations is not None:
            slice_iters = min(slice_iters, max(0, int(max_iterations)))
        remaining_time = cfg.time_budget_s - state.wall_seconds
        slice_time = (
            remaining_time
            if time_budget_s is None
            else min(float(time_budget_s), remaining_time)
        )
        # Chain slices are the unit of tracing: one span per advance (never
        # per proposal).  The gate is the shipped context itself — with
        # REPRO_TRACING=off no span is ever opened, so no context exists and
        # the hot loop pays exactly one ``is not None`` check.
        span_parent = state.span_context
        span_start_s = time.time() if span_parent is not None else 0.0
        wall_start = time.perf_counter()
        cpu_start = time.process_time()
        deadline = wall_start + slice_time
        rng = state.rng
        current, current_cost = state.current_plan, state.current_cost
        best_plan, best_cost = state.best_plan, state.best_cost
        n_accepted = 0
        iteration = 0
        # Every path draws one uniform per proposal (even for downhill moves
        # that accept regardless), so the scalar loop, the batched sweep and
        # any slicing of either consume the RNG stream identically — chain
        # trajectories are bit-identical across all of them.
        use_batch = slice_iters > 0 and self._batch_enabled()
        if use_batch:
            batch_cost = self.estimator.batch_cost
            self.estimator.batch_state(self.options)
        # A batch sweep stops at its first acceptance, so its fixed kernel
        # overhead (worth roughly a dozen scalar evaluations) only pays for
        # itself while acceptances are *rare* — e.g. a cooled-down chain
        # rejecting almost everything.  The rejection streak and its EMA
        # decide per pass which path scores the next proposal(s); a pure
        # perf heuristic, since both paths walk the identical trajectory.
        reject_streak = 0
        while iteration < slice_iters:
            if time.perf_counter() > deadline:
                break
            if use_batch and (
                self._batch_ema >= _BATCH_MIN_GAP
                or reject_streak >= _BATCH_MIN_GAP
            ):
                # Pre-generate K (proposal, uniform) pairs from the current
                # plan, snapshotting the RNG state after each pair; score the
                # whole batch in one kernel sweep; then accept the *first*
                # Metropolis-accepted proposal in RNG order and rewind the
                # stream to just after its uniform.  Within the consumed
                # prefix nothing the scalar loop reads changes (current and
                # best move only on acceptance), so the decisions match the
                # scalar path exactly; K only sets sweep width.
                k = min(max(self._batch_k, _BATCH_SWEEP_MIN), slice_iters - iteration)
                proposals = []
                snapshots = []
                bit_generator = rng.bit_generator
                for _ in range(k):
                    call_name, new_alloc = self._propose(current, rng)
                    u = rng.random()
                    proposals.append((call_name, new_alloc, u))
                    snapshots.append(bit_generator.state)
                costs = batch_cost(
                    base_plan=current,
                    moves=[(name, alloc) for name, alloc, _ in proposals],
                    oom_penalty=cfg.oom_penalty,
                )
                # Normalise the energy by the chain's best cost so far so the
                # temperature stays meaningful across experiment scales and
                # even when the initial plan is heavily OOM-penalised.
                # Chain-local on purpose: sharing the cross-chain best would
                # entangle the chains and break sequential/parallel
                # equivalence.
                scale = max(best_cost, 1e-9)
                consumed, accepted_at = k, -1
                for i in range(k):
                    delta = (float(costs[i]) - current_cost) / scale
                    if delta <= 0 or proposals[i][2] < math.exp(-cfg.beta * delta):
                        consumed, accepted_at = i + 1, i
                        break
                for i in range(consumed):
                    iteration += 1
                    if i == accepted_at:
                        call_name, new_alloc, _ = proposals[i]
                        current = current.with_assignment(call_name, new_alloc)
                        current_cost = float(costs[i])
                        n_accepted += 1
                        if current_cost < best_cost:
                            best_plan, best_cost = current, current_cost
                    if cfg.record_history:
                        state.history.append(
                            (
                                state.n_iterations + iteration,
                                state.wall_seconds + (time.perf_counter() - wall_start),
                                best_cost,
                            )
                        )
                if consumed < k:
                    bit_generator.state = snapshots[consumed - 1]
                self._batch_ema = 0.8 * self._batch_ema + 0.2 * consumed
                self._batch_k = min(128, max(4, int(self._batch_ema * 2.0) + 2))
                reject_streak = 0 if accepted_at >= 0 else reject_streak + consumed
                continue
            iteration += 1
            call_name, new_alloc = self._propose(current, rng)
            proposal_cost = self._proposal_cost(current, call_name, new_alloc)
            # Normalise the energy by the chain's best cost so far so the
            # temperature stays meaningful across experiment scales and even
            # when the initial plan is heavily OOM-penalised.  Chain-local on
            # purpose: sharing the cross-chain best would entangle the chains
            # and break sequential/parallel equivalence.
            scale = max(best_cost, 1e-9)
            delta = (proposal_cost - current_cost) / scale
            u = rng.random()
            accept = delta <= 0 or u < math.exp(-cfg.beta * delta)
            if accept:
                # The closed gap feeds the same EMA the sweeps adapt on, so
                # the switch works in both directions.
                self._batch_ema = 0.8 * self._batch_ema + 0.2 * (reject_streak + 1)
                reject_streak = 0
                current = current.with_assignment(call_name, new_alloc)
                current_cost = proposal_cost
                n_accepted += 1
                if current_cost < best_cost:
                    best_plan, best_cost = current, current_cost
            else:
                reject_streak += 1
            if cfg.record_history:
                state.history.append(
                    (
                        state.n_iterations + iteration,
                        state.wall_seconds + (time.perf_counter() - wall_start),
                        best_cost,
                    )
                )
        state.current_plan, state.current_cost = current, current_cost
        state.best_plan, state.best_cost = best_plan, best_cost
        state.n_iterations += iteration
        state.n_accepted += n_accepted
        state.wall_seconds += time.perf_counter() - wall_start
        state.cpu_seconds += time.process_time() - cpu_start
        if (
            state.n_iterations >= state.max_iterations
            or state.wall_seconds >= cfg.time_budget_s
        ):
            state.done = True
        if span_parent is not None:
            state.slice_spans.append(
                SpanRecord(
                    name=f"chain {state.chain}",
                    category="search",
                    start_s=span_start_s,
                    end_s=time.time(),
                    context=span_parent.child(),
                    args={
                        "chain": state.chain,
                        "iterations": iteration,
                        "accepted": n_accepted,
                        "best_cost": best_cost,
                        "done": state.done,
                    },
                )
            )
        return state

    def run_chain(
        self,
        chain: int,
        start_plan: ExecutionPlan,
        start_cost: float,
        max_iterations: int,
    ) -> ChainResult:
        """Run one independent Metropolis-Hastings chain to completion.

        The chain's outcome is a pure function of the search problem, the
        seed and ``chain`` — no wall-clock dependence except the time budget
        cutoff — so running it in-process or in a worker process yields the
        same result.  History samples are chain-local: iterations count from
        1 and elapsed times are measured from the chain's own start.

        With ``record_history=True`` the full sample list travels back from
        worker processes (one tuple per iteration — identical in both
        execution modes, which the determinism tests rely on); for very long
        parallel runs prefer ``record_history=False`` to skip that pickle
        traffic.
        """
        state = self.init_chain_state(chain, start_plan, start_cost, max_iterations)
        return self.advance_chain(state).to_result()

    def _chain_specs(self, n_chains: int) -> List[ChainSpec]:
        """Even split of the iteration budget (earlier chains take remainders)."""
        base_iters, extra_iters = divmod(self.config.max_iterations, n_chains)
        return [
            ChainSpec(chain=chain, max_iterations=base_iters + (1 if chain < extra_iters else 0))
            for chain in range(n_chains)
        ]

    def _estimator_portable(self) -> bool:
        """Whether worker processes can rebuild an equivalent estimator.

        :class:`ChainProblem` re-creates a plain :class:`RuntimeEstimator`
        from its shipped configuration (profiles, cuda-graph, caching,
        cross-check).  A custom estimator *subclass* (e.g. a benchmark's
        reference implementation) cannot be reproduced that way, so its
        searches always run chains in-process — wrong-cost-model plans would
        be far worse than losing parallelism.
        """
        return type(self.estimator) is RuntimeEstimator

    def _auto_parallel_worthwhile(self, specs: List[ChainSpec]) -> bool:
        """Whether ``parallel="auto"`` should bother forking worker processes.

        Tiny searches lose more to process start-up, option pickling and
        estimator rebuilding than they gain, so they stay on the calling
        thread.
        """
        if self.config.time_budget_s < min_parallel_budget_s():
            return False
        return max(spec.max_iterations for spec in specs) >= min_parallel_chain_iters()

    def search(self) -> SearchResult:
        """Run the Metropolis-Hastings chains and return the best plan found.

        Every chain starts from the best of the greedy per-call-optimal plan,
        any seed plans supplied at construction time (e.g. the Megatron
        heuristic) and ``config.initial_plan``; the reported ``initial_plan``/
        ``initial_cost`` are that actual chain start, so the improvement ratio
        reflects what the search itself achieved.  Depending on
        ``config.parallel`` and the core-budget governor, chains run either
        in-process or on worker processes; the merged result is identical.
        """
        cfg = self.config
        tracer = get_tracer()
        with tracer.start_span(
            "search",
            category="search",
            args={"n_chains": cfg.n_chains, "max_iterations": cfg.max_iterations},
        ) as search_span:
            start_time = time.perf_counter()
            start_plan, start_cost = self.initial_candidate()
            # Report the actual chain start (greedy, seed or warm-start hint —
            # whichever won), not unconditionally the greedy plan.
            initial_plan, initial_cost = start_plan, start_cost

            n_chains = max(1, int(cfg.n_chains))
            specs = self._chain_specs(n_chains)

            results: Optional[List[ChainResult]] = None
            execution_mode = "sequential"
            n_workers = 1
            if n_chains > 1 and cfg.parallel != "off" and self._estimator_portable():
                force = cfg.parallel == "process"
                if force or self._auto_parallel_worthwhile(specs):
                    runner = ParallelSearchRunner(core_budget=self.core_budget)
                    results = runner.run(self, specs, start_plan, start_cost, force=force)
                    if results is not None:
                        execution_mode = "process"
                        n_workers = runner.last_granted
            if results is None:
                # In-process fallback: account the calling thread with the
                # governor (minimum=0: a fully-loaded machine still runs the
                # search, just without claiming a core it does not have).
                with self.core_budget.lease(1, minimum=0):
                    results = [
                        self.run_chain(spec.chain, start_plan, start_cost, spec.max_iterations)
                        for spec in specs
                    ]

            # Chain spans rode back inside the results (recorded in-process
            # or shipped from worker processes — same path either way).
            for chain_result in results:
                if chain_result.spans:
                    tracer.extend(chain_result.spans)

            merged = self._merge_results(
                results,
                initial_plan=initial_plan,
                initial_cost=initial_cost,
                start_cost=start_cost,
                start_time=start_time,
                n_chains=n_chains,
                execution_mode=execution_mode,
                n_workers=n_workers,
            )
            search_span.set(
                best_cost=merged.best_cost,
                initial_cost=merged.initial_cost,
                iterations=merged.n_iterations,
                execution_mode=merged.execution_mode,
            )
        self._publish_metrics(merged)
        return merged

    @staticmethod
    def _publish_metrics(result: SearchResult) -> None:
        """One batched registry update per search run (no per-proposal cost)."""
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "search_runs_total", "Plan searches by chain execution mode",
                labels=("mode",),
            ).labels(mode=result.execution_mode).inc()
            registry.counter(
                "search_iterations_total", "MCMC proposals evaluated across runs"
            ).inc(result.n_iterations)
            registry.gauge(
                "search_acceptance_rate", "Accepted-proposal fraction of the last run"
            ).set(result.acceptance_rate)
            registry.gauge(
                "search_proposals_per_sec", "Proposal throughput of the last run"
            ).set(result.n_iterations / max(result.elapsed_seconds, 1e-9))
            wall_hist = registry.histogram(
                "search_chain_wall_seconds", "Per-chain wall-clock seconds"
            )
            for seconds in result.chain_wall_seconds:
                wall_hist.observe(seconds)
            cpu_hist = registry.histogram(
                "search_chain_cpu_seconds", "Per-chain CPU seconds"
            )
            for seconds in result.chain_cpu_seconds:
                cpu_hist.observe(seconds)
        log = get_logger("search")
        if log.isEnabledFor(10):  # logging.DEBUG
            log.debug(
                "%s search: %d iters over %d chains in %.3fs "
                "(accept %.2f, cost %.4f -> %.4f)",
                result.execution_mode,
                result.n_iterations,
                result.n_chains,
                result.elapsed_seconds,
                result.acceptance_rate,
                result.initial_cost,
                result.best_cost,
            )

    def _merge_results(
        self,
        results: List[ChainResult],
        initial_plan: ExecutionPlan,
        initial_cost: float,
        start_cost: float,
        start_time: float,
        n_chains: int,
        execution_mode: str,
        n_workers: int,
    ) -> SearchResult:
        """Deterministically merge per-chain results (chain order, strict <)."""
        best_plan_assignments: Dict[str, Allocation] = dict(initial_plan.assignments)
        best_cost = start_cost
        for result in results:
            if result.best_cost < best_cost:
                best_plan_assignments = dict(result.best_plan.assignments)
                best_cost = result.best_cost
        history: List[Tuple[int, float, float]] = []
        running_best = start_cost
        offset = 0
        for result in results:
            for iteration, elapsed, chain_best in result.history:
                if chain_best < running_best:
                    running_best = chain_best
                history.append((offset + iteration, elapsed, running_best))
            offset += result.n_iterations
        return SearchResult(
            best_plan=ExecutionPlan(best_plan_assignments, name="searched"),
            best_cost=best_cost,
            initial_plan=initial_plan,
            initial_cost=initial_cost,
            n_iterations=sum(r.n_iterations for r in results),
            n_accepted=sum(r.n_accepted for r in results),
            elapsed_seconds=time.perf_counter() - start_time,
            history=history,
            search_space=search_space_size(self.options),
            n_chains=n_chains,
            cpu_seconds=sum(r.cpu_seconds for r in results),
            chain_wall_seconds=[r.wall_seconds for r in results],
            chain_cpu_seconds=[r.cpu_seconds for r in results],
            execution_mode=execution_mode,
            n_workers=n_workers,
        )


@dataclass(frozen=True)
class SessionProgress:
    """One poll's view of a running :class:`SearchSession`."""

    n_iterations: int
    """Total proposals consumed so far, summed over all chains."""
    new_iterations: int
    """Proposals consumed by this poll."""
    best_cost: float
    improved: bool
    """Whether this poll lowered the session's best cost."""
    done: bool
    """Every chain exhausted its budgets; further polls are no-ops."""
    wall_seconds: float
    """Summed per-chain compute seconds consumed so far (not session age)."""
    execution_mode: str
    """How this poll's slices ran: ``"sequential"``, ``"process"`` or
    ``"idle"`` (nothing left to advance)."""


class SearchSession:
    """A resumable, pollable plan search (the online re-planning primitive).

    The same Metropolis-Hastings chains :meth:`MCMCSearcher.search` runs to
    completion, executed in slices: :meth:`start` evaluates the initial
    candidates and positions the chains, each :meth:`poll` consumes one slice
    of the budgets, :meth:`best_so_far` reads the merged best at any point,
    and :meth:`stop` releases any worker pool and returns the final merged
    :class:`SearchResult`.  Slicing never changes the outcome: at equal total
    iteration budgets, the session's best plan/cost are bit-identical to an
    uninterrupted ``search()`` with the same seed, because each chain's RNG
    travels inside its checkpointed :class:`ChainState` and nothing is drawn
    between slices.

    Multi-chain sessions keep their chains alive across polls on a
    persistent worker pool (states round-trip through pickles, mirroring the
    ``ChainSpec``/``ChainResult`` path of one-shot searches); the shared
    :class:`CoreBudget` governor is consulted *per poll*, so an idle session
    holds no cores, and on a busy machine a poll degrades to in-process
    execution instead of oversubscribing foreground searches.
    """

    def __init__(
        self,
        searcher: MCMCSearcher,
        slice_iterations: Optional[int] = None,
        slice_time_s: Optional[float] = None,
        max_workers: Optional[int] = None,
    ) -> None:
        if slice_iterations is not None and slice_iterations < 1:
            raise ValueError(
                f"slice_iterations must be >= 1, got {slice_iterations}"
            )
        self.searcher = searcher
        cfg = searcher.config
        self.slice_iterations = (
            int(slice_iterations)
            if slice_iterations is not None
            else max(1, cfg.max_iterations // 10)
        )
        """Default proposals per chain per poll (a tenth of the budget)."""
        self.slice_time_s = slice_time_s
        """Default wall-clock bound per chain per poll (``None``: unbounded —
        the iteration slice and the chain's total time budget still apply)."""
        self.max_workers = max_workers
        self.states: List[ChainState] = []
        self.n_polls = 0
        self._runner: Optional[ParallelSearchRunner] = None
        self._started_at: Optional[float] = None
        self._initial_plan: Optional[ExecutionPlan] = None
        self._initial_cost = float("inf")
        self._stopped = False
        self._used_process = False
        self._n_workers = 1

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "SearchSession":
        """Evaluate the initial candidates and position the chains (idempotent)."""
        if self._started_at is not None:
            return self
        cfg = self.searcher.config
        self._started_at = time.perf_counter()
        start_plan, start_cost = self.searcher.initial_candidate()
        self._initial_plan, self._initial_cost = start_plan, start_cost
        n_chains = max(1, int(cfg.n_chains))
        specs = self.searcher._chain_specs(n_chains)
        self.states = [
            self.searcher.init_chain_state(
                spec.chain, start_plan, start_cost, spec.max_iterations
            )
            for spec in specs
        ]
        # Same gate as search(): a persistent pool only when the chains are
        # parallelizable at all and big enough to amortise the start-up.
        if n_chains > 1 and cfg.parallel != "off" and self.searcher._estimator_portable():
            force = cfg.parallel == "process"
            if force or self.searcher._auto_parallel_worthwhile(specs):
                runner = ParallelSearchRunner(
                    core_budget=self.searcher.core_budget,
                    max_workers=self.max_workers,
                )
                if runner.open_session(
                    self.searcher, start_plan, start_cost, force=force
                ):
                    self._runner = runner
        return self

    def stop(self) -> SearchResult:
        """Close any worker pool and return the final merged result."""
        self.start()
        if self._runner is not None:
            self._runner.close_session()
            self._runner = None
        result = self.result()
        if not self._stopped:
            self._stopped = True
            MCMCSearcher._publish_metrics(result)
        return result

    @property
    def started(self) -> bool:
        return self._started_at is not None

    @property
    def stopped(self) -> bool:
        return self._stopped

    @property
    def done(self) -> bool:
        """All chains exhausted (a never-started session is not done)."""
        return self.started and all(state.done for state in self.states)

    # ------------------------------------------------------------------ #
    # Progress
    # ------------------------------------------------------------------ #
    @property
    def initial_cost(self) -> float:
        return self._initial_cost

    @property
    def n_iterations(self) -> int:
        return sum(state.n_iterations for state in self.states)

    def best_so_far(self) -> Tuple[Optional[ExecutionPlan], float]:
        """Merged best over the initial candidate and every chain.

        Deterministic merge, mirroring ``_merge_results``: chain order with
        strict ``<``, so slicing and execution mode cannot flip ties.
        """
        best_plan, best_cost = self._initial_plan, self._initial_cost
        for state in self.states:
            if state.best_cost < best_cost:
                best_plan, best_cost = state.best_plan, state.best_cost
        return best_plan, best_cost

    @property
    def best_cost(self) -> float:
        return self.best_so_far()[1]

    def poll(
        self,
        max_iterations: Optional[int] = None,
        time_budget_s: Optional[float] = None,
    ) -> SessionProgress:
        """Advance every unfinished chain by one slice and report progress.

        Slice bounds default to the session's ``slice_iterations``/
        ``slice_time_s``.  Worker-pool sessions round-trip the chain states
        through the pool; when the governor denies cores for this poll (or
        the pool died) the slice runs on the calling thread instead — the
        states are self-contained, so mixing execution modes across polls
        does not change the outcome.
        """
        if self._stopped:
            raise RuntimeError("SearchSession has been stopped")
        self.start()
        before_best = self.best_cost
        before_iters = self.n_iterations
        active = [state for state in self.states if not state.done]
        # Re-parent each chain under the caller's span for *this* poll, so a
        # slice's spans land beneath the poll that ran it (states carry their
        # context through worker-pool pickling unchanged).
        poll_context = current_span()
        if poll_context is not None:
            for state in active:
                state.span_context = poll_context
        slice_iters = (
            int(max_iterations) if max_iterations is not None else self.slice_iterations
        )
        slice_time = time_budget_s if time_budget_s is not None else self.slice_time_s
        mode = "idle"
        if active:
            advanced = None
            if self._runner is not None:
                advanced = self._runner.advance_states(active, slice_iters, slice_time)
                if advanced is None and not self._runner.session_open:
                    self._runner = None  # pool died; stay in-process from here on
            if advanced is not None:
                by_chain = {state.chain: state for state in advanced}
                self.states = [
                    by_chain.get(state.chain, state) for state in self.states
                ]
                mode = "process"
                self._used_process = True
                if self._runner is not None:
                    self._n_workers = max(self._n_workers, self._runner.last_granted)
            else:
                # In-process slice, accounted with the governor like the
                # sequential fallback of search() (minimum=0: a fully loaded
                # machine still advances, just without claiming a core).
                with self.searcher.core_budget.lease(1, minimum=0):
                    for state in active:
                        self.searcher.advance_chain(state, slice_iters, slice_time)
                mode = "sequential"
        tracer = get_tracer()
        for state in self.states:
            if state.slice_spans:
                tracer.extend(state.drain_spans())
        self.n_polls += 1
        best = self.best_cost
        return SessionProgress(
            n_iterations=self.n_iterations,
            new_iterations=self.n_iterations - before_iters,
            best_cost=best,
            improved=best < before_best,
            done=self.done,
            wall_seconds=sum(state.wall_seconds for state in self.states),
            execution_mode=mode,
        )

    def result(self) -> SearchResult:
        """Merged result of the work done so far (does not stop the session).

        ``elapsed_seconds`` is the session's age (including idle time between
        polls); ``chain_wall_seconds`` holds the actual compute consumed.
        """
        self.start()
        return self.searcher._merge_results(
            [state.to_result() for state in self.states],
            initial_plan=self._initial_plan,
            initial_cost=self._initial_cost,
            start_cost=self._initial_cost,
            start_time=self._started_at,
            n_chains=len(self.states),
            execution_mode="process" if self._used_process else "sequential",
            n_workers=self._n_workers,
        )


def search_execution_plan(
    graph: DataflowGraph,
    workload: RLHFWorkload,
    cluster: ClusterSpec,
    prune: PruneConfig = PruneConfig(),
    config: SearchConfig = SearchConfig(),
    estimator: Optional[RuntimeEstimator] = None,
    initial_plan: Optional[ExecutionPlan] = None,
    core_budget: Optional[CoreBudget] = None,
) -> SearchResult:
    """Convenience wrapper: build a searcher and run it once.

    ``initial_plan`` optionally warm-starts the chain (e.g. from a cached plan
    for a similar workload, see :mod:`repro.service.warm_start`); it takes
    precedence over ``config.initial_plan`` when both are given.
    ``core_budget`` shares a core governor with other concurrent components
    (defaults to the process-global one).
    """
    if initial_plan is not None:
        import dataclasses

        config = dataclasses.replace(config, initial_plan=initial_plan)
    searcher = MCMCSearcher(
        graph=graph,
        workload=workload,
        cluster=cluster,
        estimator=estimator,
        prune=prune,
        config=config,
        core_budget=core_budget,
    )
    return searcher.search()
