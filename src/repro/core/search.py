"""MCMC-based execution plan search (Section 5.2 of the paper).

The searcher draws execution plans from the energy-based distribution
:math:`P(p) \\propto \\exp(-\\beta \\cdot cost(G_p))` with the
Metropolis-Hastings algorithm.  It starts from a greedy plan that minimises
the sum of per-call times (ignoring overlap and memory), proposes transitions
that reassign the device mesh, parallel strategy and micro-batch count of a
random function call, and keeps the lowest-cost plan ever visited.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..cluster.hardware import ClusterSpec
from .dataflow import DataflowGraph
from .estimator import DEFAULT_OOM_PENALTY, RuntimeEstimator
from .plan import Allocation, ExecutionPlan
from .pruning import PruneConfig, allocation_options, search_space_size
from .workload import RLHFWorkload

__all__ = ["SearchConfig", "SearchResult", "MCMCSearcher", "search_execution_plan"]


@dataclass(frozen=True)
class SearchConfig:
    """Hyper-parameters of the Metropolis-Hastings search.

    ``beta`` is the sampling temperature applied to the *normalised* cost
    (cost divided by the initial plan's cost), which keeps acceptance rates
    comparable across experiment scales.  The search stops after
    ``max_iterations`` proposals or ``time_budget_s`` wall-clock seconds,
    whichever comes first.
    """

    beta: float = 8.0
    oom_penalty: float = DEFAULT_OOM_PENALTY
    max_iterations: int = 2000
    time_budget_s: float = 30.0
    seed: int = 0
    record_history: bool = True
    initial_plan: Optional[ExecutionPlan] = None
    """Optional warm-start hint: evaluated alongside the greedy plan and any
    seed plans, so the chain starts from the best available candidate.  The
    hint never hurts — the search result is at least as good as the hint's
    cost.  Excluded from workload fingerprints (see :mod:`repro.service`)."""


@dataclass
class SearchResult:
    """Outcome of one search run."""

    best_plan: ExecutionPlan
    best_cost: float
    initial_plan: ExecutionPlan
    initial_cost: float
    n_iterations: int
    n_accepted: int
    elapsed_seconds: float
    history: List[Tuple[int, float, float]] = field(default_factory=list)
    """``(iteration, elapsed_seconds, best_cost_so_far)`` samples."""
    search_space: float = 0.0

    @property
    def improvement_ratio(self) -> float:
        """Best cost relative to the initial plan (lower is better)."""
        if self.initial_cost <= 0:
            return 1.0
        return self.best_cost / self.initial_cost

    @property
    def acceptance_rate(self) -> float:
        """Fraction of accepted MCMC proposals."""
        return self.n_accepted / max(1, self.n_iterations)


class MCMCSearcher:
    """Metropolis-Hastings search over per-call allocations."""

    def __init__(
        self,
        graph: DataflowGraph,
        workload: RLHFWorkload,
        cluster: ClusterSpec,
        estimator: Optional[RuntimeEstimator] = None,
        options: Optional[Dict[str, List[Allocation]]] = None,
        prune: PruneConfig = PruneConfig(),
        config: SearchConfig = SearchConfig(),
        seed_plans: Optional[Sequence[ExecutionPlan]] = None,
    ) -> None:
        self.graph = graph
        self.workload = workload
        self.cluster = cluster
        self.config = config
        self.estimator = estimator or RuntimeEstimator(graph, workload, cluster)
        self.options = options or allocation_options(graph, workload, cluster, prune)
        missing = set(graph.call_names) - set(self.options)
        if missing:
            raise ValueError(f"no allocation options for calls: {sorted(missing)}")
        self.seed_plans = list(seed_plans or [])
        self._rng = np.random.default_rng(config.seed)

    # ------------------------------------------------------------------ #
    # Initialisation
    # ------------------------------------------------------------------ #
    def greedy_initial_plan(self) -> ExecutionPlan:
        """Plan minimising the sum of per-call times in isolation.

        As the paper notes, this plan is usually sub-optimal: every call grabs
        as many GPUs as help it individually, which prevents concurrent
        execution and may overload device memory — but it is a good starting
        point for the Markov chain.
        """
        assignments: Dict[str, Allocation] = {}
        for call_name, choices in self.options.items():
            best = min(choices, key=lambda a: self.estimator.call_time(call_name, a))
            assignments[call_name] = best
        return ExecutionPlan(assignments, name="greedy-initial")

    # ------------------------------------------------------------------ #
    # MCMC
    # ------------------------------------------------------------------ #
    def _propose(self, plan: ExecutionPlan) -> ExecutionPlan:
        """Propose a neighbouring plan.

        Three move types are mixed: (a) reassign a random call to a random
        allocation option, (b) align a call with the allocation of another
        call (which removes a reallocation edge when they share a model), and
        (c) keep a call's mesh but change its strategy or micro-batch count.
        """
        call_names = self.graph.call_names
        call_name = call_names[int(self._rng.integers(len(call_names)))]
        choices = self.options[call_name]
        roll = self._rng.random()
        if roll < 0.2 and len(call_names) > 1:
            # Align with another call's allocation if it is a valid option here.
            other = call_names[int(self._rng.integers(len(call_names)))]
            if other != call_name:
                other_alloc = plan[other]
                if any(
                    c.mesh == other_alloc.mesh and c.parallel == other_alloc.parallel
                    for c in choices
                ):
                    return plan.with_assignment(call_name, other_alloc)
        elif roll < 0.45:
            # Same mesh, different strategy / micro-batch count.
            current = plan[call_name]
            same_mesh = [c for c in choices if c.mesh == current.mesh]
            if same_mesh:
                new_alloc = same_mesh[int(self._rng.integers(len(same_mesh)))]
                return plan.with_assignment(call_name, new_alloc)
        new_alloc = choices[int(self._rng.integers(len(choices)))]
        return plan.with_assignment(call_name, new_alloc)

    def search(self) -> SearchResult:
        """Run the Metropolis-Hastings chain and return the best plan found.

        The chain starts from the greedy per-call-optimal plan; any seed plans
        supplied at construction time (e.g. the Megatron heuristic) are also
        evaluated, and the best of all starting candidates becomes the chain's
        initial state.
        """
        cfg = self.config
        start_time = time.perf_counter()
        current = self.greedy_initial_plan()
        current_cost = self.estimator.cost(current, cfg.oom_penalty)
        initial_plan, initial_cost = current, current_cost
        candidates = list(self.seed_plans)
        if cfg.initial_plan is not None:
            candidates.append(cfg.initial_plan)
        for seed_plan in candidates:
            seed_cost = self.estimator.cost(seed_plan, cfg.oom_penalty)
            if seed_cost < current_cost:
                current, current_cost = seed_plan, seed_cost
        best_plan, best_cost = current, current_cost

        history: List[Tuple[int, float, float]] = []
        n_accepted = 0
        iteration = 0
        while iteration < cfg.max_iterations:
            elapsed = time.perf_counter() - start_time
            if elapsed > cfg.time_budget_s:
                break
            iteration += 1
            proposal = self._propose(current)
            proposal_cost = self.estimator.cost(proposal, cfg.oom_penalty)
            # Normalise the energy by the best cost found so far so the
            # temperature stays meaningful across experiment scales and even
            # when the initial plan is heavily OOM-penalised.
            scale = max(best_cost, 1e-9)
            delta = (proposal_cost - current_cost) / scale
            accept = delta <= 0 or self._rng.random() < math.exp(-cfg.beta * delta)
            if accept:
                current, current_cost = proposal, proposal_cost
                n_accepted += 1
                if current_cost < best_cost:
                    best_plan, best_cost = current, current_cost
            if cfg.record_history:
                history.append((iteration, time.perf_counter() - start_time, best_cost))

        return SearchResult(
            best_plan=ExecutionPlan(dict(best_plan.assignments), name="searched"),
            best_cost=best_cost,
            initial_plan=initial_plan,
            initial_cost=initial_cost,
            n_iterations=iteration,
            n_accepted=n_accepted,
            elapsed_seconds=time.perf_counter() - start_time,
            history=history,
            search_space=search_space_size(self.options),
        )


def search_execution_plan(
    graph: DataflowGraph,
    workload: RLHFWorkload,
    cluster: ClusterSpec,
    prune: PruneConfig = PruneConfig(),
    config: SearchConfig = SearchConfig(),
    estimator: Optional[RuntimeEstimator] = None,
    initial_plan: Optional[ExecutionPlan] = None,
) -> SearchResult:
    """Convenience wrapper: build a searcher and run it once.

    ``initial_plan`` optionally warm-starts the chain (e.g. from a cached plan
    for a similar workload, see :mod:`repro.service.warm_start`); it takes
    precedence over ``config.initial_plan`` when both are given.
    """
    if initial_plan is not None:
        import dataclasses

        config = dataclasses.replace(config, initial_plan=initial_plan)
    searcher = MCMCSearcher(
        graph=graph,
        workload=workload,
        cluster=cluster,
        estimator=estimator,
        prune=prune,
        config=config,
    )
    return searcher.search()
