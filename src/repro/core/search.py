"""MCMC-based execution plan search (Section 5.2 of the paper).

The searcher draws execution plans from the energy-based distribution
:math:`P(p) \\propto \\exp(-\\beta \\cdot cost(G_p))` with the
Metropolis-Hastings algorithm.  It starts from a greedy plan that minimises
the sum of per-call times (ignoring overlap and memory), proposes transitions
that reassign the device mesh, parallel strategy and micro-batch count of a
random function call, and keeps the lowest-cost plan ever visited.

Proposals are scored through the estimator's incremental
:meth:`~repro.core.estimator.RuntimeEstimator.cost_delta` path (a proposal
changes exactly one call's allocation), and the wall-clock budget can be
split across several independent Metropolis-Hastings chains
(``SearchConfig.n_chains``): each chain starts from the same best initial
candidate but explores with its own RNG stream, and the returned result is
the best plan over all chains with their histories merged.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..cluster.hardware import ClusterSpec
from .dataflow import DataflowGraph
from .estimator import DEFAULT_OOM_PENALTY, RuntimeEstimator
from .plan import Allocation, ExecutionPlan
from .pruning import PruneConfig, allocation_options, search_space_size
from .workload import RLHFWorkload

__all__ = ["SearchConfig", "SearchResult", "MCMCSearcher", "search_execution_plan"]


@dataclass(frozen=True)
class SearchConfig:
    """Hyper-parameters of the Metropolis-Hastings search.

    ``beta`` is the sampling temperature applied to the *normalised* cost
    (cost divided by the initial plan's cost), which keeps acceptance rates
    comparable across experiment scales.  The search stops after
    ``max_iterations`` proposals or ``time_budget_s`` wall-clock seconds,
    whichever comes first; both budgets are shared evenly across
    ``n_chains`` independent chains.
    """

    beta: float = 8.0
    oom_penalty: float = DEFAULT_OOM_PENALTY
    max_iterations: int = 2000
    time_budget_s: float = 30.0
    seed: int = 0
    record_history: bool = True
    n_chains: int = 1
    """Number of independent Metropolis-Hastings chains.  Each chain uses its
    own RNG stream and an even share of the iteration/time budget; the search
    returns the best plan over all chains with merged history."""
    initial_plan: Optional[ExecutionPlan] = None
    """Optional warm-start hint: evaluated alongside the greedy plan and any
    seed plans, so the chain starts from the best available candidate.  The
    hint never hurts — the search result is at least as good as the hint's
    cost.  Excluded from workload fingerprints (see :mod:`repro.service`)."""


@dataclass
class SearchResult:
    """Outcome of one search run."""

    best_plan: ExecutionPlan
    best_cost: float
    initial_plan: ExecutionPlan
    initial_cost: float
    n_iterations: int
    n_accepted: int
    elapsed_seconds: float
    history: List[Tuple[int, float, float]] = field(default_factory=list)
    """``(iteration, elapsed_seconds, best_cost_so_far)`` samples."""
    search_space: float = 0.0
    n_chains: int = 1

    @property
    def improvement_ratio(self) -> float:
        """Best cost relative to the initial plan (lower is better)."""
        if self.initial_cost <= 0:
            return 1.0
        return self.best_cost / self.initial_cost

    @property
    def acceptance_rate(self) -> float:
        """Fraction of accepted MCMC proposals."""
        return self.n_accepted / max(1, self.n_iterations)


class MCMCSearcher:
    """Metropolis-Hastings search over per-call allocations."""

    def __init__(
        self,
        graph: DataflowGraph,
        workload: RLHFWorkload,
        cluster: ClusterSpec,
        estimator: Optional[RuntimeEstimator] = None,
        options: Optional[Dict[str, List[Allocation]]] = None,
        prune: PruneConfig = PruneConfig(),
        config: SearchConfig = SearchConfig(),
        seed_plans: Optional[Sequence[ExecutionPlan]] = None,
    ) -> None:
        self.graph = graph
        self.workload = workload
        self.cluster = cluster
        self.config = config
        self.estimator = estimator or RuntimeEstimator(graph, workload, cluster)
        self.options = options or allocation_options(graph, workload, cluster, prune)
        missing = set(graph.call_names) - set(self.options)
        if missing:
            raise ValueError(f"no allocation options for calls: {sorted(missing)}")
        self.seed_plans = list(seed_plans or [])
        self._rng = np.random.default_rng(config.seed)
        # Per-call proposal indexes: options grouped by mesh, and the set of
        # (mesh, strategy) layouts available, so proposing a move never scans
        # the full option list comparing dataclasses.
        self._options_by_mesh: Dict[str, Dict[Tuple, List[Allocation]]] = {}
        self._layouts: Dict[str, set] = {}
        for call_name, choices in self.options.items():
            by_mesh: Dict[Tuple, List[Allocation]] = {}
            layouts = set()
            for alloc in choices:
                mesh_key = self._mesh_key(alloc.mesh)
                by_mesh.setdefault(mesh_key, []).append(alloc)
                layouts.add(mesh_key + (alloc.parallel.dp, alloc.parallel.tp, alloc.parallel.pp))
            self._options_by_mesh[call_name] = by_mesh
            self._layouts[call_name] = layouts

    @staticmethod
    def _mesh_key(mesh) -> Tuple:
        return (mesh.node_start, mesh.n_nodes, mesh.gpu_start, mesh.gpus_per_node)

    # ------------------------------------------------------------------ #
    # Initialisation
    # ------------------------------------------------------------------ #
    def greedy_initial_plan(self) -> ExecutionPlan:
        """Plan minimising the sum of per-call times in isolation.

        As the paper notes, this plan is usually sub-optimal: every call grabs
        as many GPUs as help it individually, which prevents concurrent
        execution and may overload device memory — but it is a good starting
        point for the Markov chain.
        """
        assignments: Dict[str, Allocation] = {}
        for call_name, choices in self.options.items():
            best = min(choices, key=lambda a: self.estimator.call_time(call_name, a))
            assignments[call_name] = best
        return ExecutionPlan(assignments, name="greedy-initial")

    # ------------------------------------------------------------------ #
    # MCMC
    # ------------------------------------------------------------------ #
    def _propose(
        self, plan: ExecutionPlan, rng: np.random.Generator
    ) -> Tuple[str, Allocation]:
        """Propose a single-call move ``(call_name, new_allocation)``.

        Three move types are mixed: (a) reassign a random call to a random
        allocation option, (b) align a call with the allocation of another
        call (which removes a reallocation edge when they share a model), and
        (c) keep a call's mesh but change its strategy or micro-batch count.
        """
        call_names = self.graph.call_names
        call_name = call_names[int(rng.integers(len(call_names)))]
        choices = self.options[call_name]
        roll = rng.random()
        if roll < 0.2 and len(call_names) > 1:
            # Align with another call's allocation if it is a valid option here.
            other = call_names[int(rng.integers(len(call_names)))]
            if other != call_name:
                other_alloc = plan[other]
                parallel = other_alloc.parallel
                layout = self._mesh_key(other_alloc.mesh) + (
                    parallel.dp,
                    parallel.tp,
                    parallel.pp,
                )
                if layout in self._layouts[call_name]:
                    return call_name, other_alloc
        elif roll < 0.45:
            # Same mesh, different strategy / micro-batch count.
            current = plan[call_name]
            same_mesh = self._options_by_mesh[call_name].get(self._mesh_key(current.mesh))
            if same_mesh:
                return call_name, same_mesh[int(rng.integers(len(same_mesh)))]
        return call_name, choices[int(rng.integers(len(choices)))]

    def _proposal_cost(
        self, plan: ExecutionPlan, call_name: str, new_alloc: Allocation
    ) -> float:
        """Score a single-call move via the estimator's incremental path."""
        cost_delta = getattr(self.estimator, "cost_delta", None)
        if cost_delta is not None:
            return cost_delta(plan, call_name, new_alloc, self.config.oom_penalty)
        return self.estimator.cost(
            plan.with_assignment(call_name, new_alloc), self.config.oom_penalty
        )

    def search(self) -> SearchResult:
        """Run the Metropolis-Hastings chains and return the best plan found.

        Every chain starts from the best of the greedy per-call-optimal plan,
        any seed plans supplied at construction time (e.g. the Megatron
        heuristic) and ``config.initial_plan``; the reported ``initial_plan``/
        ``initial_cost`` are that actual chain start, so the improvement ratio
        reflects what the search itself achieved.
        """
        cfg = self.config
        start_time = time.perf_counter()
        start_plan = self.greedy_initial_plan()
        start_cost = self.estimator.cost(start_plan, cfg.oom_penalty)
        candidates = list(self.seed_plans)
        if cfg.initial_plan is not None:
            candidates.append(cfg.initial_plan)
        for seed_plan in candidates:
            seed_cost = self.estimator.cost(seed_plan, cfg.oom_penalty)
            if seed_cost < start_cost:
                start_plan, start_cost = seed_plan, seed_cost
        # Report the actual chain start (greedy, seed or warm-start hint —
        # whichever won), not unconditionally the greedy plan.
        initial_plan, initial_cost = start_plan, start_cost
        best_plan, best_cost = start_plan, start_cost

        n_chains = max(1, int(cfg.n_chains))
        chain_budget = cfg.time_budget_s / n_chains
        base_iters, extra_iters = divmod(cfg.max_iterations, n_chains)

        history: List[Tuple[int, float, float]] = []
        n_accepted = 0
        iteration = 0
        for chain in range(n_chains):
            # Chain 0 keeps the searcher's own stream (bit-compatible with the
            # single-chain search); further chains get independent streams.
            rng = self._rng if chain == 0 else np.random.default_rng([cfg.seed, chain])
            max_iterations = iteration + base_iters + (1 if chain < extra_iters else 0)
            deadline = start_time + min(cfg.time_budget_s, (chain + 1) * chain_budget)
            current, current_cost = start_plan, start_cost
            while iteration < max_iterations:
                if time.perf_counter() > deadline:
                    break
                iteration += 1
                call_name, new_alloc = self._propose(current, rng)
                proposal_cost = self._proposal_cost(current, call_name, new_alloc)
                # Normalise the energy by the best cost found so far so the
                # temperature stays meaningful across experiment scales and
                # even when the initial plan is heavily OOM-penalised.
                scale = max(best_cost, 1e-9)
                delta = (proposal_cost - current_cost) / scale
                accept = delta <= 0 or rng.random() < math.exp(-cfg.beta * delta)
                if accept:
                    current = current.with_assignment(call_name, new_alloc)
                    current_cost = proposal_cost
                    n_accepted += 1
                    if current_cost < best_cost:
                        best_plan, best_cost = current, current_cost
                if cfg.record_history:
                    history.append(
                        (iteration, time.perf_counter() - start_time, best_cost)
                    )

        return SearchResult(
            best_plan=ExecutionPlan(dict(best_plan.assignments), name="searched"),
            best_cost=best_cost,
            initial_plan=initial_plan,
            initial_cost=initial_cost,
            n_iterations=iteration,
            n_accepted=n_accepted,
            elapsed_seconds=time.perf_counter() - start_time,
            history=history,
            search_space=search_space_size(self.options),
            n_chains=n_chains,
        )


def search_execution_plan(
    graph: DataflowGraph,
    workload: RLHFWorkload,
    cluster: ClusterSpec,
    prune: PruneConfig = PruneConfig(),
    config: SearchConfig = SearchConfig(),
    estimator: Optional[RuntimeEstimator] = None,
    initial_plan: Optional[ExecutionPlan] = None,
) -> SearchResult:
    """Convenience wrapper: build a searcher and run it once.

    ``initial_plan`` optionally warm-starts the chain (e.g. from a cached plan
    for a similar workload, see :mod:`repro.service.warm_start`); it takes
    precedence over ``config.initial_plan`` when both are given.
    """
    if initial_plan is not None:
        import dataclasses

        config = dataclasses.replace(config, initial_plan=initial_plan)
    searcher = MCMCSearcher(
        graph=graph,
        workload=workload,
        cluster=cluster,
        estimator=estimator,
        prune=prune,
        config=config,
    )
    return searcher.search()
