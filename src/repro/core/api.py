"""User-facing experiment API, mirroring the interface of the paper (Figure 18).

Users describe their RLHF workflow as a list of :class:`ModelFunctionCallDef`
objects (model name, model type, function-call type and data dependencies),
wrap the experiment in :func:`auto`, and ReaL derives an efficient execution
plan automatically.  :func:`find_execution_plan` is the programmatic
equivalent used by the examples and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance
    from ..runtime.engine import IterationTrace
    from ..capacity.whatif import CapacityCandidate, CapacityReport
    from ..sched.metrics import ScheduleReport
    from ..sched.scheduler import NodeFailure, SchedulerConfig
    from ..service.server import PlanService

from ..cluster.hardware import ClusterSpec, make_cluster
from ..model.config import ModelConfig, get_model_config
from .dataflow import DataflowGraph, FunctionCallType, ModelFunctionCall
from .estimator import RuntimeEstimator
from .plan import ExecutionPlan
from .pruning import PruneConfig
from .search import SearchConfig, SearchResult, search_execution_plan
from .workload import RLHFWorkload

__all__ = [
    "GENERATE",
    "INFERENCE",
    "TRAIN_STEP",
    "ModelFunctionCallDef",
    "ExperimentConfig",
    "auto",
    "build_graph_from_defs",
    "find_execution_plan",
    "run_iteration_trace",
    "schedule_jobs",
    "capacity_whatif",
]

# Aliases matching the paper's API surface.
GENERATE = FunctionCallType.GENERATE
INFERENCE = FunctionCallType.INFERENCE
TRAIN_STEP = FunctionCallType.TRAIN_STEP


@dataclass(frozen=True)
class ModelFunctionCallDef:
    """Declarative definition of one model function call.

    ``model_type`` names the architecture (e.g. ``"llama7b"`` or
    ``"llama7b-critic"``); calls sharing the same ``model_name`` must use the
    same architecture and share parameters.
    """

    model_name: str
    interface_type: FunctionCallType
    input_data: Tuple[str, ...] = ()
    output_data: Tuple[str, ...] = ()
    model_type: Optional[str] = None
    call_name: Optional[str] = None
    batch_scale: float = 1.0

    def resolved_name(self, index: int) -> str:
        """Unique call name: explicit name or ``<model>_<type>_<index>``."""
        if self.call_name:
            return self.call_name
        return f"{self.model_name}_{self.interface_type.value}_{index}"


def _parse_model_type(model_type: str) -> ModelConfig:
    """Parse a model-type string such as ``"llama7b"`` or ``"llama13b-critic"``."""
    text = model_type.lower()
    critic = "critic" in text
    for size in ("70b", "34b", "13b", "7b"):
        if size in text:
            return get_model_config(size, critic=critic)
    raise ValueError(f"cannot parse model type {model_type!r}")


def build_graph_from_defs(
    defs: Sequence[ModelFunctionCallDef],
    external_inputs: Sequence[str] = ("prompts",),
    name: str = "custom",
) -> Tuple[DataflowGraph, Dict[str, ModelConfig]]:
    """Build a dataflow graph and model-config map from call definitions."""
    calls: List[ModelFunctionCall] = []
    configs: Dict[str, ModelConfig] = {}
    for index, call_def in enumerate(defs):
        calls.append(
            ModelFunctionCall(
                name=call_def.resolved_name(index),
                model_name=call_def.model_name,
                call_type=call_def.interface_type,
                input_keys=tuple(call_def.input_data),
                output_keys=tuple(call_def.output_data),
                batch_scale=call_def.batch_scale,
            )
        )
        if call_def.model_type is not None:
            config = _parse_model_type(call_def.model_type)
            existing = configs.get(call_def.model_name)
            if existing is not None and existing.name != config.name:
                raise ValueError(
                    f"model {call_def.model_name!r} declared with two architectures "
                    f"({existing.name} vs {config.name})"
                )
            configs[call_def.model_name] = config
    graph = DataflowGraph(calls=calls, external_inputs=tuple(external_inputs), name=name)
    missing = set(graph.model_names()) - set(configs)
    if missing:
        raise ValueError(f"no model_type declared for models: {sorted(missing)}")
    return graph, configs


@dataclass
class ExperimentConfig:
    """A fully specified experiment ready for plan search and execution."""

    graph: DataflowGraph
    workload: RLHFWorkload
    cluster: ClusterSpec
    search: SearchConfig = field(default_factory=SearchConfig)
    prune: PruneConfig = field(default_factory=PruneConfig)
    estimator: Optional[RuntimeEstimator] = None
    """Shared fast-path estimator.  Built lazily on the first local search and
    reused by every subsequent one, so the memoised per-call/per-edge costs
    carry over across repeated searches of the same experiment."""

    def get_estimator(self) -> RuntimeEstimator:
        """The (lazily built) estimator for this experiment."""
        if self.estimator is None:
            self.estimator = RuntimeEstimator(self.graph, self.workload, self.cluster)
        return self.estimator

    def run_search(self, service: Optional["PlanService"] = None) -> SearchResult:
        """Search for an efficient execution plan for this experiment.

        When a :class:`~repro.service.server.PlanService` is given the search
        is routed through it: identical experiments are served from the plan
        cache and misses are warm-started from similar cached plans.
        """
        if service is not None:
            from ..service.server import PlanRequest  # local import avoids a cycle

            response = service.plan(
                PlanRequest(
                    graph=self.graph,
                    workload=self.workload,
                    cluster=self.cluster,
                    search=self.search,
                    prune=self.prune,
                )
            )
            return response.result
        return search_execution_plan(
            self.graph,
            self.workload,
            self.cluster,
            prune=self.prune,
            config=self.search,
            estimator=self.get_estimator(),
        )


def auto(
    rpcs: Sequence[ModelFunctionCallDef],
    n_gpus: int,
    batch_size: int = 512,
    prompt_len: int = 1024,
    gen_len: int = 1024,
    n_ppo_minibatches: int = 8,
    gpus_per_node: int = 8,
    search: SearchConfig = SearchConfig(),
    prune: PruneConfig = PruneConfig(),
    external_inputs: Sequence[str] = ("prompts",),
) -> ExperimentConfig:
    """Build an :class:`ExperimentConfig` from declarative function-call defs.

    This mirrors the ``@auto`` decorator of the paper's user API: given the
    RPC definitions, the batch size and the cluster size, it assembles the
    dataflow graph, the workload and the cluster so that calling
    :meth:`ExperimentConfig.run_search` yields the execution plan.
    """
    graph, configs = build_graph_from_defs(rpcs, external_inputs=external_inputs)
    workload = RLHFWorkload(
        model_configs=configs,
        batch_size=batch_size,
        prompt_len=prompt_len,
        gen_len=gen_len,
        n_ppo_minibatches=n_ppo_minibatches,
    )
    cluster = make_cluster(n_gpus, gpus_per_node=gpus_per_node)
    return ExperimentConfig(
        graph=graph, workload=workload, cluster=cluster, search=search, prune=prune
    )


def find_execution_plan(
    algorithm: str,
    actor_size: str,
    critic_size: str,
    n_gpus: int,
    batch_size: int = 512,
    prompt_len: int = 1024,
    gen_len: int = 1024,
    n_ppo_minibatches: int = 8,
    gpus_per_node: int = 8,
    search: SearchConfig = SearchConfig(),
    prune: PruneConfig = PruneConfig(),
    service: Optional["PlanService"] = None,
) -> Tuple[SearchResult, ExperimentConfig]:
    """One-call entry point: search a plan for a named RLHF algorithm.

    Returns the search result together with the assembled experiment (graph,
    workload and cluster) so callers can evaluate or execute the plan.
    Passing a :class:`~repro.service.server.PlanService` routes the search
    through the planning service (shared cache, warm starts, deduplication).
    """
    from ..algorithms.registry import build_graph  # local import avoids a cycle
    from .workload import instructgpt_workload

    graph = build_graph(algorithm)
    workload = instructgpt_workload(
        actor_size=actor_size,
        critic_size=critic_size,
        batch_size=batch_size,
        prompt_len=prompt_len,
        gen_len=gen_len,
        n_ppo_minibatches=n_ppo_minibatches,
    )
    cluster = make_cluster(n_gpus, gpus_per_node=gpus_per_node)
    experiment = ExperimentConfig(
        graph=graph, workload=workload, cluster=cluster, search=search, prune=prune
    )
    result = experiment.run_search(service=service)
    return result, experiment


def run_iteration_trace(
    algorithm: str,
    actor_size: str = "7b",
    critic_size: str = "7b",
    n_gpus: int = 16,
    batch_size: int = 512,
    prompt_len: int = 1024,
    gen_len: int = 1024,
    n_ppo_minibatches: int = 8,
    gpus_per_node: int = 8,
    plan: Optional[ExecutionPlan] = None,
    search: SearchConfig = SearchConfig(),
    prune: PruneConfig = PruneConfig(),
    service: Optional["PlanService"] = None,
    trace_path: Optional[str] = None,
) -> Tuple["IterationTrace", ExperimentConfig]:
    """Simulate one RLHF iteration on the runtime engine and return its trace.

    When ``plan`` is omitted the execution plan is searched first (exactly
    like :func:`find_execution_plan`, including optional plan-service
    routing); the plan is then executed for one iteration on the
    discrete-event runtime engine, yielding the full
    :class:`~repro.runtime.engine.IterationTrace` — per-call spans, per-GPU
    cost-category seconds and the memory estimate.  ``trace_path`` exports
    the iteration as Chrome-trace JSON (``chrome://tracing`` / Perfetto).
    """
    from ..runtime.engine import RuntimeEngine  # local import avoids a cycle

    if plan is None:
        result, experiment = find_execution_plan(
            algorithm,
            actor_size,
            critic_size,
            n_gpus,
            batch_size=batch_size,
            prompt_len=prompt_len,
            gen_len=gen_len,
            n_ppo_minibatches=n_ppo_minibatches,
            gpus_per_node=gpus_per_node,
            search=search,
            prune=prune,
            service=service,
        )
        plan = result.best_plan
    else:
        from ..algorithms.registry import build_graph  # local import avoids a cycle
        from .workload import instructgpt_workload

        experiment = ExperimentConfig(
            graph=build_graph(algorithm),
            workload=instructgpt_workload(
                actor_size=actor_size,
                critic_size=critic_size,
                batch_size=batch_size,
                prompt_len=prompt_len,
                gen_len=gen_len,
                n_ppo_minibatches=n_ppo_minibatches,
            ),
            cluster=make_cluster(n_gpus, gpus_per_node=gpus_per_node),
            search=search,
            prune=prune,
        )
    engine = RuntimeEngine(experiment.cluster, experiment.workload)
    trace = engine.run_iteration(experiment.graph, plan)
    if trace_path is not None:
        trace.export_chrome_trace(trace_path)
    return trace, experiment


def schedule_jobs(
    jobs: Sequence["object"],
    n_gpus: int,
    gpus_per_node: int = 8,
    policy: str = "best_throughput",
    config: Optional["SchedulerConfig"] = None,
    service: Optional["PlanService"] = None,
    failures: Sequence["NodeFailure"] = (),
    trace_path: Optional[str] = None,
    metrics_path: Optional[str] = None,
) -> "ScheduleReport":
    """One-call entry point of the multi-job cluster scheduler.

    ``jobs`` is a sequence of :class:`~repro.sched.job.JobSpec` objects; the
    shared cluster is assembled like :func:`find_execution_plan` does, the
    jobs are scheduled under the named policy (``first_fit``,
    ``best_throughput``, ``priority`` or ``static_equal``) and the schedule
    report (per-job queue waits, makespan, aggregate iterations/sec, GPU
    utilization) is returned.  Passing a
    :class:`~repro.service.server.PlanService` shares the plan cache with
    other callers; otherwise the scheduler owns (and closes) a private one.
    ``trace_path`` exports one merged Chrome trace spanning cluster events,
    live counter tracks and every job's engine-profiled iteration phases;
    ``metrics_path`` writes the run's ``METRICS_*.json`` registry snapshot
    (defaults to ``METRICS_<trace stem>.json`` next to an exported trace).
    """
    from ..sched.scheduler import schedule_trace  # local import avoids a cycle

    cluster = make_cluster(n_gpus, gpus_per_node=gpus_per_node)
    return schedule_trace(
        cluster=cluster,
        jobs=jobs,
        policy=policy,
        config=config,
        service=service,
        failures=failures,
        trace_path=trace_path,
        metrics_path=metrics_path,
    )


def capacity_whatif(
    jobs: Sequence["object"],
    candidates: Sequence["CapacityCandidate"],
    config: Optional["SchedulerConfig"] = None,
    service: Optional["PlanService"] = None,
    report_path: Optional[str] = None,
) -> "CapacityReport":
    """One-call capacity what-if: replay a job trace against a cluster grid.

    ``jobs`` is a sequence of :class:`~repro.sched.job.JobSpec` objects (for
    fleet-sized traces, see
    :func:`~repro.capacity.fleet.generate_fleet_trace`); ``candidates`` is
    the grid of :class:`~repro.capacity.whatif.CapacityCandidate` cluster
    shapes × policies to compare.  Every candidate replays the same trace
    through one shared :class:`~repro.service.server.PlanService` — carved
    partition specs are location- and parent-size-erased, so plans searched
    for the first candidate are cache hits for the rest.  Returns the
    :class:`~repro.capacity.whatif.CapacityReport` with per-candidate
    outcomes and the Pareto cost/throughput ``frontier``; ``report_path``
    additionally writes the machine-readable report JSON there.
    """
    from ..capacity.whatif import capacity_whatif as _capacity_whatif

    report = _capacity_whatif(jobs, candidates, config=config, service=service)
    if report_path is not None:
        report.save(report_path)
    return report
