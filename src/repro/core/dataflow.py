"""Dataflow graphs of RLHF training workflows at model-function-call granularity.

Section 4 of the paper models an RLHF workflow as a dataflow graph whose
nodes are *model function calls* (generation, inference or training on one of
the participating LLMs) and whose edges are data dependencies or parameter
version dependencies.  This module provides the node and graph types; the
concrete PPO / DPO / GRPO / ReMax graphs are built in
:mod:`repro.algorithms`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = ["FunctionCallType", "ModelFunctionCall", "DataflowGraph"]


class FunctionCallType(str, Enum):
    """The three computational task types of RLHF (Section 2.1)."""

    GENERATE = "generate"
    INFERENCE = "inference"
    TRAIN_STEP = "train_step"


@dataclass(frozen=True)
class ModelFunctionCall:
    """One node of the dataflow graph: a single task on one LLM.

    Attributes
    ----------
    name:
        Unique node identifier, e.g. ``"actor_generate"``.
    model_name:
        The LLM instance this call runs on (``"actor"``, ``"critic"``,
        ``"ref"``, ``"reward"``).  Calls sharing a model name share
        parameters, which induces reallocation edges when their
        parallelization strategies differ.
    call_type:
        Generation, inference or training.
    input_keys / output_keys:
        Named data produced and consumed; a data dependency edge is drawn
        from the producer of a key to every consumer of that key.
    batch_scale:
        Multiplier on the experiment batch size for this call.  GRPO's
        grouped generation uses 8, DPO's paired preference data uses 2.
    gen_len_scale:
        Multiplier on the experiment generation length (e.g. greedy
        baselines that generate the same length use 1.0).
    """

    name: str
    model_name: str
    call_type: FunctionCallType
    input_keys: Tuple[str, ...] = ()
    output_keys: Tuple[str, ...] = ()
    batch_scale: float = 1.0
    gen_len_scale: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("call name must be non-empty")
        if not self.model_name:
            raise ValueError("model_name must be non-empty")
        if self.batch_scale <= 0:
            raise ValueError("batch_scale must be positive")

    @property
    def is_trainable(self) -> bool:
        """Whether this call updates the model's parameters."""
        return self.call_type is FunctionCallType.TRAIN_STEP


@dataclass
class DataflowGraph:
    """A directed acyclic graph of model function calls for one RLHF iteration.

    Edges are derived from the calls' input/output keys (data dependencies)
    plus explicit extra edges (e.g. parameter version dependencies between
    iterations).  The graph validates itself on construction: keys consumed
    by a call must be produced by exactly one call or listed as an external
    input (e.g. the prompt dataset), and the graph must be acyclic.
    """

    calls: List[ModelFunctionCall]
    external_inputs: Tuple[str, ...] = ("prompts",)
    extra_edges: List[Tuple[str, str]] = field(default_factory=list)
    name: str = "rlhf"

    def __post_init__(self) -> None:
        names = [c.name for c in self.calls]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate call names in dataflow graph: {names}")
        self._by_name: Dict[str, ModelFunctionCall] = {c.name: c for c in self.calls}
        self._producers: Dict[str, str] = {}
        for call in self.calls:
            for key in call.output_keys:
                if key in self._producers:
                    raise ValueError(
                        f"data key {key!r} produced by both "
                        f"{self._producers[key]!r} and {call.name!r}"
                    )
                self._producers[key] = call.name
        self._edges = self._build_edges()
        self._order = self._topological_order()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def _build_edges(self) -> List[Tuple[str, str]]:
        edges: List[Tuple[str, str]] = []
        for call in self.calls:
            for key in call.input_keys:
                if key in self.external_inputs:
                    continue
                producer = self._producers.get(key)
                if producer is None:
                    raise ValueError(
                        f"call {call.name!r} consumes {key!r}, which no call produces "
                        f"and which is not an external input"
                    )
                if producer != call.name:
                    edges.append((producer, call.name))
        for src, dst in self.extra_edges:
            if src not in self._by_name or dst not in self._by_name:
                raise ValueError(f"extra edge ({src!r}, {dst!r}) references unknown calls")
            edges.append((src, dst))
        # De-duplicate while preserving order.
        seen: set[Tuple[str, str]] = set()
        unique: List[Tuple[str, str]] = []
        for edge in edges:
            if edge not in seen:
                seen.add(edge)
                unique.append(edge)
        return unique

    def _topological_order(self) -> List[str]:
        indegree: Dict[str, int] = {c.name: 0 for c in self.calls}
        for _, dst in self._edges:
            indegree[dst] += 1
        frontier = [name for name, deg in indegree.items() if deg == 0]
        order: List[str] = []
        children = self.children_map()
        while frontier:
            frontier.sort()  # deterministic order
            node = frontier.pop(0)
            order.append(node)
            for child in children.get(node, ()):  # type: ignore[arg-type]
                indegree[child] -= 1
                if indegree[child] == 0:
                    frontier.append(child)
        if len(order) != len(self.calls):
            raise ValueError("dataflow graph contains a cycle")
        return order

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def edges(self) -> List[Tuple[str, str]]:
        """All (producer, consumer) dependency edges."""
        return list(self._edges)

    @property
    def call_names(self) -> List[str]:
        """Names of all calls in declaration order."""
        return [c.name for c in self.calls]

    def __len__(self) -> int:
        return len(self.calls)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def get(self, name: str) -> ModelFunctionCall:
        """Look up a call by name."""
        return self._by_name[name]

    def parents(self, name: str) -> List[str]:
        """Names of the calls that ``name`` depends on."""
        return [src for src, dst in self._edges if dst == name]

    def children(self, name: str) -> List[str]:
        """Names of the calls depending on ``name``."""
        return [dst for src, dst in self._edges if src == name]

    def children_map(self) -> Dict[str, List[str]]:
        """Mapping from each call to its children."""
        out: Dict[str, List[str]] = {c.name: [] for c in self.calls}
        for src, dst in self._edges:
            out[src].append(dst)
        return out

    def parents_map(self) -> Dict[str, List[str]]:
        """Mapping from each call to its parents."""
        out: Dict[str, List[str]] = {c.name: [] for c in self.calls}
        for src, dst in self._edges:
            out[dst].append(src)
        return out

    def topological_order(self) -> List[str]:
        """Call names in a deterministic topological order."""
        return list(self._order)

    def sources(self) -> List[str]:
        """Calls without dependencies (can start immediately)."""
        have_parents = {dst for _, dst in self._edges}
        return [c.name for c in self.calls if c.name not in have_parents]

    def sinks(self) -> List[str]:
        """Calls nothing depends on."""
        have_children = {src for src, _ in self._edges}
        return [c.name for c in self.calls if c.name not in have_children]

    def model_names(self) -> List[str]:
        """Distinct model (LLM) names appearing in the graph."""
        seen: List[str] = []
        for call in self.calls:
            if call.model_name not in seen:
                seen.append(call.model_name)
        return seen

    def calls_of_model(self, model_name: str) -> List[ModelFunctionCall]:
        """Calls running on the given model, in topological order."""
        order = {name: i for i, name in enumerate(self._order)}
        matching = [c for c in self.calls if c.model_name == model_name]
        return sorted(matching, key=lambda c: order[c.name])

    def trainable_models(self) -> List[str]:
        """Model names that have at least one training call."""
        return sorted({c.model_name for c in self.calls if c.is_trainable})

    def validate(self) -> None:
        """Re-run structural validation (raises on inconsistency)."""
        self.__post_init__()
