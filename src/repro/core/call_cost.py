"""Cost of a single model function call under a given allocation.

This module turns per-layer timings (from a :class:`LayerTimeProvider`) into
the wall time and cost breakdown of a whole generation, inference or training
call executed with a 3D parallelization strategy and micro-batching.  Both the
lightweight estimator (Section 5.1) and the runtime engine's discrete-event
simulation consume it; they differ only in the provider they plug in and the
extra overheads (RPC dispatch, parameter reallocation, data transfer) they
account for on top.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..cluster.comm import CommModel
from ..cluster.hardware import ClusterSpec
from ..model.config import ModelConfig
from ..model.memory import GRAD_BYTES, PARAM_BYTES, MemoryModel
from .dataflow import FunctionCallType, ModelFunctionCall
from .plan import Allocation
from .profiler import LayerTimeProvider
from .workload import CallWorkload

__all__ = ["CostBreakdown", "CallCostModel"]


@dataclass(slots=True)
class CostBreakdown:
    """Wall-time decomposition of a function call (seconds, per iteration).

    The categories match the GPU-time breakdown of Figure 11 in the paper:
    compute kernels, point-to-point (pipeline) communication, collective
    (tensor/data parallel) communication, and idle time / pipeline bubbles.
    ``launch`` tracks host-side kernel launch overhead (the CUDA-graph
    optimisation target) and is reported inside compute in the figures.
    """

    compute: float = 0.0
    pp_comm: float = 0.0
    coll_comm: float = 0.0
    bubble: float = 0.0
    launch: float = 0.0
    other: float = 0.0

    @property
    def total(self) -> float:
        """Total wall time of the call."""
        return self.compute + self.pp_comm + self.coll_comm + self.bubble + self.launch + self.other

    def scaled(self, factor: float) -> "CostBreakdown":
        """Return a copy with every component multiplied by ``factor``."""
        return CostBreakdown(
            compute=self.compute * factor,
            pp_comm=self.pp_comm * factor,
            coll_comm=self.coll_comm * factor,
            bubble=self.bubble * factor,
            launch=self.launch * factor,
            other=self.other * factor,
        )

    def add(self, other: "CostBreakdown") -> "CostBreakdown":
        """In-place accumulation of another breakdown."""
        self.compute += other.compute
        self.pp_comm += other.pp_comm
        self.coll_comm += other.coll_comm
        self.bubble += other.bubble
        self.launch += other.launch
        self.other += other.other
        return self


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


class CallCostModel:
    """Computes time, breakdown and memory of one function call.

    Parameters
    ----------
    config:
        Architecture of the model the call runs on.
    cluster:
        The cluster (for communication and launch-overhead costs).
    provider:
        Source of per-layer timings (analytical or profiled).
    use_cuda_graph:
        Whether decoding kernels are captured into CUDA graphs, which
        suppresses most of the per-step kernel launch overhead (Table 6).
    """

    def __init__(
        self,
        config: ModelConfig,
        cluster: ClusterSpec,
        provider: LayerTimeProvider,
        use_cuda_graph: bool = True,
    ) -> None:
        self.config = config
        self.cluster = cluster
        self.provider = provider
        self.use_cuda_graph = use_cuda_graph
        self.comm = CommModel(cluster)
        self.memory = MemoryModel(config)

    # ------------------------------------------------------------------ #
    # Shared helpers
    # ------------------------------------------------------------------ #
    def _layers_per_stage(self, pp: int) -> float:
        return self.config.n_layers / pp

    def _dp_batch(self, batch: int, dp: int) -> int:
        return _ceil_div(batch, dp)

    def _hop_time(self, n_tokens: float, alloc: Allocation) -> float:
        """Pipeline stage-to-stage activation transfer for one micro-batch."""
        if alloc.parallel.pp <= 1:
            return 0.0
        nbytes = n_tokens * self.config.hidden_size * PARAM_BYTES
        # Pipeline stages are laid out across nodes whenever the mesh spans
        # several nodes (TP and DP fill the node first).
        cross = alloc.mesh.spans_nodes
        return self.comm.p2p_time_cross(nbytes, cross)

    def _dp_crosses_nodes(self, alloc: Allocation) -> bool:
        """Whether the data-parallel group spans node boundaries."""
        return alloc.parallel.dp * alloc.parallel.tp > alloc.mesh.gpus_per_node

    def _zero3_gather_time(self, n_layers: float, alloc: Allocation) -> float:
        """Per-pass parameter all-gather cost of ZeRO-3 data parallelism."""
        if not alloc.zero3 or alloc.parallel.dp <= 1:
            return 0.0
        shard_bytes = (
            self.config.param_count()
            / (alloc.parallel.tp * alloc.parallel.pp)
            * PARAM_BYTES
            * (n_layers / self.config.n_layers)
        )
        cross = self._dp_crosses_nodes(alloc)
        return self.comm.allgather_time(shard_bytes, alloc.parallel.dp, cross)

    # ------------------------------------------------------------------ #
    # Per-call costs
    # ------------------------------------------------------------------ #
    def generation_breakdown(self, wl: CallWorkload, alloc: Allocation) -> CostBreakdown:
        """Cost of a generation call: prefill plus auto-regressive decoding."""
        dp, tp, pp = alloc.parallel.dp, alloc.parallel.tp, alloc.parallel.pp
        nmb = alloc.n_microbatches
        b_dp = self._dp_batch(wl.batch_size, dp)
        b_mb = max(1, _ceil_div(b_dp, nmb))
        layers = self._layers_per_stage(pp)
        bd = CostBreakdown()

        # --- Prefill: one pipelined forward pass over the prompts. -------- #
        prefill_tokens = b_mb * wl.prompt_len
        fwd = self.provider.forward(prefill_tokens, wl.prompt_len, tp)
        head = self.provider.head_forward(b_mb, tp)
        stage_compute = layers * (fwd.compute_s + fwd.launch_s) + head.compute_s
        stage_coll = layers * fwd.tp_comm_s + head.tp_comm_s
        hop = self._hop_time(prefill_tokens, alloc)
        rounds = nmb + pp - 1
        bd.compute += nmb * stage_compute
        bd.coll_comm += nmb * stage_coll
        bd.pp_comm += nmb * hop * (1 if pp > 1 else 0)
        bd.bubble += (rounds - nmb) * (stage_compute + stage_coll)
        bd.coll_comm += self._zero3_gather_time(layers, alloc)

        # --- Decoding: ``gen_len`` small steps, memory-I/O bound. --------- #
        if wl.gen_len > 0:
            avg_kv = wl.prompt_len + wl.gen_len / 2.0
            dec = self.provider.decode(b_mb, avg_kv, tp, self.use_cuda_graph)
            head_dec = self.provider.head_forward(b_mb, tp)
            stage_dec_compute = layers * dec.compute_s + head_dec.compute_s
            stage_dec_launch = layers * dec.launch_s + head_dec.launch_s
            stage_dec_coll = layers * dec.tp_comm_s + head_dec.tp_comm_s
            stage_dec_hop = self._hop_time(b_mb, alloc) if pp > 1 else 0.0
            stage_unit = stage_dec_compute + stage_dec_launch + stage_dec_coll + stage_dec_hop
            # In one pipeline "round" every in-flight micro-batch advances one
            # token; a round lasts max(pp, nmb) stage units.
            rounds_per_token = max(pp, nmb)
            bd.compute += wl.gen_len * nmb * stage_dec_compute
            bd.launch += wl.gen_len * nmb * stage_dec_launch
            bd.coll_comm += wl.gen_len * nmb * stage_dec_coll
            bd.pp_comm += wl.gen_len * nmb * stage_dec_hop
            bd.bubble += wl.gen_len * max(0, rounds_per_token - nmb) * stage_unit
            if alloc.zero3:
                bd.coll_comm += wl.gen_len * self._zero3_gather_time(layers, alloc)
        return bd

    def inference_breakdown(self, wl: CallWorkload, alloc: Allocation) -> CostBreakdown:
        """Cost of an inference call: one pipelined forward pass."""
        dp, tp, pp = alloc.parallel.dp, alloc.parallel.tp, alloc.parallel.pp
        nmb = alloc.n_microbatches
        b_dp = self._dp_batch(wl.batch_size, dp)
        b_mb = max(1, _ceil_div(b_dp, nmb))
        layers = self._layers_per_stage(pp)
        tokens_mb = b_mb * wl.seqlen
        fwd = self.provider.forward(tokens_mb, wl.seqlen, tp)
        head = self.provider.head_forward(tokens_mb, tp)
        stage_compute = layers * (fwd.compute_s + fwd.launch_s) + head.compute_s + head.launch_s
        stage_coll = layers * fwd.tp_comm_s + head.tp_comm_s
        hop = self._hop_time(tokens_mb, alloc)
        bd = CostBreakdown()
        bd.compute += nmb * stage_compute
        bd.coll_comm += nmb * stage_coll
        bd.pp_comm += nmb * hop * (1 if pp > 1 else 0)
        bd.bubble += (pp - 1) * (stage_compute + stage_coll)
        bd.coll_comm += self._zero3_gather_time(layers, alloc)
        return bd

    def training_breakdown(self, wl: CallWorkload, alloc: Allocation) -> CostBreakdown:
        """Cost of a training call: ``n_minibatches`` sequential PPO updates."""
        dp, tp, pp = alloc.parallel.dp, alloc.parallel.tp, alloc.parallel.pp
        nmb = alloc.n_microbatches
        batch_per_minibatch = max(1, wl.batch_size // wl.n_minibatches)
        b_dp = self._dp_batch(batch_per_minibatch, dp)
        b_mb = max(1, _ceil_div(b_dp, nmb))
        layers = self._layers_per_stage(pp)
        tokens_mb = b_mb * wl.seqlen

        fwd = self.provider.forward(tokens_mb, wl.seqlen, tp)
        bwd = self.provider.backward(tokens_mb, wl.seqlen, tp)
        head_f = self.provider.head_forward(tokens_mb, tp)
        head_b = self.provider.head_backward(tokens_mb, tp)
        opt = self.provider.optimizer_step(tp, pp)

        stage_compute = (
            layers * (fwd.compute_s + fwd.launch_s + bwd.compute_s + bwd.launch_s)
            + head_f.compute_s
            + head_b.compute_s
        )
        stage_coll = layers * (fwd.tp_comm_s + bwd.tp_comm_s) + head_f.tp_comm_s + head_b.tp_comm_s
        hop = 2.0 * self._hop_time(tokens_mb, alloc)  # forward + backward activation/grad

        # Data-parallel gradient all-reduce over this rank's parameter shard.
        grad_bytes = self.config.param_count() / (tp * pp) * GRAD_BYTES
        dp_comm = (
            self.comm.allreduce_time(grad_bytes, dp, self._dp_crosses_nodes(alloc))
            if dp > 1
            else 0.0
        )
        opt_time = layers * (opt.compute_s + opt.launch_s)

        per_minibatch = CostBreakdown()
        per_minibatch.compute += nmb * stage_compute + opt_time
        per_minibatch.coll_comm += nmb * stage_coll + dp_comm
        per_minibatch.pp_comm += nmb * hop * (1 if pp > 1 else 0)
        per_minibatch.bubble += (pp - 1) * (stage_compute + stage_coll)
        per_minibatch.coll_comm += 2.0 * self._zero3_gather_time(layers, alloc)

        return per_minibatch.scaled(wl.n_minibatches)

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def breakdown(self, call: ModelFunctionCall, wl: CallWorkload, alloc: Allocation) -> CostBreakdown:
        """Cost breakdown of ``call`` executed under ``alloc``."""
        if call.call_type is FunctionCallType.GENERATE:
            return self.generation_breakdown(wl, alloc)
        if call.call_type is FunctionCallType.INFERENCE:
            return self.inference_breakdown(wl, alloc)
        return self.training_breakdown(wl, alloc)

    def time(self, call: ModelFunctionCall, wl: CallWorkload, alloc: Allocation) -> float:
        """Wall time of ``call`` under ``alloc``."""
        return self.breakdown(call, wl, alloc).total

    # ------------------------------------------------------------------ #
    # Memory
    # ------------------------------------------------------------------ #
    def active_memory(self, call: ModelFunctionCall, wl: CallWorkload, alloc: Allocation) -> float:
        """Peak active memory per GPU of this call (KV cache, activations, params)."""
        dp, tp, pp = alloc.parallel.dp, alloc.parallel.tp, alloc.parallel.pp
        nmb = alloc.n_microbatches
        b_dp = self._dp_batch(wl.batch_size, dp)
        if call.call_type is FunctionCallType.GENERATE:
            return self.memory.generation_breakdown(
                b_dp, wl.prompt_len, wl.gen_len, dp, tp, pp, nmb, alloc.zero3
            ).active
        if call.call_type is FunctionCallType.INFERENCE:
            return self.memory.inference_breakdown(
                b_dp, wl.seqlen, dp, tp, pp, nmb, alloc.zero3
            ).active
        batch_per_minibatch = max(1, wl.batch_size // wl.n_minibatches)
        b_dp = self._dp_batch(batch_per_minibatch, dp)
        return self.memory.training_breakdown(
            b_dp, wl.seqlen, dp, tp, pp, nmb, alloc.zero3
        ).active

    def static_memory(self, call: ModelFunctionCall, alloc: Allocation) -> float:
        """Static memory per GPU (grads + optimizer) if this call trains."""
        if call.call_type is not FunctionCallType.TRAIN_STEP:
            return 0.0
        return self.memory.static_bytes_per_gpu(
            alloc.parallel.dp, alloc.parallel.tp, alloc.parallel.pp, alloc.zero3
        )
