"""3D parallelization strategies (data, tensor and pipeline parallelism).

Section 2.2 of the paper describes a parallelization strategy ``S`` as the
triple ``(dp, tp, pp)`` of data-, tensor- and pipeline-parallel degrees,
optionally combined with a number of micro-batches.  This module provides
the strategy value type, validation against a model/device mesh and an
enumeration helper used by the plan search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from ..cluster.topology import DeviceMesh
from ..model.config import ModelConfig

__all__ = ["ParallelStrategy", "enumerate_strategies", "factorize_3d"]


@dataclass(frozen=True, slots=True)
class ParallelStrategy:
    """Degrees of data, tensor and pipeline parallelism.

    The product ``dp * tp * pp`` must equal the number of GPUs of the device
    mesh the strategy runs on (every coordinate of the 3D grid is mapped to a
    distinct GPU).
    """

    dp: int
    tp: int
    pp: int

    def __post_init__(self) -> None:
        for name, value in (("dp", self.dp), ("tp", self.tp), ("pp", self.pp)):
            if value < 1:
                raise ValueError(f"{name} degree must be >= 1, got {value}")

    @property
    def world_size(self) -> int:
        """Number of GPUs the strategy occupies."""
        return self.dp * self.tp * self.pp

    def is_compatible_with_model(self, config: ModelConfig) -> bool:
        """Whether the model can actually be sharded this way.

        Tensor parallelism must divide the number of KV heads (so every rank
        holds whole heads), and pipeline parallelism cannot exceed the number
        of layers.
        """
        if self.pp > config.n_layers:
            return False
        if config.n_heads % self.tp != 0:
            return False
        if self.tp > config.n_kv_heads and config.n_kv_heads % self.tp != 0 and self.tp % config.n_kv_heads != 0:
            return False
        return True

    def fits_mesh(self, mesh: DeviceMesh) -> bool:
        """Whether the strategy exactly occupies ``mesh``."""
        return self.world_size == mesh.n_gpus

    def tp_crosses_nodes(self, mesh: DeviceMesh) -> bool:
        """Whether the tensor-parallel groups span node boundaries.

        The canonical Megatron layout places TP innermost, so TP crosses
        nodes only when ``tp`` exceeds the number of GPUs per node of the
        mesh.
        """
        return self.tp > mesh.gpus_per_node

    def describe(self) -> str:
        """Human-readable summary, e.g. ``dp=4 tp=2 pp=2``."""
        return f"dp={self.dp} tp={self.tp} pp={self.pp}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()


def factorize_3d(n: int) -> Iterator[tuple[int, int, int]]:
    """Yield all ordered triples ``(dp, tp, pp)`` with ``dp * tp * pp == n``."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    for tp in range(1, n + 1):
        if n % tp != 0:
            continue
        rest = n // tp
        for pp in range(1, rest + 1):
            if rest % pp != 0:
                continue
            yield (rest // pp, tp, pp)


def enumerate_strategies(
    n_gpus: int,
    config: Optional[ModelConfig] = None,
    max_tp: Optional[int] = None,
    max_pp: Optional[int] = None,
) -> List[ParallelStrategy]:
    """Enumerate all 3D strategies occupying exactly ``n_gpus`` GPUs.

    ``config`` restricts strategies to those compatible with the model
    architecture; ``max_tp``/``max_pp`` apply the search-space pruning rules
    from Section 8.2 of the paper (e.g. TP never exceeding the node width).
    """
    strategies: List[ParallelStrategy] = []
    for dp, tp, pp in factorize_3d(n_gpus):
        if max_tp is not None and tp > max_tp:
            continue
        if max_pp is not None and pp > max_pp:
            continue
        strategy = ParallelStrategy(dp=dp, tp=tp, pp=pp)
        if config is not None and not strategy.is_compatible_with_model(config):
            continue
        strategies.append(strategy)
    return strategies
