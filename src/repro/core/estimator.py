"""The lightweight runtime estimator: TimeCost(Gp), MaxMem(Gp) and cost(Gp).

Given a dataflow graph, a workload and an execution plan, the estimator
predicts the plan's iteration time with the priority-queue simulation of
Algorithm 1 (Appendix C of the paper), its peak per-device memory, and the
search cost that penalises out-of-memory plans:

.. math::

   cost(G_p) = \\mathbb{1}[MaxMem < mem_d] \\cdot TimeCost
             + (1 - \\mathbb{1}[MaxMem < mem_d]) \\cdot \\alpha \\cdot TimeCost

Evaluating one plan takes a fraction of a millisecond, which is what makes
the MCMC search over :math:`10^{16}`-sized spaces feasible.  To get there,
the estimator memoises every expensive per-component quantity — per-call
:class:`CostBreakdown` totals by allocation, reallocation-edge costs by
``(model, src layout, dst layout)``, data-transfer times by edge and layout
pair, and per-call memory contributions — and offers an incremental
:meth:`RuntimeEstimator.cost_delta` path that re-evaluates a plan after a
single-call move by recomputing only what that move can affect (the moved
call's duration, its model's reallocation edges, its incident data-transfer
edges and its memory contribution) before re-running the cheap scheduling
simulation.  All caches are exact memoisations of pure functions, so the
fast path is bit-for-bit consistent with a full recompute; set
``cross_check=True`` to verify that invariant on every evaluation (used by
the test suite).
"""

from __future__ import annotations

import heapq
from array import array
from bisect import insort, bisect_left
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from ..cluster.comm import CommModel
from ..cluster.hardware import ClusterSpec
from ..cluster.topology import DeviceMesh
from ..model.memory import PARAM_BYTES
from ..realloc.cost import ReallocCostModel
from .batch_eval import BatchPlanState
from .call_cost import CallCostModel, CostBreakdown
from .dataflow import DataflowGraph
from .plan import Allocation, ExecutionPlan
from .profiler import AnalyticalProvider, LayerTimeProvider, ProfileStats, ProfiledProvider
from .workload import RLHFWorkload

__all__ = [
    "TimeCostResult",
    "MemoryEstimate",
    "EvalCacheStats",
    "RuntimeEstimator",
    "BatchPlanState",
    "DEFAULT_OOM_PENALTY",
]

DEFAULT_OOM_PENALTY = 100.0
"""The large integer alpha multiplying the time cost of OOM-ing plans."""

_MAX_PLAN_STATES = 32
"""How many per-plan component states the estimator keeps around (LRU)."""

_MAX_PLAN_EVALS = 16384
"""Default LRU capacity of the signature-keyed (TimeCost, MaxMem) eval cache."""

_MAX_INTERNED_ALLOCS = 65536
"""How many allocation objects to keep in the key-interning identity map."""


@dataclass(slots=True)
class EvalCacheStats:
    """Counters of the signature-keyed eval cache (hits/misses/evictions).

    Long-lived estimators (e.g. inside a :class:`~repro.service.server.PlanService`)
    used to grow this cache without bound; it is now a capped LRU and these
    counters make its behaviour observable.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def to_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


@dataclass(slots=True)
class TimeCostResult:
    """Result of the Algorithm-1 simulation of one RLHF iteration."""

    total_seconds: float
    spans: Dict[str, Tuple[float, float]] = field(default_factory=dict)
    call_seconds: Dict[str, float] = field(default_factory=dict)
    realloc_seconds: float = 0.0
    data_transfer_seconds: float = 0.0
    breakdowns: Dict[str, CostBreakdown] = field(default_factory=dict)

    @property
    def compute_seconds(self) -> float:
        """Total compute time across calls (not wall time)."""
        return sum(b.compute for b in self.breakdowns.values())


@dataclass(slots=True)
class MemoryEstimate:
    """Peak memory usage per GPU and in aggregate."""

    per_gpu: Dict[int, float]
    static_per_gpu: Dict[int, float]

    @property
    def max_bytes(self) -> float:
        """Peak bytes on the most loaded GPU."""
        return max(self.per_gpu.values(), default=0.0)

    @property
    def max_static_bytes(self) -> float:
        """Peak static (gradient + optimizer) bytes on the most loaded GPU."""
        return max(self.static_per_gpu.values(), default=0.0)


@dataclass(slots=True)
class _PlanState:
    """Memoised per-component state of one concrete plan.

    Everything the scheduling simulation and the memory aggregation need,
    with the expensive per-call/per-edge quantities already resolved.  All
    fields are flat lists indexed by call id (or edge id), so a single-call
    move is a handful of C-speed ``list.copy()`` calls plus point updates.
    ``__slots__`` keeps the per-state footprint flat: the MCMC chain creates
    one of these per proposal.
    """

    durations: List[float]
    """Wall time of each call under its allocation (by call id)."""
    realloc_in: List[float]
    """Reallocation seconds charged to each call (by call id).  Every call
    has at most one incoming reallocation edge — the one from its
    predecessor in its model's reallocation cycle."""
    transfers: List[float]
    """Data-transfer seconds per graph edge (by edge id)."""
    mesh_spans: List[Tuple[int, int]]
    """Per call: half-open global GPU id range ``[lo, hi)`` of its mesh
    (device meshes always cover a contiguous run of global GPU ids)."""
    mem: List[Tuple[float, float, float]]
    """Per call: (static bytes, parameter-shard bytes, active bytes)."""


class RuntimeEstimator:
    """Profiling-assisted analytical estimator for execution plans.

    Parameters
    ----------
    graph, workload, cluster:
        The experiment being planned.
    profiles:
        Optional per-model :class:`ProfileStats`.  When given, layer times are
        interpolated from the profiled power-of-two samples (the paper's
        estimator); otherwise the exact analytical model is used.
    use_cuda_graph:
        Whether generation decoding benefits from CUDA-graph capture.
    use_cache:
        Memoise per-call, per-edge and per-plan quantities (the fast path).
        Disable to reproduce the from-scratch evaluation cost; results are
        identical either way.
    cross_check:
        Verify every fast-path evaluation against a full recompute and raise
        ``RuntimeError`` on any mismatch.  Slow; meant for tests.
    eval_cache_size:
        LRU capacity of the signature-keyed (TimeCost, MaxMem) eval cache.
        Bounded so long-lived estimators (e.g. held by a plan service) cannot
        grow without limit; ``eval_cache_stats`` exposes hit/miss/eviction
        counters.

    The memo caches are plain dicts holding values of pure functions, so
    concurrent use from several threads (e.g. the plan service's worker pool)
    is safe under the GIL: racing writes store identical values.
    """

    def __init__(
        self,
        graph: DataflowGraph,
        workload: RLHFWorkload,
        cluster: ClusterSpec,
        profiles: Optional[Mapping[str, ProfileStats]] = None,
        use_cuda_graph: bool = True,
        use_cache: bool = True,
        cross_check: bool = False,
        eval_cache_size: int = _MAX_PLAN_EVALS,
    ) -> None:
        if eval_cache_size < 1:
            raise ValueError(f"eval_cache_size must be >= 1, got {eval_cache_size}")
        self.graph = graph
        self.workload = workload
        self.cluster = cluster
        # Kept verbatim so an equivalent estimator can be re-created in a
        # worker process (see repro.core.parallel_search.ChainProblem).
        self.profiles = dict(profiles) if profiles is not None else None
        self.use_cuda_graph = use_cuda_graph
        self.use_cache = use_cache
        self.cross_check = cross_check
        self.comm = CommModel(cluster)
        self.realloc_model = ReallocCostModel(cluster)
        self._cost_models: Dict[str, CallCostModel] = {}
        for model_name in graph.model_names():
            config = workload.model_config(model_name)
            provider: LayerTimeProvider
            if profiles is not None and model_name in profiles:
                provider = ProfiledProvider(config, cluster, profiles[model_name])
            else:
                provider = AnalyticalProvider(config, cluster)
            self._cost_models[model_name] = CallCostModel(
                config, cluster, provider, use_cuda_graph=use_cuda_graph
            )
        # Graph structure is immutable for the estimator's lifetime: resolve
        # the adjacency maps, the edge list and the per-model call sequences
        # once instead of per evaluation.  Calls and edges get dense integer
        # ids so per-plan state lives in flat lists.
        self._call_names: List[str] = list(graph.call_names)
        self._call_index: Dict[str, int] = {n: i for i, n in enumerate(self._call_names)}
        self._call_model: Dict[str, str] = {c.name: c.model_name for c in graph.calls}
        self._model_by_id: List[str] = [self._call_model[n] for n in self._call_names]
        self._parents: Dict[str, List[str]] = graph.parents_map()
        self._children: Dict[str, List[str]] = graph.children_map()
        self._edges: List[Tuple[str, str]] = list(graph.edges)
        # Outgoing adjacency in CSR form (array-backed): the children and edge
        # ids of call ``i`` live at positions [_out_ptr[i], _out_ptr[i+1]) of
        # the flat ``_out_child``/``_out_edge`` arrays — no per-call tuple
        # lists to chase in the simulation's inner loop.  Per call we also
        # keep the edge ids the call participates in (what a move can
        # invalidate).
        out_pairs: List[List[Tuple[int, int]]] = [[] for _ in self._call_names]
        incident: List[List[int]] = [[] for _ in self._call_names]
        for edge_id, (src, dst) in enumerate(self._edges):
            src_id, dst_id = self._call_index[src], self._call_index[dst]
            out_pairs[src_id].append((dst_id, edge_id))
            incident[src_id].append(edge_id)
            if dst_id != src_id:
                incident[dst_id].append(edge_id)
        self._out_ptr = array("l", [0] * (len(self._call_names) + 1))
        out_child: List[int] = []
        out_edge: List[int] = []
        for call_id, pairs in enumerate(out_pairs):
            for child_id, edge_id in pairs:
                out_child.append(child_id)
                out_edge.append(edge_id)
            self._out_ptr[call_id + 1] = len(out_child)
        self._out_child = array("l", out_child)
        self._out_edge = array("l", out_edge)
        self._incident_edge_ids: List[Tuple[int, ...]] = [
            tuple(edge_ids) for edge_ids in incident
        ]
        self._model_calls: Dict[str, List[str]] = {
            m: [c.name for c in graph.calls_of_model(m)] for m in graph.model_names()
        }
        # Predecessor/successor of each call in its model's reallocation cycle
        # (None when the model has a single call and thus no realloc edges).
        self._realloc_neighbors: Dict[str, Tuple[Optional[str], Optional[str]]] = {}
        for calls in self._model_calls.values():
            if len(calls) < 2:
                for name in calls:
                    self._realloc_neighbors[name] = (None, None)
            else:
                n = len(calls)
                for i, name in enumerate(calls):
                    self._realloc_neighbors[name] = (calls[i - 1], calls[(i + 1) % n])
        self._call_workloads = {c.name: workload.call_workload(c) for c in graph.calls}
        # Memo caches (exact values of pure functions of their keys).
        self._call_time_cache: Dict[Tuple, float] = {}
        self._breakdown_cache: Dict[Tuple, CostBreakdown] = {}
        self._realloc_cache: Dict[Tuple, float] = {}
        self._transfer_cache: Dict[Tuple, float] = {}
        self._mem_cache: Dict[Tuple, Tuple[float, float, float]] = {}
        self._states: "OrderedDict[Tuple, _PlanState]" = OrderedDict()
        self._sig_memo: Tuple[Optional[ExecutionPlan], Tuple] = (None, ())
        self._eval_cache: "OrderedDict[Tuple, Tuple[float, float]]" = OrderedDict()
        self._eval_cache_size = int(eval_cache_size)
        self.eval_cache_stats = EvalCacheStats()
        # Batched evaluation: lookup tables built lazily (see batch_eval);
        # ``batch_eval_stats`` counts base-plan table lookups once per
        # batch_cost(moves=...) sweep, not once per proposal.
        self._batch: Optional["BatchPlanState"] = None
        self._batch_base_memo: Tuple[Optional[ExecutionPlan], Optional[object]] = (
            None,
            None,
        )
        self.batch_eval_stats = EvalCacheStats()
        # Allocation-key interning: option tables hold a fixed population of
        # Allocation objects that get keyed millions of times per search, so
        # the key of each *object* (by id) is remembered and value-equal keys
        # collapse onto one shared tuple.  Each entry stores ``(alloc, key)``
        # together: the stored reference pins the object so its id cannot be
        # recycled while its memo entry lives, and keeping pin and key in one
        # dict value means a concurrent overflow ``clear()`` can only drop
        # whole entries (forcing a recompute), never leave a key behind for a
        # recycled id.
        self._alloc_key_by_id: Dict[int, Tuple[Allocation, Tuple]] = {}
        self._key_intern: Dict[Tuple, Tuple] = {}
        # Simulation constants: indegrees and the initial ready heap.  Heap
        # entries carry the call's alphabetical rank so equal-ready-time ties
        # resolve exactly as they would with ``(time, name)`` keys.
        self._parent_counts = array(
            "l", [len(self._parents[name]) for name in self._call_names]
        )
        rank_order = sorted(range(len(self._call_names)), key=self._call_names.__getitem__)
        self._rank_to_id = array("l", rank_order)
        self._rank_of = array("l", [0] * len(rank_order))
        for rank, call_id in enumerate(rank_order):
            self._rank_of[call_id] = rank
        self._root_heap: List[Tuple[float, int]] = sorted(
            (0.0, self._rank_of[i])
            for i, count in enumerate(self._parent_counts)
            if count == 0
        )

    # ------------------------------------------------------------------ #
    # Cache keys (flat int tuples: cheap to build, hash and compare)
    # ------------------------------------------------------------------ #
    @staticmethod
    def _alloc_key(alloc: Allocation) -> Tuple:
        mesh, parallel = alloc.mesh, alloc.parallel
        return (
            mesh.node_start,
            mesh.n_nodes,
            mesh.gpu_start,
            mesh.gpus_per_node,
            parallel.dp,
            parallel.tp,
            parallel.pp,
            alloc.n_microbatches,
            alloc.zero3,
        )

    @staticmethod
    def _layout_key(alloc: Allocation) -> Tuple:
        """Identity of an allocation as far as parameter layout is concerned."""
        mesh, parallel = alloc.mesh, alloc.parallel
        return (
            mesh.node_start,
            mesh.n_nodes,
            mesh.gpu_start,
            mesh.gpus_per_node,
            parallel.dp,
            parallel.tp,
            parallel.pp,
        )

    @staticmethod
    def _transfer_key(alloc: Allocation) -> Tuple:
        """Identity of an allocation as far as data movement is concerned."""
        mesh, parallel = alloc.mesh, alloc.parallel
        return (
            mesh.node_start,
            mesh.n_nodes,
            mesh.gpu_start,
            mesh.gpus_per_node,
            parallel.dp,
            parallel.tp,
        )

    def _key_for(self, alloc: Allocation) -> Tuple:
        """Interned allocation key: one shared tuple per distinct allocation.

        Plans reference the fixed Allocation population of the searcher's
        option table, so keying by object identity turns the 9-attribute
        tuple build into a single dict lookup on the hot path.  The memo is
        bounded; overflowing it (pathological churn of fresh Allocation
        objects) just resets the identity map, never the interned values.
        """
        entry = self._alloc_key_by_id.get(id(alloc))
        if entry is not None:
            return entry[1]
        raw = self._alloc_key(alloc)
        key = self._key_intern.setdefault(raw, raw)
        if len(self._alloc_key_by_id) >= _MAX_INTERNED_ALLOCS:
            self._alloc_key_by_id.clear()
        self._alloc_key_by_id[id(alloc)] = (alloc, key)
        return key

    def _plan_signature(self, plan: ExecutionPlan) -> Tuple:
        # The same plan object is typically queried many times in a row (the
        # MCMC chain's current plan); memoise the last signature by identity.
        memo_plan, memo_sig = self._sig_memo
        if plan is memo_plan:
            return memo_sig
        key_for = self._key_for
        signature = tuple(key_for(plan[name]) for name in self._call_names)
        self._sig_memo = (plan, signature)
        return signature

    # ------------------------------------------------------------------ #
    # Per-call costs
    # ------------------------------------------------------------------ #
    def cost_model(self, model_name: str) -> CallCostModel:
        """The per-call cost model of one LLM."""
        return self._cost_models[model_name]

    def _compute_breakdown(self, call_name: str, alloc: Allocation) -> CostBreakdown:
        call = self.graph.get(call_name)
        wl = self._call_workloads[call_name]
        return self._cost_models[call.model_name].breakdown(call, wl, alloc)

    def call_breakdown(self, call_name: str, alloc: Allocation) -> CostBreakdown:
        """Cost breakdown of one call under an allocation (memoised).

        Returns a fresh copy so callers may mutate the breakdown without
        corrupting the cache.
        """
        if not self.use_cache:
            return self._compute_breakdown(call_name, alloc)
        key = (call_name,) + self._key_for(alloc)
        cached = self._breakdown_cache.get(key)
        if cached is None:
            cached = self._compute_breakdown(call_name, alloc)
            self._breakdown_cache[key] = cached
        return cached.scaled(1.0)

    def call_time(self, call_name: str, alloc: Allocation) -> float:
        """Wall time of one call under an allocation (memoised)."""
        if not self.use_cache:
            return self._compute_breakdown(call_name, alloc).total
        key = (call_name,) + self._key_for(alloc)
        cached = self._call_time_cache.get(key)
        if cached is not None:
            return cached
        value = self._compute_breakdown(call_name, alloc).total
        self._call_time_cache[key] = value
        return value

    # ------------------------------------------------------------------ #
    # Reallocation cost along parameter edges
    # ------------------------------------------------------------------ #
    def _realloc_seconds(self, model_name: str, src: Allocation, dst: Allocation) -> float:
        """Seconds to remap ``model_name``'s parameters from ``src`` to ``dst``.

        The approximate reallocation model (the default for plan search)
        depends only on the destination's TP/PP sharding and on whether the
        move crosses nodes, so its memo key collapses to that; the exact
        broadcast-schedule model keys on the full (src, dst) layout pair.
        """
        if self.realloc_model.exact:
            key = (model_name, self._layout_key(src), self._layout_key(dst))
        else:
            cross = (src.mesh.node_start, src.mesh.n_nodes) != (
                dst.mesh.node_start,
                dst.mesh.n_nodes,
            )
            key = (model_name, dst.parallel.tp, dst.parallel.pp, cross)
        cached = self._realloc_cache.get(key) if self.use_cache else None
        if cached is not None:
            return cached
        config = self.workload.model_config(model_name)
        value = self.realloc_model.cost(config, src, dst).seconds
        if self.use_cache:
            self._realloc_cache[key] = value
        return value

    def _realloc_in_list(self, alloc_of: Callable[[str], Allocation]) -> List[float]:
        """Reallocation seconds charged to each call (by call id).

        Mirrors :func:`~repro.core.plan.reallocation_edges`: consecutive calls
        of a model (plus the wrap-around to the next iteration) whose layouts
        differ pay a reallocation on the destination call; every call is the
        destination of at most one such edge.
        """
        realloc_in = [0.0] * len(self._call_names)
        for model_name, calls in self._model_calls.items():
            if len(calls) < 2:
                continue
            sequence = calls + [calls[0]]
            for src_call, dst_call in zip(sequence[:-1], sequence[1:]):
                src, dst = alloc_of(src_call), alloc_of(dst_call)
                if self._layout_key(src) == self._layout_key(dst):
                    continue
                realloc_in[self._call_index[dst_call]] = self._realloc_seconds(
                    model_name, src, dst
                )
        return realloc_in

    # ------------------------------------------------------------------ #
    # Data transfer cost along graph edges
    # ------------------------------------------------------------------ #
    def _edge_transfer_time(
        self, src_name: str, dst_name: str, src_alloc: Allocation, dst_alloc: Allocation
    ) -> float:
        """Time to move the producer's output to the consumer's layout.

        Data is partitioned along DP and replicated along TP; moving it to a
        different mesh/strategy is a broadcast-style redistribution whose
        volume is the per-token hidden states and scalar outputs of the batch.
        """
        if (
            src_alloc.mesh == dst_alloc.mesh
            and src_alloc.parallel.dp == dst_alloc.parallel.dp
            and src_alloc.parallel.tp == dst_alloc.parallel.tp
        ):
            return 0.0
        cross = src_alloc.mesh.node_ids != dst_alloc.mesh.node_ids
        return self._transfer_seconds(dst_name, cross)

    def _transfer_seconds(self, dst_name: str, cross: bool) -> float:
        """Redistribution time of a non-local edge into ``dst_name``.

        The payload is fixed by the destination call's workload, so the only
        layout-dependent bit is whether the move crosses node boundaries.
        """
        key = (dst_name, cross)
        cached = self._transfer_cache.get(key) if self.use_cache else None
        if cached is not None:
            return cached
        wl = self._call_workloads[dst_name]
        # Transferred payload: token ids, log-probs, rewards and values are a
        # few scalars per token; we charge 16 bytes per token of the batch.
        nbytes = wl.batch_size * wl.seqlen * 16.0
        value = self.comm.p2p_time_cross(nbytes, cross)
        if self.use_cache:
            self._transfer_cache[key] = value
        return value

    def _edge_transfer_cached(
        self, src_name: str, dst_name: str, src_alloc: Allocation, dst_alloc: Allocation
    ) -> float:
        src_key = self._transfer_key(src_alloc)
        dst_key = self._transfer_key(dst_alloc)
        if src_key == dst_key:
            # Same mesh and same DP/TP layout: the data is already in place.
            return 0.0
        cross = src_key[:2] != dst_key[:2]
        return self._transfer_seconds(dst_name, cross)

    # ------------------------------------------------------------------ #
    # Per-call memory contributions
    # ------------------------------------------------------------------ #
    def _compute_mem_contrib(
        self, call_name: str, alloc: Allocation
    ) -> Tuple[float, float, float]:
        call = self.graph.get(call_name)
        cm = self._cost_models[call.model_name]
        wl = self._call_workloads[call_name]
        shard_params = self.workload.model_config(call.model_name).param_count() / (
            alloc.parallel.tp * alloc.parallel.pp
        )
        if alloc.zero3:
            shard_params /= alloc.parallel.dp
        param_bytes = shard_params * PARAM_BYTES
        call_static = cm.static_memory(call, alloc)
        call_active = max(cm.active_memory(call, wl, alloc) - param_bytes, 0.0)
        return (call_static, param_bytes, call_active)

    def _mem_contrib(self, call_name: str, alloc: Allocation) -> Tuple[float, float, float]:
        """Per-call memory contribution (static, param-shard, active bytes).

        None of the components depend on the mesh position, so the memo key
        is (call, strategy, micro-batches, zero3).
        """
        if not self.use_cache:
            return self._compute_mem_contrib(call_name, alloc)
        parallel = alloc.parallel
        key = (
            call_name,
            parallel.dp,
            parallel.tp,
            parallel.pp,
            alloc.n_microbatches,
            alloc.zero3,
        )
        cached = self._mem_cache.get(key)
        if cached is None:
            cached = self._compute_mem_contrib(call_name, alloc)
            self._mem_cache[key] = cached
        return cached

    def _mesh_span(self, mesh: DeviceMesh) -> Tuple[int, int]:
        """Half-open global GPU id range ``[lo, hi)`` covered by the mesh.

        Meshes always cover contiguous global ids: multi-node meshes span
        whole hosts, sub-node meshes a contiguous run within one host.
        """
        lo = mesh.node_start * self.cluster.gpus_per_node + mesh.gpu_start
        return (lo, lo + mesh.n_gpus)

    # ------------------------------------------------------------------ #
    # Plan states (fast path)
    # ------------------------------------------------------------------ #
    def _build_state(self, plan: ExecutionPlan) -> _PlanState:
        durations = [self.call_time(name, plan[name]) for name in self._call_names]
        realloc_in = self._realloc_in_list(plan.__getitem__)
        # The uncached path keeps the mesh-equality reference implementation,
        # so cross-check compares two independent transfer computations.
        transfer = self._edge_transfer_cached if self.use_cache else self._edge_transfer_time
        transfers = [
            transfer(src, dst, plan[src], plan[dst]) for src, dst in self._edges
        ]
        mesh_spans = [self._mesh_span(plan[name].mesh) for name in self._call_names]
        mem = [self._mem_contrib(name, plan[name]) for name in self._call_names]
        return _PlanState(
            durations=durations,
            realloc_in=realloc_in,
            transfers=transfers,
            mesh_spans=mesh_spans,
            mem=mem,
        )

    def _state_for(self, plan: ExecutionPlan) -> _PlanState:
        signature = self._plan_signature(plan)
        state = self._states.get(signature)
        if state is not None:
            try:
                self._states.move_to_end(signature)
            except KeyError:
                # A concurrent _remember_state evicted the entry between the
                # get and the LRU touch; the state itself remains valid.
                pass
            return state
        state = self._build_state(plan)
        self._remember_state(signature, state)
        return state

    def _remember_state(self, signature: Tuple, state: _PlanState) -> None:
        self._states[signature] = state
        while len(self._states) > _MAX_PLAN_STATES:
            try:
                self._states.popitem(last=False)
            except KeyError:
                # Another thread emptied the LRU past us; nothing to evict.
                break

    def _moved_state(
        self,
        base: _PlanState,
        plan: ExecutionPlan,
        call_name: str,
        new_alloc: Allocation,
        signature: Tuple,
        new_key: Tuple,
    ) -> _PlanState:
        """State of ``plan`` with one call moved, updating only what changed:
        the moved call's duration, its model's reallocation edges, its
        incident data-transfer edges, its mesh and its memory contribution.

        ``signature`` is the base plan's signature and ``new_key`` the moved
        allocation's key; layout/transfer identities are tuple slices of
        those, so no dataclass attribute walking happens on this path.
        """
        call_index = self._call_index
        call_id = call_index[call_name]

        def key_of(name: str) -> Tuple:
            return new_key if name == call_name else signature[call_index[name]]

        def alloc_of(name: str) -> Allocation:
            return new_alloc if name == call_name else plan[name]

        durations = base.durations.copy()
        duration = self._call_time_cache.get((call_name,) + new_key)
        if duration is None:
            duration = self.call_time(call_name, new_alloc)
        durations[call_id] = duration
        realloc_in = base.realloc_in
        prev_call, next_call = self._realloc_neighbors[call_name]
        if prev_call is not None:
            # Only the two reallocation edges adjacent to the moved call can
            # change; every destination has exactly one incoming edge.
            model = self._call_model[call_name]
            realloc_in = realloc_in.copy()
            for src_call, dst_call in ((prev_call, call_name), (call_name, next_call)):
                src_key, dst_key = key_of(src_call), key_of(dst_call)
                dst_id = call_index[dst_call]
                if src_key[:7] == dst_key[:7]:
                    realloc_in[dst_id] = 0.0
                else:
                    realloc_in[dst_id] = self._realloc_seconds(
                        model, alloc_of(src_call), alloc_of(dst_call)
                    )
        transfers = base.transfers.copy()
        edges = self._edges
        for edge_id in self._incident_edge_ids[call_id]:
            src, dst = edges[edge_id]
            src_key, dst_key = key_of(src), key_of(dst)
            if src_key[:6] == dst_key[:6]:
                transfers[edge_id] = 0.0
            else:
                transfers[edge_id] = self._transfer_seconds(
                    dst, src_key[:2] != dst_key[:2]
                )
        mesh_spans = base.mesh_spans.copy()
        mesh_spans[call_id] = self._mesh_span(new_alloc.mesh)
        mem = base.mem.copy()
        mem[call_id] = self._mem_contrib(call_name, new_alloc)
        return _PlanState(
            durations=durations,
            realloc_in=realloc_in,
            transfers=transfers,
            mesh_spans=mesh_spans,
            mem=mem,
        )

    # ------------------------------------------------------------------ #
    # TimeCost(Gp): Algorithm 1
    # ------------------------------------------------------------------ #
    def _simulate(
        self, state: _PlanState, collect_spans: bool = False
    ) -> Tuple[float, Dict[str, Tuple[float, float]]]:
        """Priority-queue simulation (Algorithm 1) over resolved components.

        Nodes become ready when all their parents completed (plus data
        transfer time); a ready node starts as soon as every GPU of its device
        mesh is free.  Parameter reallocations are charged to the destination
        call and additionally occupy the source mesh.
        """
        durations, realloc_in = state.durations, state.realloc_in
        transfers, mesh_spans = state.transfers, state.mesh_spans
        rpc_overhead = self.cluster.rpc_overhead_s
        n_calls = len(durations)
        ready_time: List[float] = [0.0] * n_calls
        remaining_parents = self._parent_counts[:]
        gpu_free: List[float] = [0.0] * self.cluster.n_gpus
        spans: Dict[str, Tuple[float, float]] = {}
        done: List[bool] = [False] * n_calls
        n_done = 0
        total = 0.0
        rank_to_id, rank_of = self._rank_to_id, self._rank_of
        out_ptr, out_child, out_edge = self._out_ptr, self._out_child, self._out_edge
        heappop, heappush = heapq.heappop, heapq.heappush
        heap: List[Tuple[float, int]] = self._root_heap.copy()

        while heap:
            rt, rank = heappop(heap)
            call_id = rank_to_id[rank]
            if done[call_id]:
                continue
            lo, hi = mesh_spans[call_id]
            mesh_free = max(gpu_free[lo:hi])
            start = rt if rt >= mesh_free else mesh_free
            end = start + durations[call_id] + realloc_in[call_id] + rpc_overhead
            if collect_spans:
                spans[self._call_names[call_id]] = (start, end)
            if end > total:
                total = end
            done[call_id] = True
            n_done += 1
            gpu_free[lo:hi] = [end] * (hi - lo)
            for k in range(out_ptr[call_id], out_ptr[call_id + 1]):
                child_id = out_child[k]
                ready = end + transfers[out_edge[k]]
                if ready > ready_time[child_id]:
                    ready_time[child_id] = ready
                remaining = remaining_parents[child_id] - 1
                remaining_parents[child_id] = remaining
                if remaining == 0:
                    heappush(heap, (ready_time[child_id], rank_of[child_id]))

        if n_done != n_calls:
            raise RuntimeError("scheduling simulation did not complete all calls")
        return total, spans

    def time_cost(self, plan: ExecutionPlan) -> TimeCostResult:
        """Simulate one iteration of the plan and return its wall time.

        An empty dataflow graph has nothing to schedule and costs nothing.
        """
        if not self._call_names:
            return TimeCostResult(total_seconds=0.0)
        breakdowns = {
            name: self.call_breakdown(name, plan[name]) for name in self._call_names
        }
        state = self._state_for(plan) if self.use_cache else self._build_state(plan)
        total, spans = self._simulate(state, collect_spans=True)
        return TimeCostResult(
            total_seconds=total,
            spans=spans,
            call_seconds={
                name: state.durations[i] for i, name in enumerate(self._call_names)
            },
            realloc_seconds=sum(state.realloc_in),
            data_transfer_seconds=sum(state.transfers),
            breakdowns=breakdowns,
        )

    # ------------------------------------------------------------------ #
    # MaxMem(Gp)
    # ------------------------------------------------------------------ #
    def _aggregate_memory(self, state: _PlanState) -> Tuple[Dict[int, float], Dict[int, float]]:
        """Per-GPU (total, static) bytes from the per-call contributions.

        Static memory (gradients + optimizer states of trainable models) is
        pinned to the GPUs of the training allocation for the whole
        experiment.  Parameters are reallocatable but must reside wherever a
        call of the model executes; we conservatively keep, per GPU, the
        largest parameter shard any call places there.  Active memory is the
        largest activation/KV footprint among the calls running on the GPU.
        """
        static: Dict[int, float] = {}
        params: Dict[Tuple[int, str], float] = {}
        active: Dict[int, float] = {}
        for call_id in range(len(self._call_names)):
            call_static, param_bytes, call_active = state.mem[call_id]
            model = self._model_by_id[call_id]
            lo, hi = state.mesh_spans[call_id]
            for g in range(lo, hi):
                static[g] = static.get(g, 0.0) + call_static
                key = (g, model)
                if params.get(key, -1.0) < param_bytes:
                    params[key] = param_bytes
                if active.get(g, -1.0) < call_active:
                    active[g] = call_active
        params_per_gpu: Dict[int, float] = {g: 0.0 for g in static}
        for (g, _model), nbytes in params.items():
            params_per_gpu[g] += nbytes
        per_gpu = {g: static[g] + params_per_gpu[g] + active[g] for g in static}
        return per_gpu, static

    def _max_bytes_sweep(self, state: _PlanState) -> float:
        """Peak per-GPU bytes via an event sweep over mesh-span boundaries.

        Every GPU inside one elementary segment (between two consecutive
        mesh boundaries) hosts exactly the same set of calls, so evaluating
        one representative GPU per segment gives the cluster-wide peak.
        Spans enter/leave a sorted *active set* at their boundary events, so
        each segment only touches the calls actually covering it —
        ``O(n log n)`` for the event queue plus the covering-call totals,
        instead of re-scanning all ``n`` calls per boundary (the previous
        ``O(calls^2)`` sweep).  The active set is kept in ascending call-id
        order and contributions are combined exactly as
        :meth:`_aggregate_memory` combines them (ascending call id), so the
        result is bit-for-bit identical to ``max(per_gpu)``.
        """
        spans = state.mesh_spans
        mem = state.mem
        model_by_id = self._model_by_id
        starts: Dict[int, List[int]] = {}
        stops: Dict[int, List[int]] = {}
        for call_id, (lo, hi) in enumerate(spans):
            starts.setdefault(lo, []).append(call_id)
            stops.setdefault(hi, []).append(call_id)
        bounds = sorted(starts.keys() | stops.keys())
        active_ids: List[int] = []
        max_bytes = 0.0
        for boundary in bounds[:-1]:
            for call_id in stops.get(boundary, ()):
                del active_ids[bisect_left(active_ids, call_id)]
            for call_id in starts.get(boundary, ()):
                insort(active_ids, call_id)
            static = 0.0
            active = 0.0
            params: Dict[str, float] = {}
            for call_id in active_ids:
                call_static, param_bytes, call_active = mem[call_id]
                static += call_static
                model = model_by_id[call_id]
                if params.get(model, -1.0) < param_bytes:
                    params[model] = param_bytes
                if call_active > active:
                    active = call_active
            param_sum = 0.0
            for nbytes in params.values():
                param_sum += nbytes
            total = static + param_sum + active
            if total > max_bytes:
                max_bytes = total
        return max_bytes

    def max_memory(self, plan: ExecutionPlan) -> MemoryEstimate:
        """Estimate the peak memory per GPU under the plan."""
        state = self._state_for(plan) if self.use_cache else self._build_state(plan)
        per_gpu, static = self._aggregate_memory(state)
        # Report every cluster GPU, including idle ones, like the runtime does.
        full_static = {g: static.get(g, 0.0) for g in range(self.cluster.n_gpus)}
        full_per_gpu = {g: per_gpu.get(g, 0.0) for g in range(self.cluster.n_gpus)}
        return MemoryEstimate(per_gpu=full_per_gpu, static_per_gpu=full_static)

    # ------------------------------------------------------------------ #
    # cost(Gp)
    # ------------------------------------------------------------------ #
    def _cost_of_state(self, state: _PlanState, oom_penalty: float) -> float:
        total, _ = self._simulate(state)
        if self._max_bytes_sweep(state) < self.cluster.device_memory_bytes:
            return total
        return oom_penalty * total

    def _evaluate_signature(
        self, signature: Tuple, state_fn: Callable[[], _PlanState]
    ) -> Tuple[float, float]:
        """Memoised ``(TimeCost, MaxMem)`` of a plan identified by signature.

        The MCMC chain re-proposes the same neighbouring plans many times;
        a signature hit skips the state construction and simulation outright.
        The cache is a capped LRU (``eval_cache_size``) with hit/miss/
        eviction counters in :attr:`eval_cache_stats`, so a long-lived
        estimator cannot grow without bound.
        """
        stats = self.eval_cache_stats
        cached = self._eval_cache.get(signature)
        if cached is not None:
            stats.hits += 1
            try:
                self._eval_cache.move_to_end(signature)
            except KeyError:
                # A concurrent insert evicted the entry between the get and
                # the LRU touch; the cached value remains valid.
                pass
            return cached
        stats.misses += 1
        state = state_fn()
        total, _ = self._simulate(state)
        max_bytes = self._max_bytes_sweep(state)
        self._eval_cache[signature] = (total, max_bytes)
        while len(self._eval_cache) > self._eval_cache_size:
            try:
                self._eval_cache.popitem(last=False)
                stats.evictions += 1
            except KeyError:
                # Another thread emptied the LRU past us; nothing to evict.
                break
        return total, max_bytes

    def _exact_cost(self, plan: ExecutionPlan, oom_penalty: float) -> float:
        """Full from-scratch recompute, bypassing every memo cache.

        Also aggregates memory per GPU instead of per mesh segment, so the
        cross-check exercises an independent implementation of MaxMem.
        """
        saved, self.use_cache = self.use_cache, False
        try:
            state = self._build_state(plan)
        finally:
            self.use_cache = saved
        total, _ = self._simulate(state)
        per_gpu, _static = self._aggregate_memory(state)
        if max(per_gpu.values(), default=0.0) < self.cluster.device_memory_bytes:
            return total
        return oom_penalty * total

    def cost(self, plan: ExecutionPlan, oom_penalty: float = DEFAULT_OOM_PENALTY) -> float:
        """Search cost: time cost with a multiplicative OOM penalty."""
        if not self._call_names:
            return 0.0
        if not self.use_cache:
            return self._cost_of_state(self._build_state(plan), oom_penalty)
        signature = self._plan_signature(plan)
        total, max_bytes = self._evaluate_signature(
            signature, lambda: self._state_for(plan)
        )
        value = total if max_bytes < self.cluster.device_memory_bytes else oom_penalty * total
        if self.cross_check:
            self._verify(value, plan, oom_penalty, context="cost")
        return value

    def cost_delta(
        self,
        plan: ExecutionPlan,
        call_name: str,
        new_alloc: Allocation,
        oom_penalty: float = DEFAULT_OOM_PENALTY,
    ) -> float:
        """Cost of ``plan`` with ``call_name`` moved to ``new_alloc``.

        The incremental path reuses the base plan's resolved components and
        recomputes only what a single-call move can affect before re-running
        the scheduling simulation.  Falls back to an exact full recompute when
        caching is disabled or the call is unknown; either way the returned
        value equals ``cost(plan.with_assignment(call_name, new_alloc))``.
        """
        if not self.use_cache or call_name not in self.graph:
            return self.cost(plan.with_assignment(call_name, new_alloc), oom_penalty)
        signature = self._plan_signature(plan)
        index = self._call_index[call_name]
        new_key = self._key_for(new_alloc)
        moved_signature = signature[:index] + (new_key,) + signature[index + 1 :]

        def build() -> _PlanState:
            base = self._state_for(plan)
            state = self._moved_state(
                base, plan, call_name, new_alloc, signature, new_key
            )
            self._remember_state(moved_signature, state)
            return state

        total, max_bytes = self._evaluate_signature(moved_signature, build)
        value = total if max_bytes < self.cluster.device_memory_bytes else oom_penalty * total
        if self.cross_check:
            self._verify(
                value,
                plan.with_assignment(call_name, new_alloc),
                oom_penalty,
                context=f"cost_delta({call_name})",
            )
        return value

    def _verify(
        self, fast: float, plan: ExecutionPlan, oom_penalty: float, context: str
    ) -> None:
        exact = self._exact_cost(plan, oom_penalty)
        if fast != exact:
            raise RuntimeError(
                f"estimator cross-check failed in {context}: "
                f"fast path {fast!r} != full recompute {exact!r}"
            )

    def is_feasible(self, plan: ExecutionPlan) -> bool:
        """Whether the plan fits in device memory."""
        return self.max_memory(plan).max_bytes < self.cluster.device_memory_bytes

    # ------------------------------------------------------------------ #
    # Batched evaluation (vectorized array-of-plans kernel)
    # ------------------------------------------------------------------ #
    @property
    def batch_supported(self) -> bool:
        """Whether this estimator can score plans through the batch kernel.

        Requires the memo caches (the tables are built from them) and the
        approximate reallocation model — the exact broadcast-schedule model
        keys on full layout pairs, which does not collapse into the batched
        (TP, PP, cross) value tables.
        """
        return self.use_cache and not self.realloc_model.exact

    def batch_state(self, options=None) -> BatchPlanState:
        """Memoised :class:`BatchPlanState` lookup tables.

        ``options`` (the searcher's per-call option table) primes the static
        region on first sight; later calls reuse the existing tables, which
        keep registering unseen allocations lazily.
        """
        state = self._batch
        if state is None or (options is not None and not state.primed):
            state = BatchPlanState(self, options)
            self._batch = state
        return state

    def adopt_batch_state(self, state: BatchPlanState) -> None:
        """Install externally built tables (shared-memory attach in workers)."""
        self._batch = state

    def _batch_base_indices(self, state: BatchPlanState, plan: ExecutionPlan):
        """Option-index row of the sweep's base plan, memoised by identity.

        The MCMC chain scores many sweeps against the same current-plan
        object, so this is the batch path's analogue of the scalar eval
        cache; hits/misses land in :attr:`batch_eval_stats` once per sweep.
        """
        stats = self.batch_eval_stats
        memo_plan, memo_row = self._batch_base_memo
        if plan is memo_plan:
            stats.hits += 1
            return memo_row
        stats.misses += 1
        row = state.encode_plan(plan)
        self._batch_base_memo = (plan, row)
        return row

    def batch_cost(
        self,
        plans=None,
        *,
        base_plan: Optional[ExecutionPlan] = None,
        moves=None,
        oom_penalty: float = DEFAULT_OOM_PENALTY,
    ):
        """Scores of a batch of plans in one vectorized kernel sweep.

        Two call shapes (exactly one of them):

        * ``batch_cost(plans)`` — a sequence of full plans;
        * ``batch_cost(base_plan=p, moves=[(call, alloc), ...])`` — the MCMC
          shape: every row is ``p`` with one call moved.

        Returns a float64 array, each entry bit-identical to the scalar
        ``cost()`` / ``cost_delta()`` of the corresponding plan; with
        ``cross_check`` enabled every row is verified against the scalar
        path (which itself verifies against the from-scratch recompute).
        """
        import numpy as np

        if not self.batch_supported:
            raise RuntimeError(
                "batch_cost requires use_cache and the approximate realloc model"
            )
        if (plans is None) == (moves is None):
            raise ValueError("pass exactly one of `plans` or `moves`")
        state = self.batch_state()
        n = len(self._call_names)
        if plans is not None:
            batch = list(plans)
            if n == 0 or not batch:
                return np.zeros(len(batch))
            idx = np.empty((len(batch), n), dtype=np.int64)
            for b, plan in enumerate(batch):
                idx[b] = state.encode_plan(plan)
        else:
            if base_plan is None:
                raise ValueError("`moves` requires `base_plan`")
            batch = list(moves)
            if n == 0 or not batch:
                return np.zeros(len(batch))
            base_row = self._batch_base_indices(state, base_plan)
            idx = np.tile(base_row, (len(batch), 1))
            call_index = self._call_index
            idx_memo = state._idx_memo  # inlined index_of fast path
            for b, (call_name, alloc) in enumerate(batch):
                call_id = call_index[call_name]
                gid = idx_memo[call_id].get(id(alloc))
                if gid is None:
                    gid = state.index_of(call_id, alloc)
                idx[b, call_id] = gid
        costs = state.evaluate(idx, oom_penalty)
        if self.cross_check:
            for b in range(len(batch)):
                if plans is not None:
                    scalar = self.cost(batch[b], oom_penalty)
                    context = f"batch_cost[{b}]"
                else:
                    call_name, alloc = batch[b]
                    scalar = self.cost_delta(base_plan, call_name, alloc, oom_penalty)
                    context = f"batch_cost[{b}]({call_name})"
                if float(costs[b]) != scalar:
                    raise RuntimeError(
                        f"estimator cross-check failed in {context}: "
                        f"batch kernel {float(costs[b])!r} != scalar {scalar!r}"
                    )
        return costs
