"""The lightweight runtime estimator: TimeCost(Gp), MaxMem(Gp) and cost(Gp).

Given a dataflow graph, a workload and an execution plan, the estimator
predicts the plan's iteration time with the priority-queue simulation of
Algorithm 1 (Appendix C of the paper), its peak per-device memory, and the
search cost that penalises out-of-memory plans:

.. math::

   cost(G_p) = \\mathbb{1}[MaxMem < mem_d] \\cdot TimeCost
             + (1 - \\mathbb{1}[MaxMem < mem_d]) \\cdot \\alpha \\cdot TimeCost

Evaluating one plan takes a fraction of a millisecond, which is what makes
the MCMC search over :math:`10^{16}`-sized spaces feasible.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from ..cluster.comm import CommModel
from ..cluster.hardware import ClusterSpec
from ..model.memory import PARAM_BYTES
from ..realloc.cost import ReallocCostModel
from .call_cost import CallCostModel, CostBreakdown
from .dataflow import DataflowGraph, FunctionCallType, ModelFunctionCall
from .plan import ExecutionPlan, reallocation_edges
from .profiler import AnalyticalProvider, LayerTimeProvider, ProfileStats, ProfiledProvider
from .workload import RLHFWorkload

__all__ = ["TimeCostResult", "MemoryEstimate", "RuntimeEstimator", "DEFAULT_OOM_PENALTY"]

DEFAULT_OOM_PENALTY = 100.0
"""The large integer alpha multiplying the time cost of OOM-ing plans."""


@dataclass
class TimeCostResult:
    """Result of the Algorithm-1 simulation of one RLHF iteration."""

    total_seconds: float
    spans: Dict[str, Tuple[float, float]] = field(default_factory=dict)
    call_seconds: Dict[str, float] = field(default_factory=dict)
    realloc_seconds: float = 0.0
    data_transfer_seconds: float = 0.0
    breakdowns: Dict[str, CostBreakdown] = field(default_factory=dict)

    @property
    def compute_seconds(self) -> float:
        """Total compute time across calls (not wall time)."""
        return sum(b.compute for b in self.breakdowns.values())


@dataclass
class MemoryEstimate:
    """Peak memory usage per GPU and in aggregate."""

    per_gpu: Dict[int, float]
    static_per_gpu: Dict[int, float]

    @property
    def max_bytes(self) -> float:
        """Peak bytes on the most loaded GPU."""
        return max(self.per_gpu.values(), default=0.0)

    @property
    def max_static_bytes(self) -> float:
        """Peak static (gradient + optimizer) bytes on the most loaded GPU."""
        return max(self.static_per_gpu.values(), default=0.0)


class RuntimeEstimator:
    """Profiling-assisted analytical estimator for execution plans.

    Parameters
    ----------
    graph, workload, cluster:
        The experiment being planned.
    profiles:
        Optional per-model :class:`ProfileStats`.  When given, layer times are
        interpolated from the profiled power-of-two samples (the paper's
        estimator); otherwise the exact analytical model is used.
    use_cuda_graph:
        Whether generation decoding benefits from CUDA-graph capture.
    """

    def __init__(
        self,
        graph: DataflowGraph,
        workload: RLHFWorkload,
        cluster: ClusterSpec,
        profiles: Optional[Mapping[str, ProfileStats]] = None,
        use_cuda_graph: bool = True,
    ) -> None:
        self.graph = graph
        self.workload = workload
        self.cluster = cluster
        self.use_cuda_graph = use_cuda_graph
        self.comm = CommModel(cluster)
        self.realloc_model = ReallocCostModel(cluster)
        self._cost_models: Dict[str, CallCostModel] = {}
        for model_name in graph.model_names():
            config = workload.model_config(model_name)
            provider: LayerTimeProvider
            if profiles is not None and model_name in profiles:
                provider = ProfiledProvider(config, cluster, profiles[model_name])
            else:
                provider = AnalyticalProvider(config, cluster)
            self._cost_models[model_name] = CallCostModel(
                config, cluster, provider, use_cuda_graph=use_cuda_graph
            )
        self._call_time_cache: Dict[Tuple, float] = {}

    # ------------------------------------------------------------------ #
    # Per-call costs
    # ------------------------------------------------------------------ #
    def cost_model(self, model_name: str) -> CallCostModel:
        """The per-call cost model of one LLM."""
        return self._cost_models[model_name]

    def call_breakdown(self, call_name: str, alloc) -> CostBreakdown:
        """Cost breakdown of one call under an allocation."""
        call = self.graph.get(call_name)
        wl = self.workload.call_workload(call)
        return self._cost_models[call.model_name].breakdown(call, wl, alloc)

    def call_time(self, call_name: str, alloc) -> float:
        """Wall time of one call under an allocation (memoised)."""
        key = (call_name, alloc.mesh.node_start, alloc.mesh.n_nodes, alloc.mesh.gpu_start,
               alloc.mesh.gpus_per_node, alloc.parallel, alloc.n_microbatches, alloc.zero3)
        cached = self._call_time_cache.get(key)
        if cached is not None:
            return cached
        value = self.call_breakdown(call_name, alloc).total
        self._call_time_cache[key] = value
        return value

    # ------------------------------------------------------------------ #
    # Data transfer cost along graph edges
    # ------------------------------------------------------------------ #
    def _edge_transfer_time(self, src_name: str, dst_name: str, plan: ExecutionPlan) -> float:
        """Time to move the producer's output to the consumer's layout.

        Data is partitioned along DP and replicated along TP; moving it to a
        different mesh/strategy is a broadcast-style redistribution whose
        volume is the per-token hidden states and scalar outputs of the batch.
        """
        src_alloc, dst_alloc = plan[src_name], plan[dst_name]
        if (
            src_alloc.mesh == dst_alloc.mesh
            and src_alloc.parallel.dp == dst_alloc.parallel.dp
            and src_alloc.parallel.tp == dst_alloc.parallel.tp
        ):
            return 0.0
        dst_call = self.graph.get(dst_name)
        wl = self.workload.call_workload(dst_call)
        # Transferred payload: token ids, log-probs, rewards and values are a
        # few scalars per token; we charge 16 bytes per token of the batch.
        nbytes = wl.batch_size * wl.seqlen * 16.0
        cross = src_alloc.mesh.node_ids != dst_alloc.mesh.node_ids
        return self.comm.p2p_time_cross(nbytes, cross)

    # ------------------------------------------------------------------ #
    # TimeCost(Gp): Algorithm 1
    # ------------------------------------------------------------------ #
    def time_cost(self, plan: ExecutionPlan) -> TimeCostResult:
        """Simulate one iteration of the plan and return its wall time.

        Nodes become ready when all their parents completed (plus data
        transfer time); a ready node starts as soon as every GPU of its device
        mesh is free.  Parameter reallocations are charged to the destination
        call and additionally occupy the source mesh.
        """
        graph, workload = self.graph, self.workload
        parents = graph.parents_map()
        children = graph.children_map()

        # Pre-compute per-call durations, reallocation and transfer costs.
        durations: Dict[str, float] = {}
        breakdowns: Dict[str, CostBreakdown] = {}
        for name in graph.call_names:
            bd = self.call_breakdown(name, plan[name])
            breakdowns[name] = bd
            durations[name] = bd.total

        realloc_in: Dict[str, float] = {name: 0.0 for name in graph.call_names}
        realloc_total = 0.0
        for edge in reallocation_edges(graph, plan):
            config = workload.model_config(edge.model_name)
            cost = self.realloc_model.cost(config, edge.src, edge.dst)
            realloc_in[edge.dst_call] += cost.seconds
            realloc_total += cost.seconds

        transfer_total = 0.0
        edge_transfer: Dict[Tuple[str, str], float] = {}
        for src_name, dst_name in graph.edges:
            t = self._edge_transfer_time(src_name, dst_name, plan)
            edge_transfer[(src_name, dst_name)] = t
            transfer_total += t

        # Priority-queue simulation (Algorithm 1).
        ready_time: Dict[str, float] = {name: 0.0 for name in graph.call_names}
        remaining_parents: Dict[str, int] = {name: len(parents[name]) for name in graph.call_names}
        gpu_free: Dict[int, float] = {g: 0.0 for g in range(self.cluster.n_gpus)}
        spans: Dict[str, Tuple[float, float]] = {}
        completed: set[str] = set()

        heap: list[Tuple[float, str]] = []
        for name in graph.call_names:
            if remaining_parents[name] == 0:
                heapq.heappush(heap, (0.0, name))

        while heap:
            rt, name = heapq.heappop(heap)
            if name in completed:
                continue
            alloc = plan[name]
            mesh_gpus = alloc.mesh.device_ids
            mesh_free = max(gpu_free[g] for g in mesh_gpus)
            start = max(rt, mesh_free)
            duration = durations[name] + realloc_in[name] + self.cluster.rpc_overhead_s
            end = start + duration
            spans[name] = (start, end)
            completed.add(name)
            for g in mesh_gpus:
                gpu_free[g] = end
            for child in children[name]:
                transfer = edge_transfer.get((name, child), 0.0)
                ready_time[child] = max(ready_time[child], end + transfer)
                remaining_parents[child] -= 1
                if remaining_parents[child] == 0:
                    heapq.heappush(heap, (ready_time[child], child))

        if len(completed) != len(graph.call_names):
            raise RuntimeError("scheduling simulation did not complete all calls")

        total = max(end for _, end in spans.values())
        return TimeCostResult(
            total_seconds=total,
            spans=spans,
            call_seconds=durations,
            realloc_seconds=realloc_total,
            data_transfer_seconds=transfer_total,
            breakdowns=breakdowns,
        )

    # ------------------------------------------------------------------ #
    # MaxMem(Gp)
    # ------------------------------------------------------------------ #
    def max_memory(self, plan: ExecutionPlan) -> MemoryEstimate:
        """Estimate the peak memory per GPU under the plan.

        Static memory (gradients + optimizer states of trainable models) is
        pinned to the GPUs of the training allocation for the whole
        experiment.  Parameters are reallocatable but must reside wherever a
        call of the model executes; we conservatively keep, per GPU, the
        largest parameter shard any call places there.  Active memory is the
        largest activation/KV footprint among the calls running on the GPU.
        """
        workload = self.workload
        static: Dict[int, float] = {g: 0.0 for g in range(self.cluster.n_gpus)}
        # (gpu, model) -> largest parameter shard any call of the model keeps there.
        params: Dict[Tuple[int, str], float] = {}
        active: Dict[int, float] = {g: 0.0 for g in range(self.cluster.n_gpus)}

        for name in self.graph.call_names:
            call = self.graph.get(name)
            alloc = plan[name]
            cm = self._cost_models[call.model_name]
            wl = workload.call_workload(call)
            gpus = alloc.mesh.device_ids

            shard_params = workload.model_config(call.model_name).param_count() / (
                alloc.parallel.tp * alloc.parallel.pp
            )
            if alloc.zero3:
                shard_params /= alloc.parallel.dp
            param_bytes = shard_params * PARAM_BYTES

            call_static = cm.static_memory(call, alloc)
            call_active = max(cm.active_memory(call, wl, alloc) - param_bytes, 0.0)
            for g in gpus:
                static[g] += call_static
                key = (g, call.model_name)
                params[key] = max(params.get(key, 0.0), param_bytes)
                active[g] = max(active[g], call_active)

        params_per_gpu: Dict[int, float] = {g: 0.0 for g in static}
        for (g, _model), nbytes in params.items():
            params_per_gpu[g] += nbytes
        per_gpu = {g: static[g] + params_per_gpu[g] + active[g] for g in static}
        return MemoryEstimate(per_gpu=per_gpu, static_per_gpu=static)

    # ------------------------------------------------------------------ #
    # cost(Gp)
    # ------------------------------------------------------------------ #
    def cost(self, plan: ExecutionPlan, oom_penalty: float = DEFAULT_OOM_PENALTY) -> float:
        """Search cost: time cost with a multiplicative OOM penalty."""
        time_cost = self.time_cost(plan).total_seconds
        mem = self.max_memory(plan)
        if mem.max_bytes < self.cluster.device_memory_bytes:
            return time_cost
        return oom_penalty * time_cost

    def is_feasible(self, plan: ExecutionPlan) -> bool:
        """Whether the plan fits in device memory."""
        return self.max_memory(plan).max_bytes < self.cluster.device_memory_bytes
