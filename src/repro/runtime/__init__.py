"""Runtime engine: master/worker discrete-event execution of execution plans."""

from .data_transfer import (
    DataTransferPlan,
    DataTransferStep,
    data_transfer_time,
    plan_data_transfer,
)
from .engine import IterationTrace, RuntimeEngine, ThroughputResult
from .master import MasterWorker
from .request import DataLocation, Reply, Request
from .worker import BusySpan, ModelWorker, WorkerPool

__all__ = [
    "RuntimeEngine",
    "IterationTrace",
    "ThroughputResult",
    "MasterWorker",
    "ModelWorker",
    "WorkerPool",
    "BusySpan",
    "Request",
    "Reply",
    "DataLocation",
    "DataTransferPlan",
    "DataTransferStep",
    "plan_data_transfer",
    "data_transfer_time",
]
