"""Model workers: per-GPU servers executing function calls from a FIFO queue.

Each model worker owns one GPU, holds the parameter shards of the LLM handles
placed on that GPU, and processes requests strictly in arrival order (the
paper's workers poll their sockets round-robin and enqueue requests into a
FIFO queue).  In the simulation a worker is a timeline: it records when it is
busy, with what, and in which cost category, which is what the GPU-time
breakdown of Figure 11 aggregates.

The timeline mechanics live in the shared simulation kernel
(:mod:`repro.sim.resources`); this module only adds what is specific to
model workers — the GPU id vocabulary and parameter-shard residency
tracking.  ``BusySpan`` is the historical name of the unified
:class:`~repro.sim.trace.TraceSpan` record.
"""

from __future__ import annotations

from typing import Dict

from ..sim.resources import ResourceTimeline, TimelinePool
from ..sim.trace import TraceSpan

__all__ = ["BusySpan", "ModelWorker", "WorkerPool"]

BusySpan = TraceSpan
"""One interval during which a worker's GPU was occupied.

Categories used by the engine: ``compute``, ``pp_comm``, ``coll_comm``,
``bubble``, ``launch``, ``realloc``, ``data_transfer`` and ``other``.
"""


class ModelWorker(ResourceTimeline):
    """Simulated per-GPU worker with a FIFO execution queue."""

    __slots__ = ("resident_models",)

    def __init__(self, gpu_id: int) -> None:
        super().__init__(resource_id=gpu_id)
        self.resident_models: Dict[str, float] = {}
        """Model name -> parameter bytes currently resident on this GPU."""

    @property
    def gpu_id(self) -> int:
        return self.resource_id

    def load_model(self, model_name: str, nbytes: float) -> None:
        """Record that a parameter shard of ``model_name`` now lives here."""
        self.resident_models[model_name] = nbytes

    def evict_model(self, model_name: str) -> None:
        """Drop a model's parameter shard from this GPU (offload/reallocation)."""
        self.resident_models.pop(model_name, None)


class WorkerPool(TimelinePool):
    """All model workers of the cluster, indexed by global GPU id."""

    def __init__(self, n_gpus: int) -> None:
        super().__init__(0)  # empty; filled with ModelWorkers below
        self.timelines = {g: ModelWorker(gpu_id=g) for g in range(n_gpus)}

    @property
    def workers(self) -> Dict[int, ModelWorker]:
        """Alias kept from the pre-kernel API."""
        return self.timelines
