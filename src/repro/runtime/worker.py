"""Model workers: per-GPU servers executing function calls from a FIFO queue.

Each model worker owns one GPU, holds the parameter shards of the LLM handles
placed on that GPU, and processes requests strictly in arrival order (the
paper's workers poll their sockets round-robin and enqueue requests into a
FIFO queue).  In the simulation a worker is a timeline: it records when it is
busy, with what, and in which cost category, which is what the GPU-time
breakdown of Figure 11 aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["BusySpan", "ModelWorker", "WorkerPool"]


@dataclass(frozen=True)
class BusySpan:
    """One interval during which a worker's GPU was occupied."""

    start: float
    end: float
    call_name: str
    category: str
    """One of ``compute``, ``pp_comm``, ``coll_comm``, ``bubble``, ``launch``,
    ``realloc``, ``data_transfer`` or ``other``."""

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class ModelWorker:
    """Simulated per-GPU worker with a FIFO execution queue."""

    gpu_id: int
    free_at: float = 0.0
    spans: List[BusySpan] = field(default_factory=list)
    resident_models: Dict[str, float] = field(default_factory=dict)
    """Model name -> parameter bytes currently resident on this GPU."""

    def occupy(self, start: float, durations: Dict[str, float], call_name: str) -> float:
        """Occupy the GPU from ``start`` for the given per-category durations.

        Returns the completion time.  ``start`` must not precede the worker's
        current availability (FIFO order is enforced by the engine).
        """
        if start < self.free_at - 1e-9:
            raise ValueError(
                f"GPU {self.gpu_id} asked to start at {start:.3f} "
                f"but is busy until {self.free_at:.3f}"
            )
        clock = start
        for category, duration in durations.items():
            if duration <= 0:
                continue
            self.spans.append(
                BusySpan(start=clock, end=clock + duration, call_name=call_name, category=category)
            )
            clock += duration
        self.free_at = max(self.free_at, clock)
        return clock

    def load_model(self, model_name: str, nbytes: float) -> None:
        """Record that a parameter shard of ``model_name`` now lives here."""
        self.resident_models[model_name] = nbytes

    def evict_model(self, model_name: str) -> None:
        """Drop a model's parameter shard from this GPU (offload/reallocation)."""
        self.resident_models.pop(model_name, None)

    def busy_seconds(self, category: Optional[str] = None) -> float:
        """Total busy time, optionally restricted to one cost category."""
        return sum(s.duration for s in self.spans if category is None or s.category == category)

    def categories(self) -> Dict[str, float]:
        """Busy seconds per cost category."""
        out: Dict[str, float] = {}
        for span in self.spans:
            out[span.category] = out.get(span.category, 0.0) + span.duration
        return out


class WorkerPool:
    """All model workers of the cluster, indexed by global GPU id."""

    def __init__(self, n_gpus: int) -> None:
        self.workers: Dict[int, ModelWorker] = {g: ModelWorker(gpu_id=g) for g in range(n_gpus)}

    def __getitem__(self, gpu_id: int) -> ModelWorker:
        return self.workers[gpu_id]

    def __len__(self) -> int:
        return len(self.workers)

    def free_at(self, gpu_ids: Tuple[int, ...]) -> float:
        """Earliest time at which every GPU in ``gpu_ids`` is free."""
        return max(self.workers[g].free_at for g in gpu_ids)

    def total_busy(self, category: Optional[str] = None) -> float:
        """Aggregate busy seconds across all workers."""
        return sum(w.busy_seconds(category) for w in self.workers.values())

    def category_totals(self) -> Dict[str, float]:
        """Aggregate busy seconds per category across all workers."""
        out: Dict[str, float] = {}
        for worker in self.workers.values():
            for category, seconds in worker.categories().items():
                out[category] = out.get(category, 0.0) + seconds
        return out
