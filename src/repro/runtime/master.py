"""The master worker: dependency resolution and request dispatch.

The master worker (Section 6) runs on a CPU, keeps one coroutine per model
function call, waits until all parent calls have completed, and then sends an
execution request to the model workers of the call's device mesh.  In the
simulation the master is the bookkeeping half of the engine's workload
executor over the shared :class:`~repro.sim.kernel.SimKernel`: it decides
*which* call may be dispatched *when* (the engine's DISPATCH events consult
it and its COMPLETE events feed readiness back), while the engine charges
the time on the workers' shared resource timelines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.dataflow import DataflowGraph
from ..core.plan import ExecutionPlan
from .request import Request

__all__ = ["MasterWorker"]


@dataclass
class _CallState:
    """Dependency-tracking state of one function call."""

    remaining_parents: int
    ready_time: float = 0.0
    dispatched: bool = False
    completed: bool = False


class MasterWorker:
    """Tracks dependencies and issues requests in dependency order."""

    def __init__(self, graph: DataflowGraph, plan: ExecutionPlan, rpc_overhead_s: float = 0.0) -> None:
        self.graph = graph
        self.plan = plan
        self.rpc_overhead_s = rpc_overhead_s
        parents = graph.parents_map()
        self._children = graph.children_map()
        self._states: Dict[str, _CallState] = {
            name: _CallState(remaining_parents=len(parents[name])) for name in graph.call_names
        }
        self._next_request_id = 0
        self.issued_requests: List[Request] = []

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def ready_calls(self) -> List[Tuple[str, float]]:
        """Calls whose dependencies are satisfied but are not yet dispatched.

        Returns ``(call_name, ready_time)`` pairs sorted by readiness.
        """
        ready = [
            (name, state.ready_time)
            for name, state in self._states.items()
            if not state.dispatched and state.remaining_parents == 0
        ]
        return sorted(ready, key=lambda item: (item[1], item[0]))

    def all_completed(self) -> bool:
        """Whether every call of the graph has completed."""
        return all(state.completed for state in self._states.values())

    def n_completed(self) -> int:
        """Number of completed calls."""
        return sum(1 for state in self._states.values() if state.completed)

    # ------------------------------------------------------------------ #
    # State transitions
    # ------------------------------------------------------------------ #
    def dispatch(self, call_name: str, now: float) -> Request:
        """Issue the request for a ready call (marks it dispatched)."""
        state = self._states[call_name]
        if state.dispatched:
            raise RuntimeError(f"call {call_name!r} was already dispatched")
        if state.remaining_parents > 0:
            raise RuntimeError(f"call {call_name!r} is not ready yet")
        state.dispatched = True
        call = self.graph.get(call_name)
        request = Request(
            request_id=self._next_request_id,
            call_name=call_name,
            model_name=call.model_name,
            allocation=self.plan[call_name],
            issued_at=now + self.rpc_overhead_s,
        )
        self._next_request_id += 1
        self.issued_requests.append(request)
        return request

    def complete(self, call_name: str, finish_time: float, data_ready_time: Optional[Dict[str, float]] = None) -> List[str]:
        """Mark a call completed and propagate readiness to its children.

        ``data_ready_time`` optionally overrides, per child, when the child's
        input data actually becomes available (finish time plus data transfer
        time).  Returns the children that became ready as a result.
        """
        state = self._states[call_name]
        if state.completed:
            raise RuntimeError(f"call {call_name!r} already completed")
        state.completed = True
        newly_ready: List[str] = []
        for child in self._children[call_name]:
            child_state = self._states[child]
            available = finish_time
            if data_ready_time and child in data_ready_time:
                available = data_ready_time[child]
            child_state.ready_time = max(child_state.ready_time, available)
            child_state.remaining_parents -= 1
            if child_state.remaining_parents == 0:
                newly_ready.append(child)
        return newly_ready
