"""The runtime engine: discrete-event execution of an execution plan.

This is the reproduction's stand-in for ReaL's worker-based runtime.  The
master worker resolves dependencies and dispatches requests; model workers
execute them FIFO on their GPUs; parameter reallocations and data transfers
are charged on the participating GPUs between calls.  Per-GPU busy time is
recorded per cost category, which yields the GPU-time breakdown of Figure 11,
the wall-time breakdown of Table 6 and the "real" times that Figure 12
compares the estimator against.

The engine evaluates per-layer costs with the exact analytical kernel model
(not the interpolated profiles the estimator uses) and accounts for request
dispatch overhead, reallocation broadcasts and inter-call data movement, so
its results deliberately differ from the estimator's by a few percent.

Since the :mod:`repro.sim` refactor the engine is a *workload executor* over
the shared simulation kernel: the dispatch/complete chain runs as
:class:`~repro.sim.kernel.SimKernel` events, GPU busy time is tracked by the
shared resource timelines, and the resulting spans export as a Chrome trace
(:meth:`IterationTrace.export_chrome_trace`).  The executor is a greedy list
scheduler — each dispatch picks the ready call that can start earliest and
its completion event immediately re-arms the dispatcher — which reproduces
the paper's master/worker FIFO behaviour exactly (and bit-identically to the
pre-kernel implementation, see ``tests/test_golden_traces.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..cluster.hardware import ClusterSpec
from ..core.call_cost import CallCostModel, CostBreakdown
from ..core.dataflow import DataflowGraph
from ..core.estimator import MemoryEstimate, RuntimeEstimator
from ..core.plan import ExecutionPlan, reallocation_edges
from ..core.profiler import AnalyticalProvider
from ..core.workload import RLHFWorkload
from ..realloc.cost import ReallocCostModel
from ..sim.kernel import Event, SimKernel
from ..sim.trace import TraceRecorder, TraceSpan
from .data_transfer import data_transfer_time, plan_data_transfer
from .master import MasterWorker
from .worker import WorkerPool

__all__ = ["IterationTrace", "ThroughputResult", "RuntimeEngine"]

# Kernel event kinds of the engine's executor.
_DISPATCH = "dispatch"
_COMPLETE = "complete"


@dataclass
class IterationTrace:
    """Complete record of one simulated RLHF training iteration."""

    total_seconds: float
    call_spans: Dict[str, Tuple[float, float]]
    call_breakdowns: Dict[str, CostBreakdown]
    gpu_category_seconds: Dict[int, Dict[str, float]]
    realloc_seconds: float
    data_transfer_seconds: float
    memory: MemoryEstimate
    gpu_spans: Dict[int, Tuple[TraceSpan, ...]] = field(default_factory=dict)
    """Per-GPU busy spans in unified :class:`~repro.sim.trace.TraceSpan` form."""

    # ------------------------------------------------------------------ #
    # Aggregations used by the benchmark harness
    # ------------------------------------------------------------------ #
    def call_seconds(self) -> Dict[str, float]:
        """Wall time of each call (excluding wait time)."""
        return {name: end - start for name, (start, end) in self.call_spans.items()}

    def category_totals(self) -> Dict[str, float]:
        """GPU-seconds per cost category, aggregated over all GPUs."""
        totals: Dict[str, float] = {}
        for per_gpu in self.gpu_category_seconds.values():
            for category, seconds in per_gpu.items():
                totals[category] = totals.get(category, 0.0) + seconds
        return totals

    def gpu_time_fractions(self) -> Dict[str, float]:
        """Figure-11 style fractions: compute / P2P / collective / idle.

        Idle time includes pipeline bubbles and waiting for dependencies.
        The fractions sum to 1 over ``n_gpus * total_seconds`` GPU-seconds.
        """
        n_gpus = len(self.gpu_category_seconds)
        total_gpu_seconds = n_gpus * self.total_seconds
        totals = self.category_totals()
        compute = totals.get("compute", 0.0) + totals.get("launch", 0.0)
        p2p = totals.get("pp_comm", 0.0) + totals.get("data_transfer", 0.0)
        coll = totals.get("coll_comm", 0.0) + totals.get("realloc", 0.0)
        bubble = totals.get("bubble", 0.0)
        busy = compute + p2p + coll
        idle = max(total_gpu_seconds - busy, 0.0)
        if total_gpu_seconds <= 0:
            return {"compute": 0.0, "p2p": 0.0, "collective": 0.0, "idle": 1.0}
        return {
            "compute": compute / total_gpu_seconds,
            "p2p": p2p / total_gpu_seconds,
            "collective": coll / total_gpu_seconds,
            "idle": idle / total_gpu_seconds,
        }

    # ------------------------------------------------------------------ #
    # Unified trace export
    # ------------------------------------------------------------------ #
    def record_chrome(
        self,
        recorder: TraceRecorder,
        process: str = "runtime engine",
        offset_s: float = 0.0,
    ) -> None:
        """Emit this iteration's spans into a shared :class:`TraceRecorder`.

        Per-GPU busy spans land on one thread row per GPU and call-level
        spans on a ``calls`` overview row; ``offset_s`` shifts the whole
        iteration (used when embedding iterations into a cluster schedule).
        """
        for name, (start, end) in sorted(self.call_spans.items()):
            recorder.add_span(process, "calls", name, start + offset_s, end + offset_s,
                              category="call")
        for gpu_id in sorted(self.gpu_spans):
            thread = f"gpu {gpu_id}"
            for span in self.gpu_spans[gpu_id]:
                recorder.add_trace_span(process, thread, span, offset_s=offset_s)

    def export_chrome_trace(self, path: str, process: str = "runtime engine") -> str:
        """Write this iteration as a Chrome-trace JSON file; returns the path."""
        recorder = TraceRecorder()
        self.record_chrome(recorder, process=process)
        return str(recorder.save(path))


@dataclass
class ThroughputResult:
    """Throughput of a plan measured over several simulated iterations."""

    seconds_per_iteration: float
    total_flops_per_iteration: float
    n_iterations: int

    @property
    def flops_per_second(self) -> float:
        return self.total_flops_per_iteration / self.seconds_per_iteration

    @property
    def petaflops_per_second(self) -> float:
        """The PFLOP/s metric used in Figures 7, 8, 16 and 17."""
        return self.flops_per_second / 1e15


class RuntimeEngine:
    """Deploys an execution plan on the simulated cluster."""

    def __init__(
        self,
        cluster: ClusterSpec,
        workload: RLHFWorkload,
        use_cuda_graph: bool = True,
    ) -> None:
        self.cluster = cluster
        self.workload = workload
        self.use_cuda_graph = use_cuda_graph
        # The engine plays the exact broadcast schedule of Figure 6, unlike
        # the estimator's bandwidth approximation.
        self.realloc_model = ReallocCostModel(cluster, exact=True)
        self._cost_models: Dict[str, CallCostModel] = {}

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _cost_model(self, model_name: str) -> CallCostModel:
        if model_name not in self._cost_models:
            config = self.workload.model_config(model_name)
            provider = AnalyticalProvider(config, self.cluster)
            self._cost_models[model_name] = CallCostModel(
                config, self.cluster, provider, use_cuda_graph=self.use_cuda_graph
            )
        return self._cost_models[model_name]

    def _call_breakdown(self, graph: DataflowGraph, name: str, plan: ExecutionPlan) -> CostBreakdown:
        call = graph.get(name)
        wl = self.workload.call_workload(call)
        return self._cost_model(call.model_name).breakdown(call, wl, plan[name])

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run_iteration(self, graph: DataflowGraph, plan: ExecutionPlan) -> IterationTrace:
        """Simulate one RLHF iteration of ``plan`` and return its trace."""
        plan.validate(graph, self.cluster)
        master = MasterWorker(graph, plan, rpc_overhead_s=self.cluster.rpc_overhead_s)
        pool = WorkerPool(self.cluster.n_gpus)

        breakdowns = {name: self._call_breakdown(graph, name, plan) for name in graph.call_names}

        # Parameter reallocation incoming to each call.
        realloc_in: Dict[str, List[Tuple[str, float, Tuple[int, ...]]]] = {
            name: [] for name in graph.call_names
        }
        realloc_total = 0.0
        for edge in reallocation_edges(graph, plan):
            config = self.workload.model_config(edge.model_name)
            cost = self.realloc_model.cost(config, edge.src, edge.dst)
            gpus = tuple(sorted(set(edge.src.mesh.device_ids) | set(edge.dst.mesh.device_ids)))
            realloc_in[edge.dst_call].append((edge.model_name, cost.seconds, gpus))
            realloc_total += cost.seconds

        # Data transfer incoming to each call, keyed by (parent, child).
        transfer_time: Dict[Tuple[str, str], float] = {}
        transfer_total = 0.0
        for src_name, dst_name in graph.edges:
            dst_call = graph.get(dst_name)
            wl = self.workload.call_workload(dst_call)
            xfer_plan = plan_data_transfer(plan[src_name], plan[dst_name], wl)
            seconds = data_transfer_time(xfer_plan, self.cluster)
            transfer_time[(src_name, dst_name)] = seconds
            transfer_total += seconds

        parents = graph.parents_map()
        call_spans: Dict[str, Tuple[float, float]] = {}

        # Workload executor over the shared kernel.  A DISPATCH event runs
        # one greedy list-scheduling step: pick the dispatchable call that
        # can start the earliest given both its readiness and its device
        # mesh availability, charge its phases on the worker timelines and
        # schedule its COMPLETE event.  The COMPLETE event propagates
        # readiness to children and re-arms the dispatcher, so calls are
        # processed one at a time in greedy order — the FIFO discipline of
        # the paper's model workers.
        kernel = SimKernel()

        def _dispatch(event: Event) -> None:
            ready = master.ready_calls()
            if not ready:
                raise RuntimeError("deadlock: no ready calls but the graph is incomplete")
            candidates = []
            for name, ready_time in ready:
                mesh_gpus = plan[name].mesh.device_ids
                start = max(ready_time, pool.free_at(mesh_gpus))
                candidates.append((start, name, ready_time))
            candidates.sort()
            start, name, ready_time = candidates[0]
            request = master.dispatch(name, now=ready_time)
            start = max(start, request.issued_at)

            alloc = plan[name]
            mesh_gpus = alloc.mesh.device_ids
            clock = start

            # 1. Parameter reallocation occupies the union of source and
            #    destination meshes.
            for _model_name, seconds, gpus in realloc_in[name]:
                if seconds <= 0:
                    continue
                realloc_start = max(clock, pool.free_at(tuple(gpus)))
                for g in gpus:
                    pool[g].occupy(max(realloc_start, pool[g].free_at), {"realloc": seconds}, name)
                clock = realloc_start + seconds

            # 2. Incoming data transfers occupy the destination mesh.
            incoming_xfer = sum(transfer_time.get((p, name), 0.0) for p in parents[name])
            if incoming_xfer > 0:
                for g in mesh_gpus:
                    pool[g].occupy(max(clock, pool[g].free_at), {"data_transfer": incoming_xfer}, name)
                clock += incoming_xfer

            # 3. The function call itself.
            bd = breakdowns[name]
            durations = {
                "compute": bd.compute,
                "coll_comm": bd.coll_comm,
                "pp_comm": bd.pp_comm,
                "launch": bd.launch,
                "bubble": bd.bubble,
                "other": bd.other,
            }
            call_start = max(clock, pool.free_at(mesh_gpus))
            end = call_start
            for g in mesh_gpus:
                end = max(end, pool[g].occupy(max(call_start, pool[g].free_at), durations, name))
            call_spans[name] = (start, end)
            kernel.schedule(end, _COMPLETE, payload=(name, end))

        def _complete(event: Event) -> None:
            name, end = event.payload
            master.complete(name, end)
            if not master.all_completed():
                kernel.schedule(event.time, _DISPATCH)

        handlers = {_DISPATCH: _dispatch, _COMPLETE: _complete}
        kernel.schedule(0.0, _DISPATCH)
        kernel.run(lambda event: handlers[event.kind](event))

        total = max(end for _, end in call_spans.values())
        memory = RuntimeEstimator(graph, self.workload, self.cluster,
                                  use_cuda_graph=self.use_cuda_graph).max_memory(plan)
        gpu_categories = {g: pool[g].categories() for g in range(self.cluster.n_gpus)}
        gpu_spans = {g: tuple(pool[g].spans) for g in range(self.cluster.n_gpus)}
        return IterationTrace(
            total_seconds=total,
            call_spans=call_spans,
            call_breakdowns=breakdowns,
            gpu_category_seconds=gpu_categories,
            realloc_seconds=realloc_total,
            data_transfer_seconds=transfer_total,
            memory=memory,
            gpu_spans=gpu_spans,
        )

    # ------------------------------------------------------------------ #
    # Throughput measurement
    # ------------------------------------------------------------------ #
    def measure_throughput(
        self, graph: DataflowGraph, plan: ExecutionPlan, n_iterations: int = 3
    ) -> ThroughputResult:
        """Run several iterations and report the PFLOP/s throughput.

        The simulation is deterministic, so iterations after the first have
        identical duration; running a few mirrors the paper's measurement
        protocol (20 iterations after warm-up) without wasting time.
        """
        if n_iterations < 1:
            raise ValueError("n_iterations must be >= 1")
        seconds = [self.run_iteration(graph, plan).total_seconds for _ in range(n_iterations)]
        flops = self.workload.iteration_flops(graph.calls)
        return ThroughputResult(
            seconds_per_iteration=sum(seconds) / len(seconds),
            total_flops_per_iteration=flops,
            n_iterations=n_iterations,
        )
