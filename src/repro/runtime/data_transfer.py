"""Data transfer between function calls with different layouts.

Model function calls produce data partitioned along the data-parallel
dimension and replicated along the tensor-parallel dimension (Section 6).
Moving that data to the next call's mesh and DP/TP layout mirrors the
broadcast-based parameter-reallocation algorithm with the TP and DP roles
swapped, which is exactly how we model it: the producer's DP shards are
broadcast to the consumer ranks that need them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..cluster.comm import CommModel
from ..cluster.hardware import ClusterSpec
from ..core.plan import Allocation
from ..core.workload import CallWorkload

__all__ = ["DataTransferStep", "DataTransferPlan", "plan_data_transfer", "data_transfer_time"]

BYTES_PER_TOKEN = 16.0
"""Payload per sequence token: token id, log-prob, reward/value scalars."""


@dataclass(frozen=True)
class DataTransferStep:
    """One broadcast of a DP shard of the batch to consumer GPUs."""

    dp_rank: int
    src_gpu: int
    dst_gpus: Tuple[int, ...]
    nbytes: float


@dataclass
class DataTransferPlan:
    """All broadcasts needed to move one call's output to the next call."""

    steps: List[DataTransferStep]

    @property
    def total_bytes(self) -> float:
        return sum(step.nbytes for step in self.steps)

    def is_empty(self) -> bool:
        return not self.steps


def _dp_shard_owners(alloc: Allocation) -> List[Tuple[int, List[int]]]:
    """For each DP rank of an allocation, the GPUs holding that data shard.

    Data is replicated across TP (and across pipeline stages only the last
    stage holds outputs, but we conservatively use the first TP group of each
    DP rank as the owner set).
    """
    dp, tp = alloc.parallel.dp, alloc.parallel.tp
    devices = alloc.mesh.device_ids
    owners: List[Tuple[int, List[int]]] = []
    for dp_rank in range(dp):
        base = dp_rank * tp
        owners.append((dp_rank, list(devices[base : base + tp])))
    return owners


def plan_data_transfer(
    src: Allocation, dst: Allocation, workload: CallWorkload
) -> DataTransferPlan:
    """Plan the broadcasts moving a batch from ``src``'s layout to ``dst``'s.

    Each source DP shard is broadcast from one of its owners to the
    destination GPUs that consume it; destinations already holding the shard
    (same GPU) receive nothing.
    """
    if (
        src.mesh == dst.mesh
        and src.parallel.dp == dst.parallel.dp
        and src.parallel.tp == dst.parallel.tp
    ):
        return DataTransferPlan(steps=[])
    total_bytes = workload.batch_size * workload.seqlen * BYTES_PER_TOKEN
    src_owners = _dp_shard_owners(src)
    dst_owners = _dp_shard_owners(dst)
    shard_bytes = total_bytes / max(1, len(src_owners))

    steps: List[DataTransferStep] = []
    for dp_rank, holders in src_owners:
        # Destination DP ranks whose data range overlaps this source shard.
        src_lo = dp_rank / len(src_owners)
        src_hi = (dp_rank + 1) / len(src_owners)
        receivers: List[int] = []
        for dst_rank, dst_gpus in dst_owners:
            dst_lo = dst_rank / len(dst_owners)
            dst_hi = (dst_rank + 1) / len(dst_owners)
            if min(src_hi, dst_hi) - max(src_lo, dst_lo) > 1e-12:
                receivers.extend(dst_gpus)
        src_gpu = holders[0]
        dst_gpus = tuple(sorted(set(g for g in receivers if g != src_gpu)))
        if not dst_gpus:
            continue
        steps.append(
            DataTransferStep(dp_rank=dp_rank, src_gpu=src_gpu, dst_gpus=dst_gpus, nbytes=shard_bytes)
        )
    return DataTransferPlan(steps=steps)


def data_transfer_time(plan: DataTransferPlan, cluster: ClusterSpec) -> float:
    """Wall time of a data-transfer plan (parallel broadcasts per source)."""
    if plan.is_empty():
        return 0.0
    comm = CommModel(cluster)
    per_source: dict[int, float] = {}
    for step in plan.steps:
        t = comm.broadcast_group_time(step.nbytes, step.src_gpu, step.dst_gpus)
        per_source[step.src_gpu] = per_source.get(step.src_gpu, 0.0) + t
    return max(per_source.values(), default=0.0)
