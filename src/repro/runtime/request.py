"""Request/reply messages exchanged between the master and model workers.

The runtime engine of the paper (Section 6) is built around a centralized
master worker that resolves dependencies and dispatches requests to model
workers over sockets; the payload data itself stays on the GPUs and only its
location metadata travels with the request.  These dataclasses model those
messages in the discrete-event simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..core.call_cost import CostBreakdown
from ..core.plan import Allocation

__all__ = ["DataLocation", "Request", "Reply"]


@dataclass(frozen=True)
class DataLocation:
    """Where a named piece of data lives after a call produced it."""

    key: str
    producer_call: str
    mesh_gpus: Tuple[int, ...]
    dp_degree: int
    nbytes: float


@dataclass(frozen=True)
class Request:
    """A model-function-call execution request issued by the master worker."""

    request_id: int
    call_name: str
    model_name: str
    allocation: Allocation
    issued_at: float
    data_locations: Tuple[DataLocation, ...] = ()


@dataclass(frozen=True)
class Reply:
    """A model worker group's response to a completed request."""

    request_id: int
    call_name: str
    started_at: float
    finished_at: float
    breakdown: CostBreakdown
    outputs: Tuple[DataLocation, ...] = ()

    @property
    def duration(self) -> float:
        """Wall time the call occupied its device mesh."""
        return self.finished_at - self.started_at
