"""Analytical FLOP counts for the three RLHF function-call types.

Each RLHF iteration issues three kinds of computation (Section 2.1 of the
paper): *generation* (a prefill forward pass plus many single-token decoding
steps), *inference* (one forward pass over prompt + response) and *training*
(forward, backward and optimizer update).  These functions compute the dense
FLOPs of each, per layer and per whole model, which the profiler, estimator
and the throughput metric (PFLOP/s, Figures 7, 8, 16, 17) all share.

Counting convention: a matrix multiplication of an ``(m, k)`` by ``(k, n)``
matrix costs ``2*m*k*n`` FLOPs; the backward pass of a linear layer costs
twice its forward pass.
"""

from __future__ import annotations

from .config import ModelConfig

__all__ = [
    "attention_forward_flops",
    "mlp_forward_flops",
    "layer_forward_flops",
    "layer_decode_flops",
    "model_forward_flops",
    "model_backward_flops",
    "training_step_flops",
    "prefill_flops",
    "decode_step_flops",
    "generation_flops",
    "inference_flops",
    "output_head_flops",
]


def attention_forward_flops(config: ModelConfig, n_tokens: int, kv_len: float) -> float:
    """Forward FLOPs of one attention block processing ``n_tokens`` tokens.

    ``kv_len`` is the *average* key/value length attended over (for a causal
    full forward pass over a sequence of length ``s`` this is ``s / 2``).
    """
    h = config.hidden_size
    kv = config.kv_dim
    proj = 2.0 * n_tokens * (h * h + 2 * h * kv + h * h)
    # Scores (q @ k^T) and weighted values (attn @ v); queries use all heads.
    scores = 2.0 * n_tokens * kv_len * config.n_heads * config.head_dim * 2
    return proj + scores


def mlp_forward_flops(config: ModelConfig, n_tokens: int) -> float:
    """Forward FLOPs of one SwiGLU MLP block processing ``n_tokens`` tokens."""
    return 2.0 * n_tokens * 3 * config.hidden_size * config.intermediate_size


def layer_forward_flops(config: ModelConfig, n_tokens: int, kv_len: float) -> float:
    """Forward FLOPs of one full transformer layer."""
    return attention_forward_flops(config, n_tokens, kv_len) + mlp_forward_flops(config, n_tokens)


def layer_decode_flops(config: ModelConfig, batch: int, kv_len: float) -> float:
    """FLOPs of one decoding step (one new token per sequence) in one layer."""
    return layer_forward_flops(config, batch, kv_len)


def output_head_flops(config: ModelConfig, n_tokens: int) -> float:
    """Forward FLOPs of the output head (LM head logits or scalar value)."""
    out_dim = 1 if config.is_critic else config.vocab_size
    return 2.0 * n_tokens * config.hidden_size * out_dim


def model_forward_flops(config: ModelConfig, batch: int, seqlen: int) -> float:
    """Forward FLOPs of the whole model over ``batch`` sequences of ``seqlen``."""
    n_tokens = batch * seqlen
    per_layer = layer_forward_flops(config, n_tokens, kv_len=seqlen / 2.0)
    return config.n_layers * per_layer + output_head_flops(config, n_tokens)


def model_backward_flops(config: ModelConfig, batch: int, seqlen: int) -> float:
    """Backward-pass FLOPs (approximately twice the forward pass)."""
    return 2.0 * model_forward_flops(config, batch, seqlen)


def training_step_flops(config: ModelConfig, batch: int, seqlen: int) -> float:
    """FLOPs of one training step: forward + backward over the minibatch."""
    return model_forward_flops(config, batch, seqlen) + model_backward_flops(config, batch, seqlen)


def prefill_flops(config: ModelConfig, batch: int, prompt_len: int) -> float:
    """FLOPs of the generation prefill phase (forward over the prompts)."""
    return model_forward_flops(config, batch, prompt_len)


def decode_step_flops(config: ModelConfig, batch: int, kv_len: float) -> float:
    """FLOPs of one decoding step across the whole model.

    ``kv_len`` is the current key/value cache length attended over.
    """
    per_layer = layer_decode_flops(config, batch, kv_len)
    return config.n_layers * per_layer + output_head_flops(config, batch)


def generation_flops(
    config: ModelConfig, batch: int, prompt_len: int, gen_len: int
) -> float:
    """Total FLOPs of a generation call: prefill plus ``gen_len`` decode steps.

    The decode steps attend over a cache that grows from ``prompt_len`` to
    ``prompt_len + gen_len``; we charge the average length.
    """
    if gen_len <= 0:
        return prefill_flops(config, batch, prompt_len)
    avg_kv = prompt_len + gen_len / 2.0
    decode = gen_len * decode_step_flops(config, batch, avg_kv)
    return prefill_flops(config, batch, prompt_len) + decode


def inference_flops(config: ModelConfig, batch: int, seqlen: int) -> float:
    """FLOPs of an inference call: one forward pass over prompt + response."""
    return model_forward_flops(config, batch, seqlen)
