"""Model substrate: LLaMA-3 configs, FLOP/memory models and the layer kernel model."""

from .config import (
    LLAMA3_CONFIGS,
    MODEL_SIZES,
    ModelConfig,
    critic_variant,
    get_model_config,
)
from .flops import (
    generation_flops,
    inference_flops,
    model_forward_flops,
    training_step_flops,
)
from .layers import LayerCostModel, LayerOp, LayerTiming
from .memory import (
    GRAD_BYTES,
    OPTIMIZER_BYTES_PER_PARAM,
    PARAM_BYTES,
    MemoryBreakdown,
    MemoryModel,
)

__all__ = [
    "ModelConfig",
    "LLAMA3_CONFIGS",
    "MODEL_SIZES",
    "get_model_config",
    "critic_variant",
    "model_forward_flops",
    "training_step_flops",
    "generation_flops",
    "inference_flops",
    "LayerCostModel",
    "LayerOp",
    "LayerTiming",
    "MemoryModel",
    "MemoryBreakdown",
    "PARAM_BYTES",
    "GRAD_BYTES",
    "OPTIMIZER_BYTES_PER_PARAM",
]
