"""LLaMA-3 model configurations used throughout the paper (Table 1).

The reproduction never instantiates these models' weights; the configurations
drive analytical parameter counts, FLOP counts and memory footprints.  The
parameter-count formulas below reproduce Table 1 of the paper exactly
(``TotalParamCount`` and ``ParamCount w./o. Output Embedding``), which is
verified by unit tests.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict

__all__ = [
    "ModelConfig",
    "LLAMA3_CONFIGS",
    "MODEL_SIZES",
    "get_model_config",
    "critic_variant",
]


@dataclass(frozen=True)
class ModelConfig:
    """Architecture of a GPT-like (LLaMA-3 style) transformer.

    Attributes
    ----------
    name:
        Identifier such as ``"llama3-7b"`` or ``"llama3-7b-critic"``.
    hidden_size:
        Transformer hidden dimension.
    intermediate_size:
        MLP intermediate dimension (SwiGLU: gate, up and down projections).
    n_layers:
        Number of transformer layers.
    n_heads:
        Number of attention (query) heads.
    n_kv_heads:
        Number of key/value heads (grouped-query attention).
    vocab_size:
        Vocabulary size (128k for LLaMA-3).
    max_position_embeddings:
        Maximum supported context length.
    is_critic:
        Whether the output head produces a scalar value instead of logits.
        Critic and reward models in RLHF use a 1-dimensional head, which is
        why the paper identifies model sizes by the embedding-less count.
    """

    name: str
    hidden_size: int
    intermediate_size: int
    n_layers: int
    n_heads: int
    n_kv_heads: int
    vocab_size: int = 128256
    max_position_embeddings: int = 8192
    is_critic: bool = False

    def __post_init__(self) -> None:
        if self.hidden_size % self.n_heads != 0:
            raise ValueError("hidden_size must be divisible by n_heads")
        if self.n_heads % self.n_kv_heads != 0:
            raise ValueError("n_heads must be divisible by n_kv_heads")
        if self.n_layers < 1:
            raise ValueError("n_layers must be >= 1")

    # ------------------------------------------------------------------ #
    # Derived dimensions
    # ------------------------------------------------------------------ #
    @property
    def head_dim(self) -> int:
        """Per-head dimension."""
        return self.hidden_size // self.n_heads

    @property
    def kv_dim(self) -> int:
        """Total key/value projection dimension (grouped-query attention)."""
        return self.n_kv_heads * self.head_dim

    # ------------------------------------------------------------------ #
    # Parameter counts (reproduce Table 1 exactly)
    # ------------------------------------------------------------------ #
    def attention_params(self) -> int:
        """Parameters of one attention block (Q, K, V, O projections)."""
        h = self.hidden_size
        return h * h + 2 * h * self.kv_dim + h * h

    def mlp_params(self) -> int:
        """Parameters of one SwiGLU MLP block (gate, up, down projections)."""
        return 3 * self.hidden_size * self.intermediate_size

    def layer_params(self) -> int:
        """Parameters of one transformer layer including the two RMSNorms."""
        return self.attention_params() + self.mlp_params() + 2 * self.hidden_size

    def embedding_params(self) -> int:
        """Parameters of the input token embedding."""
        return self.vocab_size * self.hidden_size

    def output_head_params(self) -> int:
        """Parameters of the output head (LM head or scalar critic head)."""
        if self.is_critic:
            return self.hidden_size
        return self.vocab_size * self.hidden_size

    def param_count(self) -> int:
        """Total parameter count (``TotalParamCount`` in Table 1 for actors)."""
        return (
            self.embedding_params()
            + self.n_layers * self.layer_params()
            + self.hidden_size  # final RMSNorm
            + self.output_head_params()
        )

    def param_count_no_output_embedding(self) -> int:
        """Parameter count excluding the output embedding (Table 1 identifier)."""
        return self.param_count() - (self.vocab_size * self.hidden_size if not self.is_critic else 0)

    def param_bytes(self, dtype_bytes: int = 2) -> int:
        """Bytes occupied by the parameters at ``dtype_bytes`` per element."""
        return self.param_count() * dtype_bytes

    # ------------------------------------------------------------------ #
    # Variants
    # ------------------------------------------------------------------ #
    def as_critic(self) -> "ModelConfig":
        """Return the critic/reward-model variant (scalar output head)."""
        if self.is_critic:
            return self
        return dataclasses.replace(self, name=f"{self.name}-critic", is_critic=True)


def _llama3(name: str, hidden: int, inter: int, layers: int, heads: int, kv: int) -> ModelConfig:
    return ModelConfig(
        name=name,
        hidden_size=hidden,
        intermediate_size=inter,
        n_layers=layers,
        n_heads=heads,
        n_kv_heads=kv,
    )


LLAMA3_CONFIGS: Dict[str, ModelConfig] = {
    "7b": _llama3("llama3-7b", 4096, 14336, 32, 32, 8),
    "13b": _llama3("llama3-13b", 5120, 13824, 40, 40, 40),
    "34b": _llama3("llama3-34b", 8192, 22016, 48, 64, 8),
    "70b": _llama3("llama3-70b", 8192, 28672, 80, 64, 8),
}
"""The four LLaMA-3 configurations of Table 1, keyed by their size identifier."""

MODEL_SIZES = tuple(LLAMA3_CONFIGS)
"""Size identifiers in increasing order: ``("7b", "13b", "34b", "70b")``."""


def get_model_config(size: str, critic: bool = False) -> ModelConfig:
    """Look up a LLaMA-3 configuration by size identifier.

    Parameters
    ----------
    size:
        One of ``"7b"``, ``"13b"``, ``"34b"``, ``"70b"`` (case-insensitive,
        a ``"llama"``/``"llama3-"`` prefix is tolerated).
    critic:
        If True, return the critic/reward variant with a scalar output head.
    """
    key = size.lower().replace("llama3-", "").replace("llama", "").strip("-")
    if key not in LLAMA3_CONFIGS:
        raise KeyError(f"unknown model size {size!r}; expected one of {MODEL_SIZES}")
    config = LLAMA3_CONFIGS[key]
    return config.as_critic() if critic else config


def critic_variant(size: str) -> ModelConfig:
    """Shorthand for :func:`get_model_config` with ``critic=True``."""
    return get_model_config(size, critic=True)
