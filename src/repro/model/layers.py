"""Per-layer analytical kernel model.

The profiler in :mod:`repro.core.profiler` "measures" the cost of individual
transformer-layer operations (forward, backward, decoding step) exactly as
the paper's profiler measures CUDA kernels on real hardware.  In this
reproduction the measurement source is this analytical model, which captures
the three effects the paper's kernel-level breakdown (Figure 10) relies on:

* compute-bound phases are limited by achievable FLOP/s and shrink with the
  tensor-parallel degree;
* the auto-regressive decoding phase is memory-I/O bound: it is limited by
  how fast the layer's weights and KV cache can be streamed from HBM, plus a
  fixed per-kernel launch overhead (reduced by CUDA-graph capture);
* every tensor-parallel layer performs collective communication whose size
  does not shrink with ``tp``, so excessive TP wastes time.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..cluster.hardware import ClusterSpec
from ..cluster.comm import CommModel
from .config import ModelConfig
from . import flops as F
from .memory import PARAM_BYTES

__all__ = ["LayerOp", "LayerTiming", "LayerCostModel"]


class LayerOp(str, Enum):
    """Operation types profiled per layer."""

    FORWARD = "forward"
    BACKWARD = "backward"
    DECODE = "decode"
    OPTIMIZER_STEP = "optimizer_step"


# Number of kernels launched per transformer layer per decoding step.  The
# exact value only matters relative to the kernel-launch overhead; it covers
# the QKV/O projections, attention, the three MLP matmuls and the norms.
KERNELS_PER_LAYER_DECODE = 12
KERNELS_PER_LAYER_FORWARD = 14


@dataclass(frozen=True)
class LayerTiming:
    """Cost of one layer-level operation on one GPU.

    Attributes
    ----------
    compute_s:
        Time spent in compute (or memory-I/O bound) kernels.
    tp_comm_s:
        Time spent in tensor-parallel collective communication.
    launch_s:
        Host-side kernel launch overhead.
    """

    compute_s: float
    tp_comm_s: float
    launch_s: float

    @property
    def total_s(self) -> float:
        """Total wall time of the operation."""
        return self.compute_s + self.tp_comm_s + self.launch_s


class LayerCostModel:
    """Analytical cost of transformer-layer operations under tensor parallelism."""

    def __init__(self, config: ModelConfig, cluster: ClusterSpec) -> None:
        self.config = config
        self.cluster = cluster
        self.comm = CommModel(cluster)

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _layer_weight_bytes(self) -> float:
        """Bytes of one layer's weights (streamed from HBM during decode)."""
        return self.config.layer_params() * PARAM_BYTES

    def _tp_allreduce_bytes(self, n_tokens: float) -> float:
        """Bytes all-reduced per layer per direction under tensor parallelism.

        Megatron-style TP performs two all-reduces per layer (attention output
        and MLP output) over activation tensors of size ``tokens x hidden``.
        """
        return 2.0 * n_tokens * self.config.hidden_size * PARAM_BYTES

    def _tp_cross_node(self, tp: int) -> bool:
        return tp > self.cluster.gpus_per_node

    # ------------------------------------------------------------------ #
    # Per-operation costs
    # ------------------------------------------------------------------ #
    def forward_time(self, n_tokens: int, seqlen: int, tp: int) -> LayerTiming:
        """One layer's forward pass over ``n_tokens`` tokens (full sequences)."""
        flops = F.layer_forward_flops(self.config, n_tokens, kv_len=seqlen / 2.0)
        compute = flops / tp / self.cluster.gpu.achievable_flops
        comm = 0.0
        if tp > 1:
            comm = self.comm.allreduce_time(
                self._tp_allreduce_bytes(n_tokens), tp, self._tp_cross_node(tp)
            )
        launch = KERNELS_PER_LAYER_FORWARD * self.cluster.gpu.kernel_launch_overhead_s
        return LayerTiming(compute, comm, launch)

    def backward_time(self, n_tokens: int, seqlen: int, tp: int) -> LayerTiming:
        """One layer's backward pass (roughly twice the forward cost)."""
        fwd = self.forward_time(n_tokens, seqlen, tp)
        return LayerTiming(2.0 * fwd.compute_s, 2.0 * fwd.tp_comm_s, fwd.launch_s)

    def decode_time(
        self, batch: int, kv_len: float, tp: int, use_cuda_graph: bool = True
    ) -> LayerTiming:
        """One layer's decoding step for ``batch`` sequences.

        Decoding is bounded by the maximum of the (tiny) compute time and the
        HBM time to stream the layer's weight shard plus the KV cache.
        """
        gpu = self.cluster.gpu
        flops = F.layer_decode_flops(self.config, batch, kv_len)
        compute = flops / tp / gpu.achievable_flops
        kv_bytes = batch * kv_len * 2 * self.config.kv_dim * PARAM_BYTES
        io_bytes = self._layer_weight_bytes() / tp + kv_bytes / tp
        io_time = io_bytes / gpu.achievable_hbm_bandwidth
        launch = KERNELS_PER_LAYER_DECODE * gpu.kernel_launch_overhead_s
        if use_cuda_graph:
            launch /= gpu.cuda_graph_speedup
        comm = 0.0
        if tp > 1:
            comm = self.comm.allreduce_time(
                self._tp_allreduce_bytes(batch), tp, self._tp_cross_node(tp)
            )
        return LayerTiming(max(compute, io_time), comm, launch)

    def optimizer_step_time(self, tp: int, pp: int) -> LayerTiming:
        """Adam update over one layer's parameter shard (memory bound)."""
        # Read params + grads + two moments, write params + moments: ~7 passes
        # of 4-byte state per parameter.
        shard_params = self.config.layer_params() / tp
        byte_traffic = shard_params * 7 * 4
        compute = byte_traffic / self.cluster.gpu.achievable_hbm_bandwidth
        return LayerTiming(compute, 0.0, 2 * self.cluster.gpu.kernel_launch_overhead_s)

    # ------------------------------------------------------------------ #
    # Output head (logits / value head)
    # ------------------------------------------------------------------ #
    def head_forward_time(self, n_tokens: int, tp: int) -> LayerTiming:
        """Output head forward pass (LM logits or critic value)."""
        flops = F.output_head_flops(self.config, n_tokens)
        compute = flops / tp / self.cluster.gpu.achievable_flops
        comm = 0.0
        if tp > 1 and not self.config.is_critic:
            # Vocab-parallel logits require an all-reduce/all-gather of the
            # per-token loss or logits statistics.
            nbytes = n_tokens * 4.0 * 2
            comm = self.comm.allreduce_time(nbytes, tp, self._tp_cross_node(tp))
        return LayerTiming(compute, comm, 2 * self.cluster.gpu.kernel_launch_overhead_s)

    def head_backward_time(self, n_tokens: int, tp: int) -> LayerTiming:
        fwd = self.head_forward_time(n_tokens, tp)
        return LayerTiming(2.0 * fwd.compute_s, 2.0 * fwd.tp_comm_s, fwd.launch_s)
