"""GPU memory footprint models for RLHF function calls.

Section 5.1 of the paper splits runtime memory into *static* memory
(gradients and optimizer states that persist for the whole experiment) and
*active* memory (reallocatable parameters, KV cache and activations that only
live while a function call runs).  This module computes both for a model
sharded by a 3D parallelization strategy, which the estimator uses for
``MaxMem(Gp)`` and the OOM penalty of the search cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import ModelConfig

__all__ = [
    "MemoryModel",
    "MemoryBreakdown",
    "PARAM_BYTES",
    "GRAD_BYTES",
    "OPTIMIZER_BYTES_PER_PARAM",
]

PARAM_BYTES = 2
"""Bytes per parameter in BF16."""

GRAD_BYTES = 2
"""Bytes per gradient element in BF16 (reduced in FP32 but stored in BF16)."""

OPTIMIZER_BYTES_PER_PARAM = 12
"""Adam optimizer state: FP32 master weights + two FP32 moments."""

ACTIVATION_BYTES_PER_TOKEN_FACTOR = 18
"""Approximate activation bytes per token per layer, divided by hidden size,
assuming selective activation recomputation (Megatron-LM style)."""


@dataclass(frozen=True)
class MemoryBreakdown:
    """Per-GPU memory footprint of one function call, in bytes."""

    parameters: float
    gradients: float
    optimizer: float
    kv_cache: float
    activations: float

    @property
    def static(self) -> float:
        """Memory that persists across the whole experiment."""
        return self.gradients + self.optimizer

    @property
    def active(self) -> float:
        """Memory only held while the call executes (reallocatable)."""
        return self.parameters + self.kv_cache + self.activations

    @property
    def total(self) -> float:
        """Total footprint of this call on one GPU."""
        return self.static + self.active


class MemoryModel:
    """Analytical per-GPU memory model of a sharded LLM.

    Parameters are sharded by tensor parallelism and pipeline parallelism and
    replicated across data parallelism; gradients and optimizer states exist
    only for trainable models (actor and critic).  ``zero3=True`` models the
    DeepSpeed ZeRO-3 style sharding of parameters, gradients and optimizer
    states across the data-parallel group, as used by the DeepSpeed-Chat and
    OpenRLHF baselines.
    """

    def __init__(self, config: ModelConfig) -> None:
        self.config = config

    # ------------------------------------------------------------------ #
    # Parameter-related footprints
    # ------------------------------------------------------------------ #
    def params_per_gpu(self, tp: int, pp: int, dp: int = 1, zero3: bool = False) -> float:
        """Parameter bytes held by each GPU under a ``(dp, tp, pp)`` strategy."""
        shard = self.config.param_count() / (tp * pp)
        if zero3:
            shard /= dp
        return shard * PARAM_BYTES

    def grads_per_gpu(self, tp: int, pp: int, dp: int = 1, zero3: bool = False) -> float:
        """Gradient bytes per GPU for a trainable model."""
        shard = self.config.param_count() / (tp * pp)
        if zero3:
            shard /= dp
        return shard * GRAD_BYTES

    def optimizer_per_gpu(self, tp: int, pp: int, dp: int = 1, zero3: bool = False) -> float:
        """Adam optimizer-state bytes per GPU for a trainable model.

        Optimizer states are sharded across the data-parallel group (Megatron
        distributed optimizer / ZeRO-1), which every system in the comparison
        supports; ``zero3`` additionally shards parameters and gradients.
        """
        shard = self.config.param_count() / (tp * pp * max(1, dp))
        return shard * OPTIMIZER_BYTES_PER_PARAM

    # ------------------------------------------------------------------ #
    # Call-dependent footprints
    # ------------------------------------------------------------------ #
    def kv_cache_bytes(self, batch: int, seqlen: int, tp: int = 1) -> float:
        """KV-cache bytes per GPU for ``batch`` sequences of length ``seqlen``."""
        c = self.config
        per_token = 2 * c.n_layers * c.kv_dim * PARAM_BYTES
        return batch * seqlen * per_token / tp

    def activation_bytes(self, n_tokens: int, tp: int, pp: int, n_microbatches: int = 1) -> float:
        """Peak activation bytes per GPU for a forward/backward pass.

        ``n_tokens`` is the total token count of the call's data on one
        data-parallel rank; micro-batching divides the live working set.
        """
        c = self.config
        layers_per_stage = max(1, c.n_layers // pp)
        tokens_live = n_tokens / max(1, n_microbatches)
        per_layer = ACTIVATION_BYTES_PER_TOKEN_FACTOR * c.hidden_size * tokens_live
        # With pipelining, up to ``pp`` micro-batches are in flight per stage.
        in_flight = min(n_microbatches, pp)
        return layers_per_stage * per_layer * in_flight / tp

    def logits_bytes(self, n_tokens: int, tp: int) -> float:
        """Bytes of the output logits buffer (the 250 GB softmax issue).

        The paper notes that LLaMA-3's 128k vocabulary makes the softmax
        logits buffer enormous; micro-batching is the main mitigation.
        """
        out_dim = 1 if self.config.is_critic else self.config.vocab_size
        return n_tokens * out_dim * PARAM_BYTES / tp

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #
    def training_breakdown(
        self,
        batch_per_dp: int,
        seqlen: int,
        dp: int,
        tp: int,
        pp: int,
        n_microbatches: int = 1,
        zero3: bool = False,
    ) -> MemoryBreakdown:
        """Memory footprint of a training call on one GPU."""
        n_tokens = batch_per_dp * seqlen
        tokens_per_microbatch = n_tokens / max(1, n_microbatches)
        return MemoryBreakdown(
            parameters=self.params_per_gpu(tp, pp, dp, zero3),
            gradients=self.grads_per_gpu(tp, pp, dp, zero3),
            optimizer=self.optimizer_per_gpu(tp, pp, dp, zero3),
            kv_cache=0.0,
            activations=self.activation_bytes(n_tokens, tp, pp, n_microbatches)
            + self.logits_bytes(tokens_per_microbatch, tp),
        )

    def inference_breakdown(
        self,
        batch_per_dp: int,
        seqlen: int,
        dp: int,
        tp: int,
        pp: int,
        n_microbatches: int = 1,
        zero3: bool = False,
    ) -> MemoryBreakdown:
        """Memory footprint of an inference call (no grads, no optimizer).

        A forward-only pass keeps no per-layer activations for a backward
        pass; only a small working set of the current layer's activations is
        live, so the footprint is dominated by parameters and logits.
        """
        n_tokens = batch_per_dp * seqlen
        tokens_per_microbatch = n_tokens / max(1, n_microbatches)
        working_set = 2 * ACTIVATION_BYTES_PER_TOKEN_FACTOR * self.config.hidden_size * tokens_per_microbatch / tp
        return MemoryBreakdown(
            parameters=self.params_per_gpu(tp, pp, dp, zero3),
            gradients=0.0,
            optimizer=0.0,
            kv_cache=0.0,
            activations=working_set + self.logits_bytes(tokens_per_microbatch, tp),
        )

    def generation_breakdown(
        self,
        batch_per_dp: int,
        prompt_len: int,
        gen_len: int,
        dp: int,
        tp: int,
        pp: int,
        n_microbatches: int = 1,
        zero3: bool = False,
    ) -> MemoryBreakdown:
        """Memory footprint of a generation call (KV cache dominates)."""
        total_len = prompt_len + gen_len
        batch_live = batch_per_dp / max(1, n_microbatches)
        return MemoryBreakdown(
            parameters=self.params_per_gpu(tp, pp, dp, zero3),
            gradients=0.0,
            optimizer=0.0,
            kv_cache=self.kv_cache_bytes(int(batch_live), total_len, tp) * min(n_microbatches, pp),
            activations=self.logits_bytes(batch_live, tp)
            + self.activation_bytes(batch_live * 1, tp, pp, 1),
        )

    def static_bytes_per_gpu(self, dp: int, tp: int, pp: int, zero3: bool = False) -> float:
        """Static (persistent) memory per GPU for a trainable model."""
        return self.grads_per_gpu(tp, pp, dp, zero3) + self.optimizer_per_gpu(tp, pp, dp, zero3)
