"""Shared discrete-event simulation kernel.

Both simulators of the reproduction — the iteration-level runtime engine
(:mod:`repro.runtime`) that produces the paper's Figure 11/12 and Table 6
numbers, and the cluster-level multi-job scheduler (:mod:`repro.sched`) —
are built on this package instead of hand-rolled event loops:

* :mod:`repro.sim.kernel` — the event queue and monotone virtual clock
  (:class:`SimKernel`).  Workload executors schedule
  :class:`Event` records and drain them through :meth:`SimKernel.run`.
* :mod:`repro.sim.resources` — per-resource occupancy bookkeeping
  (:class:`ResourceTimeline`, :class:`TimelinePool`): busy spans per cost
  category with FIFO enforcement, the substrate of per-GPU timelines.
* :mod:`repro.sim.trace` — the unified span record (:class:`TraceSpan`) and
  the Chrome-trace (``chrome://tracing`` / Perfetto JSON) exporter
  (:class:`TraceRecorder`), so a single run — one engine iteration or a
  whole multi-job schedule — exports one merged, loadable trace file.
"""

from .kernel import Event, SimKernel
from .resources import ResourceTimeline, TimelinePool
from .trace import (
    TraceRecorder,
    TraceSpan,
    load_chrome_trace,
    validate_chrome_events,
)

__all__ = [
    "Event",
    "SimKernel",
    "ResourceTimeline",
    "TimelinePool",
    "TraceSpan",
    "TraceRecorder",
    "validate_chrome_events",
    "load_chrome_trace",
]
