"""Resource occupancy bookkeeping shared by all simulators.

A :class:`ResourceTimeline` records when one resource (a GPU in both current
simulators) is busy, with what and in which cost category, as a sequence of
:class:`~repro.sim.trace.TraceSpan` records.  A :class:`TimelinePool` indexes
the timelines of a whole cluster and answers group-availability queries.

The runtime engine's per-GPU model workers (:mod:`repro.runtime.worker`) are
thin extensions of these classes (they add model-residency tracking); the
cluster scheduler uses the same span records when exporting job phases into
the merged Chrome trace.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from .trace import TraceSpan

__all__ = ["ResourceTimeline", "TimelinePool"]


class ResourceTimeline:
    """Busy-time ledger of one resource, FIFO-ordered.

    ``occupy`` charges a sequence of per-category durations starting at
    ``start`` and returns the completion time.  Starts may not precede the
    resource's current availability — the executor is responsible for
    querying :attr:`free_at` first, which is exactly the FIFO discipline the
    paper's model workers enforce on their request queues.
    """

    __slots__ = ("resource_id", "free_at", "spans")

    def __init__(self, resource_id: int) -> None:
        self.resource_id = resource_id
        self.free_at: float = 0.0
        self.spans: List[TraceSpan] = []

    def occupy(self, start: float, durations: Mapping[str, float], label: str) -> float:
        """Occupy the resource from ``start`` for the per-category durations.

        Zero and negative durations are skipped.  Returns the completion
        time; raises ``ValueError`` when ``start`` precedes availability.
        """
        if start < self.free_at - 1e-9:
            raise ValueError(
                f"resource {self.resource_id} asked to start at {start:.3f} "
                f"but is busy until {self.free_at:.3f}"
            )
        clock = start
        for category, duration in durations.items():
            if duration <= 0:
                continue
            self.spans.append(
                TraceSpan(name=label, category=category, start=clock, end=clock + duration)
            )
            clock += duration
        self.free_at = max(self.free_at, clock)
        return clock

    def busy_seconds(self, category: Optional[str] = None) -> float:
        """Total busy time, optionally restricted to one cost category."""
        return sum(s.duration for s in self.spans if category is None or s.category == category)

    def categories(self) -> Dict[str, float]:
        """Busy seconds per cost category."""
        out: Dict[str, float] = {}
        for span in self.spans:
            out[span.category] = out.get(span.category, 0.0) + span.duration
        return out


class TimelinePool:
    """The timelines of a whole cluster, indexed by resource id."""

    def __init__(self, resources: Union[int, Iterable[int]]) -> None:
        ids = range(resources) if isinstance(resources, int) else resources
        self.timelines: Dict[int, ResourceTimeline] = {
            rid: ResourceTimeline(resource_id=rid) for rid in ids
        }

    def __getitem__(self, resource_id: int) -> ResourceTimeline:
        return self.timelines[resource_id]

    def __len__(self) -> int:
        return len(self.timelines)

    def free_at(self, resource_ids: Tuple[int, ...]) -> float:
        """Earliest time at which every resource in the group is free."""
        return max(self.timelines[rid].free_at for rid in resource_ids)

    def total_busy(self, category: Optional[str] = None) -> float:
        """Aggregate busy seconds across all timelines."""
        return sum(t.busy_seconds(category) for t in self.timelines.values())

    def category_totals(self) -> Dict[str, float]:
        """Aggregate busy seconds per category across all timelines."""
        out: Dict[str, float] = {}
        for timeline in self.timelines.values():
            for category, seconds in timeline.categories().items():
                out[category] = out.get(category, 0.0) + seconds
        return out
