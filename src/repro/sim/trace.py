"""Unified span records and Chrome-trace (Trace Event Format) export.

Every simulator in the repository describes busy time the same way: a
:class:`TraceSpan` — who (``name``), what kind of work (``category``) and
when (``start``/``end`` in virtual seconds).  A :class:`TraceRecorder`
collects spans and instantaneous markers from any number of sources (one
engine iteration, a whole multi-job schedule, or both merged) and exports
them as Chrome-trace JSON, loadable in ``chrome://tracing`` or
https://ui.perfetto.dev.

The exporter emits the `Trace Event Format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_:
complete events (``ph: "X"``) for spans, instant events (``ph: "i"``) for
markers, counter events (``ph: "C"``) for live metric tracks (queue depth,
free GPUs, cache hit ratio — rendered as stacked area tracks by Perfetto),
async events (``ph: "b"``/``"e"``) for the causal span trees of
:mod:`repro.obs.tracing`, flow arrows (``ph: "s"``/``"f"``) linking causally
related events across tracks, and metadata events (``ph: "M"``) naming
processes and threads.  Timestamps are microseconds; process/thread labels
are interned to stable integer ids.  :func:`validate_chrome_events` checks
the required keys (``ph``, ``ts``, ``pid``, ``tid``, ``name``) plus the
per-phase extras (numeric ``dur`` on spans, numeric ``args`` on counters,
an ``id`` on async and flow events) so exports are guaranteed to load
cleanly.
"""

from __future__ import annotations

import json
import os
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Deque, Dict, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = ["TraceSpan", "TraceRecorder", "validate_chrome_events", "load_chrome_trace"]

_US_PER_S = 1e6


def _env_sample_rate() -> float:
    """``REPRO_TRACE_SAMPLE`` keep-rate in ``(0, 1]`` (default 1.0: keep all).

    Malformed or out-of-range values fail loudly — a typo silently dropping
    trace events would be much worse than a crash at recorder construction.
    """
    raw = os.environ.get("REPRO_TRACE_SAMPLE", "").strip()
    if not raw:
        return 1.0
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(f"REPRO_TRACE_SAMPLE must be a float in (0, 1], got {raw!r}")
    if not (0.0 < value <= 1.0):
        raise ValueError(f"REPRO_TRACE_SAMPLE must be in (0, 1], got {value}")
    return value


def _env_max_events() -> int:
    """``REPRO_TRACE_MAX_EVENTS`` hard cap (default 0: unbounded)."""
    raw = os.environ.get("REPRO_TRACE_MAX_EVENTS", "").strip()
    if not raw:
        return 0
    try:
        value = int(float(raw))
    except ValueError:
        raise ValueError(f"REPRO_TRACE_MAX_EVENTS must be an integer >= 0, got {raw!r}")
    if value < 0:
        raise ValueError(f"REPRO_TRACE_MAX_EVENTS must be >= 0, got {value}")
    return value


@dataclass(frozen=True)
class TraceSpan:
    """One interval of work on some resource, in virtual seconds."""

    name: str
    category: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def call_name(self) -> str:
        """Compatibility alias: the runtime engine labels spans by call name."""
        return self.name


@dataclass
class TraceRecorder:
    """Collects spans/markers from many sources into one Chrome trace.

    ``process`` and ``thread`` are human-readable labels (e.g. the job name
    and ``"gpu 3"``); the recorder interns them to the integer ``pid``/``tid``
    ids the Trace Event Format requires and emits the matching metadata
    events, so the labels show up in the Perfetto UI.

    Fleet-scale runs emit far more events than Perfetto can load, so the
    recorder supports **deterministic systematic sampling** (``sample_rate``,
    seeded by the ``REPRO_TRACE_SAMPLE`` knob: keep every ``1/rate``-th
    payload event) and a **hard event cap with head/tail retention**
    (``max_events`` / ``REPRO_TRACE_MAX_EVENTS``: once full, the oldest
    events past the protected head roll out of a bounded tail window, and
    the export carries a marker naming how many were dropped).  Both are
    applied at record time, so month-long traces never accumulate unbounded
    in-memory event lists.  Metadata (``ph: "M"``) naming events are exempt
    from both; async/flow event *pairs* share one sampling decision so no
    half of a pair is orphaned.  With the knobs at their defaults
    (``sample_rate=1.0``, ``max_events=0``) recording and export are
    byte-for-byte identical to an unsampled recorder.
    """

    _events: List[Dict[str, Any]] = field(default_factory=list)
    _pids: Dict[str, int] = field(default_factory=dict)
    _tids: Dict[Tuple[str, str], int] = field(default_factory=dict)
    sample_rate: float = field(default_factory=_env_sample_rate)
    max_events: int = field(default_factory=_env_max_events)
    n_sampled_out: int = 0
    """Payload events dropped by the sampling keep-rate."""
    n_capped_out: int = 0
    """Payload events rolled out of the bounded tail by the hard cap."""
    _seen: int = 0
    _n_head: int = 0
    _tail: Optional[Deque[Dict[str, Any]]] = None

    # ------------------------------------------------------------------ #
    # Label interning
    # ------------------------------------------------------------------ #
    def _pid(self, process: str) -> int:
        pid = self._pids.get(process)
        if pid is None:
            pid = len(self._pids) + 1
            self._pids[process] = pid
            self._events.append(
                {
                    "ph": "M",
                    "ts": 0,
                    "pid": pid,
                    "tid": 0,
                    "name": "process_name",
                    "args": {"name": process},
                }
            )
        return pid

    def _tid(self, process: str, thread: str) -> int:
        key = (process, thread)
        tid = self._tids.get(key)
        if tid is None:
            tid = sum(1 for (p, _t) in self._tids if p == process) + 1
            self._tids[key] = tid
            self._events.append(
                {
                    "ph": "M",
                    "ts": 0,
                    "pid": self._pid(process),
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": thread},
                }
            )
        return tid

    # ------------------------------------------------------------------ #
    # Sampling and bounded retention (record-time, deterministic)
    # ------------------------------------------------------------------ #
    def _keep(self) -> bool:
        """One systematic-sampling decision for the next payload event.

        Keeps event ``i`` (1-based) iff ``floor(i * rate)`` advances — i.e.
        exactly every ``1/rate``-th candidate, deterministically, with no RNG
        state to seed.  ``rate >= 1`` short-circuits without any counting so
        the default path stays byte-identical to an unsampled recorder.
        """
        rate = self.sample_rate
        if rate >= 1.0:
            return True
        seen = self._seen + 1
        self._seen = seen
        if int(seen * rate) > int((seen - 1) * rate):
            return True
        self.n_sampled_out += 1
        return False

    def _record(self, event: Dict[str, Any]) -> None:
        """Append one kept payload event, honouring the hard cap.

        The first ``max_events - tail`` events are retained verbatim (the
        head: run setup, early placements); later events roll through a
        bounded tail window (the most recent activity).  ``max_events <= 0``
        means unbounded — a plain list append, identical to the legacy path.
        """
        cap = self.max_events
        if cap <= 0:
            self._events.append(event)
            return
        tail_len = max(1, cap // 4)
        head_limit = max(0, cap - tail_len)
        if self._n_head < head_limit:
            self._n_head += 1
            self._events.append(event)
            return
        if self._tail is None:
            self._tail = deque(maxlen=tail_len)
        elif len(self._tail) == self._tail.maxlen:
            self.n_capped_out += 1
        self._tail.append(event)

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def add_span(
        self,
        process: str,
        thread: str,
        name: str,
        start_s: float,
        end_s: float,
        category: str = "",
        args: Optional[Mapping[str, Any]] = None,
    ) -> None:
        """Record one complete (``ph: "X"``) event from virtual seconds."""
        if not self._keep():
            return
        event: Dict[str, Any] = {
            "ph": "X",
            "ts": start_s * _US_PER_S,
            "dur": max(0.0, end_s - start_s) * _US_PER_S,
            "pid": self._pid(process),
            "tid": self._tid(process, thread),
            "name": name,
        }
        if category:
            event["cat"] = category
        if args:
            event["args"] = dict(args)
        self._record(event)

    def add_trace_span(
        self,
        process: str,
        thread: str,
        span: TraceSpan,
        offset_s: float = 0.0,
        args: Optional[Mapping[str, Any]] = None,
    ) -> None:
        """Record a :class:`TraceSpan`, optionally shifted by ``offset_s``.

        The offset is how per-iteration engine spans (whose clock starts at
        zero every iteration) are embedded at their true position inside a
        cluster-level schedule.
        """
        self.add_span(
            process,
            thread,
            span.name,
            span.start + offset_s,
            span.end + offset_s,
            category=span.category,
            args=args,
        )

    def add_instant(
        self,
        process: str,
        thread: str,
        name: str,
        time_s: float,
        category: str = "",
        args: Optional[Mapping[str, Any]] = None,
    ) -> None:
        """Record one instant (``ph: "i"``) marker event."""
        if not self._keep():
            return
        event: Dict[str, Any] = {
            "ph": "i",
            "ts": time_s * _US_PER_S,
            "pid": self._pid(process),
            "tid": self._tid(process, thread),
            "name": name,
            "s": "t",
        }
        if category:
            event["cat"] = category
        if args:
            event["args"] = dict(args)
        self._record(event)

    def add_counter(
        self,
        process: str,
        name: str,
        time_s: float,
        values: Mapping[str, float],
        category: str = "",
    ) -> None:
        """Record one counter (``ph: "C"``) sample at ``time_s``.

        Every distinct ``name`` (per process) renders as its own counter
        track; the ``values`` mapping's series stack within the track.
        Counter events live on ``tid`` 0 — tracks are named, not threaded.
        """
        if not self._keep():
            return
        event: Dict[str, Any] = {
            "ph": "C",
            "ts": time_s * _US_PER_S,
            "pid": self._pid(process),
            "tid": 0,
            "name": name,
            "args": {key: float(value) for key, value in values.items()},
        }
        if category:
            event["cat"] = category
        self._record(event)

    def add_async_span(
        self,
        process: str,
        thread: str,
        name: str,
        start_s: float,
        end_s: float,
        id: Union[str, int],
        category: str = "span",
        args: Optional[Mapping[str, Any]] = None,
    ) -> None:
        """Record one async span as a ``ph: "b"``/``"e"`` event pair.

        Async events nest by ``(cat, id)`` rather than by stack order, which
        is what lets the causal span trees of :mod:`repro.obs.tracing` —
        whose spans overlap freely across threads and processes — render as
        separate tracks in Perfetto.  ``args`` travel on the begin event —
        and the begin/end pair shares one sampling decision, so a sampled
        trace never contains an orphaned half.
        """
        if not self._keep():
            return
        pid = self._pid(process)
        tid = self._tid(process, thread)
        begin: Dict[str, Any] = {
            "ph": "b",
            "ts": start_s * _US_PER_S,
            "pid": pid,
            "tid": tid,
            "name": name,
            "cat": category or "span",
            "id": str(id),
        }
        if args:
            begin["args"] = dict(args)
        self._record(begin)
        self._record(
            {
                "ph": "e",
                "ts": max(start_s, end_s) * _US_PER_S,
                "pid": pid,
                "tid": tid,
                "name": name,
                "cat": category or "span",
                "id": str(id),
            }
        )

    def add_flow(
        self,
        from_process: str,
        from_thread: str,
        from_time_s: float,
        to_process: str,
        to_thread: str,
        to_time_s: float,
        id: Union[str, int],
        name: str = "causal",
        category: str = "flow",
    ) -> None:
        """Record one flow arrow (``ph: "s"`` → ``ph: "f"``) between tracks.

        Flow events bind to the events at their ``(pid, tid, ts)``; the
        finish step carries ``bp: "e"`` (bind to enclosing slice), the form
        both chrome://tracing and Perfetto accept.  ``name``/``cat``/``id``
        must match between the two steps — the recorder guarantees that.
        The start/finish pair shares one sampling decision.
        """
        if not self._keep():
            return
        common = {"name": name, "cat": category, "id": str(id)}
        self._record(
            {
                "ph": "s",
                "ts": from_time_s * _US_PER_S,
                "pid": self._pid(from_process),
                "tid": self._tid(from_process, from_thread),
                **common,
            }
        )
        self._record(
            {
                "ph": "f",
                "bp": "e",
                "ts": to_time_s * _US_PER_S,
                "pid": self._pid(to_process),
                "tid": self._tid(to_process, to_thread),
                **common,
            }
        )

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #
    @property
    def n_events(self) -> int:
        return len(self._events) + (len(self._tail) if self._tail else 0)

    def events(self) -> List[Dict[str, Any]]:
        """The recorded Trace Event Format events (validated).

        With the hard cap engaged the export is head events, then — when any
        events actually rolled out of the bounded tail — an instant marker
        naming the drop count, then the retained tail window.
        """
        out = list(self._events)
        if self._tail:
            if self.n_capped_out:
                out.append(
                    {
                        "ph": "i",
                        "ts": self._tail[0].get("ts", 0),
                        "pid": 0,
                        "tid": 0,
                        "name": f"[trace capped: {self.n_capped_out} events dropped]",
                        "s": "g",
                    }
                )
            out.extend(self._tail)
        validate_chrome_events(out)
        return out

    def to_json(self) -> Dict[str, Any]:
        """The full Chrome-trace JSON object."""
        return {"traceEvents": self.events(), "displayTimeUnit": "ms"}

    def save(self, path: Union[str, Path]) -> Path:
        """Write the trace to ``path`` and return it."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as handle:
            json.dump(self.to_json(), handle)
        return path


_REQUIRED_KEYS = ("ph", "ts", "pid", "tid", "name")

_ID_PHASES = ("b", "e", "n", "s", "t", "f")
"""Async (``b``/``e``/``n``) and flow (``s``/``t``/``f``) events match their
counterparts by ``id`` — a missing id silently orphans them in the UI."""


def validate_chrome_events(events: Sequence[Mapping[str, Any]]) -> None:
    """Check every event carries the Trace Event Format required keys.

    Raises ``ValueError`` on the first violation: a missing required key, a
    non-numeric timestamp, a complete event without a duration, a counter
    event without a mapping of numeric series values, or an async/flow event
    without the ``id`` its begin/end (or start/finish) matching needs.
    """
    for index, event in enumerate(events):
        for key in _REQUIRED_KEYS:
            if key not in event:
                raise ValueError(f"trace event {index} misses required key {key!r}: {event}")
        if not isinstance(event["ts"], (int, float)):
            raise ValueError(f"trace event {index} has non-numeric ts: {event['ts']!r}")
        if event["ph"] == "X" and not isinstance(event.get("dur"), (int, float)):
            raise ValueError(f"complete trace event {index} misses numeric 'dur': {event}")
        if event["ph"] in _ID_PHASES:
            identifier = event.get("id")
            if not isinstance(identifier, (str, int)) or identifier in ("", None):
                raise ValueError(
                    f"async/flow trace event {index} misses its 'id': {event}"
                )
        if event["ph"] == "C":
            args = event.get("args")
            if not isinstance(args, Mapping) or not args:
                raise ValueError(
                    f"counter trace event {index} misses its 'args' series: {event}"
                )
            for series, value in args.items():
                if not isinstance(value, (int, float)):
                    raise ValueError(
                        f"counter trace event {index} series {series!r} has "
                        f"non-numeric value {value!r}"
                    )


def load_chrome_trace(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Load a Chrome-trace JSON file and validate its events.

    Accepts both the object form (``{"traceEvents": [...]}``) and the bare
    array form; returns the validated event list.
    """
    with Path(path).open() as handle:
        payload = json.load(handle)
    events = payload["traceEvents"] if isinstance(payload, dict) else payload
    validate_chrome_events(events)
    return events
