"""The discrete-event kernel: one event queue and virtual clock for all sims.

:class:`SimKernel` is the shared core the runtime engine and the cluster
scheduler are both built on.  It is deliberately small: a priority queue of
:class:`Event` records ordered by ``(time, priority, seq)`` plus a monotone
virtual clock.  Executors give events an integer ``priority`` to fix the
processing order of simultaneous events (e.g. the scheduler processes
capacity changes before arrivals before completions at the same timestamp)
and a ``kind`` tag that their handler dispatches on.

Two usage patterns are supported by :meth:`SimKernel.run`:

* plain event-at-a-time handling (the runtime engine's dispatch/complete
  chain), and
* timestamp-drained handling: after *all* events sharing the earliest
  timestamp have been handled, an optional ``on_timestamp_drained`` hook
  runs — which is where the cluster scheduler makes placement decisions, so
  simultaneous arrivals are never starved by a decision triggered a moment
  "earlier".

The clock is an *observer* clock: ``now`` is the maximum time of any
processed event and never decreases.  Events may be scheduled at or before
``now`` (they fire on the next pop); this is what lets the engine express
its list-scheduling executor — where a later-dispatched call may finish
before an earlier one — on the same kernel the causally ordered scheduler
uses.
"""

from __future__ import annotations

import heapq
import itertools
import time as _time
from typing import Callable, List, Optional

from ..obs.metrics import get_registry

__all__ = ["Event", "SimKernel"]


class Event:
    """One scheduled occurrence in virtual time."""

    __slots__ = ("time", "priority", "seq", "kind", "payload", "cancelled")

    def __init__(self, time: float, priority: int, seq: int, kind: str, payload: object) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.kind = kind
        self.payload = payload
        self.cancelled = False

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (other.time, other.priority, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time:.4f}, {self.kind!r}, prio={self.priority}{flag})"


class SimKernel:
    """Event queue plus monotone virtual clock."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._heap: List[Event] = []
        self._seq = itertools.count()
        self._now = start_time
        self.n_processed = 0

    # ------------------------------------------------------------------ #
    # Clock and queue state
    # ------------------------------------------------------------------ #
    @property
    def now(self) -> float:
        """Current virtual time: the latest processed event time (monotone)."""
        return self._now

    @property
    def empty(self) -> bool:
        self._prune()
        return not self._heap

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def peek_time(self) -> Optional[float]:
        """Time of the earliest pending event (``None`` when empty)."""
        self._prune()
        return self._heap[0].time if self._heap else None

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #
    def schedule(
        self,
        time: float,
        kind: str,
        payload: object = None,
        priority: int = 0,
    ) -> Event:
        """Queue an event; ties break by ``priority`` then insertion order.

        ``time`` may be at or before :attr:`now` — such events fire on the
        next pop without moving the clock backwards.
        """
        event = Event(time, priority, next(self._seq), kind, payload)
        heapq.heappush(self._heap, event)
        return event

    def cancel(self, event: Event) -> None:
        """Lazily remove a scheduled event (no-op if already processed)."""
        event.cancelled = True

    # ------------------------------------------------------------------ #
    # Processing
    # ------------------------------------------------------------------ #
    def _prune(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)

    def pop(self) -> Event:
        """Remove and return the earliest event, advancing the clock."""
        self._prune()
        if not self._heap:
            raise IndexError("pop from an empty SimKernel")
        event = heapq.heappop(self._heap)
        self._now = max(self._now, event.time)
        self.n_processed += 1
        return event

    def run(
        self,
        handler: Callable[[Event], None],
        on_timestamp_drained: Optional[Callable[[float], None]] = None,
    ) -> None:
        """Drain the queue, handling events in ``(time, priority, seq)`` order.

        All events sharing the earliest timestamp are handled back to back
        (including any the handler schedules *at* that same timestamp); then
        ``on_timestamp_drained(t)`` runs, then the loop moves to the next
        timestamp.  The loop ends when no events remain — handlers and the
        drain hook may keep scheduling new ones.

        Event-drain throughput is published to the metrics registry once per
        ``run()`` (``sim_events_total``, ``sim_events_per_sec``,
        ``sim_run_seconds``) — a single batched update, so the per-event hot
        loop carries no instrumentation cost.
        """
        wall_started = _time.perf_counter()
        processed_before = self.n_processed
        # The drain below is the fleet-scale hot loop: one inlined heap pass
        # per timestamp batch instead of a peek (prune) + pop (prune again)
        # method-call round trip per event.  Semantics are identical to the
        # naive loop: cancelled events are skipped, events the handler
        # schedules *at* the batch timestamp drain in the same batch, and the
        # clock only ever moves forward.
        heap = self._heap
        heappop = heapq.heappop
        try:
            while heap:
                head = heap[0]
                if head.cancelled:
                    heappop(heap)
                    continue
                batch_time = head.time
                if batch_time > self._now:
                    self._now = batch_time
                while heap:
                    head = heap[0]
                    if head.cancelled:
                        heappop(heap)
                        continue
                    if head.time != batch_time:
                        break
                    heappop(heap)
                    self.n_processed += 1
                    handler(head)
                if on_timestamp_drained is not None:
                    on_timestamp_drained(batch_time)
        finally:
            self._publish_run_metrics(
                self.n_processed - processed_before,
                _time.perf_counter() - wall_started,
            )

    @staticmethod
    def _publish_run_metrics(n_events: int, elapsed_s: float) -> None:
        registry = get_registry()
        if not registry.enabled or n_events <= 0:
            return
        registry.counter(
            "sim_events_total", "Discrete events processed across all kernel runs"
        ).inc(n_events)
        registry.gauge(
            "sim_events_per_sec", "Event-drain throughput of the last kernel run"
        ).set(n_events / max(elapsed_s, 1e-9))
        registry.histogram(
            "sim_run_seconds", "Wall-clock seconds of whole kernel runs"
        ).observe(elapsed_s)
