"""Capacity what-if: replay one job trace against a grid of cluster shapes.

The planning product's core question — *which cluster should we buy/rent for
this workload?* — is answered by replaying the same fleet trace against a
grid of candidate cluster shapes × scheduling policies and comparing the
outcomes on a cost/throughput frontier:

* every candidate replays through the same warm
  :class:`~repro.service.server.PlanService`, and carved partition specs are
  parent-size-erased, so a (job type, shape) searched once is a cache hit for
  *every* subsequent candidate — the grid costs little more than its first
  replay;
* each outcome prices the candidate as **provisioned cost** (GPUs × makespan
  × $/GPU-hour — idle capacity is paid for, which is exactly what capacity
  planning must weigh) against **delivered throughput** (completed RLHF
  iterations per hour);
* the report's ``frontier`` lists the Pareto-optimal candidates (no other
  candidate is both cheaper and faster), machine-readable via
  :meth:`CapacityReport.to_dict`/:meth:`CapacityReport.save`.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from ..cluster.hardware import make_cluster
from ..sched.job import JobSpec
from ..sched.scheduler import ClusterScheduler, SchedulerConfig
from ..service.server import PlanService
from .fleet import fleet_scheduler_config

__all__ = ["CapacityCandidate", "CandidateOutcome", "CapacityReport", "capacity_whatif"]


@dataclass(frozen=True)
class CapacityCandidate:
    """One cluster shape × policy point of the what-if grid."""

    name: str
    n_gpus: int
    gpus_per_node: int = 8
    policy: str = "first_fit"
    cost_per_gpu_hour: float = 2.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("candidate name must be non-empty")
        if self.n_gpus < 1:
            raise ValueError(f"n_gpus must be >= 1, got {self.n_gpus}")
        if self.cost_per_gpu_hour < 0:
            raise ValueError(
                f"cost_per_gpu_hour must be >= 0, got {self.cost_per_gpu_hour}"
            )


@dataclass(frozen=True)
class CandidateOutcome:
    """One candidate's replay result, priced for the frontier."""

    name: str
    n_gpus: int
    gpus_per_node: int
    policy: str
    cost_per_gpu_hour: float
    n_jobs: int
    n_skipped: int
    """Jobs whose ``min_gpus`` exceeds the candidate cluster (not replayed)."""
    n_completed: int
    total_iterations: float
    makespan_s: float
    gpu_utilization: float
    provisioned_gpu_hours: float
    provisioned_cost: float
    iterations_per_hour: float
    cost_per_1k_iterations: float
    n_events: int
    wall_seconds: float
    events_per_sec: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "n_gpus": self.n_gpus,
            "gpus_per_node": self.gpus_per_node,
            "policy": self.policy,
            "cost_per_gpu_hour": self.cost_per_gpu_hour,
            "n_jobs": self.n_jobs,
            "n_skipped": self.n_skipped,
            "n_completed": self.n_completed,
            "total_iterations": self.total_iterations,
            "makespan_s": self.makespan_s,
            "gpu_utilization": self.gpu_utilization,
            "provisioned_gpu_hours": self.provisioned_gpu_hours,
            "provisioned_cost": self.provisioned_cost,
            "iterations_per_hour": self.iterations_per_hour,
            "cost_per_1k_iterations": self.cost_per_1k_iterations,
            "n_events": self.n_events,
            "wall_seconds": self.wall_seconds,
            "events_per_sec": self.events_per_sec,
        }


@dataclass
class CapacityReport:
    """The full what-if grid: per-candidate outcomes plus the Pareto frontier."""

    outcomes: List[CandidateOutcome]
    frontier: List[str] = field(default_factory=list)
    """Names of Pareto-optimal candidates (grid order): no other candidate
    has both lower provisioned cost and higher iterations/hour."""
    n_jobs: int = 0

    def outcome(self, name: str) -> CandidateOutcome:
        for outcome in self.outcomes:
            if outcome.name == name:
                return outcome
        raise KeyError(f"no candidate named {name!r}")

    def frontier_outcomes(self) -> List[CandidateOutcome]:
        on_frontier = set(self.frontier)
        return [o for o in self.outcomes if o.name in on_frontier]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "n_jobs": self.n_jobs,
            "candidates": [outcome.to_dict() for outcome in self.outcomes],
            "frontier": list(self.frontier),
        }

    def save(self, path: Union[str, Path]) -> Path:
        """Write the machine-readable report JSON to ``path``."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path


def _pareto_frontier(outcomes: Sequence[CandidateOutcome]) -> List[str]:
    """Non-dominated candidates on (provisioned cost ↓, iterations/hour ↑)."""
    frontier: List[str] = []
    for outcome in outcomes:
        dominated = any(
            other is not outcome
            and other.provisioned_cost <= outcome.provisioned_cost
            and other.iterations_per_hour >= outcome.iterations_per_hour
            and (
                other.provisioned_cost < outcome.provisioned_cost
                or other.iterations_per_hour > outcome.iterations_per_hour
            )
            for other in outcomes
        )
        if not dominated:
            frontier.append(outcome.name)
    return frontier


def capacity_whatif(
    jobs: Sequence[JobSpec],
    candidates: Sequence[CapacityCandidate],
    config: Optional[SchedulerConfig] = None,
    service: Optional[PlanService] = None,
) -> CapacityReport:
    """Replay ``jobs`` against every candidate and build the frontier report.

    All candidates share one :class:`PlanService` (the passed one, or a
    private one owned for the duration of the grid), so plan searches warm
    up on the first candidate and amortise across the rest.  ``config``
    defaults to :func:`fleet_scheduler_config`.  Jobs too large for a
    candidate cluster are skipped for that candidate and counted in its
    outcome — a small cluster failing to host the big jobs *is* part of the
    what-if answer.
    """
    if not candidates:
        raise ValueError("capacity_whatif needs at least one candidate")
    names = [candidate.name for candidate in candidates]
    if len(set(names)) != len(names):
        raise ValueError(f"candidate names must be unique, got {sorted(names)}")
    config = config if config is not None else fleet_scheduler_config()
    owns_service = service is None
    if owns_service:
        service = PlanService(max_workers=4, estimator_cache_size=64)
    outcomes: List[CandidateOutcome] = []
    try:
        for candidate in candidates:
            cluster = make_cluster(candidate.n_gpus, gpus_per_node=candidate.gpus_per_node)
            fitting = [spec for spec in jobs if spec.min_gpus <= candidate.n_gpus]
            scheduler = ClusterScheduler(
                cluster=cluster,
                jobs=fitting,
                policy=candidate.policy,
                config=config,
                service=service,
            )
            wall_started = time.perf_counter()
            report = scheduler.run()
            wall = time.perf_counter() - wall_started
            makespan = report.makespan
            hours = makespan / 3600.0
            gpu_hours = candidate.n_gpus * hours
            cost = gpu_hours * candidate.cost_per_gpu_hour
            iterations = report.total_iterations
            outcomes.append(
                CandidateOutcome(
                    name=candidate.name,
                    n_gpus=candidate.n_gpus,
                    gpus_per_node=candidate.gpus_per_node,
                    policy=candidate.policy,
                    cost_per_gpu_hour=candidate.cost_per_gpu_hour,
                    n_jobs=len(fitting),
                    n_skipped=len(jobs) - len(fitting),
                    n_completed=report.n_completed,
                    total_iterations=iterations,
                    makespan_s=makespan,
                    gpu_utilization=report.gpu_utilization,
                    provisioned_gpu_hours=gpu_hours,
                    provisioned_cost=cost,
                    iterations_per_hour=iterations / hours if hours > 0 else 0.0,
                    cost_per_1k_iterations=(
                        cost / (iterations / 1000.0) if iterations > 0 else float("inf")
                    ),
                    n_events=report.n_events,
                    wall_seconds=wall,
                    events_per_sec=report.n_events / wall if wall > 0 else 0.0,
                )
            )
    finally:
        if owns_service:
            service.close()
    return CapacityReport(
        outcomes=outcomes,
        frontier=_pareto_frontier(outcomes),
        n_jobs=len(jobs),
    )
