"""Fleet-scale capacity planning: synthetic traces and what-if replay grids.

This package turns the fast scheduler replay loop into a planning tool:
:mod:`repro.capacity.fleet` generates deterministic synthetic fleet traces
(thousands of jobs, Poisson arrivals, diurnal load), and
:mod:`repro.capacity.whatif` replays one trace against a grid of candidate
cluster shapes × policies, emitting a machine-readable cost/throughput
frontier report.
"""

from .fleet import (
    DEFAULT_JOB_TYPES,
    FleetJobType,
    FleetTraceConfig,
    fleet_scheduler_config,
    generate_fleet_trace,
)
from .whatif import CapacityCandidate, CandidateOutcome, CapacityReport, capacity_whatif

__all__ = [
    "DEFAULT_JOB_TYPES",
    "FleetJobType",
    "FleetTraceConfig",
    "fleet_scheduler_config",
    "generate_fleet_trace",
    "CapacityCandidate",
    "CandidateOutcome",
    "CapacityReport",
    "capacity_whatif",
]
