"""Parameter offloading between device and host memory.

The augmented dataflow graph of the paper (Figure 5) includes parameter
offloading nodes: models whose next use lies far in the future can be swapped
to host memory, trading PCIe transfer time for free HBM.  This module models
that decision and its cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.hardware import ClusterSpec
from ..core.plan import Allocation
from ..model.config import ModelConfig
from ..model.memory import PARAM_BYTES

__all__ = ["OffloadDecision", "offload_cost", "should_offload"]


@dataclass(frozen=True)
class OffloadDecision:
    """Whether (and how expensively) to offload a model's parameters."""

    offload: bool
    bytes_per_gpu: float
    offload_seconds: float
    reload_seconds: float

    @property
    def round_trip_seconds(self) -> float:
        """Total time spent moving the parameters out and back in."""
        return self.offload_seconds + self.reload_seconds


def offload_cost(config: ModelConfig, alloc: Allocation, cluster: ClusterSpec) -> OffloadDecision:
    """Cost of offloading a model stored under ``alloc`` to host memory.

    The transfer is asynchronous on a separate CUDA stream in the real system,
    but its duration still bounds how soon the freed memory becomes available,
    so we account for it explicitly.
    """
    shard_params = config.param_count() / (alloc.parallel.tp * alloc.parallel.pp)
    nbytes = shard_params * PARAM_BYTES
    seconds = nbytes / cluster.gpu.pcie_bandwidth
    return OffloadDecision(
        offload=True,
        bytes_per_gpu=nbytes,
        offload_seconds=seconds,
        reload_seconds=seconds,
    )


def should_offload(
    config: ModelConfig,
    alloc: Allocation,
    cluster: ClusterSpec,
    idle_seconds: float,
    memory_pressure: float,
) -> OffloadDecision:
    """Decide whether offloading is worthwhile.

    Offloading pays off when the model will stay idle for much longer than the
    PCIe round trip *and* the device is under memory pressure (fraction of HBM
    already committed).  Returns a decision whose ``offload`` flag encodes the
    verdict; the costs are always populated so callers can reason about the
    trade-off.
    """
    decision = offload_cost(config, alloc, cluster)
    worthwhile = (
        memory_pressure > 0.7 and idle_seconds > 4.0 * decision.round_trip_seconds
    )
    return OffloadDecision(
        offload=worthwhile,
        bytes_per_gpu=decision.bytes_per_gpu,
        offload_seconds=decision.offload_seconds,
        reload_seconds=decision.reload_seconds,
    )
