"""Cost of parameter reallocation edges in an execution plan.

The estimator and the runtime engine both need the time of redistributing a
model's parameters between the layouts of two consecutive function calls.
This module builds the two :class:`~repro.realloc.layout.ParamLayout` objects,
plans the broadcast schedule and converts it to seconds; results are memoised
because the MCMC search evaluates many plans sharing identical reallocation
edges.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Tuple

from ..cluster.hardware import ClusterSpec
from ..core.plan import Allocation, ReallocationEdge
from ..model.config import ModelConfig
from .layout import ParamLayout
from .remap import ReallocationPlan, plan_reallocation, reallocation_time

__all__ = ["ReallocCost", "ReallocCostModel"]


@dataclass(frozen=True)
class ReallocCost:
    """Time and volume of one parameter reallocation."""

    seconds: float
    bytes_sent: float
    n_broadcasts: int


class ReallocCostModel:
    """Memoised reallocation cost evaluator for a fixed cluster.

    Two fidelity levels are offered.  ``exact=True`` builds the full broadcast
    schedule of Figure 6 and times it; the runtime engine uses this.
    ``exact=False`` (the default, used by the plan-search estimator) applies
    the paper's approximation — data volume divided by link bandwidth — so a
    candidate plan can be scored in microseconds.
    """

    def __init__(self, cluster: ClusterSpec, exact: bool = False) -> None:
        self.cluster = cluster
        self.exact = exact
        self._cache: Dict[Tuple, ReallocCost] = {}

    def _key(self, config: ModelConfig, src: Allocation, dst: Allocation) -> Tuple:
        return (
            config.name,
            src.mesh.node_start,
            src.mesh.n_nodes,
            src.mesh.gpu_start,
            src.mesh.gpus_per_node,
            src.parallel,
            dst.mesh.node_start,
            dst.mesh.n_nodes,
            dst.mesh.gpu_start,
            dst.mesh.gpus_per_node,
            dst.parallel,
        )

    def cost(self, config: ModelConfig, src: Allocation, dst: Allocation) -> ReallocCost:
        """Cost of remapping ``config``'s parameters from ``src`` to ``dst``."""
        key = self._key(config, src, dst)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        if src.mesh == dst.mesh and src.parallel == dst.parallel:
            result = ReallocCost(0.0, 0.0, 0)
        elif not self.exact:
            result = self._approximate_cost(config, src, dst)
        else:
            src_layout = ParamLayout(config=config, mesh=src.mesh, parallel=src.parallel)
            dst_layout = ParamLayout(config=config, mesh=dst.mesh, parallel=dst.parallel)
            plan = plan_reallocation(src_layout, dst_layout)
            result = ReallocCost(
                seconds=reallocation_time(plan, self.cluster),
                bytes_sent=plan.total_bytes,
                n_broadcasts=plan.n_steps,
            )
        self._cache[key] = result
        return result

    def _approximate_cost(
        self, config: ModelConfig, src: Allocation, dst: Allocation
    ) -> ReallocCost:
        """Closed-form approximation: shard volume over link bandwidth.

        Every destination GPU must receive its parameter shard (minus whatever
        it already holds when the meshes overlap); broadcasts from distinct
        sources proceed in parallel, so the wall time is roughly one shard's
        transfer over the relevant link class.
        """
        from ..model.memory import PARAM_BYTES

        moved = config.param_count() / (dst.parallel.tp * dst.parallel.pp) * PARAM_BYTES
        cross = src.mesh.node_ids != dst.mesh.node_ids
        ic = self.cluster.interconnect
        bandwidth = (
            ic.inter_node_bandwidth / self.cluster.gpus_per_node
            if cross
            else ic.intra_node_bandwidth
        )
        seconds = moved / bandwidth + (
            ic.inter_node_latency_s if cross else ic.intra_node_latency_s
        )
        total_bytes = config.param_count() * PARAM_BYTES
        return ReallocCost(seconds=seconds, bytes_sent=total_bytes, n_broadcasts=dst.mesh.n_gpus)

    def edge_cost(self, config: ModelConfig, edge: ReallocationEdge) -> ReallocCost:
        """Cost of a :class:`ReallocationEdge` from an execution plan."""
        return self.cost(config, edge.src, edge.dst)

    def plan(self, config: ModelConfig, src: Allocation, dst: Allocation) -> ReallocationPlan:
        """The full broadcast schedule (used by the runtime engine's trace)."""
        src_layout = ParamLayout(config=config, mesh=src.mesh, parallel=src.parallel)
        dst_layout = ParamLayout(config=config, mesh=dst.mesh, parallel=dst.parallel)
        return plan_reallocation(src_layout, dst_layout)
