"""Parameter layouts: which GPU holds which slice of which layer.

Given a model configuration, a device mesh and a 3D parallelization strategy,
:class:`ParamLayout` describes the placement of every parameter block of the
model: transformer layers are grouped into pipeline stages, sharded across
the tensor-parallel ranks of the stage and replicated across its data-parallel
ranks.  The reallocation planner in :mod:`repro.realloc.remap` operates on two
such layouts (source and destination) to derive the broadcast schedule of
Figure 6 of the paper.

Parameter blocks are identified by integer ids: ``0 .. n_layers-1`` for the
transformer layers, :data:`EMBEDDING_BLOCK` for the input embedding (placed on
the first pipeline stage) and :data:`HEAD_BLOCK` for the output head (placed on
the last stage).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..cluster.topology import DeviceMesh
from ..core.parallel import ParallelStrategy
from ..model.config import ModelConfig
from ..model.memory import PARAM_BYTES

__all__ = [
    "EMBEDDING_BLOCK",
    "HEAD_BLOCK",
    "Interval",
    "ParamLayout",
    "layer_assignment",
]

EMBEDDING_BLOCK = -1
"""Parameter block id of the input token embedding."""

HEAD_BLOCK = -2
"""Parameter block id of the output head (LM head or value head)."""


Interval = Tuple[float, float]
"""A half-open fractional byte range ``[lo, hi)`` within a parameter block."""


def layer_assignment(n_layers: int, pp: int) -> List[range]:
    """Split ``n_layers`` layers into ``pp`` contiguous pipeline stages.

    Layers are distributed as evenly as possible; earlier stages receive the
    remainder, matching Megatron-LM's default balanced partition.
    """
    if pp < 1:
        raise ValueError("pp must be >= 1")
    if pp > n_layers:
        raise ValueError(f"cannot split {n_layers} layers into {pp} pipeline stages")
    base = n_layers // pp
    remainder = n_layers % pp
    stages: List[range] = []
    start = 0
    for stage in range(pp):
        size = base + (1 if stage < remainder else 0)
        stages.append(range(start, start + size))
        start += size
    return stages


@dataclass(frozen=True)
class ParamLayout:
    """Placement of a model's parameters under ``(mesh, parallel)``.

    Rank order follows the Megatron convention with TP innermost, then DP,
    then PP: global rank ``r`` maps to ``tp_rank = r % tp``,
    ``dp_rank = (r // tp) % dp`` and ``pp_rank = r // (tp * dp)``.  Ranks map
    to GPUs through the mesh's row-major device order, so TP groups stay
    within a node whenever ``tp`` does not exceed the mesh's node width.
    """

    config: ModelConfig
    mesh: DeviceMesh
    parallel: ParallelStrategy

    def __post_init__(self) -> None:
        if self.parallel.world_size != self.mesh.n_gpus:
            raise ValueError(
                f"strategy {self.parallel} does not match mesh of {self.mesh.n_gpus} GPUs"
            )
        if self.parallel.pp > self.config.n_layers:
            raise ValueError("pipeline degree exceeds the number of layers")

    # ------------------------------------------------------------------ #
    # Rank geometry
    # ------------------------------------------------------------------ #
    @property
    def stages(self) -> List[range]:
        """Layer ranges of each pipeline stage."""
        return layer_assignment(self.config.n_layers, self.parallel.pp)

    def rank_coords(self, rank: int) -> Tuple[int, int, int]:
        """``(pp_rank, dp_rank, tp_rank)`` of a global rank."""
        tp, dp = self.parallel.tp, self.parallel.dp
        if not (0 <= rank < self.parallel.world_size):
            raise ValueError(f"rank {rank} out of range")
        return (rank // (tp * dp), (rank // tp) % dp, rank % tp)

    def rank_of_coords(self, pp_rank: int, dp_rank: int, tp_rank: int) -> int:
        """Global rank of a ``(pp, dp, tp)`` coordinate."""
        tp, dp = self.parallel.tp, self.parallel.dp
        return pp_rank * dp * tp + dp_rank * tp + tp_rank

    def gpu_of_rank(self, rank: int) -> int:
        """Global GPU id running the given rank."""
        return self.mesh.device_ids[rank]

    def gpu_of_coords(self, pp_rank: int, dp_rank: int, tp_rank: int) -> int:
        """Global GPU id of a ``(pp, dp, tp)`` coordinate."""
        return self.gpu_of_rank(self.rank_of_coords(pp_rank, dp_rank, tp_rank))

    # ------------------------------------------------------------------ #
    # Block placement
    # ------------------------------------------------------------------ #
    def block_ids(self) -> List[int]:
        """All parameter block ids of the model."""
        return [EMBEDDING_BLOCK, HEAD_BLOCK] + list(range(self.config.n_layers))

    def block_bytes(self, block_id: int) -> float:
        """Total bytes of a parameter block (across all shards)."""
        if block_id == EMBEDDING_BLOCK:
            return self.config.embedding_params() * PARAM_BYTES
        if block_id == HEAD_BLOCK:
            return self.config.output_head_params() * PARAM_BYTES
        if not (0 <= block_id < self.config.n_layers):
            raise ValueError(f"unknown parameter block {block_id}")
        return self.config.layer_params() * PARAM_BYTES

    def stage_of_block(self, block_id: int) -> int:
        """Pipeline stage holding a parameter block."""
        if block_id == EMBEDDING_BLOCK:
            return 0
        if block_id == HEAD_BLOCK:
            return self.parallel.pp - 1
        for stage, layers in enumerate(self.stages):
            if block_id in layers:
                return stage
        raise ValueError(f"unknown parameter block {block_id}")

    def shard_interval(self, tp_rank: int) -> Interval:
        """Fractional byte range of a block held by ``tp_rank``."""
        tp = self.parallel.tp
        if not (0 <= tp_rank < tp):
            raise ValueError(f"tp_rank {tp_rank} out of range for tp={tp}")
        return (tp_rank / tp, (tp_rank + 1) / tp)

    def holders(self, block_id: int, tp_rank: int) -> List[int]:
        """GPUs holding the ``tp_rank``-th shard of ``block_id`` (DP replicas)."""
        stage = self.stage_of_block(block_id)
        return [
            self.gpu_of_coords(stage, dp_rank, tp_rank)
            for dp_rank in range(self.parallel.dp)
        ]

    def gpu_blocks(self, gpu_id: int) -> List[Tuple[int, Interval]]:
        """Parameter blocks (and fractional ranges) held by a GPU."""
        try:
            rank = self.mesh.device_ids.index(gpu_id)
        except ValueError:
            return []
        pp_rank, _dp_rank, tp_rank = self.rank_coords(rank)
        interval = self.shard_interval(tp_rank)
        blocks: List[Tuple[int, Interval]] = []
        for block_id in self.block_ids():
            if self.stage_of_block(block_id) == pp_rank:
                blocks.append((block_id, interval))
        return blocks

    def gpu_param_bytes(self, gpu_id: int) -> float:
        """Total parameter bytes stored on a GPU under this layout."""
        total = 0.0
        for block_id, (lo, hi) in self.gpu_blocks(gpu_id):
            total += self.block_bytes(block_id) * (hi - lo)
        return total

    def holder_intervals(self, block_id: int) -> Dict[int, Interval]:
        """Mapping ``gpu_id -> fractional interval`` for one parameter block."""
        stage = self.stage_of_block(block_id)
        out: Dict[int, Interval] = {}
        for tp_rank in range(self.parallel.tp):
            interval = self.shard_interval(tp_rank)
            for dp_rank in range(self.parallel.dp):
                out[self.gpu_of_coords(stage, dp_rank, tp_rank)] = interval
        return out
