"""Parameter reallocation: remapping a model between two 3D layouts.

This implements the hierarchical procedure of Figure 6 in the paper.  The
outer loop walks pairs of (source, destination) pipeline stages and finds the
parameter blocks they have in common; the inner loop remaps each block from
the source stage's DP x TP mesh to the destination stage's DP x TP mesh.  For
every byte range a destination GPU needs, the planner greedily picks the
source GPU with the lowest communication cost (itself, then a GPU on the same
node, then a remote GPU); sources then broadcast their ranges to all assigned
destinations in parallel.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..cluster.comm import CommModel
from ..cluster.hardware import ClusterSpec
from .layout import Interval, ParamLayout

__all__ = ["BroadcastStep", "ReallocationPlan", "plan_reallocation", "reallocation_time"]


@dataclass(frozen=True)
class BroadcastStep:
    """One broadcast of a contiguous shard range from a source GPU.

    Attributes
    ----------
    block_id:
        Parameter block being transferred (layer index, embedding or head).
    interval:
        Fractional byte range of the block carried by this broadcast.
    src_gpu:
        The GPU broadcasting the data.
    dst_gpus:
        The GPUs receiving it (never includes ``src_gpu``).
    nbytes:
        Payload size in bytes.
    """

    block_id: int
    interval: Interval
    src_gpu: int
    dst_gpus: Tuple[int, ...]
    nbytes: float


@dataclass
class ReallocationPlan:
    """The full set of broadcasts needed to remap one model's parameters."""

    steps: List[BroadcastStep] = field(default_factory=list)

    @property
    def total_bytes(self) -> float:
        """Total payload bytes sent on the network (each broadcast counted once)."""
        return sum(step.nbytes for step in self.steps)

    @property
    def total_received_bytes(self) -> float:
        """Total bytes received across all destination GPUs."""
        return sum(step.nbytes * len(step.dst_gpus) for step in self.steps)

    @property
    def n_steps(self) -> int:
        return len(self.steps)

    def is_empty(self) -> bool:
        """True when no communication is required (layouts already match)."""
        return not self.steps

    def bytes_received_by(self, gpu_id: int) -> float:
        """Bytes received by one destination GPU."""
        return sum(step.nbytes for step in self.steps if gpu_id in step.dst_gpus)

    def bytes_sent_by(self, gpu_id: int) -> float:
        """Bytes broadcast by one source GPU."""
        return sum(step.nbytes for step in self.steps if step.src_gpu == gpu_id)


def _interval_intersection(a: Interval, b: Interval) -> Interval | None:
    lo = max(a[0], b[0])
    hi = min(a[1], b[1])
    if hi <= lo + 1e-12:
        return None
    return (lo, hi)


def _subtract_interval(needed: Interval, held: Interval | None) -> List[Interval]:
    """Byte ranges of ``needed`` not covered by ``held``."""
    if held is None:
        return [needed]
    overlap = _interval_intersection(needed, held)
    if overlap is None:
        return [needed]
    pieces: List[Interval] = []
    if needed[0] < overlap[0]:
        pieces.append((needed[0], overlap[0]))
    if overlap[1] < needed[1]:
        pieces.append((overlap[1], needed[1]))
    return pieces


def _source_cost(cluster: ClusterSpec, src_gpu: int, dst_gpu: int) -> int:
    """Greedy preference key: local GPU < same node < remote node."""
    if src_gpu == dst_gpu:
        return 0
    if cluster.same_node(src_gpu, dst_gpu):
        return 1
    return 2


def plan_reallocation(src: ParamLayout, dst: ParamLayout) -> ReallocationPlan:
    """Derive the broadcast schedule remapping parameters from ``src`` to ``dst``.

    The returned plan satisfies the coverage invariant: for every destination
    GPU and every parameter block it must hold under ``dst``, the union of the
    ranges it already holds under ``src`` and the ranges it receives equals the
    required range (verified by property-based tests).
    """
    if src.config.name != dst.config.name:
        raise ValueError(
            f"cannot reallocate between different models ({src.config.name} vs {dst.config.name})"
        )
    cluster = src.mesh.cluster
    plan = ReallocationPlan()

    for block_id in dst.block_ids():
        src_holders = src.holder_intervals(block_id)   # gpu -> interval held
        dst_needs = dst.holder_intervals(block_id)      # gpu -> interval needed
        block_bytes = dst.block_bytes(block_id)

        # Split every destination's needed range along the source TP partition
        # boundaries so each piece is held in full by some set of source GPUs.
        boundaries = sorted({b for iv in src_holders.values() for b in iv} | {0.0, 1.0})
        segments: List[Interval] = [
            (lo, hi) for lo, hi in zip(boundaries[:-1], boundaries[1:]) if hi > lo + 1e-12
        ]

        # segment -> list of destination GPUs that still need it.
        pending: Dict[Interval, List[int]] = defaultdict(list)
        for dst_gpu, needed in dst_needs.items():
            already_held = src_holders.get(dst_gpu)
            missing = _subtract_interval(needed, already_held)
            for miss in missing:
                for seg in segments:
                    piece = _interval_intersection(miss, seg)
                    if piece is not None:
                        pending[piece].append(dst_gpu)

        for piece, dst_gpus in sorted(pending.items()):
            # Source candidates: GPUs whose held interval covers the piece.
            candidates = [
                gpu
                for gpu, held in src_holders.items()
                if held[0] <= piece[0] + 1e-12 and held[1] >= piece[1] - 1e-12
            ]
            if not candidates:
                raise RuntimeError(
                    f"no source GPU holds range {piece} of block {block_id}; "
                    "source layout is inconsistent"
                )
            # Greedy: pick the candidate with the lowest total cost to the
            # destination set (prefer local / same-node sources).
            best_src = min(
                candidates,
                key=lambda g: (sum(_source_cost(cluster, g, d) for d in dst_gpus), g),
            )
            receivers = tuple(sorted(d for d in dst_gpus if d != best_src))
            if not receivers:
                continue
            nbytes = block_bytes * (piece[1] - piece[0])
            plan.steps.append(
                BroadcastStep(
                    block_id=block_id,
                    interval=piece,
                    src_gpu=best_src,
                    dst_gpus=receivers,
                    nbytes=nbytes,
                )
            )
    return plan


def reallocation_time(plan: ReallocationPlan, cluster: ClusterSpec) -> float:
    """Estimate the wall time of executing a reallocation plan.

    Broadcasts from distinct source GPUs proceed in parallel; broadcasts from
    the same source are serialized.  The result is the maximum over GPUs of
    the time each spends sending or receiving, mirroring the paper's
    simulation of the Section 6 algorithm (data size over link bandwidth, no
    real NCCL call).
    """
    if plan.is_empty():
        return 0.0
    comm = CommModel(cluster)
    send_time: Dict[int, float] = defaultdict(float)
    recv_time: Dict[int, float] = defaultdict(float)
    for step in plan.steps:
        t = comm.broadcast_group_time(step.nbytes, step.src_gpu, step.dst_gpus)
        send_time[step.src_gpu] += t
        for dst in step.dst_gpus:
            recv_time[dst] += t
    busiest_sender = max(send_time.values(), default=0.0)
    busiest_receiver = max(recv_time.values(), default=0.0)
    return max(busiest_sender, busiest_receiver)
