"""Parameter reallocation: layouts, broadcast remapping, costs and offloading."""

from .cost import ReallocCost, ReallocCostModel
from .layout import EMBEDDING_BLOCK, HEAD_BLOCK, ParamLayout, layer_assignment
from .offload import OffloadDecision, offload_cost, should_offload
from .remap import BroadcastStep, ReallocationPlan, plan_reallocation, reallocation_time

__all__ = [
    "ParamLayout",
    "layer_assignment",
    "EMBEDDING_BLOCK",
    "HEAD_BLOCK",
    "BroadcastStep",
    "ReallocationPlan",
    "plan_reallocation",
    "reallocation_time",
    "ReallocCost",
    "ReallocCostModel",
    "OffloadDecision",
    "offload_cost",
    "should_offload",
]
