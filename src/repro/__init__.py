"""repro: a reproduction of "ReaL: Efficient RLHF Training of Large Language
Models with Parameter Reallocation" (MLSys 2025).

The package is organised by subsystem:

* :mod:`repro.cluster` — the simulated hardware substrate (GPUs, meshes, links).
* :mod:`repro.model` — LLaMA-3 configurations and analytical FLOP/memory models.
* :mod:`repro.core` — dataflow graphs, execution plans, the profiling-assisted
  estimator and the MCMC execution-plan search (the paper's core contribution).
* :mod:`repro.realloc` — parameter reallocation between 3D layouts (Figure 6).
* :mod:`repro.runtime` — the master/worker runtime engine (discrete-event).
* :mod:`repro.algorithms` — PPO, DPO, GRPO and ReMax dataflow graphs.
* :mod:`repro.baselines` — DeepSpeed-Chat, OpenRLHF, NeMo-Aligner, veRL and the
  Megatron heuristic as strategy models, plus ReaL itself.
* :mod:`repro.service` — planner-as-a-service: workload fingerprinting, an
  LRU plan cache with disk persistence, warm-started searches and a
  concurrent deduplicating plan server.
* :mod:`repro.sched` — multi-job cluster scheduler: elastic, plan-service-
  driven scheduling of concurrent RLHF jobs over one shared cluster.
* :mod:`repro.experiments` — settings, metrics and runners for every figure.
* :mod:`repro.rlhf` — a tiny functional NumPy transformer and end-to-end
  PPO/DPO/GRPO/ReMax training loops.
"""

from . import (
    algorithms,
    baselines,
    cluster,
    core,
    experiments,
    model,
    realloc,
    rlhf,
    runtime,
    sched,
    service,
)
from .cluster import ClusterSpec, DeviceMesh, make_cluster
from .core import (
    Allocation,
    DataflowGraph,
    ExecutionPlan,
    FunctionCallType,
    ModelFunctionCall,
    ParallelStrategy,
    RLHFWorkload,
    RuntimeEstimator,
    SearchConfig,
    instructgpt_workload,
    search_execution_plan,
)
from .runtime import RuntimeEngine
from .sched import ClusterScheduler, JobSpec, NodeFailure, ScheduleReport, schedule_trace
from .service import PlanClient, PlanRequest, PlanService

__version__ = "1.1.0"

__all__ = [
    "__version__",
    "cluster",
    "model",
    "core",
    "realloc",
    "runtime",
    "algorithms",
    "baselines",
    "experiments",
    "rlhf",
    "sched",
    "service",
    "ClusterSpec",
    "DeviceMesh",
    "make_cluster",
    "FunctionCallType",
    "ModelFunctionCall",
    "DataflowGraph",
    "ParallelStrategy",
    "Allocation",
    "ExecutionPlan",
    "RLHFWorkload",
    "instructgpt_workload",
    "RuntimeEstimator",
    "SearchConfig",
    "search_execution_plan",
    "RuntimeEngine",
    "PlanService",
    "PlanClient",
    "PlanRequest",
    "JobSpec",
    "NodeFailure",
    "ClusterScheduler",
    "ScheduleReport",
    "schedule_trace",
]
