"""Multi-job cluster scheduler: elastic, plan-service-driven GPU scheduling.

The paper plans one RLHF job on a dedicated cluster; this subsystem carves
one shared cluster into mesh-shaped partitions and multiplexes a stream of
concurrent RLHF jobs across them:

* :mod:`repro.sched.job` — job specs (algorithm, sizes, priority, arrival,
  target iterations, elastic GPU range) and runtime records.
* :mod:`repro.sched.partition` — located mesh-shaped partitions carved via
  :meth:`ClusterSpec.sub_cluster`, plus free/failed GPU bookkeeping.
* :mod:`repro.sched.costing` — scoring (job, partition) candidates through
  the shared :class:`~repro.service.server.PlanService` (exact-key cache
  across same-shaped partitions, warm-started replans for displaced jobs).
* :mod:`repro.sched.policies` — first-fit, best-aggregate-throughput
  packing, priority/preemption, and the naive static-equal baseline.
* :mod:`repro.sched.scheduler` — the discrete-event loop over arrivals,
  completions, elastic resizes and injected node failures.
* :mod:`repro.sched.metrics` — per-job and cluster-level schedule metrics.
"""

from .costing import Candidate, PlanCosting
from .job import Job, JobPhase, JobSpec
from .metrics import JobMetrics, ScheduleReport, SearchTimeStats
from .partition import Partition, PartitionManager, equal_node_partitions
from .profiles import IterationProfile, IterationProfiler, MigrationCostModel
from .policies import (
    BestThroughputPolicy,
    FirstFitPolicy,
    PolicyDecision,
    PriorityPolicy,
    SchedulingPolicy,
    StaticEqualPolicy,
    available_policies,
    get_policy,
)
from .scheduler import ClusterScheduler, NodeFailure, SchedulerConfig, schedule_trace

__all__ = [
    "JobSpec",
    "JobPhase",
    "Job",
    "Partition",
    "PartitionManager",
    "equal_node_partitions",
    "Candidate",
    "PlanCosting",
    "IterationProfile",
    "IterationProfiler",
    "MigrationCostModel",
    "PolicyDecision",
    "SchedulingPolicy",
    "FirstFitPolicy",
    "BestThroughputPolicy",
    "PriorityPolicy",
    "StaticEqualPolicy",
    "available_policies",
    "get_policy",
    "NodeFailure",
    "SchedulerConfig",
    "ClusterScheduler",
    "schedule_trace",
    "JobMetrics",
    "SearchTimeStats",
    "ScheduleReport",
]
